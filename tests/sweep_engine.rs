//! Integration tests for the parallel time-sweep engine: the spatial
//! visibility index must be indistinguishable from brute force, and the
//! sweep output must not depend on the worker-pool size.

use in_orbit::net::visibility::visible_sats;
use in_orbit::net::VisibilityIndex;
use in_orbit::prelude::*;
use in_orbit::sim::{SweepViews, TimeSweep};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The latitude-band index is an exact accelerator: for any ground
    /// point and any epoch it returns precisely the brute-force visible
    /// set, same satellites, same ranges, same order.
    #[test]
    fn index_matches_brute_force_everywhere(
        lat in -90.0..90.0f64,
        lon in -180.0..180.0f64,
        t in 0.0..86_400.0f64,
    ) {
        let c = starlink_550_only();
        let snap = c.snapshot(t);
        let index = VisibilityIndex::build(&c, &snap);
        let g = Geodetic::ground(lat, lon);
        let ge = g.to_ecef_spherical();
        prop_assert_eq!(index.query(ge), visible_sats(&c, &snap, g, ge));
    }

    /// Multi-shell constellations go through the same per-shell pruning;
    /// the merged result must still match brute force exactly.
    #[test]
    fn index_matches_brute_force_multi_shell(
        lat in -60.0..60.0f64,
        lon in -180.0..180.0f64,
        t in 0.0..43_200.0f64,
    ) {
        let c = kuiper();
        let snap = c.snapshot(t);
        let index = VisibilityIndex::build(&c, &snap);
        let g = Geodetic::ground(lat, lon);
        let ge = g.to_ecef_spherical();
        prop_assert_eq!(index.query(ge), visible_sats(&c, &snap, g, ge));
    }
}

/// A sweep over the same schedule must produce byte-identical output no
/// matter how many workers run it: results are slotted by input order
/// and each ground point folds its instants sequentially.
#[test]
fn sweep_output_is_independent_of_thread_count() {
    let service = InOrbitService::new(starlink_550_only());
    let times: Vec<f64> = (0..8).map(|i| i as f64 * 450.0).collect();
    let grounds: Vec<Geodetic> = (-50..=50)
        .step_by(10)
        .map(|lat| Geodetic::ground(lat as f64, 2.0 * lat as f64))
        .collect();

    let run = |threads: usize| {
        TimeSweep::new(&service, times.iter().copied())
            .with_threads(threads)
            .run(grounds.clone(), |g: &Geodetic, views: SweepViews| {
                let ge = g.to_ecef_spherical();
                views
                    .iter()
                    .map(|(_, v)| v.index().query(ge))
                    .collect::<Vec<_>>()
            })
    };

    let serial = run(1);
    for threads in [2, 3, 8] {
        assert_eq!(serial, run(threads), "{threads} threads diverged");
    }
}

/// Preparing a sweep warms the service cache: every instant resolves to
/// the same shared snapshot view afterwards, with positions equal to a
/// direct propagation.
#[test]
fn sweep_prepare_populates_the_shared_cache() {
    let service = InOrbitService::new(starlink_550_only());
    let times = [0.0, 120.0, 240.0];
    let sweep = TimeSweep::new(&service, times);
    let views = sweep.prepare();
    for (&t, view) in times.iter().zip(&views) {
        assert!(std::sync::Arc::ptr_eq(view, &service.view(t)));
        let direct = service.constellation().snapshot(t);
        assert_eq!(view.snapshot().positions, direct.positions);
    }
}
