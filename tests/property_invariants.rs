//! Cross-crate property-based tests: invariants that must hold for any
//! geometry, time, or configuration.

use in_orbit::net::routing::{build_graph, delays_to_all_sats};
use in_orbit::net::visibility::visible_sats;
use in_orbit::prelude::*;
use proptest::prelude::*;

fn small_constellation() -> Constellation {
    use in_orbit::constellation::{ShellSpec, WalkerPattern};
    Constellation::from_shells(
        "prop-test",
        vec![ShellSpec {
            name: "shell".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: 12,
            sats_per_plane: 12,
            phase_factor: 1,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every visible satellite's RTT lies between the zenith bound and
    /// the max-slant-range bound for its shell.
    #[test]
    fn visible_rtts_are_within_geometric_bounds(
        lat in -55.0..55.0f64,
        lon in -180.0..180.0f64,
        t in 0.0..7200.0f64,
    ) {
        let c = small_constellation();
        let snap = c.snapshot(t);
        let g = Geodetic::ground(lat, lon);
        let ge = g.to_ecef_spherical();
        let min_rtt = 2.0 * 550e3 / in_orbit::geo::consts::SPEED_OF_LIGHT_M_S * 1e3;
        let max_range = in_orbit::geo::look::max_slant_range_m(
            550e3, Angle::from_degrees(25.0));
        let max_rtt = 2.0 * max_range / in_orbit::geo::consts::SPEED_OF_LIGHT_M_S * 1e3;
        for v in visible_sats(&c, &snap, g, ge) {
            prop_assert!(v.rtt_ms() >= min_rtt - 1e-6);
            prop_assert!(v.rtt_ms() <= max_rtt + 1e-6);
        }
    }

    /// Graph delays to directly visible satellites equal the straight-
    /// line delay, and delays to all others are at least the nearest
    /// direct delay (you must go up before you can go sideways).
    #[test]
    fn graph_delays_dominate_direct_links(
        lat in -55.0..55.0f64,
        t in 0.0..7200.0f64,
    ) {
        let c = small_constellation();
        let topo = IslTopology::plus_grid(&c);
        let snap = c.snapshot(t);
        let user = GroundEndpoint::new(0, Geodetic::ground(lat, 0.0));
        let graph = build_graph(&c, &topo, &snap, &[user]);
        let delays = delays_to_all_sats(&graph, &c, &user);
        let direct = visible_sats(&c, &snap, user.geodetic, user.ecef);
        prop_assume!(!direct.is_empty());
        let min_direct = direct.iter().map(|v| v.delay_s()).fold(f64::INFINITY, f64::min);
        for v in &direct {
            prop_assert!((delays[v.id.0 as usize] - v.delay_s()).abs() < 1e-12);
        }
        for d in delays.iter().filter(|d| d.is_finite()) {
            prop_assert!(*d >= min_direct - 1e-12);
        }
    }

    /// The group delay of any satellite is at least every individual
    /// user's delay to it (max is an upper bound of each).
    #[test]
    fn group_delay_bounds_individual_delays(
        lat1 in -40.0..40.0f64,
        lat2 in -40.0..40.0f64,
        dlon in 1.0..30.0f64,
        t in 0.0..3600.0f64,
    ) {
        let c = small_constellation();
        let service = InOrbitService::new(c);
        let users = vec![
            GroundEndpoint::new(0, Geodetic::ground(lat1, 0.0)),
            GroundEndpoint::new(1, Geodetic::ground(lat2, dlon)),
        ];
        let snap = service.snapshot(t);
        let per_user = service.user_delays(&snap, &users);
        let group = GroupDelays::from_user_delays(&per_user);
        for sat in 0..group.len() {
            let id = SatId(sat as u32);
            for u in &per_user {
                prop_assert!(group.delay_s(id) >= u[sat] - 1e-15
                    || (group.delay_s(id).is_infinite() && u[sat].is_infinite()));
            }
        }
    }

    /// MinMax is optimal: no satellite has a strictly smaller group delay
    /// than the MinMax pick.
    #[test]
    fn minmax_is_actually_minimal(
        lat in -40.0..40.0f64,
        t in 0.0..3600.0f64,
    ) {
        let service = InOrbitService::new(small_constellation());
        let users = vec![
            GroundEndpoint::new(0, Geodetic::ground(lat, 0.0)),
            GroundEndpoint::new(1, Geodetic::ground(lat + 3.0, 4.0)),
        ];
        let g = GroupDelays::compute(&service, &users, t);
        prop_assume!(g.minmax().is_some());
        let (_, best) = g.minmax().unwrap();
        for sat in 0..g.len() {
            prop_assert!(g.delay_s(SatId(sat as u32)) >= best - 1e-15);
        }
    }

    /// Eclipse fraction and sun geometry stay physical across a year.
    #[test]
    fn sun_and_eclipse_stay_physical(day in 0.0..366.0f64) {
        let epoch = Epoch::from_calendar(2020, 1, 1, 0, 0, 0.0);
        let sun = in_orbit::geo::sun::sun_direction_eci(epoch, day * 86_400.0);
        prop_assert!((sun.norm() - 1.0).abs() < 1e-9);
        let decl = sun.z.asin().to_degrees();
        prop_assert!(decl.abs() < 23.6, "declination {decl}");
    }
}
