//! End-to-end pipeline test for the edge workload layer: a full
//! scenario run (diurnal demand + flash crowds + a seeded outage
//! schedule) must produce byte-identical reports whatever the thread
//! count and whatever the observability level, and a service carrying
//! an empty fault plan must be indistinguishable from a plain one.
//!
//! This is the in-process twin of the CI `edge-smoke` job, which
//! re-runs the `fig_edge` binary under `LEO_THREADS={1,4}` and
//! `LEO_OBS={off,1}` and byte-diffs `results/edge.json`.

use in_orbit::constellation::{Constellation, ShellSpec, WalkerPattern};
use in_orbit::core::{FailureModel, InOrbitService};
use in_orbit::edge::{
    EdgeConfig, EdgeEngine, EdgeReport, FunctionSpec, QosSpec, Scenario, ScenarioConfig,
};
use in_orbit::geo::Angle;
use in_orbit::net::FaultConfig;
use in_orbit::obs::{set_level, Level};

fn small_constellation() -> Constellation {
    Constellation::from_shells(
        "edge-pipeline",
        vec![ShellSpec {
            name: "shell".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: 10,
            sats_per_plane: 10,
            phase_factor: 1,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }],
    )
}

/// A scenario small enough to run in milliseconds but exercising every
/// feature: diurnal shaping, flash crowds, multi-tick migration churn.
fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        num_cells: 10,
        duration_s: 1200.0,
        tick_s: 120.0,
        flash_crowds: 3,
        ..ScenarioConfig::default()
    })
}

fn functions() -> Vec<FunctionSpec> {
    vec![
        FunctionSpec {
            max_rtt_ms: 16.0,
            ..FunctionSpec::interactive()
        },
        FunctionSpec {
            max_rtt_ms: 16.0,
            ..FunctionSpec::analytics()
        },
    ]
}

fn config(threads: usize) -> EdgeConfig {
    EdgeConfig {
        slots_per_server: 4,
        qos: QosSpec {
            replicas: 2,
            latency_bound_ms: 16.0,
        },
        threads,
    }
}

fn outage_config(constellation: &Constellation) -> FaultConfig {
    FaultConfig {
        schedule: Some(
            FailureModel {
                annual_failure_rate: 5000.0,
                seed: 7,
            }
            .schedule(constellation.num_satellites()),
        ),
        ..FaultConfig::none()
    }
}

fn run_plain(threads: usize) -> EdgeReport {
    let service = InOrbitService::new(small_constellation());
    let scenario = scenario();
    EdgeEngine::new(&service, &scenario, functions(), config(threads)).run()
}

fn run_outage(threads: usize) -> EdgeReport {
    let constellation = small_constellation();
    let faults = outage_config(&constellation);
    let service = InOrbitService::with_faults(constellation, faults);
    let scenario = scenario();
    EdgeEngine::new(&service, &scenario, functions(), config(threads)).run()
}

fn json(report: &EdgeReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn plain_run_is_byte_identical_across_thread_counts() {
    let one = run_plain(1);
    let four = run_plain(4);
    assert_eq!(one, four);
    assert_eq!(json(&one), json(&four), "serialized bytes diverged");
}

#[test]
fn outage_run_is_byte_identical_across_thread_counts() {
    let one = run_outage(1);
    let four = run_outage(4);
    assert_eq!(one, four);
    assert_eq!(json(&one), json(&four), "serialized bytes diverged");
}

#[test]
fn run_is_byte_identical_across_obs_levels() {
    // set_level is process-global, so both runs happen inside this one
    // test; counters may record or not, but report bytes must not move.
    set_level(Level::Off);
    let off = run_outage(2);
    set_level(Level::Full);
    let full = run_outage(2);
    set_level(Level::Off);
    assert_eq!(off, full);
    assert_eq!(json(&off), json(&full), "obs level leaked into results");
}

#[test]
fn empty_fault_plan_equals_no_plan() {
    let scenario = scenario();
    let plain_service = InOrbitService::new(small_constellation());
    let empty_service = InOrbitService::with_faults(small_constellation(), FaultConfig::none());
    let plain = EdgeEngine::new(&plain_service, &scenario, functions(), config(2)).run();
    let empty = EdgeEngine::new(&empty_service, &scenario, functions(), config(2)).run();
    assert_eq!(plain, empty);
    assert_eq!(json(&plain), json(&empty));
}

#[test]
fn outage_degrades_but_never_corrupts_the_run() {
    let plain = run_plain(2);
    let outage = run_outage(2);
    // The outage schedule kills real satellites inside the window, so
    // the two runs must actually differ...
    assert_ne!(plain, outage, "outage schedule had no effect — dead test");
    // ...while every accounting invariant still holds.
    for report in [&plain, &outage] {
        let total = report.busy_sat_seconds + report.standby_sat_seconds + report.idle_sat_seconds;
        let expect = report.num_sats as f64 * report.tick_s * report.ticks.len() as f64;
        assert!(
            (total - expect).abs() < 1e-6,
            "satellite-seconds must partition"
        );
        assert!(report.total_served <= report.total_demand);
        for t in &report.ticks {
            assert!(t.served <= t.demand);
            assert!(t.busy_sats + t.standby_sats <= report.num_sats);
        }
    }
    assert!(
        outage.total_served <= plain.total_served,
        "deaths cannot add service"
    );
}

#[test]
fn flash_crowds_show_up_in_the_demand_trace() {
    let s = scenario();
    let crowd = s.crowds()[0];
    let during = s.demand_at(crowd.cell, s.config().start_s + crowd.start_s + 1.0);
    let before = s.demand_at(crowd.cell, s.config().start_s + crowd.start_s - 60.0);
    assert!(
        during > before,
        "flash crowd invisible: {during} during vs {before} before"
    );
    // And the engine-level demand totals reflect the whole trace.
    let report = run_plain(1);
    let expected: u64 = s.ticks().iter().map(|&t| s.total_demand_at(t)).sum();
    assert_eq!(report.total_demand, expected);
}
