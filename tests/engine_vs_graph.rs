//! The CSR routing engine must be a drop-in replacement for the
//! allocating graph path: not "close", but bit-identical. Both run
//! Dijkstra over the same edge set with the same weights from the same
//! source, and floating-point shortest-path distances are determined by
//! the chosen path's left-to-right summation — so any divergence at all
//! means the engine wired an edge differently.

use in_orbit::net::engine::{DijkstraArena, RoutingEngine};
use in_orbit::net::routing::{self, build_graph, delays_to_all_sats};
use in_orbit::prelude::*;
use proptest::prelude::*;

fn small_constellation() -> Constellation {
    use in_orbit::constellation::{ShellSpec, WalkerPattern};
    Constellation::from_shells(
        "engine-prop",
        vec![ShellSpec {
            name: "shell".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: 10,
            sats_per_plane: 10,
            phase_factor: 1,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }],
    )
}

/// Bulk delays from every ground endpoint, both ways, compared bitwise.
fn assert_bulk_bitwise(c: &Constellation, t: f64, users: &[GroundEndpoint]) {
    let topo = IslTopology::plus_grid(c);
    let engine = RoutingEngine::compile(c, &topo);
    let snap = c.snapshot(t);
    let weights = engine.refresh(&snap);
    let links = engine.attach_scan(c, &snap, users);
    let mut arena = DijkstraArena::new();
    let fast = engine.delays_from_all(&weights, &links, &mut arena);

    let graph = build_graph(c, &topo, &snap, users);
    for (slot, u) in users.iter().enumerate() {
        let slow = delays_to_all_sats(&graph, c, u);
        assert_eq!(slow.len(), fast[slot].len());
        for (sat, (a, b)) in slow.iter().zip(&fast[slot]).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "user {slot} sat {sat}: graph {a} vs engine {b}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine bulk delays equal graph Dijkstra bit-for-bit on randomized
    /// snapshots and user groups.
    #[test]
    fn bulk_delays_are_bit_identical(
        lat1 in -50.0..50.0f64,
        lat2 in -50.0..50.0f64,
        dlon in -60.0..60.0f64,
        t in 0.0..7200.0f64,
    ) {
        let c = small_constellation();
        let users = [
            GroundEndpoint::new(0, Geodetic::ground(lat1, 10.0)),
            GroundEndpoint::new(1, Geodetic::ground(lat2, 10.0 + dlon)),
        ];
        assert_bulk_bitwise(&c, t, &users);
    }

    /// Early-exit satellite-to-satellite queries match the graph path,
    /// with and without a ground segment to relay through.
    #[test]
    fn sat_to_sat_is_bit_identical(
        a in 0u32..100,
        b in 0u32..100,
        lat in -50.0..50.0f64,
        t in 0.0..7200.0f64,
    ) {
        let c = small_constellation();
        let topo = IslTopology::plus_grid(&c);
        let engine = RoutingEngine::compile(&c, &topo);
        let snap = c.snapshot(t);
        let weights = engine.refresh(&snap);
        let mut arena = DijkstraArena::new();

        let graph = build_graph(&c, &topo, &snap, &[]);
        let slow = routing::sat_to_sat(&graph, SatId(a), SatId(b)).map(|p| p.delay_s);
        let fast = engine.sat_to_sat_delay(&weights, None, SatId(a), SatId(b), &mut arena);
        prop_assert_eq!(slow.map(f64::to_bits), fast.map(f64::to_bits));

        let grounds = [GroundEndpoint::new(0, Geodetic::ground(lat, 0.0))];
        let links = engine.attach_scan(&c, &snap, &grounds);
        let relayed_graph = build_graph(&c, &topo, &snap, &grounds);
        let slow = routing::sat_to_sat(&relayed_graph, SatId(a), SatId(b)).map(|p| p.delay_s);
        let fast =
            engine.sat_to_sat_delay(&weights, Some(&links), SatId(a), SatId(b), &mut arena);
        prop_assert_eq!(slow.map(f64::to_bits), fast.map(f64::to_bits));
    }

    /// Ground-to-ground delays (the meetup hybrid query) match the graph
    /// path bit-for-bit.
    #[test]
    fn ground_to_ground_is_bit_identical(
        lat1 in -50.0..50.0f64,
        lat2 in -50.0..50.0f64,
        dlon in -90.0..90.0f64,
        t in 0.0..7200.0f64,
    ) {
        let c = small_constellation();
        let topo = IslTopology::plus_grid(&c);
        let engine = RoutingEngine::compile(&c, &topo);
        let snap = c.snapshot(t);
        let grounds = [
            GroundEndpoint::new(0, Geodetic::ground(lat1, -20.0)),
            GroundEndpoint::new(1, Geodetic::ground(lat2, -20.0 + dlon)),
        ];
        let weights = engine.refresh(&snap);
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();

        let graph = build_graph(&c, &topo, &snap, &grounds);
        let slow = routing::ground_to_ground(&graph, &grounds[0], &grounds[1]).map(|p| p.delay_s);
        let fast = engine.ground_to_ground_delay(&weights, &links, 0, 1, &mut arena);
        prop_assert_eq!(slow.map(f64::to_bits), fast.map(f64::to_bits));
    }
}

/// One deterministic full-scale case: the paper's 1,584-satellite shell
/// with the Fig 3 West Africa user group.
#[test]
fn starlink_scale_bulk_delays_are_bit_identical() {
    let c = starlink_550_only();
    let users = [
        GroundEndpoint::new(0, Geodetic::ground(6.52, 3.38)), // Lagos
        GroundEndpoint::new(1, Geodetic::ground(5.56, -0.20)), // Accra
        GroundEndpoint::new(2, Geodetic::ground(9.06, 7.49)), // Abuja
    ];
    assert_bulk_bitwise(&c, 300.0, &users);
}
