//! Regression tests pinning the paper's headline numbers (with the
//! tolerances documented in EXPERIMENTS.md). If any of these move, a
//! figure reproduction has drifted.

use in_orbit::apps::spacenative::invisible_count;
use in_orbit::cities::WorldCities;
use in_orbit::core::access::{access_stats, SamplingConfig};
use in_orbit::core::meetup::{azure_sites, compare};
use in_orbit::feasibility::cost::CostModel;
use in_orbit::feasibility::{MassBudget, PowerBudget, SatelliteBus, ServerSpec};
use in_orbit::prelude::*;

fn west_africa() -> Vec<GroundEndpoint> {
    vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ]
}

#[test]
fn section2_orbital_mechanics_at_550_km() {
    // §2: 27,306 km/h and 95 min 39 s at 550 km.
    let e = KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
    assert!((e.circular_speed_m_s() * 3.6 - 27_306.0).abs() < 120.0);
    assert!((e.period_s() - (95.0 * 60.0 + 39.0)).abs() < 40.0);
}

#[test]
fn section2_geo_latency_ratio_is_65x() {
    // §2: LEO at 550 km offers ~65× lower propagation latency than GEO.
    let ratio = in_orbit::geo::consts::GEO_ALTITUDE_M / 550e3;
    assert!((ratio - 65.0).abs() < 1.5, "{ratio}");
}

#[test]
fn fig1_starlink_nearest_and_farthest_bounds() {
    // Fig 1: nearest ≤ 11 ms at all latitudes Starlink serves; farthest
    // ≤ 16 ms. Spot-check three latitudes with coarse sampling.
    let service = InOrbitService::new(starlink_phase1());
    for lat in [0.0, 40.0, 75.0] {
        let stats = access_stats(
            &service,
            Geodetic::ground(lat, 0.0),
            &SamplingConfig::coarse(),
        );
        if let Some(near) = stats.nearest_rtt_ms {
            assert!(near <= 11.5, "lat {lat}: nearest {near}");
        }
        if let Some(far) = stats.farthest_rtt_ms {
            assert!(far <= 16.5, "lat {lat}: farthest {far}");
        }
    }
}

#[test]
fn fig2_server_counts_match_paper_bands() {
    // Fig 2: Kuiper 10+ for most served latitudes; Starlink 30–40+.
    let starlink = InOrbitService::new(starlink_phase1());
    let kuiper = InOrbitService::new(kuiper());
    let sampling = SamplingConfig::coarse();

    let s = access_stats(&starlink, Geodetic::ground(30.0, 0.0), &sampling);
    assert!(s.avg_count >= 30.0, "starlink avg {}", s.avg_count);

    let k = access_stats(&kuiper, Geodetic::ground(30.0, 0.0), &sampling);
    assert!(k.avg_count >= 10.0, "kuiper avg {}", k.avg_count);
}

#[test]
fn fig3_west_africa_meetup_improvement() {
    // Fig 3: in-orbit ~3× better than the hybrid terrestrial option for
    // the West Africa group (we measure ≥2× at every instant; see
    // EXPERIMENTS.md for the absolute-number discussion).
    let service = InOrbitService::new(starlink_phase1());
    let cmp = compare(&service, &west_africa(), &azure_sites(), 0.0).expect("served");
    assert!(
        cmp.improvement_factor() >= 2.0,
        "{}",
        cmp.improvement_factor()
    );
    assert!(cmp.in_orbit_rtt_ms < 22.0);
}

#[test]
fn fig3_golden_worst_case_values_are_pinned() {
    // Golden regression for the fig3 binary's reported worst-case rows.
    // The full sweep takes its maximum (by in-orbit RTT) over 13
    // instants 600 s apart; these are the argmax instants of that sweep,
    // so the values below are exactly what fig3 prints: West Africa
    // 43.3 ms hybrid / 9.6 ms in-orbit, tri-continent 92.6 / 68.3 ms.
    // A shift here means the routing engine (or the constellation
    // geometry feeding it) changed fig3's output.
    let starlink =
        InOrbitService::new(in_orbit::constellation::presets::starlink_phase1_conservative());
    let cmp = compare(&starlink, &west_africa(), &azure_sites(), 3600.0).expect("served");
    assert!(
        (cmp.hybrid_rtt_ms - 43.319231).abs() < 0.05,
        "west africa hybrid {}",
        cmp.hybrid_rtt_ms
    );
    assert!(
        (cmp.in_orbit_rtt_ms - 9.625884).abs() < 0.05,
        "west africa in-orbit {}",
        cmp.in_orbit_rtt_ms
    );

    let kuiper = InOrbitService::new(kuiper());
    let tri = vec![
        GroundEndpoint::new(0, Geodetic::ground(29.42, -98.49)),
        GroundEndpoint::new(1, Geodetic::ground(-23.55, -46.63)),
        GroundEndpoint::new(2, Geodetic::ground(-33.87, 151.21)),
    ];
    let cmp = compare(&kuiper, &tri, &azure_sites(), 1800.0).expect("served");
    assert!(
        (cmp.hybrid_rtt_ms - 92.560125).abs() < 0.05,
        "tri-continent hybrid {}",
        cmp.hybrid_rtt_ms
    );
    assert!(
        (cmp.in_orbit_rtt_ms - 68.281732).abs() < 0.05,
        "tri-continent in-orbit {}",
        cmp.in_orbit_rtt_ms
    );
}

#[test]
fn fig4_invisible_fractions() {
    // Fig 4 at n = 1000: > 1/3 of Starlink, > 1/2 of Kuiper invisible.
    let cities = WorldCities::load_at_least(1000);
    let sites = cities.top_n_geodetic(1000);

    let s = invisible_count(&InOrbitService::new(starlink_phase1()), &sites, 0.0);
    assert!(s.fraction() > 1.0 / 3.0, "starlink {}", s.fraction());

    let k = invisible_count(&InOrbitService::new(kuiper()), &sites, 0.0);
    assert!(k.fraction() > 0.5, "kuiper {}", k.fraction());
}

#[test]
fn fig4_absolute_counts_are_pinned() {
    // Regression guard on the exact snapshot counts behind Fig 4 (t = 0,
    // n = 1000). These move only if the city catalog, the constellation
    // geometry, or the visibility rule changes — all of which should be
    // deliberate. Bands are ±10 % of the current golden values
    // (Starlink 1672, Kuiper 1747; see EXPERIMENTS.md).
    let cities = WorldCities::load_at_least(1000);
    let sites = cities.top_n_geodetic(1000);
    let s = invisible_count(&InOrbitService::new(starlink_phase1()), &sites, 0.0);
    assert!(
        (1505..=1840).contains(&s.invisible),
        "starlink invisible {} drifted from golden 1672",
        s.invisible
    );
    let k = invisible_count(&InOrbitService::new(kuiper()), &sites, 0.0);
    assert!(
        (1572..=1922).contains(&k.invisible),
        "kuiper invisible {} drifted from golden 1747",
        k.invisible
    );
}

#[test]
fn fig6_sticky_reduces_handoffs_substantially() {
    // Fig 6: Sticky's median inter-hand-off time ≈ 4× MinMax's (paper:
    // 164 s vs ~41 s) under the 40° session mask. On a 30-minute session
    // with 10-s ticks we require ≥ 3× and fewer hand-offs overall (the
    // full 2-h, 1-s run in the `fig6` binary sharpens this).
    let service =
        InOrbitService::new(in_orbit::constellation::presets::starlink_phase1_conservative());
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: 1800.0,
        tick_s: 10.0,
    };
    let users = west_africa();
    let mm = in_orbit::core::session::run_session(&service, &users, Policy::MinMax, &cfg);
    let st = in_orbit::core::session::run_session(&service, &users, Policy::sticky_default(), &cfg);
    assert!(st.handoff_count() < mm.handoff_count());
    let (m1, m2) = (
        mm.handoff_interval_cdf().median().unwrap_or(0.0),
        st.handoff_interval_cdf().median().unwrap_or(f64::INFINITY),
    );
    assert!(m2 >= 3.0 * m1, "sticky median {m2} vs minmax {m1}");
    assert!(
        (60.0..300.0).contains(&m2),
        "sticky median {m2} s (paper: 164 s)"
    );
}

#[test]
fn fig7_transfer_latencies_are_low_for_both_policies() {
    // Fig 7: state-transfer latency "similar and low for both
    // approaches, with Sticky providing an advantage in the tail".
    let service =
        InOrbitService::new(in_orbit::constellation::presets::starlink_phase1_conservative());
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: 1800.0,
        tick_s: 10.0,
    };
    let users = west_africa();
    let mm = in_orbit::core::session::run_session(&service, &users, Policy::MinMax, &cfg);
    let st = in_orbit::core::session::run_session(&service, &users, Policy::sticky_default(), &cfg);
    let mm_cdf = mm.transfer_latency_cdf();
    let st_cdf = st.transfer_latency_cdf();
    assert!(
        mm_cdf.median().unwrap() < 20.0,
        "MinMax median {:?}",
        mm_cdf.median()
    );
    assert!(
        st_cdf.median().unwrap() < 20.0,
        "Sticky median {:?}",
        st_cdf.median()
    );
    // Sticky's tail is no worse than MinMax's.
    assert!(
        st_cdf.quantile(0.9).unwrap() <= mm_cdf.quantile(0.9).unwrap() + 2.0,
        "sticky p90 {:?} vs minmax p90 {:?}",
        st_cdf.quantile(0.9),
        mm_cdf.quantile(0.9)
    );
}

#[test]
fn section4_feasibility_numbers() {
    let server = ServerSpec::hpe_dl325_gen10();
    let bus = SatelliteBus::starlink_v1();
    let mass = MassBudget::compute(&server, &bus);
    let power = PowerBudget::compute(&server, &bus);
    let cost = CostModel::default().compare(&server);

    assert!((mass.mass_fraction - 0.06).abs() < 0.005); // 6 %
    assert!(mass.volume_fraction < 0.02); // ~1 %
    assert!((power.typical_fraction - 0.15).abs() < 0.01); // 15 %
    assert!((power.peak_fraction - 0.233).abs() < 0.01); // 23 %
    assert!((cost.launch_cost_usd - 42_000.0).abs() < 2_000.0); // ~42 k
    assert!((cost.cost_ratio - 3.0).abs() < 0.5); // ~3×
}

#[test]
fn section31_starlink_is_7x_smaller_than_akamai_at_full_scale() {
    let ratio = in_orbit::apps::edge::cdn_scale_ratio(40_000.0);
    assert!((7.0..9.0).contains(&ratio), "{ratio}");
}
