//! Serialization and text-format round-trips: the experiment harness
//! persists every result as JSON and exports constellations as TLEs, so
//! the public types must survive those round-trips losslessly.

use in_orbit::core::access::AccessStats;
use in_orbit::core::session::{HandoffEvent, SessionResult};
use in_orbit::net::weather::RainClimate;
use in_orbit::prelude::*;

fn json_roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let text = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&text).expect("deserialize")
}

#[test]
fn geodetic_and_angle_round_trip_via_json() {
    let g = Geodetic::from_degrees(-33.8688, 151.2093, 42.5);
    let back: Geodetic = json_roundtrip(&g);
    assert_eq!(g, back);

    let a = Angle::from_degrees(53.0);
    let back: Angle = json_roundtrip(&a);
    assert_eq!(a, back);
}

#[test]
fn keplerian_elements_round_trip_via_json() {
    let e = KeplerianElements::circular(
        550e3,
        Angle::from_degrees(53.0),
        Angle::from_degrees(123.0),
        Angle::from_degrees(77.0),
    );
    let back: KeplerianElements = json_roundtrip(&e);
    assert_eq!(e, back);
}

#[test]
fn session_results_round_trip_via_json() {
    let r = SessionResult {
        policy: Policy::sticky_default(),
        events: vec![HandoffEvent {
            time_s: 60.0,
            from: Some(SatId(7)),
            to: SatId(12),
            transfer_latency_ms: Some(4.2),
            group_rtt_ms: 8.9,
        }],
        rtt_samples: vec![(0.0, 8.0), (60.0, 8.9)],
        end_s: 120.0,
    };
    let back: SessionResult = json_roundtrip(&r);
    assert_eq!(r, back);
    assert_eq!(back.handoff_count(), 1);
}

#[test]
fn access_stats_round_trip_including_the_unserved_case() {
    let served = AccessStats {
        nearest_rtt_ms: Some(4.1),
        farthest_rtt_ms: Some(15.9),
        min_count: 20,
        avg_count: 41.5,
        max_count: 60,
    };
    assert_eq!(json_roundtrip(&served), served);

    let unserved = AccessStats {
        nearest_rtt_ms: None,
        farthest_rtt_ms: None,
        min_count: 0,
        avg_count: 0.0,
        max_count: 0,
    };
    assert_eq!(json_roundtrip(&unserved), unserved);
}

#[test]
fn weather_climates_round_trip_via_json() {
    for c in [
        RainClimate::TROPICAL,
        RainClimate::TEMPERATE,
        RainClimate::ARID,
    ] {
        assert_eq!(json_roundtrip(&c), c);
    }
}

#[test]
fn cdf_round_trips_preserving_quantiles() {
    let cdf = Cdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0]);
    let back: Cdf = json_roundtrip(&cdf);
    assert_eq!(back, cdf);
    assert_eq!(back.median(), cdf.median());
}

#[test]
fn whole_constellation_survives_tle_text_export() {
    // A realistic persistence path: dump a constellation to TLE text,
    // read it back line-by-line, verify the count and a sample satellite.
    let c = kuiper();
    let text: String = c.to_tles().iter().map(|t| t.format() + "\n").collect();
    let mut parsed = 0;
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i + 2 < lines.len() + 1 {
        // name + two element lines per record
        let chunk = lines[i..(i + 3).min(lines.len())].join("\n");
        let tle = Tle::parse(&chunk).expect("exported TLE parses");
        assert!(tle.elements.validate().is_ok());
        parsed += 1;
        i += 3;
    }
    assert_eq!(parsed, c.num_satellites());
}

#[test]
fn fig5_map_renders_to_fixed_dimensions() {
    use in_orbit::geo::projection::AsciiMap;
    let mut map = AsciiMap::new(144, 40);
    let cities = in_orbit::cities::WorldCities::load().top_n_geodetic(500);
    map.plot(cities.iter(), '.');
    let rendered = map.render();
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), 42); // 40 rows + border
    assert!(lines.iter().all(|l| l.chars().count() == 146));
    assert!(map.count('.') > 100, "city layer missing");
}
