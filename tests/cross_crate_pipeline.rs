//! Integration tests spanning the whole stack: orbit → constellation →
//! net → core → apps, exercising the pipelines the experiment binaries
//! are built from.

use in_orbit::apps::spacenative::SensingPipeline;
use in_orbit::net::des::{uncontended_transfer_s, DesNetwork, Link};
use in_orbit::net::routing::{build_graph, ground_to_ground, sat_to_sat};
use in_orbit::prelude::*;

#[test]
fn tle_export_reimport_preserves_constellation_geometry() {
    // Export the 550 km shell as TLEs, re-import, and verify positions
    // agree (the TLE format quantizes mean motion; tolerate km-level).
    let original = starlink_550_only();
    let tles = original.to_tles();
    for (tle, sat) in tles
        .iter()
        .step_by(97)
        .zip(original.satellites().iter().step_by(97))
    {
        let parsed = Tle::parse(&tle.format()).expect("round-trip");
        let reprop = Propagator::new(parsed.elements, parsed.epoch);
        let d = reprop
            .position_eci(0.0)
            .0
            .distance(sat.propagator.position_eci(0.0).0);
        assert!(
            d < 20_000.0,
            "sat {}: {d} m drift after TLE round-trip",
            sat.id
        );
    }
}

#[test]
fn ground_paths_obey_physical_lower_bounds() {
    // No route can beat straight-line light travel between endpoints.
    let constellation = starlink_550_only();
    let topo = IslTopology::plus_grid(&constellation);
    let snap = constellation.snapshot(0.0);
    let pairs = [
        ((51.51, -0.13), (40.71, -74.01)),   // London - New York
        ((35.68, 139.69), (-33.87, 151.21)), // Tokyo - Sydney
        ((9.06, 7.49), (3.87, 11.52)),       // Abuja - Yaoundé
    ];
    for ((la1, lo1), (la2, lo2)) in pairs {
        let a = GroundEndpoint::new(0, Geodetic::ground(la1, lo1));
        let b = GroundEndpoint::new(1, Geodetic::ground(la2, lo2));
        let graph = build_graph(&constellation, &topo, &snap, &[a, b]);
        let p = ground_to_ground(&graph, &a, &b).expect("connected");
        let chord = a.ecef.distance_m(b.ecef);
        let min_delay = chord / in_orbit::geo::consts::SPEED_OF_LIGHT_M_S;
        assert!(
            p.delay_s >= min_delay,
            "path beats light: {} < {min_delay}",
            p.delay_s
        );
        // And satellite paths shouldn't be absurdly stretched either.
        assert!(p.delay_s < min_delay * 4.0 + 0.01, "path too long");
    }
}

#[test]
fn state_migration_transfer_times_are_practical() {
    // §5: "state migration after every few minutes is still a substantial
    // overhead. However, the high inter-satellite bandwidth could
    // accommodate this." Time a 1 GB session-state migration between two
    // adjacent meetup servers over a 100 Gbps ISL path found by routing.
    let constellation = starlink_550_only();
    let topo = IslTopology::plus_grid(&constellation);
    let snap = constellation.snapshot(0.0);
    let graph = build_graph(&constellation, &topo, &snap, &[]);
    let path = sat_to_sat(&graph, SatId(0), SatId(1)).expect("adjacent");

    // Build the DES route matching the path's hops.
    let mut net = DesNetwork::new();
    let links: Vec<_> = (0..path.hops())
        .map(|_| net.add_link(Link::new(100e9, path.delay_s / path.hops() as f64)))
        .collect();
    let size_bits = 8e9; // 1 GB
    let id = net.schedule_transfer(links, size_bits, 0.0);
    let rec = net.run()[id.0];
    // Well under the ~164 s Sticky hand-off interval.
    assert!(
        rec.duration_s() < 1.0,
        "1 GB migration took {} s",
        rec.duration_s()
    );
}

#[test]
fn des_agrees_with_analytic_bound_on_isl_paths() {
    let links = vec![Link::new(10e9, 0.004), Link::new(10e9, 0.002)];
    let mut net = DesNetwork::new();
    let ids: Vec<_> = links.iter().map(|&l| net.add_link(l)).collect();
    let id = net.schedule_transfer(ids, 1e9, 0.0);
    let rec = net.run()[id.0];
    let expect = uncontended_transfer_s(1e9, &links);
    assert!((rec.duration_s() - expect).abs() < 1e-9);
}

#[test]
fn earth_observation_pipeline_composes_with_visibility() {
    // A sensing satellite that is invisible from ground stations can
    // still drain its backlog later; verify duty-cycle math is coherent
    // with a finite downlink window fraction.
    let pipeline = SensingPipeline {
        sensor_rate_bps: 8e9,
        downlink_rate_bps: 2e9,
        reduction_factor: 4.0,
    };
    let duty = pipeline.sensing_duty_cycle();
    assert!((duty - 1.0).abs() < 1e-12, "4× reduction saturates duty");
    // Halve the downlink (sharing with network service, per the paper's
    // footnote): duty drops accordingly.
    let constrained = SensingPipeline {
        downlink_rate_bps: 1e9,
        ..pipeline
    };
    assert!((constrained.sensing_duty_cycle() - 0.5).abs() < 1e-12);
}

#[test]
fn every_preset_builds_and_snapshots_consistently() {
    for (name, c) in [
        ("starlink", starlink_phase1()),
        ("kuiper", kuiper()),
        ("telesat", telesat()),
    ] {
        let snap = c.snapshot(3600.0);
        assert_eq!(snap.len(), c.num_satellites(), "{name}");
        for (id, pos) in snap.iter() {
            let alt = pos.0.norm() - in_orbit::geo::consts::EARTH_RADIUS_MEAN_M;
            let expect = c.shell_of(id).altitude_m;
            assert!(
                (alt - expect).abs() < 1_000.0,
                "{name} {id}: altitude {alt} vs {expect}"
            );
        }
    }
}

#[test]
fn service_survives_a_full_orbital_period() {
    // Run access queries across a complete orbit to catch any
    // time-dependence bugs (GMST wrap, anomaly wrap, etc.).
    let service = InOrbitService::new(starlink_550_only());
    let period = service.constellation().satellites()[0]
        .propagator
        .elements()
        .period_s();
    let ground = Geodetic::ground(30.0, -60.0);
    for i in 0..12 {
        let t = period * i as f64 / 11.0;
        let vis = service.reachable_servers(ground, t);
        assert!(!vis.is_empty(), "no service at t={t}");
        for v in &vis {
            assert!(v.rtt_ms() < 16.5);
        }
    }
}
