//! Integration tests for the extension modules (DESIGN.md "Extension
//! modules" table): the §5/§6 open questions, exercised across crates.

use in_orbit::apps::geo_baseline::GeoSatellite;
use in_orbit::apps::interactive::AppClass;
use in_orbit::apps::matchmaking::{classify_group, Feasibility, Player};
use in_orbit::core::capacity::{CapacityPool, PlacementOutcome, PlacementRequest};
use in_orbit::core::replication::{predict_servers, ReplicationPlan, StateSizes};
use in_orbit::feasibility::simulation::{simulate_power, Battery, LoadProfile, PowerSimConfig};
use in_orbit::net::des::Link;
use in_orbit::net::handover::{handover_schedule, predict_passes};

use in_orbit::prelude::*;

#[test]
fn replication_plan_fits_inside_sticky_serving_intervals() {
    // End-to-end: predict Sticky servers, build a plan, verify the
    // generic-state prefetch fits in the holds the sessions actually
    // produce.
    let service =
        InOrbitService::new(in_orbit::constellation::presets::starlink_phase1_conservative());
    let users = vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ];
    let intervals = predict_servers(
        &service,
        &users,
        Policy::sticky_default(),
        0.0,
        1200.0,
        10.0,
    );
    assert!(intervals.len() >= 2, "need at least one hand-off");
    let plan = ReplicationPlan::build(
        intervals,
        StateSizes {
            session_bytes: 10e6,
            generic_bytes: 1e9,
        },
        2,
        30.0,
    );
    let isl = [Link::new(100e9, 0.003)];
    assert!(plan.prefetches_feasible(&isl));
    let (with, without) = plan.handoff_times_s(&isl);
    assert!(with < without);
}

#[test]
fn handover_schedule_matches_session_scale_hold_times() {
    // The single-station network hand-over plan should hold satellites
    // for minutes — the same scale §5 reports for sessions.
    let c = starlink_550_only();
    let passes = predict_passes(&c, Geodetic::ground(6.5, 3.4), 0.0, 3600.0, 10.0);
    let slots = handover_schedule(&passes, 0.0, 3600.0);
    assert!(slots.len() >= 5);
    let mean_hold = slots.iter().map(|s| s.until_s - s.from_s).sum::<f64>() / slots.len() as f64;
    assert!(
        (60.0..500.0).contains(&mean_hold),
        "mean hold {mean_hold} s"
    );
}

#[test]
fn capacity_pool_admits_a_metro_worth_of_edge_tenants() {
    // §3.1: reachable servers ≈ a cloudlet. With 32 slots each, a metro
    // can place hundreds of small tenants within the 16 ms envelope.
    let service = InOrbitService::new(starlink_phase1());
    let mut pool = CapacityPool::new(&service, 0.0, 32);
    let req = PlacementRequest {
        location: Geodetic::ground(6.52, 3.38),
        slots: 4,
        max_rtt_ms: 16.0,
    };
    let mut placed = 0;
    while let PlacementOutcome::Placed { rtt_ms, .. } = pool.place(&req) {
        assert!(rtt_ms <= 16.0);
        placed += 1;
    }
    assert!(placed >= 100, "only {placed} tenants placed");
}

#[test]
fn geo_baseline_and_leo_access_are_consistent() {
    // The 65× claim, computed end-to-end: GEO server RTT from the
    // equator over the actual LEO nearest-server RTT at the same spot.
    let service = InOrbitService::new(starlink_550_only());
    let ground = Geodetic::ground(0.0, 10.0);
    let leo_rtt = service
        .reachable_servers(ground, 0.0)
        .iter()
        .map(|v| v.rtt_ms())
        .fold(f64::INFINITY, f64::min);
    let geo_rtt = GeoSatellite {
        longitude_deg: 10.0,
    }
    .server_rtt_ms(ground);
    let ratio = geo_rtt / leo_rtt;
    assert!(
        (30.0..70.0).contains(&ratio),
        "GEO/LEO ratio {ratio} (65× at zenith, less when the nearest LEO sat is off-zenith)"
    );
}

#[test]
fn matchmaking_census_and_meetup_comparison_agree() {
    // If the matchmaking module says a pair is orbit-only under the AR
    // budget, the meetup machinery must find an in-orbit server under
    // that budget too.
    let service = InOrbitService::new(starlink_phase1());
    let sites: Vec<Geodetic> = in_orbit::cities::azure_regions()
        .iter()
        .map(|r| r.geodetic())
        .collect();
    let a = Player::new("abuja", 9.06, 7.49);
    let b = Player::new("yaounde", 3.87, 11.52);
    let f = classify_group(&service, &[&a, &b], &sites, AppClass::ArVr, 0.0);
    assert_eq!(f, Feasibility::OrbitOnly);
    let users = vec![
        GroundEndpoint::new(0, a.location),
        GroundEndpoint::new(1, b.location),
    ];
    let delays = GroupDelays::direct(&service, &users, 0.0);
    let (_, d) = delays.minmax().expect("orbit-only implies servable");
    assert!(2.0 * d * 1e3 <= AppClass::ArVr.max_rtt_ms());
}

#[test]
fn power_simulation_confirms_the_static_budget() {
    // §4's static 15 % figure, checked dynamically: the DL325 load
    // survives whole orbits through real eclipse geometry.
    let c = starlink_550_only();
    let sat = &c.satellites()[0];
    let config = PowerSimConfig {
        array_w: 2_400.0,
        battery: Battery::starlink_class(),
        load: LoadProfile {
            bus_w: 1_000.0,
            server_w: 225.0,
            spike_w: 0.0,
            spike_period_s: 0.0,
            spike_duration_s: 0.0,
        },
        step_s: 20.0,
        duration_s: 3.0 * 5_739.0,
        initial_soc: 0.8,
    };
    let prop = sat.propagator;
    let result = simulate_power(&config, c.epoch(), |t| prop.position_eci(t).0);
    assert!(result.survives(), "brownout {} s", result.brownout_s);
    assert!(result.min_soc > 0.1);
}
