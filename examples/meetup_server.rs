//! The paper's Fig 3 scenarios: a satellite meetup server vs. the best
//! terrestrial (Azure) data center reached through the same constellation.
//!
//! Run with: `cargo run --release --example meetup_server`

use in_orbit::core::meetup::{azure_sites, compare};
use in_orbit::prelude::*;

fn scenario(title: &str, service: &InOrbitService, users: &[(&str, f64, f64)]) {
    println!("── {title} ── ({})", service.constellation().name());
    let endpoints: Vec<GroundEndpoint> = users
        .iter()
        .enumerate()
        .map(|(i, &(_, lat, lon))| GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)))
        .collect();
    for &(name, lat, lon) in users {
        println!("  user: {name} ({lat:.2}°, {lon:.2}°)");
    }
    let sites = azure_sites();
    match compare(service, &endpoints, &sites, 0.0) {
        Some(cmp) => {
            println!(
                "  best terrestrial meetup : {} at {:.1} ms group RTT",
                cmp.best_site, cmp.hybrid_rtt_ms
            );
            println!(
                "  best in-orbit meetup    : {} at {:.1} ms group RTT",
                cmp.in_orbit_server, cmp.in_orbit_rtt_ms
            );
            println!(
                "  improvement             : {:.1}×\n",
                cmp.improvement_factor()
            );
        }
        None => println!("  group not servable at this instant\n"),
    }
}

fn main() {
    // Scenario 1 (paper: 46 ms hybrid vs 16 ms in-orbit on Starlink):
    // three users in West Africa, far from any data center.
    let starlink = InOrbitService::new(starlink_phase1());
    scenario(
        "West Africa group",
        &starlink,
        &[
            ("Abuja, Nigeria", 9.06, 7.49),
            ("Yaoundé, Cameroon", 3.87, 11.52),
            ("Lagos, Nigeria", 6.52, 3.38),
        ],
    );

    // Scenario 2 (paper: 97 ms vs 66 ms on Kuiper): each user sits *next
    // to* an Azure region, but no single region is good for all three.
    let kuiper = InOrbitService::new(kuiper());
    scenario(
        "Tri-continent group (each user beside an Azure DC)",
        &kuiper,
        &[
            ("South Central US (San Antonio)", 29.42, -98.49),
            ("Brazil South (São Paulo)", -23.55, -46.63),
            ("Australia East (Sydney)", -33.87, 151.21),
        ],
    );

    // Bonus: the same tri-continent group on Starlink Phase I.
    scenario(
        "Tri-continent group on Starlink",
        &starlink,
        &[
            ("South Central US (San Antonio)", 29.42, -98.49),
            ("Brazil South (São Paulo)", -23.55, -46.63),
            ("Australia East (Sydney)", -33.87, 151.21),
        ],
    );
}
