//! Space-native data processing (§3.3): idle "invisible" satellites and
//! the sensing-vs-downlink pipeline.
//!
//! Run with: `cargo run --release --example earth_observation`

use in_orbit::apps::spacenative::{cooperative_makespan_s, invisible_count, SensingPipeline};
use in_orbit::cities::WorldCities;
use in_orbit::prelude::*;

fn main() {
    let service = InOrbitService::new(starlink_phase1());
    let cities = WorldCities::load_at_least(1000);

    // How much of the constellation is idle (invisible from population
    // centers) right now?
    println!("invisible satellites ({}):", service.constellation().name());
    for n in [100, 500, 1000] {
        let r = invisible_count(&service, &cities.top_n_geodetic(n), 0.0);
        println!(
            "  ground stations at top {n:>4} cities: {:>4} of {} satellites invisible ({:.0} %)",
            r.invisible,
            r.total_sats,
            r.fraction() * 100.0
        );
    }

    // The sensing pipeline: an imaging satellite producing 8 Gbps with a
    // 2 Gbps downlink share.
    println!("\nsensing pipeline (8 Gbps sensor, 2 Gbps downlink share):");
    println!(
        "  {:>22} {:>12} {:>16}",
        "reduction factor", "duty cycle", "daily sensed data"
    );
    for k in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let p = SensingPipeline {
            sensor_rate_bps: 8e9,
            downlink_rate_bps: 2e9,
            reduction_factor: k,
        };
        println!(
            "  {:>20}×  {:>10.0} % {:>13.1} Tbit",
            k,
            p.sensing_duty_cycle() * 100.0,
            p.daily_sensed_bits() / 1e12
        );
    }

    // Cooperative processing across idle neighbors.
    println!("\ncooperative processing of a 1 Tbit backlog (10 Gbps compute/sat, 100 Gbps ISLs):");
    for helpers in [0usize, 1, 3, 9] {
        let t = cooperative_makespan_s(1e12, 1e10, 1e11, helpers);
        println!("  {helpers:>2} helper satellites: {t:>6.1} s");
    }
}
