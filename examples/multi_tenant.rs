//! Multi-tenant orchestration: many meetup groups competing for finite
//! per-satellite compute (§3.1's capacity question applied to §3.2's
//! sessions).
//!
//! Run with: `cargo run --release --example multi_tenant`

use in_orbit::core::orchestrator::{orchestrate, GroupSpec, OrchestratorConfig};
use in_orbit::prelude::*;

fn group(name: &str, lat: f64, lon: f64, slots: u32) -> GroupSpec {
    GroupSpec {
        name: name.to_string(),
        users: vec![
            GroundEndpoint::new(0, Geodetic::ground(lat, lon)),
            GroundEndpoint::new(1, Geodetic::ground(lat - 1.5, lon + 2.0)),
            GroundEndpoint::new(2, Geodetic::ground(lat + 1.0, lon - 1.5)),
        ],
        slots,
    }
}

fn main() {
    let service = InOrbitService::new(starlink_550_only());
    // Eight gaming groups clustered around the Gulf of Guinea — the
    // worst case for capacity: they all want the same satellites.
    let groups: Vec<GroupSpec> = (0..8)
        .map(|i| {
            group(
                &format!("group-{i}"),
                5.0 + (i % 4) as f64 * 1.5,
                3.0 + (i / 4) as f64 * 3.0,
                8,
            )
        })
        .collect();

    println!("8 groups × 8 slots on the 550 km shell, 20-minute run:\n");
    for slots_per_server in [64, 16, 8] {
        let config = OrchestratorConfig {
            slots_per_server,
            start_s: 0.0,
            duration_s: 1200.0,
            tick_s: 20.0,
        };
        let result = orchestrate(&service, &groups, &config);
        println!(
            "server capacity {slots_per_server:>3} slots: service ratio {:>5.1} %, peak {:>3} slots in use",
            result.service_ratio() * 100.0,
            result.peak_slots_in_use
        );
        for g in result.groups.iter().take(3) {
            println!(
                "    {}: {:>2} hand-offs, mean RTT {:>5.2} ms, blocked {} ticks",
                g.name, g.handoffs, g.mean_rtt_ms, g.blocked_ticks
            );
        }
        println!("    …");
    }

    println!(
        "\nWith one DL325-class server per satellite (≈64 tenant slots),\n\
         even colocated groups never block; scarcity only bites when a\n\
         satellite hosts a single small board shared eight ways."
    );
}
