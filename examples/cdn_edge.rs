//! In-orbit CDN edge (§3.1): latency comparison against terrestrial
//! CDN sites, plus content-cache behaviour under orbital churn.
//!
//! Run with: `cargo run --release --example cdn_edge`

use in_orbit::apps::cdn_cache::{simulate_cdn, CacheHandoffPolicy, CdnSimConfig};
use in_orbit::apps::edge::{compare_edge, TERRESTRIAL_PATH_STRETCH};
use in_orbit::prelude::*;

fn main() {
    let service = InOrbitService::new(starlink_phase1());
    let sites: Vec<Geodetic> = in_orbit::cities::azure_regions()
        .iter()
        .map(|r| r.geodetic())
        .collect();

    // Edge latency from places with and without nearby infrastructure.
    println!("edge RTT, terrestrial (fiber ×{TERRESTRIAL_PATH_STRETCH} stretch) vs in-orbit:\n");
    println!(
        "{:<26} {:>14} {:>12} {:>8}",
        "location", "terrestrial", "in-orbit", "winner"
    );
    for (name, lat, lon) in [
        ("Amsterdam (at a DC)", 52.37, 4.90),
        ("Lagos, Nigeria", 6.52, 3.38),
        ("Tarawa, Kiribati", 1.45, 173.03),
        ("Ushuaia, Argentina", -54.80, -68.30),
        ("McMurdo-ish (75°S)", -75.0, 166.0),
    ] {
        let cmp = compare_edge(&service, Geodetic::ground(lat, lon), &sites, 0.0);
        let terr = cmp
            .terrestrial_rtt_ms
            .map_or("-".into(), |v| format!("{v:.1} ms"));
        let orbit = cmp
            .in_orbit_rtt_ms
            .map_or("-".into(), |v| format!("{v:.1} ms"));
        let winner = if cmp.orbit_wins() { "orbit" } else { "ground" };
        println!("{name:<26} {terr:>14} {orbit:>12} {winner:>8}");
    }

    // Cache behaviour under churn: the serving satellite changes every
    // few minutes; does the edge cache survive?
    println!("\ncontent cache across satellite hand-offs (Lagos region, 20 min):");
    let region = Geodetic::ground(6.52, 3.38);
    let service550 = InOrbitService::new(starlink_550_only());
    for policy in [
        CacheHandoffPolicy::ColdStart,
        CacheHandoffPolicy::WarmHandoff,
    ] {
        let result = simulate_cdn(
            &service550,
            region,
            &CdnSimConfig {
                catalog_items: 10_000,
                zipf_exponent: 0.9,
                cache_items: 1_000,
                request_rate_hz: 50.0,
                duration_s: 1_200.0,
                policy,
                seed: 42,
            },
        );
        println!(
            "  {policy:?}: {:>6} requests, {:>2} hand-offs, hit rate {:.1} %",
            result.requests,
            result.handoffs,
            result.hit_rate() * 100.0
        );
    }
    println!(
        "\nWarm hand-off (migrating the hot set over ISLs, as §5 migrates\n\
         session state) keeps the cache effective despite orbital churn."
    );
}
