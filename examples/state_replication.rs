//! Ahead-of-time state replication (§5's closing idea): predict the
//! future meetup-servers, pre-replicate the bulky generic state, and
//! migrate only the small session state at hand-off time.
//!
//! Run with: `cargo run --release --example state_replication`

use in_orbit::core::replication::{predict_servers, ReplicationPlan, StateSizes};
use in_orbit::net::des::Link;
use in_orbit::prelude::*;

fn main() {
    let service =
        InOrbitService::new(in_orbit::constellation::presets::starlink_phase1_conservative());
    let users = vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)), // Abuja
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)), // Yaoundé
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)), // Lagos
    ];

    // Predict the next 30 minutes of Sticky meetup-servers.
    let intervals = predict_servers(
        &service,
        &users,
        Policy::sticky_default(),
        0.0,
        1800.0,
        10.0,
    );
    println!("predicted serving sequence (Sticky, next 30 min):");
    for iv in &intervals {
        println!(
            "  {}  {:>6.0} s → {:>6.0} s  ({:>4.0} s)",
            iv.server,
            iv.from_s,
            iv.until_s,
            iv.duration_s()
        );
    }

    // A game: 10 MB of session state, 2 GB of world data.
    let sizes = StateSizes {
        session_bytes: 10e6,
        generic_bytes: 2e9,
    };
    let plan = ReplicationPlan::build(intervals, sizes, 3, 60.0);
    println!("\nprefetch orders (generic state, 60 s lead):");
    for o in &plan.orders {
        println!(
            "  push world data to {} during [{:.0} s, {:.0} s]",
            o.target, o.start_s, o.deadline_s
        );
    }

    // Hand-off critical path over a 100 Gbps ISL with 3 ms propagation.
    let links = [Link::new(100e9, 0.003)];
    let (with, without) = plan.handoff_times_s(&links);
    println!("\nhand-off critical path (100 Gbps ISL):");
    println!(
        "  migrate everything at hand-off : {:>8.1} ms",
        without * 1e3
    );
    println!("  with ahead-of-time replication : {:>8.1} ms", with * 1e3);
    println!(
        "  feasible within the lead time  : {}",
        plan.prefetches_feasible(&links)
    );
}
