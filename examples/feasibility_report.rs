//! The §4 feasibility analysis as a report: weight, volume, power,
//! thermal, life-cycle, and cost of adding a commodity server to a
//! Starlink-class satellite.
//!
//! Run with: `cargo run --release --example feasibility_report`

use in_orbit::feasibility::cost::CostModel;
use in_orbit::feasibility::power::{battery_wh_for_load, generation_w_for_load, radiator_area_m2};
use in_orbit::feasibility::reliability::ReliabilityParams;
use in_orbit::feasibility::{MassBudget, PowerBudget, SatelliteBus, ServerSpec};

fn main() {
    let server = ServerSpec::hpe_dl325_gen10();
    let bus = SatelliteBus::starlink_v1();

    println!(
        "server : {} ({} cores, {:.1} kg)",
        server.name, server.cores, server.mass_kg
    );
    println!(
        "bus    : {} ({:.0} kg, {:.1} kW avg solar)\n",
        bus.name,
        bus.mass_kg,
        bus.avg_solar_power_w / 1e3
    );

    let mass = MassBudget::compute(&server, &bus);
    println!("mass/volume:");
    println!(
        "  weight fraction : {:.1} %  (paper: 6 %)",
        mass.mass_fraction * 100.0
    );
    println!(
        "  volume fraction : {:.1} %  (paper: 1 %)",
        mass.volume_fraction * 100.0
    );
    let (without, with) = MassBudget::satellites_per_launch(&server, &bus, 15_600.0);
    println!("  per-launch      : {without} satellites bare, {with} with servers\n");

    let power = PowerBudget::compute(&server, &bus);
    println!("power:");
    println!(
        "  draw fraction   : {:.0} % typical / {:.0} % peak  (paper: 15 % / 23 %)",
        power.typical_fraction * 100.0,
        power.peak_fraction * 100.0
    );
    println!(
        "  array for 225 W : {:.0} W sunlit generation (η=0.9 battery)",
        generation_w_for_load(server.typical_power_w, bus.altitude_m, 0.9)
    );
    println!(
        "  battery ride    : {:.0} Wh through worst-case eclipse",
        battery_wh_for_load(server.typical_power_w, bus.altitude_m)
    );
    println!(
        "  radiator        : {:.2} m² at 300 K, ε=0.85 for the 350 W peak\n",
        radiator_area_m2(server.peak_power_w, 300.0, 0.85)
    );

    println!("life-cycle (5-year satellites, no in-orbit repair):");
    for afr in [0.05, 0.10, 0.20] {
        let r = ReliabilityParams {
            annual_failure_rate: afr,
            satellite_life_years: bus.design_life_years,
        };
        println!(
            "  {:>4.0} %/yr server AFR: {:>5.1} % of fleet has a working server ({:.0} of 4,409)",
            afr * 100.0,
            r.steady_state_working_fraction() * 100.0,
            r.working_servers(4409)
        );
    }

    let cost = CostModel::default().compare(&server);
    println!("\ncost:");
    println!(
        "  launch cost       : {:>10.0} USD (paper: ~42,000)",
        cost.launch_cost_usd
    );
    println!(
        "  terrestrial 3y TCO: {:>10.0} USD",
        cost.terrestrial_cost_usd
    );
    println!(
        "  ratio             : {:>10.1} ×  (paper: ~3×)",
        cost.cost_ratio
    );
    println!(
        "  fleet (4,409 sats): {:>10.1} M USD",
        CostModel::default().fleet_launch_cost_usd(&server, 4409) / 1e6
    );
}
