//! Quickstart: stand up Starlink Phase I as an in-orbit compute provider
//! and look around from a few cities.
//!
//! Run with: `cargo run --release --example quickstart`

use in_orbit::prelude::*;

fn main() {
    // Build the full Starlink Phase I constellation (4,409 satellites in
    // five shells, per the 2019 FCC modification) and operate it as a
    // compute provider: one server per satellite, +Grid laser ISLs.
    let service = InOrbitService::new(starlink_phase1());
    println!(
        "constellation: {} ({} satellite-servers)\n",
        service.constellation().name(),
        service.num_servers()
    );

    // What does the edge look like from different places on Earth?
    let places = [
        ("Lagos, Nigeria", 6.52, 3.38),
        ("Zurich, Switzerland", 47.38, 8.54),
        ("South Pacific (mid-ocean)", -30.0, -130.0),
        ("Longyearbyen, Svalbard", 78.22, 15.65),
    ];
    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "location", "servers", "nearest RTT", "farthest RTT"
    );
    for (name, lat, lon) in places {
        let servers = service.reachable_servers(Geodetic::ground(lat, lon), 0.0);
        if servers.is_empty() {
            println!("{name:<28} {:>8} {:>12} {:>12}", 0, "-", "-");
            continue;
        }
        let nearest = servers
            .iter()
            .map(|v| v.rtt_ms())
            .fold(f64::INFINITY, f64::min);
        let farthest = servers.iter().map(|v| v.rtt_ms()).fold(0.0, f64::max);
        println!(
            "{name:<28} {:>8} {:>9.2} ms {:>9.2} ms",
            servers.len(),
            nearest,
            farthest
        );
    }

    // A two-user group and its latency-optimal meetup server.
    println!("\nmeetup: Lagos + Nairobi");
    let users = vec![
        GroundEndpoint::new(0, Geodetic::ground(6.52, 3.38)),
        GroundEndpoint::new(1, Geodetic::ground(-1.29, 36.82)),
    ];
    let delays = GroupDelays::compute(&service, &users, 0.0);
    let (server, delay) = delays.minmax().expect("group served");
    println!(
        "  best in-orbit meetup server: {server} at {:.2} ms group RTT",
        2.0 * delay * 1e3
    );

    // The same satellites, exported as TLEs for any other tool.
    let tle = &service.constellation().to_tles()[0];
    println!("\nfirst satellite as a TLE:\n{}", tle.format());
}
