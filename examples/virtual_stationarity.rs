//! Virtual stationarity (§5): run a stateful multi-user session under
//! MinMax and Sticky and compare hand-off behaviour.
//!
//! Run with: `cargo run --release --example virtual_stationarity`

use in_orbit::core::session::run_session;
use in_orbit::prelude::*;

fn main() {
    let service = InOrbitService::new(starlink_550_only());
    let users = vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)), // Abuja
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)), // Yaoundé
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)), // Lagos
    ];
    let config = SessionConfig {
        start_s: 0.0,
        duration_s: 3600.0,
        tick_s: 5.0,
    };

    println!(
        "one-hour session, 3 users in West Africa, {}\n",
        service.constellation().name()
    );
    for policy in [Policy::MinMax, Policy::sticky_default()] {
        let r = run_session(&service, &users, policy, &config);
        let intervals = r.handoff_interval_cdf();
        let transfers = r.transfer_latency_cdf();
        println!("policy: {}", policy.name());
        println!("  hand-offs              : {}", r.handoff_count());
        if let Some(m) = intervals.median() {
            println!(
                "  time between hand-offs : median {m:.0} s (min {:.0}, max {:.0})",
                intervals.min().unwrap(),
                intervals.max().unwrap()
            );
        }
        if let Some(m) = transfers.median() {
            println!(
                "  state-transfer latency : median {m:.2} ms (p90 {:.2} ms)",
                transfers.quantile(0.9).unwrap()
            );
        }
        println!(
            "  mean group RTT         : {:.2} ms\n",
            r.mean_group_rtt_ms().unwrap_or(f64::NAN)
        );
    }

    println!(
        "Sticky trades a bounded latency increase (≤10 %) for far fewer\n\
         hand-offs — the paper's 'GEO-like stationarity without the GEO\n\
         latency penalty'."
    );
}
