//! Weather and in-orbit compute availability — the analysis §6 of the
//! paper flags as future work ("Weather, which we did not analyze yet,
//! also poses limitations on availability").
//!
//! Run with: `cargo run --release --example weather_availability`

use in_orbit::net::weather::{site_availability, LinkBudget, RainClimate};
use in_orbit::prelude::*;

fn main() {
    let service = InOrbitService::new(starlink_phase1());

    let sites = [
        ("Lagos (tropical)", 6.52, 3.38, RainClimate::TROPICAL),
        ("Yaoundé (tropical)", 3.87, 11.52, RainClimate::TROPICAL),
        ("Zurich (temperate)", 47.38, 8.54, RainClimate::TEMPERATE),
        ("Riyadh (arid)", 24.71, 46.68, RainClimate::ARID),
    ];

    println!("availability of in-orbit compute under rain fade (Ka-band):\n");
    println!(
        "{:<22} {:>10} {:>14} {:>14}",
        "site", "visible", "consumer 8 dB", "gateway 16 dB"
    );
    for (name, lat, lon, climate) in sites {
        let ground = Geodetic::ground(lat, lon);
        let ground_ecef = ground.to_ecef_spherical();
        // Elevations of all currently reachable satellites.
        let snap = service.snapshot(0.0);
        let elevations: Vec<Angle> = service
            .reachable_servers_in(&snap, ground)
            .iter()
            .map(|v| {
                in_orbit::geo::LookAngles::compute(ground, ground_ecef, snap.position(v.id))
                    .elevation
            })
            .collect();
        let consumer = site_availability(&LinkBudget::CONSUMER, &climate, &elevations);
        let gateway = site_availability(&LinkBudget::GATEWAY, &climate, &elevations);
        println!(
            "{:<22} {:>10} {:>13.4}% {:>13.4}%",
            name,
            elevations.len(),
            consumer * 100.0,
            gateway * 100.0
        );
    }

    println!(
        "\nTropical sites — exactly where the paper's edge-computing case is\n\
         strongest — lose the most availability to rain fade; gateway-class\n\
         margins (or Ku-band links) close most of the gap."
    );
}
