//! Downlink contention between Earth-observation bulk data and user
//! traffic — footnote 1 of §3.3: using a substantial fraction of the
//! ~10 Gbps down-links for sensing data "may require compromising one
//! or the other function". In-orbit pre-processing shrinks the bulk
//! share and removes the compromise.
//!
//! Run with: `cargo run --release --example downlink_contention`

use in_orbit::apps::spacenative::SensingPipeline;
use in_orbit::net::packet::{Flow, PLinkId, PacketLink, PacketNetwork};

fn scenario(bulk_bps: f64) -> (f64, f64) {
    let mut net = PacketNetwork::new();
    let downlink = net.add_link(PacketLink::new(10e9, 0.002, 256));
    // Interactive user traffic: 100 Mbps of 1,500-byte packets.
    let user = net.add_flow(Flow {
        route: vec![downlink],
        packet_bits: 12_000.0,
        interval_s: 12_000.0 / 0.1e9,
        start_s: 0.0,
        packets: 2_000,
    });
    if bulk_bps > 0.0 {
        // EO download: 15,000-byte jumbo packets.
        net.add_flow(Flow {
            route: vec![PLinkId(downlink.0)],
            packet_bits: 120_000.0,
            interval_s: 120_000.0 / bulk_bps,
            start_s: 0.0,
            packets: (bulk_bps / 120_000.0 * 0.25) as usize, // ~250 ms worth
        });
    }
    let stats = net.run();
    let mean_ms = stats[user.0].mean_latency_s().unwrap_or(f64::NAN) * 1e3;
    (mean_ms, stats[user.0].delivery_ratio())
}

fn main() {
    println!("user-traffic latency on a 10 Gbps downlink shared with EO data:\n");
    println!(
        "{:>28} {:>16} {:>12}",
        "EO download share", "user latency", "delivered"
    );
    for (label, bulk) in [
        ("none (network only)", 0.0),
        ("2 Gbps (20 %)", 2e9),
        ("8 Gbps (80 %)", 8e9),
        ("9.9 Gbps (99 %)", 9.9e9),
        ("11 Gbps (oversubscribed)", 11e9),
    ] {
        let (lat, ratio) = scenario(bulk);
        println!("{label:>28} {lat:>13.4} ms {:>11.1}%", ratio * 100.0);
    }

    // The fix: pre-process in orbit so less needs downlinking.
    println!("\nwith in-orbit pre-processing (8 Gbps sensor):");
    for k in [1.0, 4.0, 16.0] {
        let p = SensingPipeline {
            sensor_rate_bps: 8e9,
            downlink_rate_bps: 2e9,
            reduction_factor: k,
        };
        println!(
            "  {k:>4}× reduction → {:.1} Gbps to downlink per sensing-second, duty {:.0} %",
            p.downlink_bits_per_sensing_s() / 1e9,
            p.sensing_duty_cycle() * 100.0
        );
    }
}
