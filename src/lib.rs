//! # in-orbit
//!
//! A full reproduction of *"In-orbit Computing: An Outlandish thought
//! Experiment?"* (Bhattacherjee, Kassing, Licciardello, Singla —
//! HotNets 2020): a LEO mega-constellation simulator plus an in-orbit
//! computing service layer built on top of it.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geo`] | `leo-geo` | Earth model, frames, look angles, sun/eclipse |
//! | [`orbit`] | `leo-orbit` | Kepler + J2 propagation, TLE I/O |
//! | [`constellation`] | `leo-constellation` | Walker shells, Starlink/Kuiper presets |
//! | [`cities`] | `leo-cities` | World cities, Azure regions |
//! | [`net`] | `leo-net` | Visibility, +Grid ISLs, routing, DES |
//! | [`core`] | `leo-core` | The paper's contribution: in-orbit compute service, MinMax/Sticky selection, virtual stationarity |
//! | [`feasibility`] | `leo-feasibility` | §4 mass/power/thermal/reliability/cost models |
//! | [`apps`] | `leo-apps` | Edge/CDN, multi-user QoE, Earth-observation models |
//! | [`sim`] | `leo-sim` | Parallel time-sweep engine over cached snapshot views |
//! | [`serve`] | `leo-serve` | Sharded million-user serving sweeps on delta-refreshed routing |
//! | [`edge`] | `leo-edge` | Serverless FaaS workload layer: function placement, QoS replicas, demand scenarios |
//! | [`obs`] | `leo-obs` | Counters, histograms, span timers, run manifests |
//!
//! ## Quickstart
//!
//! ```
//! use in_orbit::prelude::*;
//!
//! // Starlink's first shell as an in-orbit compute provider.
//! let service = InOrbitService::new(starlink_550_only());
//!
//! // Who can a user in Lagos reach right now?
//! let lagos = Geodetic::ground(6.52, 3.38);
//! let servers = service.reachable_servers(lagos, 0.0);
//! assert!(!servers.is_empty());
//! let nearest = servers
//!     .iter()
//!     .min_by(|a, b| a.range_m.total_cmp(&b.range_m))
//!     .unwrap();
//! assert!(nearest.rtt_ms() < 11.0); // single-digit milliseconds
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use leo_apps as apps;
pub use leo_cities as cities;
pub use leo_constellation as constellation;
pub use leo_core as core;
pub use leo_edge as edge;
pub use leo_feasibility as feasibility;
pub use leo_geo as geo;
pub use leo_net as net;
pub use leo_obs as obs;
pub use leo_orbit as orbit;
pub use leo_serve as serve;
pub use leo_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use leo_constellation::presets::{kuiper, starlink_550_only, starlink_phase1, telesat};
    pub use leo_constellation::{Constellation, SatId};
    pub use leo_core::{Cdf, GroupDelays, InOrbitService, Policy, SessionConfig, StickyParams};
    pub use leo_geo::{Angle, Ecef, Eci, Epoch, Geodetic, Vec3};
    pub use leo_net::routing::GroundEndpoint;
    pub use leo_net::{IslTopology, NetworkGraph};
    pub use leo_orbit::{KeplerianElements, Propagator, Tle};
    pub use leo_sim::TimeSweep;
}
