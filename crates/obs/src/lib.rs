//! # leo-obs
//!
//! Zero-dependency observability for the in-orbit computing stack:
//! process-wide registries of named [`Counter`]s, log-bucketed
//! [`Histogram`]s, and scoped [`Span`] timers.
//!
//! The design target is *hot-path safe* instrumentation. The routing
//! engine settles ~1,600 nodes per Dijkstra query and the sweeps run
//! millions of such queries, so:
//!
//! * **disabled** (the default): every record path is one relaxed atomic
//!   load of the cached `LEO_OBS` level plus a predictable branch —
//!   nothing else. Figure outputs are byte-identical with observability
//!   on and off because the metrics never feed back into computation.
//! * **enabled**: counters and histograms are sharded per thread
//!   ([`NUM_SHARDS`] cache-line-padded cells, threads assigned
//!   round-robin), so a record is a couple of *relaxed* atomic ops with
//!   no cross-core contention on the sweep pool.
//! * **span timers** read the clock, so they sit behind a second level:
//!   `LEO_OBS=1` enables counters and histograms, `LEO_OBS=2` (or
//!   `full`) additionally enables spans.
//! * **structured trace events** sit behind a third level (`LEO_OBS=3`
//!   or `trace`): span begin/end and instant events with thread
//!   attribution, buffered in per-thread-shard ring buffers and drained
//!   by [`take_trace`] into Chrome trace-event JSON
//!   ([`chrome_trace_json`], loadable in Perfetto / chrome://tracing).
//!
//! Handles are interned per call site through the [`counter!`],
//! [`histogram!`], [`span!`], and [`timeseries!`] macros: the first
//! execution registers the metric (by name, deduplicated) in the
//! process-wide registry and leaks it to `&'static`; later executions
//! are a single `OnceLock::get`. [`snapshot`] walks the registry and
//! folds the shards into a serializer-friendly dump; [`reset`] zeroes
//! everything (tests and multi-run tools).
//!
//! Counters must be deterministic functions of the work performed — not
//! of scheduling — so that run manifests can be diffed across thread
//! counts; anything timing-derived belongs in a histogram or span.
//! [`TimeSeries`] gauges carry the same contract over orbital time: work
//! series are sampled from sequential fold loops only (one point per
//! snapshot/tick, deterministic order), while wall-clock series are
//! flagged [`TimeSeries::is_timing`] and gated like spans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ----------------------------------------------------------------- level

/// How much instrumentation is live, cached from `LEO_OBS` on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// No recording: every record path is one load + branch.
    Off = 0,
    /// Counters and histograms record; span timers stay off (no clock
    /// reads on hot paths).
    Metrics = 1,
    /// Metrics plus span timers.
    Full = 2,
    /// Everything, plus structured trace events (span begin/end and
    /// instants) buffered for Chrome trace-event export.
    Trace = 3,
}

impl Level {
    /// Numeric form, as written in run manifests.
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

/// Sentinel meaning "not yet read from the environment".
const LEVEL_UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// The `LEO_OBS` decision as a pure function of the variable's value
/// (`None` = unset): `1`/`metrics` → [`Level::Metrics`], `2`/`full` →
/// [`Level::Full`], `3`/`trace` → [`Level::Trace`], anything else
/// (including unset, empty, and `0`) → [`Level::Off`]. Split out so
/// tests never mutate the process environment.
pub fn level_from(value: Option<&str>) -> Level {
    level_from_checked(value).0
}

/// [`level_from`] plus whether the value was a *documented* spelling
/// (unset, empty, `0`/`off`, `1`/`metrics`, `2`/`full`, `3`/`trace`).
/// A typo'd `LEO_OBS=ful` still falls back to [`Level::Off`], but the
/// `false` lets callers surface it (the run manifests record it under
/// `config_warnings`).
pub fn level_from_checked(value: Option<&str>) -> (Level, bool) {
    match value.map(str::trim) {
        None | Some("") | Some("0") | Some("off") => (Level::Off, true),
        Some("1") | Some("metrics") => (Level::Metrics, true),
        Some("2") | Some("full") => (Level::Full, true),
        Some("3") | Some("trace") => (Level::Trace, true),
        Some(_) => (Level::Off, false),
    }
}

fn decode(raw: u8) -> Level {
    match raw {
        1 => Level::Metrics,
        2 => Level::Full,
        3 => Level::Trace,
        _ => Level::Off,
    }
}

/// The active level. First call reads `LEO_OBS`; later calls are one
/// relaxed atomic load.
#[inline]
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == LEVEL_UNSET {
        let l = level_from(std::env::var("LEO_OBS").ok().as_deref());
        LEVEL.store(l as u8, Ordering::Relaxed);
        l
    } else {
        decode(raw)
    }
}

/// Overrides the level for the rest of the process (tests, tools that
/// enable metrics programmatically). Takes effect immediately on all
/// threads.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when counters and histograms record.
#[inline]
pub fn metrics_enabled() -> bool {
    level() >= Level::Metrics
}

/// True when span timers read the clock.
#[inline]
pub fn spans_enabled() -> bool {
    level() >= Level::Full
}

/// True when structured trace events are buffered.
#[inline]
pub fn trace_enabled() -> bool {
    level() >= Level::Trace
}

// -------------------------------------------------------------- sharding

/// Number of per-metric shards. Threads are assigned round-robin, so any
/// pool up to this wide records contention-free.
pub const NUM_SHARDS: usize = 16;

/// One cache line per shard so two workers never bounce a line.
#[repr(align(64))]
#[derive(Default)]
struct ShardCell(AtomicU64);

fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
    }
    SHARD.with(|s| *s)
}

// -------------------------------------------------------------- registry

#[derive(Default)]
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    series: Mutex<Vec<&'static TimeSeries>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

// -------------------------------------------------------------- counters

/// A named monotonic counter, sharded per thread.
///
/// Obtain a handle with [`counter!`] (interned per call site) or
/// [`Counter::register`]; both deduplicate by name process-wide.
pub struct Counter {
    name: &'static str,
    shards: [ShardCell; NUM_SHARDS],
}

impl Counter {
    /// The counter registered under `name`, creating it on first use.
    pub fn register(name: &'static str) -> &'static Counter {
        let mut list = registry().counters.lock().expect("counter registry");
        if let Some(c) = list.iter().find(|c| c.name == name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter {
            name,
            shards: Default::default(),
        }));
        list.push(c);
        c
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when metrics are enabled; a load + branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

// ------------------------------------------------------------ histograms

/// Sub-buckets per power of two: the top [`SUB_BITS`] mantissa bits join
/// the exponent in the bucket key, giving buckets a geometric width of
/// `2^(1/4)` (≈ 19 % relative error worst case — plenty for latency and
/// work-size distributions).
const SUB_BITS: u32 = 2;

/// Smallest bucketed magnitude, `2^-64`. Everything smaller (zero
/// included) lands in the underflow bucket.
const MIN_EXP: i32 = -64;

/// Largest bucketed magnitude, `2^64`. Everything larger (infinity
/// included) lands in the overflow bucket.
const MAX_EXP: i32 = 64;

/// Bucket key of the smallest regular bucket: biased exponent of
/// `2^MIN_EXP` shifted left by the sub-bucket bits.
const MIN_KEY: u64 = ((1023 + MIN_EXP) as u64) << SUB_BITS;

/// Number of regular (non-under/overflow) buckets.
const NUM_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) << SUB_BITS;

/// Index of the underflow slot in the storage array.
const UNDERFLOW: usize = 0;

/// Index of the overflow slot.
const OVERFLOW: usize = NUM_BUCKETS + 1;

/// Slots per shard: regular buckets plus the two tails.
const SLOTS: usize = NUM_BUCKETS + 2;

/// Storage slot of a non-negative sample: the `f64` bit pattern shifted
/// so the biased exponent and the top [`SUB_BITS`] mantissa bits remain —
/// monotone in the sample, so slots are ordered.
#[inline]
fn slot_of(v: f64) -> usize {
    if !(v.is_finite() && v >= 0.0) {
        // NaN and negatives are clamped into the tails; samples here are
        // all physical non-negative quantities, so this is a guard, not a
        // code path that real instrumentation exercises.
        return if v.is_nan() || v < 0.0 {
            UNDERFLOW
        } else {
            OVERFLOW
        };
    }
    let key = v.to_bits() >> (52 - SUB_BITS);
    if key < MIN_KEY {
        UNDERFLOW
    } else {
        let idx = (key - MIN_KEY) as usize + 1;
        idx.min(OVERFLOW)
    }
}

/// Lower edge of a regular bucket index (1-based, `1..=NUM_BUCKETS`).
fn bucket_lo(idx: usize) -> f64 {
    f64::from_bits((MIN_KEY + (idx as u64 - 1)) << (52 - SUB_BITS))
}

/// Upper edge of a regular bucket index.
fn bucket_hi(idx: usize) -> f64 {
    f64::from_bits((MIN_KEY + idx as u64) << (52 - SUB_BITS))
}

/// One shard of histogram state: per-bucket counts plus a bit-CAS `f64`
/// sum (relaxed; only folded at snapshot time).
struct HistShard {
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn add_sum(&self, v: f64) {
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A named log-bucketed histogram over non-negative `f64` samples,
/// sharded per thread. Geometric buckets (4 per power of two) cover
/// `2^-64 ..= 2^64` with under/overflow tails; quantiles are answered to
/// within one bucket (≲ 19 % relative error).
pub struct Histogram {
    name: &'static str,
    shards: Vec<HistShard>,
}

impl Histogram {
    /// The histogram registered under `name`, creating it on first use.
    pub fn register(name: &'static str) -> &'static Histogram {
        let mut list = registry().histograms.lock().expect("histogram registry");
        if let Some(h) = list.iter().find(|h| h.name == name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram {
            name,
            shards: (0..NUM_SHARDS).map(|_| HistShard::new()).collect(),
        }));
        list.push(h);
        h
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample when metrics are enabled: one relaxed
    /// `fetch_add` on the bucket plus a relaxed CAS on the shard sum.
    #[inline]
    pub fn record(&self, v: f64) {
        if metrics_enabled() {
            let shard = &self.shards[shard_index()];
            shard.buckets[slot_of(v)].fetch_add(1, Ordering::Relaxed);
            shard.add_sum(v);
        }
    }

    /// Starts a scoped timer recording seconds into this histogram on
    /// drop — a no-op (no clock read) unless [`spans_enabled`]. At
    /// [`Level::Trace`] the span additionally emits begin/end trace
    /// events under its histogram name (category `"span"`).
    pub fn span(&'static self) -> Span {
        Span {
            start: spans_enabled().then(Instant::now),
            trace: trace_enabled().then(|| trace_scope(self.name, "span")),
            histogram: self,
        }
    }

    /// Times `f`, recording its wall time in seconds (level-gated like
    /// [`Histogram::span`]).
    pub fn time<R>(&'static self, f: impl FnOnce() -> R) -> R {
        let _span = self.span();
        f()
    }

    /// Folds the shards into an immutable dump.
    pub fn dump(&self) -> HistogramDump {
        let mut folded = vec![0u64; SLOTS];
        let mut sum = 0.0;
        for shard in &self.shards {
            for (acc, b) in folded.iter_mut().zip(&shard.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
        }
        let buckets: Vec<Bucket> = folded
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(idx, &count)| {
                let (lo, hi) = match idx {
                    UNDERFLOW => (0.0, bucket_lo(1)),
                    i if i == OVERFLOW => (bucket_hi(NUM_BUCKETS), f64::INFINITY),
                    i => (bucket_lo(i), bucket_hi(i)),
                };
                Bucket { lo, hi, count }
            })
            .collect();
        HistogramDump {
            name: self.name.to_string(),
            count: buckets.iter().map(|b| b.count).sum(),
            sum,
            buckets,
        }
    }

    fn reset(&self) {
        for shard in &self.shards {
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
            shard.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A scoped span timer: measures from construction to drop and records
/// the elapsed seconds into its histogram. Inert (no clock read at all)
/// below [`Level::Full`]; at [`Level::Trace`] it also carries a
/// [`TraceScope`] so the interval shows up in the exported trace.
pub struct Span {
    start: Option<Instant>,
    trace: Option<TraceScope>,
    histogram: &'static Histogram,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed().as_secs_f64());
        }
        // `trace` drops after this body, closing the trace interval.
        let _ = &self.trace;
    }
}

// --------------------------------------------------------------- tracing

/// Maximum buffered trace events per shard. A full shard drops further
/// *begin*/*instant* events (counted, reported in the dump) — *end*
/// events whose begin made it in are always recorded, so the per-thread
/// span tree stays balanced; the only overshoot is the open-span depth.
pub const TRACE_SHARD_CAP: usize = 1 << 16;

/// One structured trace event, Chrome trace-event shaped: `ph` is `'B'`
/// (span begin), `'E'` (span end), or `'i'` (instant); `ts_us` is
/// microseconds since the process trace epoch; `tid` is a stable
/// per-thread ordinal (assigned on first trace emission).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span or instant label).
    pub name: Cow<'static, str>,
    /// Category, e.g. `"phase"`, `"span"`, `"mark"`.
    pub cat: &'static str,
    /// Chrome phase: `'B'`, `'E'`, or `'i'`.
    pub ph: char,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Per-thread ordinal; all events of one thread share it.
    pub tid: u64,
}

#[derive(Default)]
struct TraceShard {
    events: Vec<TraceEvent>,
    dropped: u64,
}

fn trace_shards() -> &'static [Mutex<TraceShard>; NUM_SHARDS] {
    static SHARDS: OnceLock<[Mutex<TraceShard>; NUM_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(Default::default)
}

/// The instant all trace timestamps are measured from: first trace
/// emission in the process.
fn trace_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn trace_now_us() -> u64 {
    trace_epoch().elapsed().as_micros() as u64
}

/// This thread's trace ordinal, assigned on first use. Unlike
/// [`shard_index`] (round-robin, reused), tids are unique per thread, so
/// begin/end pairs of one tid are strictly LIFO even when two threads
/// share a buffer shard.
fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Pushes one event into its shard's buffer. `force` bypasses the
/// capacity cap (span ends, to keep trees balanced); a capped non-forced
/// push is counted as dropped instead.
fn trace_push(ev: TraceEvent, force: bool) -> bool {
    let shard = &trace_shards()[(ev.tid as usize) % NUM_SHARDS];
    let mut s = shard.lock().expect("trace shard");
    if force || s.events.len() < TRACE_SHARD_CAP {
        s.events.push(ev);
        true
    } else {
        s.dropped += 1;
        false
    }
}

/// Records an instant trace event (category `"mark"`) when
/// [`trace_enabled`]; one relaxed load otherwise.
#[inline]
pub fn trace_instant(name: impl Into<Cow<'static, str>>) {
    if trace_enabled() {
        trace_push(
            TraceEvent {
                name: name.into(),
                cat: "mark",
                ph: 'i',
                ts_us: trace_now_us(),
                tid: trace_tid(),
            },
            false,
        );
    }
}

/// Opens a scoped trace interval: emits a begin event now and the
/// matching end event on drop. Inert (one relaxed load, no clock read)
/// below [`Level::Trace`]. The level is latched at creation: the end is
/// emitted iff the begin was, so buffers always hold balanced trees.
pub fn trace_scope(name: impl Into<Cow<'static, str>>, cat: &'static str) -> TraceScope {
    if !trace_enabled() {
        return TraceScope {
            name: Cow::Borrowed(""),
            cat,
            tid: 0,
            armed: false,
        };
    }
    let name = name.into();
    let tid = trace_tid();
    let armed = trace_push(
        TraceEvent {
            name: name.clone(),
            cat,
            ph: 'B',
            ts_us: trace_now_us(),
            tid,
        },
        false,
    );
    TraceScope {
        name,
        cat,
        tid,
        armed,
    }
}

/// An open trace interval; closes (emits the end event) on drop. See
/// [`trace_scope`].
pub struct TraceScope {
    name: Cow<'static, str>,
    cat: &'static str,
    tid: u64,
    armed: bool,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.armed {
            trace_push(
                TraceEvent {
                    name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                    cat: self.cat,
                    ph: 'E',
                    ts_us: trace_now_us(),
                    tid: self.tid,
                },
                true,
            );
        }
    }
}

/// Everything buffered since the last drain: events ordered by
/// `(ts_us, tid)` (stable, so each thread's emission order is kept) and
/// the number of events dropped to the capacity cap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDump {
    /// Buffered events, ordered by timestamp then tid.
    pub events: Vec<TraceEvent>,
    /// Begin/instant events dropped because a shard was full.
    pub dropped: u64,
}

/// Drains every trace buffer into one dump (and resets the dropped
/// counts). Trace events are wall-clock data: unlike counters they are
/// *not* deterministic across runs or thread counts, which is why they
/// are exported to a separate `.trace.json`, never into result files.
pub fn take_trace() -> TraceDump {
    let mut dump = TraceDump::default();
    for shard in trace_shards() {
        let mut s = shard.lock().expect("trace shard");
        dump.events.append(&mut s.events);
        dump.dropped += s.dropped;
        s.dropped = 0;
    }
    dump.events.sort_by_key(|e| (e.ts_us, e.tid));
    dump
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serializes a [`TraceDump`] as Chrome trace-event JSON (the
/// "JSON object format"): open the result in Perfetto
/// (<https://ui.perfetto.dev>) or chrome://tracing. Instant events carry
/// thread scope (`"s":"t"`); the drop count, when nonzero, is recorded
/// under `otherData`.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(64 + dump.events.len() * 80);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in dump.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json_into(&e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json_into(e.cat, &mut out);
        out.push_str("\",\"ph\":\"");
        out.push(e.ph);
        out.push_str("\",\"ts\":");
        out.push_str(&e.ts_us.to_string());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        if e.ph == 'i' {
            out.push_str(",\"s\":\"t\"");
        }
        out.push('}');
    }
    out.push_str("],\"otherData\":{\"droppedEvents\":");
    out.push_str(&dump.dropped.to_string());
    out.push_str("}}");
    out
}

// ----------------------------------------------------------- time series

/// A named gauge sampled over an experiment's own x-axis (orbital time,
/// snapshot index): each [`TimeSeries::sample`] appends one `(x, value)`
/// point.
///
/// Two kinds, fixed at registration:
///
/// * **work** series (`timing == false`) record deterministic functions
///   of the work done — gated like counters ([`metrics_enabled`]) and
///   sampled only from sequential fold loops (one point per
///   snapshot/tick on the main thread), so dumps are byte-identical
///   across thread counts;
/// * **timing** series (`timing == true`) record wall-clock readings —
///   gated like spans ([`spans_enabled`]) and excluded from determinism
///   comparisons.
pub struct TimeSeries {
    name: &'static str,
    timing: bool,
    points: Mutex<Vec<(f64, f64)>>,
}

impl TimeSeries {
    /// The series registered under `name`, creating it on first use.
    /// The `timing` kind is fixed by whichever registration ran first.
    pub fn register(name: &'static str, timing: bool) -> &'static TimeSeries {
        let mut list = registry().series.lock().expect("series registry");
        if let Some(s) = list.iter().find(|s| s.name == name) {
            debug_assert_eq!(
                s.timing, timing,
                "time series {name:?} re-registered with a different kind"
            );
            return s;
        }
        let s: &'static TimeSeries = Box::leak(Box::new(TimeSeries {
            name,
            timing,
            points: Mutex::new(Vec::new()),
        }));
        list.push(s);
        s
    }

    /// The series' registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// True when this series records wall-clock readings (gated like
    /// spans, excluded from determinism checks).
    pub fn is_timing(&self) -> bool {
        self.timing
    }

    /// Appends one `(x, value)` point when the series' gate is open
    /// ([`metrics_enabled`] for work series, [`spans_enabled`] for
    /// timing series); a load + branch otherwise.
    #[inline]
    pub fn sample(&self, x: f64, value: f64) {
        let on = if self.timing {
            spans_enabled()
        } else {
            metrics_enabled()
        };
        if on {
            self.points.lock().expect("time series").push((x, value));
        }
    }

    /// Copies the recorded points into an immutable dump.
    pub fn dump(&self) -> TimeSeriesDump {
        TimeSeriesDump {
            name: self.name.to_string(),
            timing: self.timing,
            points: self.points.lock().expect("time series").clone(),
        }
    }

    fn reset(&self) {
        self.points.lock().expect("time series").clear();
    }
}

/// An immutable copy of one time series' points, in sample order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesDump {
    /// Registered series name.
    pub name: String,
    /// True for wall-clock series (see [`TimeSeries::is_timing`]).
    pub timing: bool,
    /// `(x, value)` points in the order sampled.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeriesDump {
    /// Largest sampled value, `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Arithmetic mean of the sampled values, `None` when empty.
    pub fn mean_value(&self) -> Option<f64> {
        (!self.points.is_empty())
            .then(|| self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }
}

// ----------------------------------------------------------------- dumps

/// One non-empty histogram bucket: `lo <= sample < hi`, `count` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (`INFINITY` for the overflow tail).
    pub hi: f64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

impl Bucket {
    /// The bucket's representative value: the geometric midpoint for
    /// regular buckets, the finite edge for the tails.
    pub fn mid(&self) -> f64 {
        if self.lo == 0.0 {
            self.hi
        } else if self.hi.is_infinite() {
            self.lo
        } else {
            (self.lo * self.hi).sqrt()
        }
    }
}

/// An immutable fold of one histogram: sparse non-empty buckets in
/// ascending order, total count, and exact sum. Mergeable — dumps of the
/// same metric from different runs or processes can be added.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDump {
    /// Registered metric name.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: f64,
    /// Non-empty buckets, ascending by `lo`.
    pub buckets: Vec<Bucket>,
}

impl HistogramDump {
    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Lower edge of the lowest non-empty bucket (a lower bound on the
    /// true minimum), `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.buckets.first().map(|b| b.lo)
    }

    /// Upper edge of the highest non-empty bucket (an upper bound on the
    /// true maximum), `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.hi)
    }

    /// The `q`-quantile over the bucket representatives, `None` when the
    /// dump is empty or `q` is NaN. Accurate to one bucket width
    /// (≲ 19 %).
    ///
    /// The rule is **nearest rank**: with `q` clamped to `[0, 1]` and
    /// `n = count`, the answer is the [`Bucket::mid`] of the bucket
    /// holding sample number `max(1, ceil(q·n))` in ascending order. So
    /// `q = 0` is the lowest non-empty bucket's representative, `q = 1`
    /// the highest, a single-bucket dump answers that bucket's `mid` for
    /// every `q`, and the result is monotone non-decreasing in `q` (the
    /// rank is monotone and buckets ascend).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.mid());
            }
        }
        self.buckets.last().map(Bucket::mid)
    }

    /// Adds `other`'s samples into this dump. Bucket edges come from the
    /// shared bucketing scheme, so alignment is by `lo`.
    ///
    /// # Panics
    /// Panics when the dumps are of different metrics.
    pub fn merge(&mut self, other: &HistogramDump) {
        assert_eq!(self.name, other.name, "merging different histograms");
        let mut merged: Vec<Bucket> = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let take_self = j >= other.buckets.len()
                || (i < self.buckets.len() && self.buckets[i].lo <= other.buckets[j].lo);
            let b = if take_self {
                let b = self.buckets[i].clone();
                i += 1;
                b
            } else {
                let b = other.buckets[j].clone();
                j += 1;
                b
            };
            match merged.last_mut() {
                Some(last) if last.lo == b.lo => last.count += b.count,
                _ => merged.push(b),
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A point-in-time fold of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSnapshot {
    /// `(name, total)` per registered counter.
    pub counters: Vec<(String, u64)>,
    /// One dump per registered histogram.
    pub histograms: Vec<HistogramDump>,
    /// One dump per registered time series.
    pub series: Vec<TimeSeriesDump>,
}

/// Folds every registered counter and histogram into a snapshot. Metrics
/// register on first use, so a snapshot taken before any instrumented
/// code ran is empty.
pub fn snapshot() -> ObsSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|c| (c.name.to_string(), c.value()))
        .collect();
    counters.sort();
    let mut histograms: Vec<HistogramDump> = reg
        .histograms
        .lock()
        .expect("histogram registry")
        .iter()
        .map(|h| h.dump())
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut series: Vec<TimeSeriesDump> = reg
        .series
        .lock()
        .expect("series registry")
        .iter()
        .map(|s| s.dump())
        .collect();
    series.sort_by(|a, b| a.name.cmp(&b.name));
    ObsSnapshot {
        counters,
        histograms,
        series,
    }
}

/// Zeroes every registered counter, histogram, and time series
/// (registration is kept), and discards any buffered trace events.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").iter() {
        c.reset();
    }
    for h in reg.histograms.lock().expect("histogram registry").iter() {
        h.reset();
    }
    for s in reg.series.lock().expect("series registry").iter() {
        s.reset();
    }
    let _ = take_trace();
}

// ---------------------------------------------------------------- macros

/// The `&'static Counter` named by the literal, interned per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Counter::register($name))
    }};
}

/// The `&'static Histogram` named by the literal, interned per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Histogram::register($name))
    }};
}

/// A scoped [`Span`] timer recording seconds into the named histogram;
/// bind it (`let _span = span!("phase");`) so it drops at scope end.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::histogram!($name).span()
    };
}

/// The `&'static TimeSeries` (work kind) named by the literal, interned
/// per call site.
#[macro_export]
macro_rules! timeseries {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::TimeSeries> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::TimeSeries::register($name, false))
    }};
}

/// The `&'static TimeSeries` (wall-clock timing kind) named by the
/// literal, interned per call site.
#[macro_export]
macro_rules! timeseries_wall {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::TimeSeries> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::TimeSeries::register($name, true))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Level is process-global; tests that flip it serialize here so the
    /// parallel runner cannot interleave them.
    fn with_level<R>(l: Level, f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let prev = level();
        set_level(l);
        let r = f();
        set_level(prev);
        r
    }

    #[test]
    fn level_parsing_is_pure() {
        assert_eq!(level_from(None), Level::Off);
        assert_eq!(level_from(Some("")), Level::Off);
        assert_eq!(level_from(Some("0")), Level::Off);
        assert_eq!(level_from(Some("off")), Level::Off);
        assert_eq!(level_from(Some("1")), Level::Metrics);
        assert_eq!(level_from(Some("metrics")), Level::Metrics);
        assert_eq!(level_from(Some("2")), Level::Full);
        assert_eq!(level_from(Some("full")), Level::Full);
        assert_eq!(level_from(Some("3")), Level::Trace);
        assert_eq!(level_from(Some("trace")), Level::Trace);
        assert_eq!(level_from(Some(" 1 ")), Level::Metrics);
        assert_eq!(level_from(Some("nonsense")), Level::Off);
    }

    #[test]
    fn level_from_checked_flags_typos() {
        for ok in [
            None,
            Some(""),
            Some("0"),
            Some("off"),
            Some("1"),
            Some("metrics"),
            Some("2"),
            Some("full"),
            Some("3"),
            Some("trace"),
            Some(" trace "),
        ] {
            assert!(level_from_checked(ok).1, "value {ok:?} flagged as typo");
        }
        for bad in [Some("ful"), Some("4"), Some("tracing"), Some("on")] {
            let (l, recognized) = level_from_checked(bad);
            assert_eq!(l, Level::Off, "value {bad:?}");
            assert!(!recognized, "value {bad:?} not flagged");
        }
    }

    #[test]
    fn disabled_counter_records_nothing() {
        with_level(Level::Off, || {
            let c = Counter::register("test.disabled");
            let before = c.value();
            c.add(42);
            c.incr();
            assert_eq!(c.value(), before);
        });
    }

    #[test]
    fn counter_sums_across_threads() {
        with_level(Level::Metrics, || {
            let c = Counter::register("test.threads");
            c.reset();
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..1000 {
                            c.incr();
                        }
                    });
                }
            });
            assert_eq!(c.value(), 8000);
        });
    }

    #[test]
    fn registration_deduplicates_by_name() {
        let a = Counter::register("test.dedupe");
        let b = Counter::register("test.dedupe");
        assert!(std::ptr::eq(a, b));
        let h1 = Histogram::register("test.hdedupe");
        let h2 = Histogram::register("test.hdedupe");
        assert!(std::ptr::eq(h1, h2));
    }

    #[test]
    fn macro_handles_are_interned() {
        let a = counter!("test.macro");
        let b = counter!("test.macro");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_ordered() {
        // Slot mapping is monotone and brackets every positive sample.
        let mut prev = 0;
        for &v in &[1e-30, 1e-3, 0.5, 1.0, 1.5, 2.0, 100.0, 1e12] {
            let s = slot_of(v);
            assert!(s >= prev, "slot({v}) = {s} not monotone");
            prev = s;
            if s != UNDERFLOW && s != OVERFLOW {
                assert!(bucket_lo(s) <= v && v < bucket_hi(s), "{v} outside bucket");
            }
        }
        assert_eq!(slot_of(0.0), UNDERFLOW);
        assert_eq!(slot_of(f64::INFINITY), OVERFLOW);
        assert_eq!(slot_of(1e300), OVERFLOW);
    }

    #[test]
    fn histogram_quantiles_are_bucket_accurate() {
        with_level(Level::Metrics, || {
            let h = Histogram::register("test.quantiles");
            h.reset();
            for i in 1..=1000 {
                h.record(i as f64);
            }
            let d = h.dump();
            assert_eq!(d.count, 1000);
            assert!((d.sum - 500_500.0).abs() < 1e-6);
            let p50 = d.quantile(0.5).unwrap();
            assert!((400.0..700.0).contains(&p50), "p50 {p50}");
            let p99 = d.quantile(0.99).unwrap();
            assert!((800.0..1400.0).contains(&p99), "p99 {p99}");
            assert!(d.min().unwrap() <= 1.0);
            assert!(d.max().unwrap() >= 1000.0);
            assert!((d.mean().unwrap() - 500.5).abs() < 1e-6);
        });
    }

    #[test]
    fn histogram_dump_merge_matches_combined_recording() {
        with_level(Level::Metrics, || {
            let a = Histogram::register("test.merge.a");
            let b = Histogram::register("test.merge.b");
            let both = Histogram::register("test.merge.both");
            a.reset();
            b.reset();
            both.reset();
            for i in 1..=100 {
                let v = (i as f64) * 0.37;
                if i % 2 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
                both.record(v);
            }
            let mut merged = a.dump();
            let mut other = b.dump();
            // Rename so merge's same-metric check passes; the bucket
            // layout is scheme-global, not per-histogram.
            merged.name = "m".into();
            other.name = "m".into();
            merged.merge(&other);
            let combined = both.dump();
            assert_eq!(merged.count, combined.count);
            assert!((merged.sum - combined.sum).abs() < 1e-9);
            let merged_counts: Vec<(u64, u64)> = merged
                .buckets
                .iter()
                .map(|bk| (bk.lo.to_bits(), bk.count))
                .collect();
            let combined_counts: Vec<(u64, u64)> = combined
                .buckets
                .iter()
                .map(|bk| (bk.lo.to_bits(), bk.count))
                .collect();
            assert_eq!(merged_counts, combined_counts);
        });
    }

    #[test]
    fn span_records_only_at_full_level() {
        let h = Histogram::register("test.span");
        with_level(Level::Metrics, || {
            h.reset();
            h.time(|| std::hint::black_box(1 + 1));
            assert_eq!(h.dump().count, 0, "spans must stay off at Metrics");
        });
        with_level(Level::Full, || {
            h.reset();
            h.time(|| std::hint::black_box(1 + 1));
            assert_eq!(h.dump().count, 1);
            assert!(h.dump().sum >= 0.0);
        });
        with_level(Level::Trace, || {
            h.reset();
            h.time(|| std::hint::black_box(1 + 1));
            assert_eq!(h.dump().count, 1, "trace level must keep spans on");
            let _ = take_trace();
        });
    }

    #[test]
    fn quantile_edges_are_pinned() {
        with_level(Level::Metrics, || {
            let h = Histogram::register("test.quantile.edges");
            h.reset();
            for i in 1..=100 {
                h.record(i as f64);
            }
            let d = h.dump();
            // q = 0 is the lowest bucket's representative, q = 1 the
            // highest; out-of-range q clamps to the same answers.
            assert_eq!(d.quantile(0.0), Some(d.buckets.first().unwrap().mid()));
            assert_eq!(d.quantile(1.0), Some(d.buckets.last().unwrap().mid()));
            assert_eq!(d.quantile(-3.0), d.quantile(0.0));
            assert_eq!(d.quantile(7.0), d.quantile(1.0));
            assert_eq!(d.quantile(f64::NAN), None);

            // Single-bucket dump: every q answers that bucket's mid.
            let h1 = Histogram::register("test.quantile.single");
            h1.reset();
            for _ in 0..5 {
                h1.record(3.0);
            }
            let d1 = h1.dump();
            assert_eq!(d1.buckets.len(), 1);
            let mid = d1.buckets[0].mid();
            for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
                assert_eq!(d1.quantile(q), Some(mid), "q = {q}");
            }

            // Empty dump: always None.
            let h0 = Histogram::register("test.quantile.empty");
            h0.reset();
            assert_eq!(h0.dump().quantile(0.5), None);
        });
    }

    #[test]
    fn timeseries_gating_follows_the_level() {
        let work = TimeSeries::register("test.series.work", false);
        let wall = TimeSeries::register("test.series.wall", true);
        with_level(Level::Off, || {
            work.reset();
            wall.reset();
            work.sample(0.0, 1.0);
            wall.sample(0.0, 1.0);
            assert!(work.dump().points.is_empty());
            assert!(wall.dump().points.is_empty());
        });
        with_level(Level::Metrics, || {
            work.reset();
            wall.reset();
            work.sample(1.0, 2.0);
            wall.sample(1.0, 2.0);
            assert_eq!(work.dump().points, vec![(1.0, 2.0)]);
            assert!(
                wall.dump().points.is_empty(),
                "timing series must stay off at Metrics"
            );
        });
        with_level(Level::Full, || {
            work.reset();
            wall.reset();
            work.sample(2.0, 3.0);
            wall.sample(2.0, 3.0);
            assert_eq!(work.dump().points, vec![(2.0, 3.0)]);
            assert_eq!(wall.dump().points, vec![(2.0, 3.0)]);
        });
    }

    #[test]
    fn timeseries_register_deduplicates_and_snapshots() {
        with_level(Level::Metrics, || {
            let a = timeseries!("test.series.dedupe");
            let b = TimeSeries::register("test.series.dedupe", false);
            assert!(std::ptr::eq(a, b));
            a.reset();
            a.sample(0.0, 10.0);
            a.sample(60.0, 12.0);
            let snap = snapshot();
            let d = snap
                .series
                .iter()
                .find(|s| s.name == "test.series.dedupe")
                .expect("series registered");
            assert!(!d.timing);
            assert_eq!(d.points, vec![(0.0, 10.0), (60.0, 12.0)]);
            assert_eq!(d.max_value(), Some(12.0));
            assert_eq!(d.mean_value(), Some(11.0));
            let names: Vec<&String> = snap.series.iter().map(|s| &s.name).collect();
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted, "snapshot series must be name-sorted");
            reset();
            assert!(a.dump().points.is_empty());
        });
    }

    #[test]
    fn trace_scopes_balance_and_drain() {
        with_level(Level::Trace, || {
            let _ = take_trace(); // drain anything earlier tests left
            {
                let _outer = trace_scope("outer", "phase");
                trace_instant("tick");
                let _inner = trace_scope("inner", "span");
            }
            let dump = take_trace();
            assert_eq!(dump.dropped, 0);
            let phases: Vec<(char, &str)> = dump
                .events
                .iter()
                .map(|e| (e.ph, e.name.as_ref()))
                .collect();
            assert_eq!(
                phases,
                vec![
                    ('B', "outer"),
                    ('i', "tick"),
                    ('B', "inner"),
                    ('E', "inner"),
                    ('E', "outer"),
                ]
            );
            // All on one thread: one tid, timestamps non-decreasing.
            let tid = dump.events[0].tid;
            assert!(dump.events.iter().all(|e| e.tid == tid));
            assert!(dump.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
            // A second take is empty: the drain consumed the buffers.
            assert!(take_trace().events.is_empty());
        });
    }

    #[test]
    fn trace_is_inert_below_trace_level() {
        with_level(Level::Full, || {
            let _ = take_trace();
            {
                let _s = trace_scope("quiet", "span");
                trace_instant("quiet.mark");
            }
            let h = Histogram::register("test.trace.span");
            h.time(|| ());
            assert!(
                take_trace().events.is_empty(),
                "Full level must not buffer trace events"
            );
        });
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let dump = TraceDump {
            events: vec![
                TraceEvent {
                    name: Cow::Borrowed("a \"quoted\"\nname"),
                    cat: "phase",
                    ph: 'B',
                    ts_us: 0,
                    tid: 1,
                },
                TraceEvent {
                    name: Cow::Borrowed("mark"),
                    cat: "mark",
                    ph: 'i',
                    ts_us: 5,
                    tid: 1,
                },
                TraceEvent {
                    name: Cow::Borrowed("a \"quoted\"\nname"),
                    cat: "phase",
                    ph: 'E',
                    ts_us: 9,
                    tid: 1,
                },
            ],
            dropped: 2,
        };
        let json = chrome_trace_json(&dump);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("a \\\"quoted\\\"\\u000aname"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"i\",") || json.contains("\"s\":\"t\""));
        assert!(json.contains("\"droppedEvents\":2"));
        // Balanced quotes and braces — a cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    proptest::proptest! {
        /// The nearest-rank rule makes quantiles monotone non-decreasing
        /// in q, over an arbitrary positive sample set.
        #[test]
        fn prop_quantiles_are_monotone_in_q(
            samples in proptest::collection::vec(1e-6..1e6f64, 1..64),
            qa in 0.0..1.0f64,
            qb in 0.0..1.0f64,
        ) {
            let mut folded = vec![0u64; SLOTS];
            let mut sum = 0.0;
            for &v in &samples {
                folded[slot_of(v)] += 1;
                sum += v;
            }
            // Build the dump directly from the shared bucketing scheme,
            // sidestepping the process-global level and registry.
            let buckets: Vec<Bucket> = folded
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(idx, &count)| Bucket {
                    lo: bucket_lo(idx),
                    hi: bucket_hi(idx),
                    count,
                })
                .collect();
            let d = HistogramDump {
                name: "prop".into(),
                count: samples.len() as u64,
                sum,
                buckets,
            };
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            let vlo = d.quantile(lo).unwrap();
            let vhi = d.quantile(hi).unwrap();
            proptest::prop_assert!(
                vlo <= vhi,
                "quantile({lo}) = {vlo} > quantile({hi}) = {vhi}"
            );
            proptest::prop_assert_eq!(d.quantile(0.0).unwrap(), d.buckets.first().unwrap().mid());
            proptest::prop_assert_eq!(d.quantile(1.0).unwrap(), d.buckets.last().unwrap().mid());
        }
    }

    #[test]
    fn trace_capacity_drops_begins_but_never_ends() {
        with_level(Level::Trace, || {
            let _ = take_trace();
            // Saturate this thread's shard with instants, then check a
            // span opened at capacity still closes cleanly (no E without
            // B, no B without E).
            for _ in 0..TRACE_SHARD_CAP {
                trace_instant("fill");
            }
            {
                let _s = trace_scope("late", "span");
            }
            let dump = take_trace();
            assert!(dump.dropped >= 1, "capped pushes must be counted");
            let b = dump.events.iter().filter(|e| e.ph == 'B').count();
            let e = dump.events.iter().filter(|e| e.ph == 'E').count();
            assert_eq!(b, e, "span tree out of balance: {b} begins, {e} ends");
        });
    }

    #[test]
    fn snapshot_and_reset_cover_the_registry() {
        with_level(Level::Metrics, || {
            let c = Counter::register("test.snapshot.counter");
            let h = Histogram::register("test.snapshot.hist");
            c.reset();
            h.reset();
            c.add(7);
            h.record(2.5);
            let snap = snapshot();
            let cv = snap
                .counters
                .iter()
                .find(|(n, _)| n == "test.snapshot.counter")
                .expect("counter registered");
            assert_eq!(cv.1, 7);
            let hv = snap
                .histograms
                .iter()
                .find(|d| d.name == "test.snapshot.hist")
                .expect("histogram registered");
            assert_eq!(hv.count, 1);
            reset();
            assert_eq!(c.value(), 0);
            assert_eq!(h.dump().count, 0);
        });
    }

    #[test]
    fn snapshot_names_are_sorted() {
        let _ = Counter::register("test.zz");
        let _ = Counter::register("test.aa");
        let snap = snapshot();
        let names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
