//! Property suite for the edge workload layer.
//!
//! Three invariant families, mirroring the PR 4 fault-equivalence
//! suite one layer up:
//!
//! - **coverage**: k-replica coverage is always either satisfied or
//!   explicitly reported infeasible — never silently under-replicated,
//!   and never over-filled or duplicated;
//! - **determinism**: scenarios and whole engine runs are pure
//!   functions of their seeds and configs;
//! - **mask equivalence**: candidates on the masked routing path equal
//!   the plain candidates with the masked elements removed, an engine
//!   run with dead satellites never touches them, and an empty fault
//!   plan is indistinguishable from no plan at all.

use leo_constellation::{Constellation, SatId, ShellSpec, WalkerPattern};
use leo_core::InOrbitService;
use leo_edge::replica::cover;
use leo_edge::{
    CoverageReport, EdgeConfig, EdgeEngine, FunctionSpec, QosSpec, ReplicaSets, Scenario,
    ScenarioConfig,
};
use leo_geo::{Angle, Geodetic};
use leo_net::visibility::VisibleSat;
use leo_net::{FailureSchedule, FaultConfig, FaultPlan};
use proptest::prelude::*;

fn small_constellation() -> Constellation {
    Constellation::from_shells(
        "edge-prop",
        vec![ShellSpec {
            name: "shell".into(),
            altitude_m: 550e3,
            inclination: Angle::from_degrees(53.0),
            num_planes: 10,
            sats_per_plane: 10,
            phase_factor: 1,
            pattern: WalkerPattern::Delta,
            min_elevation: Angle::from_degrees(25.0),
        }],
    )
}

fn small_scenario(seed: u64, cells: usize, ticks: usize) -> Scenario {
    Scenario::generate(ScenarioConfig {
        num_cells: cells,
        duration_s: ticks as f64 * 120.0,
        tick_s: 120.0,
        seed,
        flash_crowds: 2,
        ..ScenarioConfig::default()
    })
}

fn edge_config() -> EdgeConfig {
    EdgeConfig {
        slots_per_server: 4,
        qos: QosSpec {
            replicas: 2,
            latency_bound_ms: 16.0,
        },
        threads: 1,
    }
}

fn funcs() -> Vec<FunctionSpec> {
    vec![FunctionSpec {
        max_rtt_ms: 16.0,
        ..FunctionSpec::interactive()
    }]
}

/// Sorted candidate list for one ground point, mirroring the engine's.
fn candidates(service: &InOrbitService, lat: f64, lon: f64, t: f64) -> Vec<VisibleSat> {
    let mut v = service.reachable_servers(Geodetic::ground(lat, lon), t);
    v.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `cover` fills to exactly `min(k, distinct candidates)` with no
    /// duplicates, every pick drawn from the candidate list — so
    /// coverage is satisfied whenever the geometry allows it at all.
    #[test]
    fn coverage_is_satisfied_exactly_when_candidates_suffice(
        k in 1usize..6,
        lat in -55.0f64..55.0,
        lon in -180.0f64..180.0,
        t in 0.0f64..5400.0,
        incumbent_picks in proptest::collection::vec(0u8..255, 0..4),
    ) {
        let service = InOrbitService::new(small_constellation());
        let cands = candidates(&service, lat, lon, t);
        let incumbents: Vec<SatId> = incumbent_picks
            .iter()
            .map(|&p| SatId(u32::from(p) % 100))
            .collect();
        let (set, _) = cover(&incumbents, &cands, k);
        prop_assert_eq!(set.len(), k.min(cands.len()));
        let mut dedup = set.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), set.len(), "no duplicate replicas");
        for id in &set {
            prop_assert!(cands.iter().any(|c| c.id == *id), "replica not a candidate");
        }
    }

    /// `ReplicaSets::maintain` reports every under-filled cell as
    /// `Infeasible` with the exact held/want counts — never a silent
    /// shortfall, and never an infeasible report when coverage held.
    #[test]
    fn maintain_never_hides_a_shortfall(
        k in 1usize..6,
        lat in -80.0f64..80.0,
        t in 0.0f64..5400.0,
    ) {
        let service = InOrbitService::new(small_constellation());
        let cands = vec![candidates(&service, lat, 10.0, t)];
        let mut sets = ReplicaSets::new(1);
        let qos = QosSpec { replicas: k, latency_bound_ms: 16.0 };
        let (reports, stats) = sets.maintain(&cands, &qos);
        match reports[0] {
            CoverageReport::Satisfied => {
                prop_assert_eq!(sets.of(0).len(), k);
                prop_assert_eq!(stats.shortfall_cells, 0);
            }
            CoverageReport::Infeasible { held, want } => {
                prop_assert_eq!(want, k);
                prop_assert_eq!(held, sets.of(0).len());
                prop_assert!(held < k);
                prop_assert_eq!(held, cands[0].len().min(k));
                prop_assert_eq!(stats.shortfall_cells, 1);
            }
        }
    }

    /// A scenario and a full engine run are pure functions of the seed:
    /// regenerating and rerunning yields `==` values (and identical
    /// JSON), while a different seed redraws the flash crowds.
    #[test]
    fn scenario_and_run_are_deterministic_for_a_fixed_seed(
        seed in 0u64..1_000_000,
        cells in 2usize..8,
        ticks in 2usize..5,
    ) {
        let a = small_scenario(seed, cells, ticks);
        let b = small_scenario(seed, cells, ticks);
        prop_assert_eq!(&a, &b);
        let other = small_scenario(seed ^ 0xDEAD_BEEF, cells, ticks);
        prop_assert_eq!(a.cells(), other.cells(), "cells are seed-independent");

        let service = InOrbitService::new(small_constellation());
        let run_a = EdgeEngine::new(&service, &a, funcs(), edge_config()).run();
        let run_b = EdgeEngine::new(&service, &b, funcs(), edge_config()).run();
        prop_assert_eq!(&run_a, &run_b);
        prop_assert_eq!(
            serde_json::to_string(&run_a).unwrap(),
            serde_json::to_string(&run_b).unwrap()
        );
    }

    /// Masked candidate queries equal the plain query with dead
    /// satellites filtered out — the masked path removes exactly the
    /// masked elements and nothing else.
    #[test]
    fn masked_candidates_equal_plain_minus_dead(
        dead_picks in proptest::collection::vec(0u8..255, 0..6),
        lat in -55.0f64..55.0,
        lon in -180.0f64..180.0,
        t in 0.0f64..5400.0,
    ) {
        let constellation = small_constellation();
        let service = InOrbitService::new(constellation);
        let view = service.view(t);
        let mut plan = FaultPlan::empty();
        let dead: Vec<SatId> = dead_picks.iter().map(|&p| SatId(u32::from(p) % 100)).collect();
        for d in &dead {
            plan.kill(*d);
        }
        let ecef = Geodetic::ground(lat, lon).to_ecef_spherical();
        let masked = view.index().query_masked(ecef, &plan);
        let filtered: Vec<VisibleSat> = view
            .index()
            .query(ecef)
            .into_iter()
            .filter(|v| !dead.contains(&v.id))
            .collect();
        prop_assert_eq!(masked, filtered);
    }

    /// An engine run against a service whose satellites die at t=0
    /// never hosts a function or a replica on a dead satellite, and
    /// equals a run where the mask is the only difference — dead
    /// satellites are simply absent, exactly like the PR 4 suite's
    /// masked-element-free graphs.
    #[test]
    fn dead_satellites_never_host_anything(
        dead_picks in proptest::collection::vec(0u8..255, 1..8),
        seed in 0u64..1_000_000,
    ) {
        let constellation = small_constellation();
        let n = constellation.num_satellites();
        let dead: Vec<usize> = dead_picks.iter().map(|&p| usize::from(p) % n).collect();
        let mut deaths = vec![f64::INFINITY; n];
        for &d in &dead {
            deaths[d] = 0.0; // dead before the scenario starts
        }
        let cfg = FaultConfig {
            schedule: Some(FailureSchedule::from_death_times(deaths)),
            ..FaultConfig::none()
        };
        let service = InOrbitService::with_faults(constellation, cfg);
        let scenario = small_scenario(seed, 4, 3);
        let report = EdgeEngine::new(&service, &scenario, funcs(), edge_config()).run();
        // The run reaches its report only because every per-tick
        // candidate head matched `nearest_servers_view` on the masked
        // view; dead hosts would trip the engine's internal assertion.
        // Checksums aside, no tick may count more busy+standby hosts
        // than there are live satellites.
        let alive = (n - dead.iter().collect::<std::collections::HashSet<_>>().len()) as u64;
        for tick in &report.ticks {
            prop_assert!(tick.busy_sats + tick.standby_sats <= alive);
        }
    }

    /// An empty fault plan is byte-indistinguishable from no plan at
    /// all, through the whole engine.
    #[test]
    fn empty_fault_plan_is_invisible(
        seed in 0u64..1_000_000,
        cells in 2usize..6,
    ) {
        let scenario = small_scenario(seed, cells, 3);
        let plain_service = InOrbitService::new(small_constellation());
        let empty_service =
            InOrbitService::with_faults(small_constellation(), FaultConfig::none());
        let plain = EdgeEngine::new(&plain_service, &scenario, funcs(), edge_config()).run();
        let empty = EdgeEngine::new(&empty_service, &scenario, funcs(), edge_config()).run();
        prop_assert_eq!(&plain, &empty);
        prop_assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&empty).unwrap()
        );
    }
}

/// `cover` is idempotent: a second pass over the same candidates
/// changes nothing and fills nothing.
#[test]
fn cover_is_idempotent() {
    let service = InOrbitService::new(leo_constellation::presets::starlink_550_only());
    let cands = candidates(&service, 20.0, 30.0, 0.0);
    assert!(cands.len() >= 2, "geometry sanity");
    let (first, filled_first) = cover(&[], &cands, 2);
    assert_eq!(filled_first, 2);
    let (second, filled_second) = cover(&first, &cands, 2);
    assert_eq!(second, first);
    assert_eq!(filled_second, 0);
}

/// Growing `k` only appends to an existing set — incumbents are never
/// reshuffled by a QoS upgrade.
#[test]
fn raising_k_extends_without_reshuffling() {
    // The sparse 100-sat test shell never shows three servers at once;
    // use the full first-shell preset.
    let service = InOrbitService::new(leo_constellation::presets::starlink_550_only());
    let cands = candidates(&service, 20.0, 30.0, 0.0);
    assert!(cands.len() >= 3, "geometry sanity");
    let (two, _) = cover(&[], &cands, 2);
    let (three, filled) = cover(&two, &cands, 3);
    assert_eq!(&three[..2], &two[..]);
    assert_eq!(filled, 1);
}
