//! # leo-edge
//!
//! The serverless edge workload layer: the constellation operated as a
//! FaaS fleet.
//!
//! The paper's core claim is that a mega-constellation is an
//! under-utilized compute fleet (§4, Figs 4–5: most satellites idle over
//! ocean and desert while demand crowds the cities). Testing that claim
//! needs a *workload*, not just a routing engine. This crate supplies
//! one, in the Komet / QoS-aware-placement mold (see PAPERS.md):
//!
//! * [`scenario`] — deterministic, seedable demand traces: diurnal
//!   demand following city populations (via `leo-cities`), flash
//!   crowds, all a pure function of `(config, seed)`;
//! * [`replica`] — QoS k-replica coverage: every demand cell keeps `k`
//!   warm state replicas within a latency bound, repaired as satellites
//!   set or die (faults arrive through the `leo_net::fault` mask, so
//!   replicas route around outages exactly like the serving layer);
//! * [`placement`] — function placement on the satellite fleet:
//!   cold-start vs warm-start costs, sticky hosts that migrate on
//!   handover, per-satellite capacity from [`leo_core::capacity`];
//! * [`fleet`] — the [`fleet::EdgeEngine`] that drives all three over a
//!   snapshot schedule and reports fleet utilization (busy vs idle
//!   satellite-seconds) — the number that speaks to the paper's
//!   idle-infrastructure question.
//!
//! Everything reported is a pure function of the scenario and the fault
//! plan: thread counts and observability levels change wall-clock,
//! never bytes — the same guarantee the rest of the workspace holds,
//! gated by `tests/edge_pipeline.rs` and the `fig_edge` CI job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod placement;
pub mod replica;
pub mod scenario;

pub use fleet::{EdgeConfig, EdgeEngine, EdgeReport, TickStats};
pub use placement::{FunctionPlacement, FunctionSpec, PlaceStats};
pub use replica::{CoverageReport, MaintainStats, QosSpec, ReplicaSets};
pub use scenario::{DemandCell, FlashCrowd, Scenario, ScenarioConfig};
