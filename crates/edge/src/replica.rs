//! QoS k-replica coverage for demand cells.
//!
//! Pfandzelter's QoS-aware placement question, scaled to our fleet:
//! every demand cell should keep `k` warm state replicas on satellites
//! within a latency bound, so a function can fail over (or warm-start)
//! without hauling state across the constellation. Orbital motion and
//! faults constantly invalidate replicas; [`ReplicaSets::maintain`]
//! repairs the sets each snapshot and counts the repair churn
//! (`edge.replica_repairs`) — itself a cost the paper's idle-fleet
//! pitch has to pay.
//!
//! Candidate lists arrive pre-masked from the engine (built on the
//! `query_masked` routing path), so replicas route around faults
//! exactly like the serving layer: a dead satellite simply never
//! appears as a candidate, and with an empty fault plan the candidates
//! — and therefore the replica sets — are byte-identical to a plain
//! run.

use leo_constellation::SatId;
use leo_net::visibility::VisibleSat;
use serde::{Deserialize, Serialize};

/// QoS requirements for replica coverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Replicas each demand cell must keep in range (`k`).
    pub replicas: usize,
    /// Maximum acceptable RTT from the cell to a replica host, ms.
    pub latency_bound_ms: f64,
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec {
            replicas: 2,
            latency_bound_ms: 12.0,
        }
    }
}

/// Coverage of one cell after maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageReport {
    /// All `k` replicas are hosted within the bound.
    Satisfied,
    /// Only `held` of `want` replicas could be hosted — explicitly
    /// infeasible at this snapshot, never silently under-replicated.
    Infeasible {
        /// Replicas actually held.
        held: usize,
        /// Replicas the QoS spec asks for.
        want: usize,
    },
}

impl CoverageReport {
    /// True when the spec is fully met.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, CoverageReport::Satisfied)
    }
}

/// What one maintenance pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MaintainStats {
    /// Replicas newly hosted to replace ones that set, died, or drifted
    /// out of the latency bound (excludes the very first placement).
    pub repairs: u64,
    /// Replicas placed for the first time (initial fill).
    pub initial_placements: u64,
    /// Cells whose coverage came up short this pass.
    pub shortfall_cells: u64,
}

/// Chooses a replica set for one cell from its (bound-filtered,
/// nearest-first) candidate list, keeping as many incumbents as
/// possible and refilling nearest-first. Pure — the property suite
/// drives this directly.
///
/// Returns the new set plus the number of slots that had to be
/// (re)filled.
pub fn cover(incumbents: &[SatId], candidates: &[VisibleSat], k: usize) -> (Vec<SatId>, usize) {
    // Keep incumbents that are still candidates, in incumbent order, so
    // a stable pass is a no-op (no churn, no repairs).
    let mut set: Vec<SatId> = incumbents
        .iter()
        .filter(|id| candidates.iter().any(|c| c.id == **id))
        .take(k)
        .copied()
        .collect();
    let mut filled = 0;
    for c in candidates {
        if set.len() >= k {
            break;
        }
        if !set.contains(&c.id) {
            set.push(c.id);
            filled += 1;
        }
    }
    (set, filled)
}

/// The per-cell replica sets, maintained across snapshots.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReplicaSets {
    sets: Vec<Vec<SatId>>,
    primed: bool,
}

impl ReplicaSets {
    /// Empty sets for `num_cells` cells; the first
    /// [`ReplicaSets::maintain`] pass does the initial fill.
    pub fn new(num_cells: usize) -> Self {
        ReplicaSets {
            sets: vec![Vec::new(); num_cells],
            primed: false,
        }
    }

    /// The current replica set of a cell (nearest-first at fill time).
    pub fn of(&self, cell: u32) -> &[SatId] {
        &self.sets[cell as usize]
    }

    /// True when `sat` holds a replica for `cell` — a warm-start host.
    pub fn is_replica(&self, cell: u32, sat: SatId) -> bool {
        self.sets[cell as usize].contains(&sat)
    }

    /// All satellites currently holding at least one replica, ascending
    /// and deduplicated (the engine's standby-fleet accounting).
    pub fn hosts(&self) -> Vec<SatId> {
        let mut hosts: Vec<SatId> = self.sets.iter().flatten().copied().collect();
        hosts.sort_by_key(|id| id.0);
        hosts.dedup();
        hosts
    }

    /// One maintenance pass: for each cell, drop replicas whose host is
    /// no longer a candidate (set, died, or drifted past the bound) and
    /// refill nearest-first. `candidates[cell]` must be bound-filtered
    /// and sorted nearest-first; the engine builds it on the masked
    /// routing path so faults are already excluded.
    ///
    /// Returns per-cell coverage plus churn stats. Fills after the
    /// first pass count as repairs ([`leo_obs`] counter
    /// `edge.replica_repairs`); the first pass counts as initial
    /// placement.
    pub fn maintain(
        &mut self,
        candidates: &[Vec<VisibleSat>],
        qos: &QosSpec,
    ) -> (Vec<CoverageReport>, MaintainStats) {
        assert_eq!(
            candidates.len(),
            self.sets.len(),
            "one candidate list per cell"
        );
        let mut stats = MaintainStats::default();
        let reports: Vec<CoverageReport> = self
            .sets
            .iter_mut()
            .zip(candidates)
            .map(|(set, cands)| {
                let (next, filled) = cover(set, cands, qos.replicas);
                *set = next;
                if self.primed {
                    stats.repairs += filled as u64;
                    leo_obs::counter!("edge.replica_repairs").add(filled as u64);
                } else {
                    stats.initial_placements += filled as u64;
                }
                if set.len() >= qos.replicas {
                    CoverageReport::Satisfied
                } else {
                    stats.shortfall_cells += 1;
                    CoverageReport::Infeasible {
                        held: set.len(),
                        want: qos.replicas,
                    }
                }
            })
            .collect();
        self.primed = true;
        (reports, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vis(id: u32, range_m: f64) -> VisibleSat {
        VisibleSat {
            id: SatId(id),
            range_m,
        }
    }

    #[test]
    fn cover_fills_nearest_first() {
        let cands = vec![vis(3, 100.0), vis(7, 200.0), vis(1, 300.0)];
        let (set, filled) = cover(&[], &cands, 2);
        assert_eq!(set, vec![SatId(3), SatId(7)]);
        assert_eq!(filled, 2);
    }

    #[test]
    fn cover_keeps_incumbents_over_nearer_newcomers() {
        // Incumbent 1 is the farthest candidate, but replica state is
        // sticky: no churn while the bound still holds.
        let cands = vec![vis(3, 100.0), vis(7, 200.0), vis(1, 300.0)];
        let (set, filled) = cover(&[SatId(1), SatId(7)], &cands, 2);
        assert_eq!(set, vec![SatId(1), SatId(7)]);
        assert_eq!(filled, 0);
    }

    #[test]
    fn cover_replaces_vanished_incumbents() {
        let cands = vec![vis(3, 100.0), vis(7, 200.0)];
        let (set, filled) = cover(&[SatId(9), SatId(7)], &cands, 2);
        assert_eq!(set, vec![SatId(7), SatId(3)]);
        assert_eq!(filled, 1);
    }

    #[test]
    fn cover_reports_underfill_when_candidates_run_out() {
        let cands = vec![vis(3, 100.0)];
        let (set, filled) = cover(&[], &cands, 3);
        assert_eq!(set, vec![SatId(3)]);
        assert_eq!(filled, 1);
    }

    #[test]
    fn maintain_counts_initial_fill_separately_from_repairs() {
        let qos = QosSpec {
            replicas: 2,
            latency_bound_ms: 12.0,
        };
        let mut sets = ReplicaSets::new(1);
        let round1 = vec![vec![vis(1, 100.0), vis(2, 200.0), vis(3, 300.0)]];
        let (reports, stats) = sets.maintain(&round1, &qos);
        assert!(reports[0].is_satisfied());
        assert_eq!(stats.initial_placements, 2);
        assert_eq!(stats.repairs, 0);
        // Satellite 1 sets; the repair draws the next-nearest newcomer.
        let round2 = vec![vec![vis(2, 150.0), vis(3, 250.0)]];
        let (reports, stats) = sets.maintain(&round2, &qos);
        assert!(reports[0].is_satisfied());
        assert_eq!(stats.initial_placements, 0);
        assert_eq!(stats.repairs, 1);
        assert_eq!(sets.of(0), &[SatId(2), SatId(3)]);
    }

    #[test]
    fn maintain_reports_infeasible_cells_explicitly() {
        let qos = QosSpec {
            replicas: 3,
            latency_bound_ms: 12.0,
        };
        let mut sets = ReplicaSets::new(2);
        let cands = vec![vec![vis(1, 100.0)], vec![]];
        let (reports, stats) = sets.maintain(&cands, &qos);
        assert_eq!(reports[0], CoverageReport::Infeasible { held: 1, want: 3 });
        assert_eq!(reports[1], CoverageReport::Infeasible { held: 0, want: 3 });
        assert_eq!(stats.shortfall_cells, 2);
    }

    #[test]
    fn hosts_are_sorted_and_deduplicated() {
        let qos = QosSpec {
            replicas: 2,
            latency_bound_ms: 12.0,
        };
        let mut sets = ReplicaSets::new(2);
        let cands = vec![
            vec![vis(9, 100.0), vis(2, 200.0)],
            vec![vis(2, 120.0), vis(9, 130.0)],
        ];
        sets.maintain(&cands, &qos);
        assert_eq!(sets.hosts(), vec![SatId(2), SatId(9)]);
        assert!(sets.is_replica(0, SatId(9)));
        assert!(!sets.is_replica(0, SatId(5)));
    }
}
