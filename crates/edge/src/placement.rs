//! Sticky function placement on the satellite fleet.
//!
//! Komet's central cost model: a function invocation is cheap when its
//! host is *warm* (code and state already resident) and expensive when
//! it must *cold-start* (ship code, hydrate state). On a LEO fleet the
//! hosts themselves move, so even a perfectly sticky placement is
//! forced to migrate when its satellite sets below the horizon or dies
//! — the FaaS analogue of the session-layer handover.
//!
//! Policy per cell×function each tick, in deterministic order:
//!
//! 1. **Stay** — the previous host is still a candidate (visible, in
//!    RTT bound, not fault-masked) and its slots can be re-reserved via
//!    [`leo_core::capacity::CapacityPool::try_reserve`]: warm, free.
//! 2. **Migrate** — otherwise prefer the nearest candidate already
//!    holding the cell's state replica (*warm* start — the whole point
//!    of the QoS replica layer), falling back to the nearest candidate
//!    with free slots (*cold* start, `edge.cold_starts`). Either way
//!    counts as a migration (`edge.migrations`).
//! 3. **Unserved** — no candidate has capacity (or none is in range);
//!    the function is down for this tick and will cold-start wherever
//!    it lands next, replica hosts excepted.

use crate::replica::ReplicaSets;
use leo_constellation::SatId;
use leo_core::capacity::CapacityPool;
use leo_net::visibility::VisibleSat;
use serde::{Deserialize, Serialize};

/// A function class deployed at every demand cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Function name (for reports).
    pub name: String,
    /// Slots one instance occupies on its host.
    pub slots: u32,
    /// Maximum acceptable RTT from the cell to the host, ms.
    pub max_rtt_ms: f64,
    /// Cost of a cold start, ms (code ship + state hydration).
    pub cold_start_ms: f64,
    /// Cost of a warm start on a replica host, ms.
    pub warm_start_ms: f64,
}

impl FunctionSpec {
    /// A small latency-sensitive function — the paper's gaming/telemetry
    /// class.
    pub fn interactive() -> Self {
        FunctionSpec {
            name: "interactive".into(),
            slots: 1,
            max_rtt_ms: 12.0,
            cold_start_ms: 450.0,
            warm_start_ms: 8.0,
        }
    }

    /// A heavier batch-ish function with a looser bound.
    pub fn analytics() -> Self {
        FunctionSpec {
            name: "analytics".into(),
            slots: 2,
            max_rtt_ms: 16.0,
            cold_start_ms: 1200.0,
            warm_start_ms: 20.0,
        }
    }
}

/// What one placement tick did across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlaceStats {
    /// Instances that stayed on their previous host.
    pub stays: u64,
    /// Instances that moved hosts (`edge.migrations`; includes first
    /// placements, which migrate from "nowhere").
    pub migrations: u64,
    /// Migrations that cold-started (`edge.cold_starts`).
    pub cold_starts: u64,
    /// Migrations that warm-started on a replica host.
    pub warm_starts: u64,
    /// Instances left unserved this tick.
    pub unserved: u64,
    /// Total start latency paid this tick, ms.
    pub start_latency_ms: f64,
}

/// The sticky host table: one optional host per cell × function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionPlacement {
    /// `hosts[cell][func]`.
    hosts: Vec<Vec<Option<SatId>>>,
}

impl FunctionPlacement {
    /// An empty placement for `num_cells` cells × `num_functions`
    /// function classes; every instance cold-starts on first placement
    /// unless it lands on a replica host.
    pub fn new(num_cells: usize, num_functions: usize) -> Self {
        FunctionPlacement {
            hosts: vec![vec![None; num_functions]; num_cells],
        }
    }

    /// The current host of a cell's function instance.
    pub fn host(&self, cell: u32, func: usize) -> Option<SatId> {
        self.hosts[cell as usize][func]
    }

    /// Satellites hosting at least one function instance, ascending and
    /// deduplicated — the engine's busy-fleet accounting.
    pub fn busy_hosts(&self) -> Vec<SatId> {
        let mut hosts: Vec<SatId> = self.hosts.iter().flatten().flatten().copied().collect();
        hosts.sort_by_key(|id| id.0);
        hosts.dedup();
        hosts
    }

    /// One placement tick. `candidates[cell]` must be bound-filtered by
    /// the *loosest* function bound, sorted nearest-first, and built on
    /// the masked routing path; per-function RTT bounds are re-checked
    /// here. `pool` carries this tick's capacity; `replicas` decides
    /// warm vs cold on migration.
    ///
    /// Cells and functions are visited in index order, so placement is a
    /// pure function of its inputs — thread counts never reorder it.
    pub fn tick(
        &mut self,
        candidates: &[Vec<VisibleSat>],
        functions: &[FunctionSpec],
        pool: &mut CapacityPool<'_>,
        replicas: &ReplicaSets,
    ) -> PlaceStats {
        assert_eq!(
            candidates.len(),
            self.hosts.len(),
            "one candidate list per cell"
        );
        let mut stats = PlaceStats::default();
        for (cell, cell_hosts) in self.hosts.iter_mut().enumerate() {
            let cands = &candidates[cell];
            for (func, spec) in functions.iter().enumerate() {
                let in_bound = |id: SatId| {
                    cands
                        .iter()
                        .any(|c| c.id == id && c.rtt_ms() <= spec.max_rtt_ms)
                };
                // 1. Stay warm on the incumbent when it is still in
                //    bound and still has room.
                if let Some(prev) = cell_hosts[func] {
                    if in_bound(prev) && pool.try_reserve(prev, spec.slots) {
                        stats.stays += 1;
                        continue;
                    }
                }
                // 2. Migrate: warm replica hosts first (nearest-first),
                //    then any in-bound candidate. A failed try_reserve
                //    holds nothing, so the fallback pass is safe.
                let next = cands
                    .iter()
                    .filter(|c| {
                        c.rtt_ms() <= spec.max_rtt_ms && replicas.is_replica(cell as u32, c.id)
                    })
                    .find(|c| pool.try_reserve(c.id, spec.slots))
                    .or_else(|| {
                        cands
                            .iter()
                            .filter(|c| {
                                c.rtt_ms() <= spec.max_rtt_ms
                                    && !replicas.is_replica(cell as u32, c.id)
                            })
                            .find(|c| pool.try_reserve(c.id, spec.slots))
                    });
                match next {
                    Some(c) => {
                        stats.migrations += 1;
                        leo_obs::counter!("edge.migrations").incr();
                        if replicas.is_replica(cell as u32, c.id) {
                            stats.warm_starts += 1;
                            stats.start_latency_ms += spec.warm_start_ms;
                        } else {
                            stats.cold_starts += 1;
                            leo_obs::counter!("edge.cold_starts").incr();
                            stats.start_latency_ms += spec.cold_start_ms;
                        }
                        cell_hosts[func] = Some(c.id);
                    }
                    None => {
                        stats.unserved += 1;
                        cell_hosts[func] = None;
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::QosSpec;
    use leo_constellation::presets;
    use leo_core::InOrbitService;
    use leo_geo::Geodetic;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_550_only())
    }

    fn candidates(s: &InOrbitService, t: f64, max_rtt_ms: f64) -> Vec<Vec<VisibleSat>> {
        let mut c = s.reachable_servers(Geodetic::ground(10.0, 10.0), t);
        c.retain(|v| v.rtt_ms() <= max_rtt_ms);
        c.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
        vec![c]
    }

    #[test]
    fn first_placement_cold_starts_on_the_nearest_host() {
        let s = service();
        let cands = candidates(&s, 0.0, 16.0);
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let mut placement = FunctionPlacement::new(1, 1);
        let funcs = vec![FunctionSpec::interactive()];
        let stats = placement.tick(&cands, &funcs, &mut pool, &ReplicaSets::new(1));
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.cold_starts, 1);
        assert_eq!(stats.warm_starts, 0);
        assert_eq!(placement.host(0, 0), Some(cands[0][0].id));
        assert_eq!(stats.start_latency_ms, funcs[0].cold_start_ms);
    }

    #[test]
    fn second_tick_stays_warm_on_the_same_snapshot() {
        let s = service();
        let cands = candidates(&s, 0.0, 16.0);
        let funcs = vec![FunctionSpec::interactive()];
        let mut placement = FunctionPlacement::new(1, 1);
        let replicas = ReplicaSets::new(1);
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        placement.tick(&cands, &funcs, &mut pool, &replicas);
        let host = placement.host(0, 0);
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let stats = placement.tick(&cands, &funcs, &mut pool, &replicas);
        assert_eq!(stats.stays, 1);
        assert_eq!(stats.migrations, 0);
        assert_eq!(placement.host(0, 0), host, "sticky host");
    }

    #[test]
    fn migration_to_a_replica_host_is_a_warm_start() {
        let s = service();
        let cands = candidates(&s, 0.0, 16.0);
        let funcs = vec![FunctionSpec::interactive()];
        // Prime the replica set with the nearest candidates, then force a
        // migration by starting with no incumbent.
        let mut replicas = ReplicaSets::new(1);
        replicas.maintain(&cands, &QosSpec::default());
        let mut placement = FunctionPlacement::new(1, 1);
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let stats = placement.tick(&cands, &funcs, &mut pool, &replicas);
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.warm_starts, 1);
        assert_eq!(stats.cold_starts, 0);
        assert_eq!(stats.start_latency_ms, funcs[0].warm_start_ms);
    }

    #[test]
    fn exhausted_fleet_leaves_instances_unserved() {
        let s = service();
        let cands = candidates(&s, 0.0, 16.0);
        let n = cands[0].len();
        // One slot per server, and more single-slot functions than servers.
        let funcs: Vec<FunctionSpec> = (0..n + 3)
            .map(|i| FunctionSpec {
                name: format!("f{i}"),
                ..FunctionSpec::interactive()
            })
            .collect();
        let mut placement = FunctionPlacement::new(1, funcs.len());
        let mut pool = CapacityPool::new(&s, 0.0, 1);
        let stats = placement.tick(&cands, &funcs, &mut pool, &ReplicaSets::new(1));
        assert_eq!(stats.migrations as usize, n);
        assert_eq!(stats.unserved as usize, 3);
        assert_eq!(placement.busy_hosts().len(), n);
        assert_eq!(placement.host(0, n + 1), None);
    }

    #[test]
    fn tight_rtt_bound_restricts_hosts_even_within_candidates() {
        let s = service();
        // Candidate list cut at 16 ms, but the function demands 5 ms.
        let cands = candidates(&s, 0.0, 16.0);
        let tight = FunctionSpec {
            max_rtt_ms: 5.0,
            ..FunctionSpec::interactive()
        };
        let mut placement = FunctionPlacement::new(1, 1);
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let stats = placement.tick(&cands, &[tight], &mut pool, &ReplicaSets::new(1));
        if let Some(host) = placement.host(0, 0) {
            let v = cands[0].iter().find(|c| c.id == host).unwrap();
            assert!(v.rtt_ms() <= 5.0, "host must meet the per-function bound");
            assert_eq!(stats.migrations, 1);
        } else {
            assert_eq!(stats.unserved, 1);
        }
    }
}
