//! The edge engine: scenario × replicas × placement over a snapshot
//! schedule, reported as fleet utilization.
//!
//! This is the experiment the workload layer exists for. The paper's
//! Figs 4–5 argue most of a mega-constellation idles over ocean and
//! desert while demand crowds the cities; the engine quantifies that
//! directly by splitting every tick's fleet into **busy** satellites
//! (hosting at least one function instance), **standby** satellites
//! (holding only warm state replicas), and **idle** satellites (the
//! rest), and integrating each class into satellite-seconds.
//!
//! Candidate lists come from the settled frontier
//! ([`leo_net::frontier`]): demand cells are grouped into latitude
//! bands once, and each tick runs one satellite-major pass per band —
//! bit-identical to the per-cell visibility scans it replaced, which
//! survive as a rotating one-cell-per-tick cross-check against the
//! serving layer's own nearest-server answer.
//!
//! Determinism: band passes are fanned with [`leo_sim::parallel_map`]
//! (order-preserving), and everything stateful — replica maintenance,
//! capacity reservation, placement, demand accounting — runs in a
//! sequential fold in cell order. Thread counts and observability
//! levels change wall-clock, never bytes.

use crate::placement::{FunctionPlacement, FunctionSpec};
use crate::replica::{QosSpec, ReplicaSets};
use crate::scenario::Scenario;
use leo_core::capacity::CapacityPool;
use leo_core::InOrbitService;
use leo_net::visibility::VisibleSat;
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Latitude band height for grouping demand cells into frontier ground
/// sets — the serving layer's sharding default. Purely a work knob:
/// banding never changes candidate lists, only pass shapes.
const CELL_BAND_DEG: f64 = 4.0;

fn fnv_fold(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(FNV_PRIME)
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// Tenant slots per satellite-server ([`leo_core::capacity`]).
    pub slots_per_server: u32,
    /// Replica coverage requirements.
    pub qos: QosSpec,
    /// Worker threads for the per-tick candidate fan-out. Never changes
    /// results, only wall-clock.
    pub threads: usize,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            slots_per_server: 8,
            qos: QosSpec::default(),
            threads: 1,
        }
    }
}

/// One tick of fleet state, fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickStats {
    /// Tick time, seconds after the epoch.
    pub time_s: f64,
    /// Satellites hosting at least one function instance.
    pub busy_sats: u64,
    /// Satellites holding only warm replicas (no instances).
    pub standby_sats: u64,
    /// Slots in use across the fleet.
    pub busy_slots: u64,
    /// Invocations demanded this tick.
    pub demand: u64,
    /// Invocations served (hosted function classes' share of demand).
    pub served: u64,
    /// Host migrations this tick.
    pub migrations: u64,
    /// Cold starts this tick.
    pub cold_starts: u64,
    /// Warm starts on replica hosts this tick.
    pub warm_starts: u64,
    /// Start latency paid this tick, ms.
    pub start_latency_ms: f64,
    /// Replica repairs this tick (0 on the initial-fill tick).
    pub replica_repairs: u64,
    /// Cells whose replica coverage is infeasible this tick.
    pub replica_shortfall_cells: u64,
    /// FNV-1a fingerprint of the full `(cell, function, host)` table —
    /// the byte-level identity the invariance tests compare.
    pub placement_checksum: u64,
}

/// The full run: per-tick stats plus the utilization headline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeReport {
    /// Fleet size.
    pub num_sats: u64,
    /// Tick length, seconds.
    pub tick_s: f64,
    /// Per-tick fleet state.
    pub ticks: Vec<TickStats>,
    /// Satellite-seconds spent hosting function instances.
    pub busy_sat_seconds: f64,
    /// Satellite-seconds spent holding only replicas.
    pub standby_sat_seconds: f64,
    /// Satellite-seconds spent doing neither — the paper's idle fleet.
    pub idle_sat_seconds: f64,
    /// `busy / (busy + standby + idle)`.
    pub utilization: f64,
    /// Total invocations demanded.
    pub total_demand: u64,
    /// Total invocations served.
    pub total_served: u64,
    /// `served / demand` (1.0 for an empty scenario).
    pub service_ratio: f64,
    /// Total migrations across the run.
    pub total_migrations: u64,
    /// Total cold starts across the run.
    pub total_cold_starts: u64,
    /// Total replica repairs across the run.
    pub total_replica_repairs: u64,
    /// FNV-1a fold of every tick's placement checksum.
    pub run_checksum: u64,
}

/// The edge workload engine.
pub struct EdgeEngine<'a> {
    service: &'a InOrbitService,
    scenario: &'a Scenario,
    functions: Vec<FunctionSpec>,
    config: EdgeConfig,
}

impl<'a> EdgeEngine<'a> {
    /// Builds an engine. Each function class is deployed at every
    /// demand cell.
    ///
    /// # Panics
    /// Panics when `functions` is empty or `threads` is zero.
    pub fn new(
        service: &'a InOrbitService,
        scenario: &'a Scenario,
        functions: Vec<FunctionSpec>,
        config: EdgeConfig,
    ) -> Self {
        assert!(!functions.is_empty(), "deploy at least one function class");
        assert!(config.threads > 0, "at least one worker thread");
        EdgeEngine {
            service,
            scenario,
            functions,
            config,
        }
    }

    /// The loosest RTT bound any consumer of the candidate lists needs.
    fn candidate_bound_ms(&self) -> f64 {
        self.functions
            .iter()
            .map(|f| f.max_rtt_ms)
            .fold(self.config.qos.latency_bound_ms, f64::max)
    }

    /// Runs the scenario tick by tick.
    pub fn run(&self) -> EdgeReport {
        let endpoints = self.scenario.endpoints();
        let num_funcs = self.functions.len();
        let mut replicas = ReplicaSets::new(endpoints.len());
        let mut placement = FunctionPlacement::new(endpoints.len(), num_funcs);
        let bound_ms = self.candidate_bound_ms();
        // Band the demand cells once: each tick then answers every
        // cell's candidate list with one settled satellite-major pass
        // per band instead of one visibility scan per cell.
        let cells: Vec<_> = endpoints.iter().map(|e| e.ecef).collect();
        let banded = leo_net::BandedGroundSets::build(&cells, CELL_BAND_DEG);
        let mut ticks: Vec<TickStats> = Vec::new();
        for (tick_i, t) in self.scenario.ticks().into_iter().enumerate() {
            let view = self.service.view(t);
            // Parallel fan-out over latitude bands: per-cell
            // visible-server lists, sorted nearest-first with id
            // tie-breaks. Order-preserving, and each cell belongs to
            // exactly one band, so thread count never reorders the
            // fold below.
            let band_ids: Vec<usize> = (0..banded.num_bands()).collect();
            let per_band = leo_sim::parallel_map(band_ids, self.config.threads, |&b| {
                view.frontier_visible_lists(&banded.bands()[b])
            });
            let mut all: Vec<Vec<VisibleSat>> = vec![Vec::new(); endpoints.len()];
            for band in per_band {
                for (cell, list) in band {
                    all[cell as usize] = list;
                }
            }
            // One rotating cell per tick re-runs the demoted per-cell
            // scan through the service's own nearest-server answer —
            // the cross-check tying this crate to the serving layer
            // without re-scanning the whole fleet's visibility.
            if !endpoints.is_empty() {
                let probe = tick_i % endpoints.len();
                let near = self.service.nearest_server_view(&view, &endpoints[probe]);
                assert_eq!(
                    all[probe].first().map(|c| (c.id, c.range_m.to_bits())),
                    near.map(|v| (v.id, v.range_m.to_bits())),
                    "candidate head disagrees with nearest_server_view (cell {probe})"
                );
            }
            let qos_cands = filter_bound(&all, self.config.qos.latency_bound_ms);
            let place_cands = filter_bound(&all, bound_ms);
            drop(all);

            // Sequential fold, deterministic in cell order. Placement
            // sees *last* tick's replica sets — a migration is warm only
            // when the state was replicated before the host moved, so
            // same-tick repairs can't retroactively pre-warm it.
            let mut pool = CapacityPool::new(self.service, t, self.config.slots_per_server);
            let place_stats = placement.tick(&place_cands, &self.functions, &mut pool, &replicas);
            let (_, repair_stats) = replicas.maintain(&qos_cands, &self.config.qos);

            let mut demand = 0u64;
            let mut served = 0u64;
            let mut checksum = FNV_OFFSET;
            for cell in 0..endpoints.len() as u32 {
                let cell_demand = self.scenario.demand_at(cell, t);
                demand += cell_demand;
                let hosted = (0..num_funcs)
                    .filter(|&f| placement.host(cell, f).is_some())
                    .count() as u64;
                // Each function class carries an equal share of the
                // cell's demand; integer division is deterministic.
                served += cell_demand * hosted / num_funcs as u64;
                for f in 0..num_funcs {
                    let h = placement
                        .host(cell, f)
                        .map(|id| u64::from(id.0) + 1)
                        .unwrap_or(0);
                    checksum = fnv_fold(checksum, u64::from(cell));
                    checksum = fnv_fold(checksum, f as u64);
                    checksum = fnv_fold(checksum, h);
                }
            }

            let busy = placement.busy_hosts();
            let standby = replicas
                .hosts()
                .iter()
                .filter(|h| !busy.contains(h))
                .count() as u64;
            leo_obs::counter!("edge.ticks").incr();
            // Per-tick gauges, sampled in this sequential cell-order
            // fold so point order is thread-count-invariant. A binary
            // running several sweeps (fig_edge: sweep, empty-plan check,
            // outage sweep) concatenates its passes into one series.
            leo_obs::timeseries!("edge.busy_sats").sample(t, busy.len() as f64);
            leo_obs::timeseries!("edge.standby_sats").sample(t, standby as f64);
            leo_obs::timeseries!("edge.demand").sample(t, demand as f64);
            leo_obs::timeseries!("edge.served").sample(t, served as f64);
            leo_obs::timeseries!("edge.cold_starts").sample(t, place_stats.cold_starts as f64);
            leo_obs::timeseries!("edge.replica_repairs").sample(t, repair_stats.repairs as f64);
            leo_obs::trace_instant("edge.tick");
            ticks.push(TickStats {
                time_s: t,
                busy_sats: busy.len() as u64,
                standby_sats: standby,
                busy_slots: pool.used_slots(),
                demand,
                served,
                migrations: place_stats.migrations,
                cold_starts: place_stats.cold_starts,
                warm_starts: place_stats.warm_starts,
                start_latency_ms: place_stats.start_latency_ms,
                replica_repairs: repair_stats.repairs,
                replica_shortfall_cells: repair_stats.shortfall_cells,
                placement_checksum: checksum,
            });
        }
        self.report(ticks)
    }

    fn report(&self, ticks: Vec<TickStats>) -> EdgeReport {
        let num_sats = self.service.num_servers() as u64;
        let tick_s = self.scenario.config().tick_s;
        let mut busy_s = 0.0;
        let mut standby_s = 0.0;
        let mut idle_s = 0.0;
        let mut demand = 0u64;
        let mut served = 0u64;
        let mut migrations = 0u64;
        let mut cold = 0u64;
        let mut repairs = 0u64;
        let mut run_checksum = FNV_OFFSET;
        for t in &ticks {
            busy_s += t.busy_sats as f64 * tick_s;
            standby_s += t.standby_sats as f64 * tick_s;
            idle_s += (num_sats - t.busy_sats - t.standby_sats) as f64 * tick_s;
            demand += t.demand;
            served += t.served;
            migrations += t.migrations;
            cold += t.cold_starts;
            repairs += t.replica_repairs;
            run_checksum = fnv_fold(run_checksum, t.placement_checksum);
        }
        let total = busy_s + standby_s + idle_s;
        EdgeReport {
            num_sats,
            tick_s,
            ticks,
            busy_sat_seconds: busy_s,
            standby_sat_seconds: standby_s,
            idle_sat_seconds: idle_s,
            utilization: if total > 0.0 { busy_s / total } else { 0.0 },
            total_demand: demand,
            total_served: served,
            service_ratio: if demand > 0 {
                served as f64 / demand as f64
            } else {
                1.0
            },
            total_migrations: migrations,
            total_cold_starts: cold,
            total_replica_repairs: repairs,
            run_checksum,
        }
    }
}

fn filter_bound(all: &[Vec<VisibleSat>], bound_ms: f64) -> Vec<Vec<VisibleSat>> {
    all.iter()
        .map(|c| {
            c.iter()
                .filter(|v| v.rtt_ms() <= bound_ms)
                .copied()
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use leo_constellation::{Constellation, ShellSpec, WalkerPattern};
    use leo_geo::Angle;

    fn small_constellation() -> Constellation {
        Constellation::from_shells(
            "edge-test",
            vec![ShellSpec {
                name: "shell".into(),
                altitude_m: 550e3,
                inclination: Angle::from_degrees(53.0),
                num_planes: 10,
                sats_per_plane: 10,
                phase_factor: 1,
                pattern: WalkerPattern::Delta,
                min_elevation: Angle::from_degrees(25.0),
            }],
        )
    }

    fn small_scenario() -> Scenario {
        Scenario::generate(ScenarioConfig {
            num_cells: 8,
            duration_s: 600.0,
            tick_s: 120.0,
            flash_crowds: 1,
            ..ScenarioConfig::default()
        })
    }

    fn config() -> EdgeConfig {
        EdgeConfig {
            slots_per_server: 4,
            qos: QosSpec {
                replicas: 2,
                latency_bound_ms: 16.0,
            },
            threads: 1,
        }
    }

    fn funcs() -> Vec<FunctionSpec> {
        vec![FunctionSpec {
            max_rtt_ms: 16.0,
            ..FunctionSpec::interactive()
        }]
    }

    #[test]
    fn run_is_deterministic() {
        let service = InOrbitService::new(small_constellation());
        let scenario = small_scenario();
        let a = EdgeEngine::new(&service, &scenario, funcs(), config()).run();
        let b = EdgeEngine::new(&service, &scenario, funcs(), config()).run();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let service = InOrbitService::new(small_constellation());
        let scenario = small_scenario();
        let one = EdgeEngine::new(&service, &scenario, funcs(), config()).run();
        let four = EdgeEngine::new(
            &service,
            &scenario,
            funcs(),
            EdgeConfig {
                threads: 4,
                ..config()
            },
        )
        .run();
        assert_eq!(one, four);
    }

    #[test]
    fn fleet_accounting_partitions_the_constellation() {
        let service = InOrbitService::new(small_constellation());
        let scenario = small_scenario();
        let report = EdgeEngine::new(&service, &scenario, funcs(), config()).run();
        assert_eq!(report.num_sats, 100);
        for t in &report.ticks {
            assert!(t.busy_sats + t.standby_sats <= report.num_sats);
            assert!(t.served <= t.demand);
        }
        let total = report.busy_sat_seconds + report.standby_sat_seconds + report.idle_sat_seconds;
        let expect = report.num_sats as f64 * report.tick_s * report.ticks.len() as f64;
        assert!((total - expect).abs() < 1e-6);
        assert!(report.utilization > 0.0 && report.utilization < 1.0);
        assert!(
            report.idle_sat_seconds > 0.0,
            "a 100-sat fleet over 8 cells idles"
        );
    }

    #[test]
    fn first_tick_is_all_cold_then_the_fleet_warms_up() {
        let service = InOrbitService::new(small_constellation());
        let scenario = small_scenario();
        let report = EdgeEngine::new(&service, &scenario, funcs(), config()).run();
        let first = &report.ticks[0];
        assert_eq!(first.replica_repairs, 0, "first pass is initial fill");
        assert_eq!(
            first.migrations, first.cold_starts,
            "no replicas exist before the first tick, so every first placement is cold"
        );
        assert_eq!(first.warm_starts, 0);
        let later_stays: u64 = report.ticks[1..].iter().map(|t| t.migrations).sum();
        assert!(
            later_stays < first.migrations * report.ticks.len() as u64,
            "sticky placement must beat re-placing everything every tick"
        );
    }
}
