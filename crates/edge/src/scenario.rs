//! Deterministic, seedable demand scenarios.
//!
//! A scenario is the workload side of the thought experiment: *who*
//! wants in-orbit compute, *where*, and *when*. Demand cells sit at the
//! largest world cities (population-weighted, like the serving layer's
//! user synthesis); each cell's invocation rate follows a diurnal curve
//! in its own local solar time, optionally spiked by seeded flash
//! crowds. Regional outages are not modeled here — they arrive through
//! [`leo_net::fault`] on the service the engine runs against, so the
//! demand trace itself stays identical between a faulted and a plain
//! run (only the fleet's ability to serve it changes).
//!
//! Everything is a pure function of `(config, seed)`: two generations
//! from the same config are `==`, which the property suite and the
//! `fig_edge` binary both assert.

use leo_cities::synth::SplitMix64;
use leo_cities::WorldCities;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// Default seed for scenario generation. Changing it reshuffles every
/// committed edge baseline, so don't.
pub const SCENARIO_SEED: u64 = 0xED6E_2026;

/// One demand cell: a city-anchored population center that invokes
/// functions on the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandCell {
    /// City name (for reports).
    pub name: String,
    /// Cell index, equal to its position in the scenario's cell list.
    pub index: u32,
    /// Latitude, degrees.
    pub lat_deg: f64,
    /// Longitude, degrees (drives the local-solar-time diurnal phase).
    pub lon_deg: f64,
    /// Anchor city population.
    pub population: u64,
}

impl DemandCell {
    /// The cell as a ground endpoint (index = cell index).
    pub fn endpoint(&self) -> GroundEndpoint {
        GroundEndpoint::new(self.index, Geodetic::ground(self.lat_deg, self.lon_deg))
    }
}

/// A seeded demand spike at one cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Which cell spikes.
    pub cell: u32,
    /// Spike start, seconds after the scenario start.
    pub start_s: f64,
    /// Spike duration, seconds.
    pub duration_s: f64,
    /// Demand multiplier while the spike is live.
    pub multiplier: f64,
}

impl FlashCrowd {
    /// True while the spike is live at scenario-relative time `rel_s`.
    pub fn active(&self, rel_s: f64) -> bool {
        rel_s >= self.start_s && rel_s < self.start_s + self.duration_s
    }
}

/// Scenario knobs. The defaults are the `fig_edge` full-run shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of demand cells (the `num_cells` largest cities).
    pub num_cells: usize,
    /// Scenario start, seconds after the epoch.
    pub start_s: f64,
    /// Scenario duration, seconds.
    pub duration_s: f64,
    /// Tick length, seconds.
    pub tick_s: f64,
    /// Seed for flash-crowd draws.
    pub seed: u64,
    /// Base invocations per tick per 100k anchor population.
    pub base_rate_per_100k: f64,
    /// Diurnal swing in `[0, 1)`: demand scales by
    /// `1 + amplitude·cos(...)`, peaking at [`ScenarioConfig::peak_local_hour`].
    pub diurnal_amplitude: f64,
    /// Local solar hour of peak demand.
    pub peak_local_hour: f64,
    /// Number of flash crowds drawn over the scenario.
    pub flash_crowds: usize,
    /// Demand multiplier while a flash crowd is live.
    pub flash_multiplier: f64,
    /// Flash-crowd duration, seconds.
    pub flash_duration_s: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            num_cells: 96,
            start_s: 0.0,
            duration_s: 7200.0,
            tick_s: 60.0,
            seed: SCENARIO_SEED,
            base_rate_per_100k: 2.0,
            diurnal_amplitude: 0.6,
            peak_local_hour: 20.0,
            flash_crowds: 6,
            flash_multiplier: 8.0,
            flash_duration_s: 900.0,
        }
    }
}

/// A generated scenario: cells, flash crowds, and the demand function
/// over them. Pure data — `==` between two generations from the same
/// config is the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    config: ScenarioConfig,
    cells: Vec<DemandCell>,
    crowds: Vec<FlashCrowd>,
}

impl Scenario {
    /// Generates the scenario: the `num_cells` largest cities become
    /// demand cells, and `flash_crowds` spikes are drawn with a
    /// SplitMix64 stream seeded by `config.seed`.
    ///
    /// # Panics
    /// Panics when `tick_s` or `num_cells` is not positive, or when the
    /// diurnal amplitude leaves the demand factor non-positive.
    pub fn generate(config: ScenarioConfig) -> Scenario {
        assert!(config.tick_s > 0.0, "tick must be positive");
        assert!(config.num_cells > 0, "a scenario needs demand cells");
        assert!(
            (0.0..1.0).contains(&config.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1)"
        );
        let catalog = WorldCities::load_at_least(config.num_cells);
        let cells: Vec<DemandCell> = catalog
            .top_n(config.num_cells)
            .iter()
            .enumerate()
            .map(|(i, c)| DemandCell {
                name: c.name.clone(),
                index: i as u32,
                lat_deg: c.lat_deg,
                lon_deg: c.lon_deg,
                population: c.population,
            })
            .collect();
        let mut rng = SplitMix64::new(config.seed);
        let crowds: Vec<FlashCrowd> = (0..config.flash_crowds)
            .map(|_| {
                let cell = (rng.next_u64() % cells.len() as u64) as u32;
                // Keep the whole spike inside the scenario window.
                let latest = (config.duration_s - config.flash_duration_s).max(0.0);
                FlashCrowd {
                    cell,
                    start_s: rng.range(0.0, latest.max(f64::MIN_POSITIVE)),
                    duration_s: config.flash_duration_s,
                    multiplier: config.flash_multiplier,
                }
            })
            .collect();
        Scenario {
            config,
            cells,
            crowds,
        }
    }

    /// The configuration the scenario was generated from.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The demand cells, in index order.
    pub fn cells(&self) -> &[DemandCell] {
        &self.cells
    }

    /// The seeded flash crowds.
    pub fn crowds(&self) -> &[FlashCrowd] {
        &self.crowds
    }

    /// The cells as ground endpoints (endpoint index = cell index).
    pub fn endpoints(&self) -> Vec<GroundEndpoint> {
        self.cells.iter().map(DemandCell::endpoint).collect()
    }

    /// The tick schedule, absolute seconds after the epoch.
    pub fn ticks(&self) -> Vec<f64> {
        let n = (self.config.duration_s / self.config.tick_s).round() as usize;
        (0..=n)
            .map(|i| self.config.start_s + i as f64 * self.config.tick_s)
            .collect()
    }

    /// The diurnal factor for a cell at absolute time `t`: peaks at
    /// `peak_local_hour` in the cell's local solar time, troughs twelve
    /// hours away. Always positive for amplitudes below one.
    pub fn diurnal_factor(&self, cell: &DemandCell, t: f64) -> f64 {
        let local_hour = (t / 3600.0 + cell.lon_deg / 15.0).rem_euclid(24.0);
        let phase = (local_hour - self.config.peak_local_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.config.diurnal_amplitude * phase.cos()
    }

    /// The flash-crowd multiplier at a cell at absolute time `t` (1.0
    /// when no spike is live; concurrent spikes on one cell compound).
    pub fn flash_factor(&self, cell_index: u32, t: f64) -> f64 {
        let rel = t - self.config.start_s;
        self.crowds
            .iter()
            .filter(|c| c.cell == cell_index && c.active(rel))
            .map(|c| c.multiplier)
            .product()
    }

    /// Invocations a cell issues in the tick at absolute time `t` — the
    /// population-scaled base rate shaped by the diurnal curve and any
    /// live flash crowd, rounded to a whole number of invocations.
    pub fn demand_at(&self, cell_index: u32, t: f64) -> u64 {
        let cell = &self.cells[cell_index as usize];
        let base = cell.population as f64 / 1e5 * self.config.base_rate_per_100k;
        let shaped = base * self.diurnal_factor(cell, t) * self.flash_factor(cell_index, t);
        shaped.round().max(0.0) as u64
    }

    /// Total fleet demand in the tick at absolute time `t`.
    pub fn total_demand_at(&self, t: f64) -> u64 {
        (0..self.cells.len() as u32)
            .map(|i| self.demand_at(i, t))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScenarioConfig {
        ScenarioConfig {
            num_cells: 12,
            duration_s: 1800.0,
            tick_s: 300.0,
            flash_crowds: 2,
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = Scenario::generate(small());
        let b = Scenario::generate(small());
        assert_eq!(a, b);
        let c = Scenario::generate(ScenarioConfig {
            seed: SCENARIO_SEED + 1,
            ..small()
        });
        assert_eq!(a.cells(), c.cells(), "cells do not depend on the seed");
        assert_ne!(a.crowds(), c.crowds(), "crowds must re-draw");
    }

    #[test]
    fn cells_are_the_largest_cities_in_order() {
        let s = Scenario::generate(small());
        assert_eq!(s.cells().len(), 12);
        assert_eq!(s.cells()[0].name, "Tokyo");
        for (i, c) in s.cells().iter().enumerate() {
            assert_eq!(c.index, i as u32);
            assert_eq!(s.endpoints()[i].index, i as u32);
        }
        for w in s.cells().windows(2) {
            assert!(w[0].population >= w[1].population);
        }
    }

    #[test]
    fn tick_schedule_spans_the_window_inclusively() {
        let s = Scenario::generate(small());
        let ticks = s.ticks();
        assert_eq!(ticks.len(), 7);
        assert_eq!(ticks[0], 0.0);
        assert_eq!(*ticks.last().unwrap(), 1800.0);
    }

    #[test]
    fn diurnal_factor_peaks_at_the_configured_hour() {
        let s = Scenario::generate(small());
        let cell = &s.cells()[0];
        // Absolute time putting the cell exactly at its peak local hour.
        let peak_t = (s.config().peak_local_hour - cell.lon_deg / 15.0).rem_euclid(24.0) * 3600.0;
        let trough_t = peak_t + 12.0 * 3600.0;
        let peak = s.diurnal_factor(cell, peak_t);
        let trough = s.diurnal_factor(cell, trough_t);
        assert!((peak - 1.6).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.4).abs() < 1e-9, "trough {trough}");
        assert!(trough > 0.0, "demand never goes negative");
    }

    #[test]
    fn flash_crowds_multiply_demand_only_while_live() {
        let s = Scenario::generate(small());
        let crowd = s.crowds()[0];
        let quiet_before = s.flash_factor(crowd.cell, crowd.start_s - 1.0);
        let live = s.flash_factor(crowd.cell, crowd.start_s + 1.0);
        let quiet_after = s.flash_factor(crowd.cell, crowd.start_s + crowd.duration_s + 1.0);
        assert_eq!(quiet_before, 1.0);
        assert!(live >= crowd.multiplier);
        // Another crowd could overlap the tail; it can only raise it.
        assert!(quiet_after >= 1.0);
        let lively = s.demand_at(crowd.cell, crowd.start_s + 1.0);
        let base = s.demand_at(crowd.cell, crowd.start_s - 1.0);
        assert!(lively > base, "spike {lively} vs base {base}");
    }

    #[test]
    fn demand_scales_with_population() {
        let s = Scenario::generate(small());
        // Tokyo (rank 0) vs the smallest cell, far from any flash crowd
        // influence: compare pure diurnal-free base by averaging a full day.
        let day: Vec<f64> = (0..24).map(|h| h as f64 * 3600.0).collect();
        let tokyo: u64 = day.iter().map(|&t| s.demand_at(0, t)).sum();
        let small_cell: u64 = day.iter().map(|&t| s.demand_at(11, t)).sum();
        assert!(tokyo > small_cell);
        assert!(s.total_demand_at(0.0) > 0);
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_is_rejected() {
        Scenario::generate(ScenarioConfig {
            tick_s: 0.0,
            ..small()
        });
    }
}
