//! # leo-orbit
//!
//! Orbital mechanics substrate for the in-orbit computing reproduction.
//!
//! The paper's simulations (Figs 1–7) require propagating thousands of
//! satellites in nominal Walker shells over two-hour horizons. Published
//! LEO simulators (Hypatia, StarPerf) do this by synthesizing zero-drag
//! TLEs and running SGP4; for such elements SGP4 degenerates to Keplerian
//! two-body motion plus the secular J2 terms. This crate implements exactly
//! that model, bottom-up:
//!
//! * [`elements`] — classical Keplerian orbital elements and derived
//!   quantities (period, mean motion, orbital velocity).
//! * [`kepler`] — anomaly conversions and a Newton solver for Kepler's
//!   equation.
//! * [`propagate`] — two-body + J2 secular propagation to ECI state
//!   vectors, and ground-track helpers.
//! * [`tle`] — NORAD two-line element parsing, validation (checksums), and
//!   synthesis, so constellations can be imported from or exported to the
//!   format every other tool speaks.
//!
//! Angles are [`leo_geo::Angle`]; positions are meters in the frames
//! defined by [`leo_geo::coords`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elements;
pub mod integrator;
pub mod kepler;
pub mod propagate;
pub mod tle;

pub use elements::KeplerianElements;
pub use propagate::{Propagator, StateVector};
pub use tle::Tle;
