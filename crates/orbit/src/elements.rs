//! Classical Keplerian orbital elements and derived scalar quantities.

use leo_geo::consts::{EARTH_MU_M3_S2, EARTH_RADIUS_MEAN_M};
use leo_geo::Angle;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// The six classical orbital elements, referenced to an epoch.
///
/// `mean_anomaly` is the mean anomaly *at the propagator's epoch*; the
/// remaining angles follow the usual conventions (RAAN from the vernal
/// equinox, argument of perigee from the ascending node).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeplerianElements {
    /// Semi-major axis, meters.
    pub semi_major_axis_m: f64,
    /// Eccentricity, dimensionless (0 = circular).
    pub eccentricity: f64,
    /// Inclination to the equatorial plane.
    pub inclination: Angle,
    /// Right ascension of the ascending node.
    pub raan: Angle,
    /// Argument of perigee.
    pub arg_perigee: Angle,
    /// Mean anomaly at epoch.
    pub mean_anomaly: Angle,
}

impl KeplerianElements {
    /// A circular orbit at `altitude_m` above the mean-radius sphere with
    /// the given inclination, node, and phase.
    ///
    /// This is the shape of every shell in the planned mega-constellations
    /// (Starlink Phase I and Kuiper both file circular orbits).
    pub fn circular(altitude_m: f64, inclination: Angle, raan: Angle, mean_anomaly: Angle) -> Self {
        KeplerianElements {
            semi_major_axis_m: EARTH_RADIUS_MEAN_M + altitude_m,
            eccentricity: 0.0,
            inclination,
            raan,
            arg_perigee: Angle::ZERO,
            mean_anomaly,
        }
    }

    /// Mean motion `n = √(μ/a³)`, rad/s.
    pub fn mean_motion_rad_s(&self) -> f64 {
        (EARTH_MU_M3_S2 / self.semi_major_axis_m.powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        TAU / self.mean_motion_rad_s()
    }

    /// Mean motion in revolutions per (solar) day — the unit used in TLEs.
    pub fn mean_motion_rev_day(&self) -> f64 {
        self.mean_motion_rad_s() * 86_400.0 / TAU
    }

    /// Circular orbital speed at the semi-major axis, m/s.
    ///
    /// For the paper's 550 km example this is 7,585 m/s ≈ 27,306 km/h.
    pub fn circular_speed_m_s(&self) -> f64 {
        (EARTH_MU_M3_S2 / self.semi_major_axis_m).sqrt()
    }

    /// Altitude of perigee above the mean-radius sphere, meters.
    pub fn perigee_altitude_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 - self.eccentricity) - EARTH_RADIUS_MEAN_M
    }

    /// Altitude of apogee above the mean-radius sphere, meters.
    pub fn apogee_altitude_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 + self.eccentricity) - EARTH_RADIUS_MEAN_M
    }

    /// Semi-latus rectum `p = a(1−e²)`, meters.
    pub fn semi_latus_rectum_m(&self) -> f64 {
        self.semi_major_axis_m * (1.0 - self.eccentricity * self.eccentricity)
    }

    /// Validates physical plausibility for a LEO simulation: bound orbit,
    /// perigee above the surface, eccentricity in `[0, 1)`.
    pub fn validate(&self) -> Result<(), ElementsError> {
        if !(0.0..1.0).contains(&self.eccentricity) {
            return Err(ElementsError::Eccentricity(self.eccentricity));
        }
        if self.semi_major_axis_m <= EARTH_RADIUS_MEAN_M {
            return Err(ElementsError::SemiMajorAxis(self.semi_major_axis_m));
        }
        if self.perigee_altitude_m() < 0.0 {
            return Err(ElementsError::PerigeeBelowSurface(
                self.perigee_altitude_m(),
            ));
        }
        Ok(())
    }
}

/// Validation failures for [`KeplerianElements::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ElementsError {
    /// Eccentricity outside `[0, 1)`.
    Eccentricity(f64),
    /// Semi-major axis at or below the Earth's surface.
    SemiMajorAxis(f64),
    /// Perigee altitude below the surface (meters, negative).
    PerigeeBelowSurface(f64),
}

impl std::fmt::Display for ElementsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementsError::Eccentricity(e) => write!(f, "eccentricity {e} outside [0, 1)"),
            ElementsError::SemiMajorAxis(a) => {
                write!(f, "semi-major axis {a} m is inside the Earth")
            }
            ElementsError::PerigeeBelowSurface(p) => {
                write!(f, "perigee altitude {p} m is below the surface")
            }
        }
    }
}

impl std::error::Error for ElementsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn starlink_550() -> KeplerianElements {
        KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO)
    }

    #[test]
    fn starlink_550_period_matches_paper() {
        // §2 of the paper: "for an altitude of 550 km … completing each
        // orbit in 95 min 39 sec".
        let period = starlink_550().period_s();
        let paper = 95.0 * 60.0 + 39.0;
        assert!(
            (period - paper).abs() < 30.0,
            "period {period} s vs paper {paper} s"
        );
    }

    #[test]
    fn starlink_550_speed_matches_paper() {
        // §2: "the satellites travel at 27,306 km/h".
        let v_kmh = starlink_550().circular_speed_m_s() * 3.6;
        assert!((v_kmh - 27_306.0).abs() < 100.0, "{v_kmh} km/h");
    }

    #[test]
    fn geo_period_is_about_a_sidereal_day() {
        let geo = KeplerianElements::circular(
            leo_geo::consts::GEO_ALTITUDE_M + 7e3, // mean-radius sphere offset
            Angle::ZERO,
            Angle::ZERO,
            Angle::ZERO,
        );
        assert!((geo.period_s() - leo_geo::consts::SIDEREAL_DAY_S).abs() < 120.0);
    }

    #[test]
    fn circular_orbit_has_equal_apsides() {
        let e = starlink_550();
        assert!((e.perigee_altitude_m() - 550e3).abs() < 1e-6);
        assert!((e.apogee_altitude_m() - 550e3).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_hyperbolic_and_subsurface_orbits() {
        let mut e = starlink_550();
        e.eccentricity = 1.5;
        assert!(matches!(e.validate(), Err(ElementsError::Eccentricity(_))));

        let mut e = starlink_550();
        e.semi_major_axis_m = 1000.0;
        assert!(matches!(e.validate(), Err(ElementsError::SemiMajorAxis(_))));

        let mut e = starlink_550();
        e.eccentricity = 0.2; // perigee dips below the surface at 550 km
        assert!(matches!(
            e.validate(),
            Err(ElementsError::PerigeeBelowSurface(_))
        ));
    }

    #[test]
    fn validation_accepts_all_paper_shells() {
        for alt in [550e3, 1110e3, 1130e3, 1275e3, 1325e3, 630e3, 610e3, 590e3] {
            let e = KeplerianElements::circular(
                alt,
                Angle::from_degrees(53.0),
                Angle::ZERO,
                Angle::ZERO,
            );
            assert!(e.validate().is_ok(), "altitude {alt}");
        }
    }

    proptest! {
        #[test]
        fn prop_period_increases_with_altitude(
            alt1 in 300e3..1900e3f64,
            dalt in 1e3..100e3f64,
        ) {
            let lo = KeplerianElements::circular(alt1, Angle::ZERO, Angle::ZERO, Angle::ZERO);
            let hi = KeplerianElements::circular(alt1 + dalt, Angle::ZERO, Angle::ZERO, Angle::ZERO);
            prop_assert!(hi.period_s() > lo.period_s());
        }

        #[test]
        fn prop_mean_motion_units_are_consistent(alt in 300e3..2000e3f64) {
            let e = KeplerianElements::circular(alt, Angle::ZERO, Angle::ZERO, Angle::ZERO);
            let from_rev = e.mean_motion_rev_day() / 86_400.0 * TAU;
            prop_assert!((from_rev - e.mean_motion_rad_s()).abs() < 1e-12);
            prop_assert!((e.period_s() * e.mean_motion_rad_s() - TAU).abs() < 1e-9);
        }
    }
}
