//! Two-body + J2 secular orbit propagation.
//!
//! [`Propagator`] turns [`KeplerianElements`] at an epoch into ECI/ECEF
//! state at any simulation time. The force model is Keplerian motion plus
//! the secular (orbit-averaged) effects of the Earth's oblateness (J2):
//! nodal regression, apsidal precession, and the mean-anomaly drift. For
//! the nominal circular shells of Starlink/Kuiper this matches what SGP4
//! produces from synthetic zero-drag TLEs, and over the paper's two-hour
//! experiment horizon the difference from a full SGP4 run is far below the
//! kilometre scale that could affect any latency number (see the
//! `ablation` bench that quantifies J2 on/off).

use crate::elements::KeplerianElements;
use crate::kepler;
use leo_geo::consts::{EARTH_J2, EARTH_MU_M3_S2, WGS84_A_M};
use leo_geo::coords::{Ecef, Eci};
use leo_geo::{gmst, Angle, Epoch, Vec3};
use serde::{Deserialize, Serialize};

/// Position and velocity in the ECI frame, meters and meters/second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    /// ECI position, meters.
    pub position: Eci,
    /// ECI velocity, meters/second.
    pub velocity: Vec3,
}

/// Secular J2 rates for a given orbit, radians per second.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct J2Rates {
    /// RAAN drift (nodal regression), rad/s. Negative for prograde orbits.
    pub raan_dot: f64,
    /// Argument-of-perigee drift (apsidal precession), rad/s.
    pub arg_perigee_dot: f64,
    /// Mean-anomaly drift correction, rad/s.
    pub mean_anomaly_dot: f64,
}

impl J2Rates {
    /// Computes the secular J2 rates for the given elements.
    pub fn for_elements(e: &KeplerianElements) -> J2Rates {
        let n = e.mean_motion_rad_s();
        let p = e.semi_latus_rectum_m();
        let k = 1.5 * EARTH_J2 * (WGS84_A_M / p).powi(2) * n;
        let ci = e.inclination.cos();
        let si2 = e.inclination.sin().powi(2);
        let beta = (1.0 - e.eccentricity * e.eccentricity).sqrt();
        J2Rates {
            raan_dot: -k * ci,
            arg_perigee_dot: k * (2.0 - 2.5 * si2),
            mean_anomaly_dot: k * beta * (1.0 - 1.5 * si2),
        }
    }

    /// Zero rates — pure two-body motion (used by the J2 ablation bench).
    pub const ZERO: J2Rates = J2Rates {
        raan_dot: 0.0,
        arg_perigee_dot: 0.0,
        mean_anomaly_dot: 0.0,
    };
}

/// Force-model selection for [`Propagator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ForceModel {
    /// Two-body motion plus secular J2 (default; matches SGP4 on zero-drag
    /// circular elements).
    #[default]
    TwoBodyJ2,
    /// Pure Keplerian two-body motion.
    TwoBody,
}

/// Propagates one satellite's Keplerian elements to state vectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Propagator {
    elements: KeplerianElements,
    epoch: Epoch,
    rates: J2Rates,
    mean_motion: f64,
}

impl Propagator {
    /// Creates a propagator with the default J2 force model.
    pub fn new(elements: KeplerianElements, epoch: Epoch) -> Self {
        Self::with_force_model(elements, epoch, ForceModel::TwoBodyJ2)
    }

    /// Creates a propagator with an explicit force model.
    pub fn with_force_model(elements: KeplerianElements, epoch: Epoch, model: ForceModel) -> Self {
        let rates = match model {
            ForceModel::TwoBodyJ2 => J2Rates::for_elements(&elements),
            ForceModel::TwoBody => J2Rates::ZERO,
        };
        Propagator {
            elements,
            epoch,
            rates,
            mean_motion: elements.mean_motion_rad_s(),
        }
    }

    /// The elements this propagator was built from.
    pub fn elements(&self) -> &KeplerianElements {
        &self.elements
    }

    /// The reference epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The secular rates in effect.
    pub fn rates(&self) -> J2Rates {
        self.rates
    }

    /// ECI state (position + velocity) at `t` seconds after the epoch.
    pub fn state_at(&self, t: f64) -> StateVector {
        let e = &self.elements;
        let ecc = e.eccentricity;

        // Secularly drifted angles.
        let m = Angle::from_radians(
            e.mean_anomaly.radians() + (self.mean_motion + self.rates.mean_anomaly_dot) * t,
        );
        let raan = Angle::from_radians(e.raan.radians() + self.rates.raan_dot * t);
        let argp = Angle::from_radians(e.arg_perigee.radians() + self.rates.arg_perigee_dot * t);

        // Solve the ellipse.
        let e_anom = kepler::solve_kepler(m, ecc);
        let nu = kepler::true_anomaly_from_eccentric(e_anom, ecc);
        let r = kepler::radius_at_eccentric(e.semi_major_axis_m, e_anom, ecc);

        // Perifocal position and velocity.
        let (snu, cnu) = nu.sin_cos();
        let p = e.semi_latus_rectum_m();
        let pos_pf = Vec3::new(r * cnu, r * snu, 0.0);
        let h = (EARTH_MU_M3_S2 * p).sqrt();
        let vel_pf = Vec3::new(
            -EARTH_MU_M3_S2 / h * snu,
            EARTH_MU_M3_S2 / h * (ecc + cnu),
            0.0,
        );

        // Perifocal → ECI: Rz(raan) · Rx(incl) · Rz(argp).
        let rot = |v: Vec3| {
            v.rotate_z(argp.radians())
                .rotate_x(e.inclination.radians())
                .rotate_z(raan.radians())
        };
        StateVector {
            position: Eci(rot(pos_pf)),
            velocity: rot(vel_pf),
        }
    }

    /// ECI position at `t` seconds after the epoch.
    pub fn position_eci(&self, t: f64) -> Eci {
        self.state_at(t).position
    }

    /// ECEF position at `t` seconds after the epoch (rotates by GMST).
    pub fn position_ecef(&self, t: f64) -> Ecef {
        self.position_eci(t).to_ecef(gmst(self.epoch, t))
    }

    /// Geodetic sub-satellite point (spherical Earth) at `t` seconds after
    /// the epoch — latitude/longitude of the ground track plus altitude.
    pub fn subpoint(&self, t: f64) -> leo_geo::Geodetic {
        self.position_ecef(t).to_geodetic_spherical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn starlink() -> Propagator {
        let e = KeplerianElements::circular(
            550e3,
            Angle::from_degrees(53.0),
            Angle::from_degrees(10.0),
            Angle::from_degrees(42.0),
        );
        Propagator::new(e, Epoch::J2000)
    }

    #[test]
    fn circular_orbit_radius_is_constant() {
        let p = starlink();
        let a = p.elements().semi_major_axis_m;
        for i in 0..100 {
            let t = i as f64 * 60.0;
            let r = p.position_eci(t).0.norm();
            assert!((r - a).abs() < 1.0, "t={t}: r={r}");
        }
    }

    #[test]
    fn speed_matches_vis_viva() {
        let p = starlink();
        let a = p.elements().semi_major_axis_m;
        let expect = (EARTH_MU_M3_S2 / a).sqrt();
        for t in [0.0, 137.0, 999.5, 5000.0] {
            let v = p.state_at(t).velocity.norm();
            assert!((v - expect).abs() < 0.5, "t={t}: v={v} vs {expect}");
        }
    }

    #[test]
    fn velocity_is_orthogonal_to_position_on_circular_orbit() {
        let p = starlink();
        for t in [0.0, 100.0, 1234.0] {
            let s = p.state_at(t);
            let cosang = s.position.0.normalized().dot(s.velocity.normalized());
            assert!(cosang.abs() < 1e-6, "t={t}: cos={cosang}");
        }
    }

    #[test]
    fn two_body_orbit_returns_after_one_period() {
        let e =
            KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
        let p = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        let period = e.period_s();
        let d = p.position_eci(0.0).0.distance(p.position_eci(period).0);
        assert!(d < 1.0, "drift {d} m after one period");
    }

    #[test]
    fn latitude_excursion_equals_inclination() {
        let p = starlink();
        let period = p.elements().period_s();
        let mut max_lat: f64 = 0.0;
        let steps = 2000;
        for i in 0..steps {
            let t = period * i as f64 / steps as f64;
            // Use ECI directly: geodetic latitude of ECI position.
            let pos = p.position_eci(t).0;
            let lat = (pos.z / pos.norm()).asin().to_degrees();
            max_lat = max_lat.max(lat.abs());
        }
        assert!((max_lat - 53.0).abs() < 0.05, "max lat {max_lat}");
    }

    #[test]
    fn j2_regresses_the_node_westward_for_prograde_orbit() {
        let rates = J2Rates::for_elements(starlink().elements());
        assert!(rates.raan_dot < 0.0);
        // Known magnitude: Starlink 550 km / 53° regresses ≈ −4.5°/day
        // (the oft-quoted −5°/day figure is the ISS at 420 km / 51.6°).
        let deg_per_day = rates.raan_dot.to_degrees() * 86_400.0;
        assert!((deg_per_day + 4.5).abs() < 0.3, "{deg_per_day}°/day");
    }

    #[test]
    fn polar_orbit_has_no_nodal_regression() {
        let e =
            KeplerianElements::circular(550e3, Angle::from_degrees(90.0), Angle::ZERO, Angle::ZERO);
        let rates = J2Rates::for_elements(&e);
        assert!(rates.raan_dot.abs() < 1e-12);
    }

    #[test]
    fn ground_track_drifts_westward() {
        // Earth rotation (plus nodal regression) makes successive
        // equator crossings move west.
        let p = starlink();
        let period = p.elements().period_s();
        let lon0 = p.subpoint(0.0).lon;
        let lon1 = p.subpoint(period).lon;
        let drift = (lon1 - lon0).normalized_signed().degrees();
        assert!(drift < -20.0 && drift > -30.0, "drift {drift}° per orbit");
    }

    #[test]
    fn j2_and_two_body_agree_at_epoch_and_diverge_slowly() {
        let e =
            KeplerianElements::circular(550e3, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
        let pj2 = Propagator::new(e, Epoch::J2000);
        let p2b = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        assert!(pj2.position_eci(0.0).0.distance(p2b.position_eci(0.0).0) < 1e-6);
        // After 2 hours (the paper's horizon) the along-track difference
        // stays within tens of km — bounded and predictable.
        let d = pj2
            .position_eci(7200.0)
            .0
            .distance(p2b.position_eci(7200.0).0);
        assert!(d < 60_000.0, "2-hour J2 divergence {d} m");
    }

    proptest! {
        #[test]
        fn prop_radius_bounded_by_apsides(
            alt in 300e3..2000e3f64,
            ecc in 0.0..0.01f64,
            incl in 0.0..100.0f64,
            t in 0.0..20_000.0f64,
        ) {
            let mut e = KeplerianElements::circular(
                alt, Angle::from_degrees(incl), Angle::ZERO, Angle::ZERO);
            e.eccentricity = ecc;
            let p = Propagator::new(e, Epoch::J2000);
            let r = p.position_eci(t).0.norm();
            let a = e.semi_major_axis_m;
            prop_assert!(r >= a * (1.0 - ecc) - 1.0);
            prop_assert!(r <= a * (1.0 + ecc) + 1.0);
        }

        #[test]
        fn prop_inclination_bounds_latitude(
            alt in 300e3..2000e3f64,
            incl in 5.0..90.0f64,
            t in 0.0..20_000.0f64,
        ) {
            let e = KeplerianElements::circular(
                alt, Angle::from_degrees(incl), Angle::ZERO, Angle::ZERO);
            let p = Propagator::new(e, Epoch::J2000);
            let pos = p.position_eci(t).0;
            let lat = (pos.z / pos.norm()).asin().to_degrees();
            prop_assert!(lat.abs() <= incl + 1e-6);
        }

        #[test]
        fn prop_ecef_and_eci_radii_agree(
            alt in 300e3..2000e3f64,
            t in 0.0..20_000.0f64,
        ) {
            let e = KeplerianElements::circular(
                alt, Angle::from_degrees(53.0), Angle::ZERO, Angle::ZERO);
            let p = Propagator::new(e, Epoch::J2000);
            let r_eci = p.position_eci(t).0.norm();
            let r_ecef = p.position_ecef(t).0.norm();
            prop_assert!((r_eci - r_ecef).abs() < 1e-4);
        }
    }
}
