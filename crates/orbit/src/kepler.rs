//! Kepler's equation and anomaly conversions.
//!
//! Mean anomaly `M` advances linearly in time; the position on the ellipse
//! needs the eccentric anomaly `E` (via Kepler's equation `M = E − e·sin E`)
//! and the true anomaly `ν`. For the circular mega-constellation shells all
//! three coincide, but the solver supports the general elliptical case so
//! that TLE-imported satellites propagate correctly.

use leo_geo::Angle;

/// Maximum Newton iterations before giving up (never reached in practice;
/// convergence is quadratic from the chosen starting point).
const MAX_ITERATIONS: usize = 50;

/// Convergence tolerance on the eccentric anomaly, radians.
const TOLERANCE: f64 = 1e-12;

/// Solves Kepler's equation `M = E − e·sin E` for the eccentric anomaly.
///
/// Uses Newton–Raphson with the standard third-order starting guess
/// `E₀ = M + e·sin M / (1 − sin(M+e) + sin M)` for robustness at high
/// eccentricity. `eccentricity` must lie in `[0, 1)`.
///
/// # Panics
/// Panics in debug builds when `eccentricity` is outside `[0, 1)`.
pub fn solve_kepler(mean_anomaly: Angle, eccentricity: f64) -> Angle {
    debug_assert!(
        (0.0..1.0).contains(&eccentricity),
        "eccentricity {eccentricity} outside [0,1)"
    );
    let m = mean_anomaly.normalized_signed().radians();
    if eccentricity == 0.0 {
        return Angle::from_radians(m);
    }
    // Starting guess (Danby 1987): good global convergence.
    let mut e_anom = m + 0.85 * eccentricity * m.sin().signum();
    for _ in 0..MAX_ITERATIONS {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let fp = 1.0 - eccentricity * e_anom.cos();
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < TOLERANCE {
            break;
        }
    }
    Angle::from_radians(e_anom)
}

/// True anomaly from eccentric anomaly.
pub fn true_anomaly_from_eccentric(eccentric: Angle, eccentricity: f64) -> Angle {
    let e = eccentricity;
    let (s, c) = eccentric.sin_cos();
    let beta = (1.0 - e * e).sqrt();
    Angle::from_radians((beta * s).atan2(c - e))
}

/// Eccentric anomaly from true anomaly.
pub fn eccentric_from_true_anomaly(true_anomaly: Angle, eccentricity: f64) -> Angle {
    let e = eccentricity;
    let (s, c) = true_anomaly.sin_cos();
    let beta = (1.0 - e * e).sqrt();
    Angle::from_radians((beta * s).atan2(c + e))
}

/// Mean anomaly from eccentric anomaly (Kepler's equation, forward).
pub fn mean_from_eccentric(eccentric: Angle, eccentricity: f64) -> Angle {
    Angle::from_radians(eccentric.radians() - eccentricity * eccentric.sin())
}

/// Radius (distance from focus) at an eccentric anomaly for a given
/// semi-major axis: `r = a (1 − e·cos E)`.
pub fn radius_at_eccentric(semi_major_axis_m: f64, eccentric: Angle, eccentricity: f64) -> f64 {
    semi_major_axis_m * (1.0 - eccentricity * eccentric.cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn circular_orbit_anomalies_coincide() {
        for m in [-3.0, -1.0, 0.0, 0.5, 2.0, 3.1] {
            let ma = Angle::from_radians(m);
            let e_anom = solve_kepler(ma, 0.0);
            assert!((e_anom.radians() - ma.normalized_signed().radians()).abs() < 1e-12);
            let nu = true_anomaly_from_eccentric(e_anom, 0.0);
            assert!(
                (nu.normalized_signed().radians() - ma.normalized_signed().radians()).abs() < 1e-12
            );
        }
    }

    #[test]
    fn known_solution_vallado_example() {
        // Vallado, example 2-1: M = 235.4°, e = 0.4 → E ≈ 220.512074°.
        let e_anom = solve_kepler(Angle::from_degrees(235.4), 0.4);
        let deg = e_anom.normalized().degrees();
        assert!((deg - 220.512_074).abs() < 1e-5, "{deg}");
    }

    #[test]
    fn apsides_are_fixed_points() {
        for e in [0.0, 0.1, 0.5, 0.9] {
            assert!(solve_kepler(Angle::ZERO, e).radians().abs() < 1e-12);
            let at_apo = solve_kepler(Angle::from_radians(PI), e);
            assert!((at_apo.normalized_signed().radians().abs() - PI).abs() < 1e-9);
        }
    }

    #[test]
    fn radius_spans_perigee_to_apogee() {
        let a = 7000e3;
        let e = 0.1;
        let rp = radius_at_eccentric(a, Angle::ZERO, e);
        let ra = radius_at_eccentric(a, Angle::from_radians(PI), e);
        assert!((rp - a * 0.9).abs() < 1e-6);
        assert!((ra - a * 1.1).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_solver_satisfies_keplers_equation(
            m in -10.0..10.0f64,
            e in 0.0..0.95f64,
        ) {
            let ma = Angle::from_radians(m);
            let ea = solve_kepler(ma, e);
            let back = mean_from_eccentric(ea, e);
            let diff = (back - ma).normalized_signed().radians().abs();
            prop_assert!(diff < 1e-9, "residual {diff}");
        }

        #[test]
        fn prop_true_eccentric_round_trip(
            nu in -3.1..3.1f64,
            e in 0.0..0.95f64,
        ) {
            let t = Angle::from_radians(nu);
            let ea = eccentric_from_true_anomaly(t, e);
            let back = true_anomaly_from_eccentric(ea, e);
            prop_assert!((back - t).normalized_signed().radians().abs() < 1e-9);
        }

        #[test]
        fn prop_radius_within_apsidal_bounds(
            m in -10.0..10.0f64,
            e in 0.0..0.95f64,
            a in 6.6e6..8e6f64,
        ) {
            let ea = solve_kepler(Angle::from_radians(m), e);
            let r = radius_at_eccentric(a, ea, e);
            prop_assert!(r >= a * (1.0 - e) - 1e-6);
            prop_assert!(r <= a * (1.0 + e) + 1e-6);
        }
    }
}
