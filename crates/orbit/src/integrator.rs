//! Numerical orbit propagation (RK4) with a full J2 gravity field.
//!
//! The analytic propagator ([`crate::propagate`]) applies J2 only as
//! secular drift rates — exactly what SGP4 does for near-circular
//! orbits, and all the paper's experiments need. This module provides an
//! independent *numerical* integrator (fixed-step Runge–Kutta 4 with the
//! full J2 acceleration, including the short-period terms the analytic
//! model averages away) for two purposes:
//!
//! 1. **Validation** — cross-checking that the analytic propagator stays
//!    within the short-period J2 oscillation amplitude (~km) of truth
//!    over the paper's horizons (see the tests below and the
//!    `ablation_elevation` bench).
//! 2. **Extensibility** — a drop-in path for force models the analytic
//!    form can't express (drag, third-body), should downstream users
//!    need them.

use crate::propagate::StateVector;
use leo_geo::consts::{EARTH_J2, EARTH_MU_M3_S2, WGS84_A_M};
use leo_geo::coords::Eci;
use leo_geo::Vec3;

/// Acceleration due to a point-mass Earth, m/s².
pub fn two_body_accel(r: Vec3) -> Vec3 {
    let rn = r.norm();
    r * (-EARTH_MU_M3_S2 / (rn * rn * rn))
}

/// Acceleration due to the J2 oblateness term (full, not orbit-averaged),
/// m/s². Standard formulation in ECI with z along the rotation axis.
pub fn j2_accel(r: Vec3) -> Vec3 {
    let rn = r.norm();
    let k = -1.5 * EARTH_J2 * EARTH_MU_M3_S2 * WGS84_A_M * WGS84_A_M / rn.powi(5);
    let z2r2 = (r.z / rn).powi(2);
    Vec3::new(
        k * r.x * (1.0 - 5.0 * z2r2),
        k * r.y * (1.0 - 5.0 * z2r2),
        k * r.z * (3.0 - 5.0 * z2r2),
    )
}

/// The force model evaluated by the integrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericForceModel {
    /// Point-mass Earth only.
    TwoBody,
    /// Point mass + full J2.
    TwoBodyJ2,
}

impl NumericForceModel {
    fn accel(self, r: Vec3) -> Vec3 {
        match self {
            NumericForceModel::TwoBody => two_body_accel(r),
            NumericForceModel::TwoBodyJ2 => two_body_accel(r) + j2_accel(r),
        }
    }
}

/// A fixed-step RK4 integrator over an ECI state.
#[derive(Debug, Clone, Copy)]
pub struct Rk4Integrator {
    /// Step size, seconds. 10 s keeps position error < 1 m over 2 h for
    /// LEO; tests verify.
    pub step_s: f64,
    /// Force model.
    pub model: NumericForceModel,
}

impl Rk4Integrator {
    /// Creates an integrator.
    ///
    /// # Panics
    /// Panics on a non-positive step.
    pub fn new(step_s: f64, model: NumericForceModel) -> Self {
        assert!(step_s > 0.0, "step must be positive");
        Rk4Integrator { step_s, model }
    }

    fn derivative(&self, pos: Vec3, vel: Vec3) -> (Vec3, Vec3) {
        (vel, self.model.accel(pos))
    }

    /// One RK4 step from `(pos, vel)` over `dt` seconds.
    fn step(&self, pos: Vec3, vel: Vec3, dt: f64) -> (Vec3, Vec3) {
        let (k1p, k1v) = self.derivative(pos, vel);
        let (k2p, k2v) = self.derivative(pos + k1p * (dt / 2.0), vel + k1v * (dt / 2.0));
        let (k3p, k3v) = self.derivative(pos + k2p * (dt / 2.0), vel + k2v * (dt / 2.0));
        let (k4p, k4v) = self.derivative(pos + k3p * dt, vel + k3v * dt);
        (
            pos + (k1p + k2p * 2.0 + k3p * 2.0 + k4p) * (dt / 6.0),
            vel + (k1v + k2v * 2.0 + k3v * 2.0 + k4v) * (dt / 6.0),
        )
    }

    /// Propagates a state by `duration_s` seconds (forwards only).
    ///
    /// # Panics
    /// Panics on negative duration.
    pub fn propagate(&self, state: StateVector, duration_s: f64) -> StateVector {
        assert!(duration_s >= 0.0, "integrator runs forward only");
        let mut pos = state.position.0;
        let mut vel = state.velocity;
        let mut remaining = duration_s;
        while remaining > 1e-12 {
            let dt = remaining.min(self.step_s);
            let (p, v) = self.step(pos, vel, dt);
            pos = p;
            vel = v;
            remaining -= dt;
        }
        StateVector {
            position: Eci(pos),
            velocity: vel,
        }
    }
}

/// Specific orbital energy of a state, J/kg — conserved under any
/// conservative force model; used as an integration-quality check.
pub fn specific_energy(state: &StateVector) -> f64 {
    let v2 = state.velocity.norm_squared();
    let r = state.position.0.norm();
    v2 / 2.0 - EARTH_MU_M3_S2 / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elements::KeplerianElements;
    use crate::propagate::{ForceModel, Propagator};
    use leo_geo::{Angle, Epoch};

    fn starlink_elements() -> KeplerianElements {
        KeplerianElements::circular(
            550e3,
            Angle::from_degrees(53.0),
            Angle::from_degrees(30.0),
            Angle::from_degrees(60.0),
        )
    }

    #[test]
    fn rk4_matches_analytic_two_body_to_sub_meter() {
        let e = starlink_elements();
        let analytic = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        let rk4 = Rk4Integrator::new(10.0, NumericForceModel::TwoBody);
        let s0 = analytic.state_at(0.0);
        for horizon in [600.0, 3600.0, 7200.0] {
            let truth = rk4.propagate(s0, horizon);
            let approx = analytic.state_at(horizon);
            let d = truth.position.0.distance(approx.position.0);
            assert!(d < 1.0, "horizon {horizon}: {d} m");
        }
    }

    #[test]
    fn analytic_j2_stays_within_short_period_amplitude_of_numeric_truth() {
        // The analytic model drops J2's short-period oscillations
        // (position amplitude ~10 km at LEO) and, because it treats its
        // elements as *mean* elements while the integrator receives them
        // as osculating, accrues a small along-track drift on top. Both
        // effects stay well under the ~600 km inter-satellite spacing
        // over the paper's 2-hour horizon (≤ 0.2 ms of latency error),
        // which is what the substitution in DESIGN.md §4 relies on.
        let e = starlink_elements();
        let analytic = Propagator::new(e, Epoch::J2000);
        let rk4 = Rk4Integrator::new(5.0, NumericForceModel::TwoBodyJ2);
        let s0 = analytic.state_at(0.0);
        for horizon in [1800.0, 7200.0] {
            let truth = rk4.propagate(s0, horizon);
            let approx = analytic.state_at(horizon);
            let d = truth.position.0.distance(approx.position.0);
            assert!(
                d < 60_000.0,
                "horizon {horizon}: {d} m exceeds the J2 mean-vs-osculating band"
            );
        }
    }

    #[test]
    fn energy_is_conserved_under_two_body() {
        let e = starlink_elements();
        let p = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        let rk4 = Rk4Integrator::new(10.0, NumericForceModel::TwoBody);
        let s0 = p.state_at(0.0);
        let e0 = specific_energy(&s0);
        let s1 = rk4.propagate(s0, 7200.0);
        let e1 = specific_energy(&s1);
        assert!(((e1 - e0) / e0).abs() < 1e-9, "energy drift {e0} -> {e1}");
    }

    #[test]
    fn j2_acceleration_is_small_relative_to_two_body() {
        let e = starlink_elements();
        let s = Propagator::new(e, Epoch::J2000).state_at(0.0);
        let tb = two_body_accel(s.position.0).norm();
        let j2 = j2_accel(s.position.0).norm();
        let ratio = j2 / tb;
        // J2/central ≈ (3/2)·J2·(Re/r)² ≈ 1.4e-3 at 550 km.
        assert!((1e-4..1e-2).contains(&ratio), "{ratio}");
    }

    #[test]
    fn j2_has_no_equatorial_z_component_on_the_equator() {
        let r = Vec3::new(7e6, 0.0, 0.0);
        let a = j2_accel(r);
        assert_eq!(a.z, 0.0);
        assert!(a.x < 0.0, "J2 pulls inward extra at the equator");
    }

    #[test]
    fn smaller_steps_refine_the_solution() {
        let e = starlink_elements();
        let p = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        let s0 = p.state_at(0.0);
        let truth = p.state_at(3600.0); // analytic 2-body is exact
        let coarse = Rk4Integrator::new(60.0, NumericForceModel::TwoBody).propagate(s0, 3600.0);
        let fine = Rk4Integrator::new(5.0, NumericForceModel::TwoBody).propagate(s0, 3600.0);
        let ec = coarse.position.0.distance(truth.position.0);
        let ef = fine.position.0.distance(truth.position.0);
        assert!(ef < ec, "fine {ef} vs coarse {ec}");
    }

    #[test]
    fn partial_final_step_lands_exactly_on_the_horizon() {
        // Horizon not a multiple of the step: radius must still be right.
        let e = starlink_elements();
        let p = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
        let s0 = p.state_at(0.0);
        let rk4 = Rk4Integrator::new(10.0, NumericForceModel::TwoBody);
        let s = rk4.propagate(s0, 1234.567);
        let expected = p.state_at(1234.567);
        assert!(s.position.0.distance(expected.position.0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_is_rejected() {
        Rk4Integrator::new(0.0, NumericForceModel::TwoBody);
    }
}
