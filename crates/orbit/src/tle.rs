//! NORAD two-line element (TLE) parsing, validation, and synthesis.
//!
//! The operational ecosystem around LEO constellations (Celestrak,
//! Space-Track, Hypatia, StarPerf) exchanges orbits as TLEs. This module
//! lets the simulator import real catalogs and export its synthetic Walker
//! shells in the same format. Parsing is strict about the fixed-column
//! layout and verifies the per-line modulo-10 checksums; synthesis always
//! emits checksummed, column-exact lines.
//!
//! Only the mean elements are used downstream (the drag and B* terms are
//! parsed but ignored — the force model is two-body + J2, see
//! [`crate::propagate`]).

use crate::elements::KeplerianElements;
use leo_geo::consts::EARTH_MU_M3_S2;
use leo_geo::{Angle, Epoch};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A parsed two-line element set.
///
/// ```
/// use leo_orbit::Tle;
///
/// let text = "ISS (ZARYA)\n\
///     1 25544U 98067A   20316.41516162  .00001589  00000-0  36371-4 0  9995\n\
///     2 25544  51.6454 111.3004 0001372  94.0447  67.1080 15.49326316254113";
/// let tle = Tle::parse(text).unwrap();
/// assert_eq!(tle.catalog_number, 25544);
/// assert!((tle.elements.inclination.degrees() - 51.6454).abs() < 1e-9);
/// // Round-trips through the formatter with valid checksums:
/// assert!(Tle::parse(&tle.format()).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tle {
    /// Satellite name (line 0), empty when absent.
    pub name: String,
    /// NORAD catalog number.
    pub catalog_number: u32,
    /// International designator (e.g. `98067A`), trimmed.
    pub intl_designator: String,
    /// Epoch of the elements.
    pub epoch: Epoch,
    /// Orbital elements at the epoch.
    pub elements: KeplerianElements,
    /// First derivative of mean motion (rev/day²) — parsed, unused.
    pub mean_motion_dot: f64,
    /// B* drag term (1/Earth radii) — parsed, unused.
    pub bstar: f64,
    /// Revolution number at epoch.
    pub rev_number: u32,
}

/// Errors from TLE parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// Input did not contain the expected number of lines.
    MissingLines,
    /// A line was shorter than the mandatory 69 columns.
    LineTooShort {
        /// Which TLE line (1 or 2).
        line: u8,
        /// Actual length found.
        len: usize,
    },
    /// A line did not start with its line number.
    BadLineNumber {
        /// Which TLE line (1 or 2).
        line: u8,
    },
    /// The modulo-10 checksum did not match.
    Checksum {
        /// Which TLE line (1 or 2).
        line: u8,
        /// Checksum we computed from the first 68 columns.
        computed: u8,
        /// Checksum digit present in column 69.
        found: u8,
    },
    /// A numeric field failed to parse.
    Field {
        /// Which TLE line (1 or 2).
        line: u8,
        /// Field name.
        field: &'static str,
    },
    /// Catalog numbers on lines 1 and 2 disagree.
    CatalogMismatch,
}

impl std::fmt::Display for TleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TleError::MissingLines => write!(f, "expected two element lines"),
            TleError::LineTooShort { line, len } => {
                write!(f, "line {line} is {len} columns, need 69")
            }
            TleError::BadLineNumber { line } => write!(f, "line {line} has wrong line number"),
            TleError::Checksum {
                line,
                computed,
                found,
            } => write!(f, "line {line} checksum {found} != computed {computed}"),
            TleError::Field { line, field } => write!(f, "line {line}: bad field {field}"),
            TleError::CatalogMismatch => write!(f, "catalog numbers differ between lines"),
        }
    }
}

impl std::error::Error for TleError {}

/// Modulo-10 checksum of the first 68 columns: digits count as themselves,
/// `-` counts as 1, everything else as 0.
pub fn line_checksum(line: &str) -> u8 {
    let mut sum: u32 = 0;
    for c in line.chars().take(68) {
        match c {
            '0'..='9' => sum += c as u32 - '0' as u32,
            '-' => sum += 1,
            _ => {}
        }
    }
    (sum % 10) as u8
}

fn field<T: std::str::FromStr>(
    line: &str,
    range: std::ops::Range<usize>,
    l: u8,
    name: &'static str,
) -> Result<T, TleError> {
    line.get(range)
        .map(str::trim)
        .and_then(|s| s.parse().ok())
        .ok_or(TleError::Field {
            line: l,
            field: name,
        })
}

/// Parses the TLE's `YYDDD.DDDDDDDD` epoch into an [`Epoch`].
fn parse_epoch(yy: u32, doy: f64) -> Epoch {
    // TLE convention: years 57–99 → 1957–1999, 00–56 → 2000–2056.
    let year = if yy >= 57 { 1900 + yy } else { 2000 + yy } as i32;
    let jan1 = Epoch::from_calendar(year, 1, 1, 0, 0, 0.0);
    Epoch::from_julian_date(jan1.julian_date() + doy - 1.0)
}

/// Formats an [`Epoch`] as the TLE `YYDDD.DDDDDDDD` pair (year, day).
fn epoch_to_tle(epoch: Epoch) -> (u32, f64) {
    // Walk back to January 1 of the epoch's year.
    let jd = epoch.julian_date();
    // Rough year from JD, then adjust.
    let mut year = 2000 + ((jd - 2_451_544.5) / 365.25).floor() as i32;
    loop {
        let jan1 = Epoch::from_calendar(year, 1, 1, 0, 0, 0.0).julian_date();
        let next = Epoch::from_calendar(year + 1, 1, 1, 0, 0, 0.0).julian_date();
        if jd < jan1 {
            year -= 1;
        } else if jd >= next {
            year += 1;
        } else {
            return ((year % 100) as u32, jd - jan1 + 1.0);
        }
    }
}

impl Tle {
    /// Parses a TLE from two or three lines (optional name line first).
    pub fn parse(text: &str) -> Result<Tle, TleError> {
        let lines: Vec<&str> = text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.trim().is_empty())
            .collect();
        let (name, l1, l2) = match lines.len() {
            2 => (String::new(), lines[0], lines[1]),
            3 => (lines[0].trim().to_string(), lines[1], lines[2]),
            _ => return Err(TleError::MissingLines),
        };
        for (idx, l) in [(1u8, l1), (2u8, l2)] {
            if l.len() < 69 {
                return Err(TleError::LineTooShort {
                    line: idx,
                    len: l.len(),
                });
            }
            if !l.starts_with(&idx.to_string()) {
                return Err(TleError::BadLineNumber { line: idx });
            }
            let computed = line_checksum(l);
            let found = l.as_bytes()[68].wrapping_sub(b'0');
            if computed != found {
                return Err(TleError::Checksum {
                    line: idx,
                    computed,
                    found,
                });
            }
        }

        let catalog_number: u32 = field(l1, 2..7, 1, "catalog number")?;
        let cat2: u32 = field(l2, 2..7, 2, "catalog number")?;
        if catalog_number != cat2 {
            return Err(TleError::CatalogMismatch);
        }
        let intl_designator = l1.get(9..17).unwrap_or("").trim().to_string();
        let epoch_yy: u32 = field(l1, 18..20, 1, "epoch year")?;
        let epoch_doy: f64 = field(l1, 20..32, 1, "epoch day")?;
        let mean_motion_dot: f64 = {
            let s = l1.get(33..43).unwrap_or("").trim();
            // Format like " .00001589" or "-.00001589".
            let normalized = s.replace(" .", "0.").replace("-.", "-0.");
            normalized.parse().map_err(|_| TleError::Field {
                line: 1,
                field: "mean motion dot",
            })?
        };
        let bstar = parse_exponential(l1.get(53..61).unwrap_or("")).ok_or(TleError::Field {
            line: 1,
            field: "bstar",
        })?;

        let inclination: f64 = field(l2, 8..16, 2, "inclination")?;
        let raan: f64 = field(l2, 17..25, 2, "raan")?;
        let ecc_str = l2.get(26..33).unwrap_or("").trim();
        let eccentricity: f64 = format!("0.{ecc_str}")
            .parse()
            .map_err(|_| TleError::Field {
                line: 2,
                field: "eccentricity",
            })?;
        let arg_perigee: f64 = field(l2, 34..42, 2, "argument of perigee")?;
        let mean_anomaly: f64 = field(l2, 43..51, 2, "mean anomaly")?;
        let mean_motion_rev_day: f64 = field(l2, 52..63, 2, "mean motion")?;
        let rev_number: u32 = field(l2, 63..68, 2, "rev number")?;

        // Mean motion (rev/day) → semi-major axis via Kepler's third law.
        let n_rad_s = mean_motion_rev_day * TAU / 86_400.0;
        let semi_major_axis_m = (EARTH_MU_M3_S2 / (n_rad_s * n_rad_s)).powf(1.0 / 3.0);

        Ok(Tle {
            name,
            catalog_number,
            intl_designator,
            epoch: parse_epoch(epoch_yy, epoch_doy),
            elements: KeplerianElements {
                semi_major_axis_m,
                eccentricity,
                inclination: Angle::from_degrees(inclination),
                raan: Angle::from_degrees(raan),
                arg_perigee: Angle::from_degrees(arg_perigee),
                mean_anomaly: Angle::from_degrees(mean_anomaly),
            },
            mean_motion_dot,
            bstar,
            rev_number,
        })
    }

    /// Synthesizes a TLE for the given elements — the inverse of
    /// [`Tle::parse`] for the fields the simulator cares about.
    pub fn synthesize(
        name: &str,
        catalog_number: u32,
        epoch: Epoch,
        elements: &KeplerianElements,
    ) -> Tle {
        Tle {
            name: name.to_string(),
            catalog_number,
            intl_designator: format!("{:05}A", catalog_number % 100_000),
            epoch,
            elements: *elements,
            mean_motion_dot: 0.0,
            bstar: 0.0,
            rev_number: 0,
        }
    }

    /// Formats as the canonical three-line text (name + 2 element lines),
    /// with valid checksums.
    pub fn format(&self) -> String {
        let (yy, doy) = epoch_to_tle(self.epoch);
        let e = &self.elements;
        let mut l1 = format!(
            "1 {:05}U {:<8} {:02}{:012.8} {} {} {} 0 {:4}",
            self.catalog_number % 100_000,
            self.intl_designator,
            yy,
            doy,
            format_mm_dot(self.mean_motion_dot),
            format_exponential(0.0),
            format_exponential(self.bstar),
            999,
        );
        l1.truncate(68);
        while l1.len() < 68 {
            l1.push(' ');
        }
        l1.push((b'0' + line_checksum(&l1)) as char);

        let mut l2 = format!(
            "2 {:05} {:8.4} {:8.4} {:07} {:8.4} {:8.4} {:11.8}{:5}",
            self.catalog_number % 100_000,
            e.inclination.normalized().degrees(),
            e.raan.normalized().degrees(),
            (e.eccentricity * 1e7).round() as u32,
            e.arg_perigee.normalized().degrees(),
            e.mean_anomaly.normalized().degrees(),
            e.mean_motion_rev_day(),
            self.rev_number % 100_000,
        );
        l2.truncate(68);
        while l2.len() < 68 {
            l2.push(' ');
        }
        l2.push((b'0' + line_checksum(&l2)) as char);

        if self.name.is_empty() {
            format!("{l1}\n{l2}")
        } else {
            format!("{}\n{l1}\n{l2}", self.name)
        }
    }
}

/// Parses the TLE's compact exponential notation (`36371-4` → 0.36371e-4).
fn parse_exponential(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() || s == "00000-0" || s == "00000+0" {
        return Some(0.0);
    }
    let (sign, rest) = match s.strip_prefix('-') {
        Some(r) => (-1.0, r),
        None => (1.0, s.strip_prefix('+').unwrap_or(s)),
    };
    // Split mantissa and exponent at the last '+' or '-'.
    let split = rest.rfind(['+', '-'])?;
    let (mant, exp) = rest.split_at(split);
    let mantissa: f64 = format!("0.{}", mant.trim()).parse().ok()?;
    let exponent: i32 = exp.parse().ok()?;
    Some(sign * mantissa * 10f64.powi(exponent))
}

/// Formats a value in the TLE compact exponential notation (8 columns).
fn format_exponential(v: f64) -> String {
    if v == 0.0 {
        return " 00000-0".to_string();
    }
    let sign = if v < 0.0 { '-' } else { ' ' };
    let mut exp = v.abs().log10().floor() as i32 + 1;
    let mut mant = v.abs() / 10f64.powi(exp);
    let mut digits = (mant * 1e5).round() as u32;
    if digits >= 100_000 {
        digits /= 10;
        exp += 1;
        mant = v.abs() / 10f64.powi(exp);
        let _ = mant;
    }
    format!("{sign}{digits:05}{exp:+1}")
}

/// Formats the first mean-motion derivative (` .00000000` style, 10 cols).
fn format_mm_dot(v: f64) -> String {
    let sign = if v < 0.0 { '-' } else { ' ' };
    format!("{sign}.{:08}", (v.abs() * 1e8).round() as u64 % 100_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Real ISS element set (the canonical example set used by SGP4
    // implementations).
    const ISS: &str = "ISS (ZARYA)\n\
        1 25544U 98067A   20316.41516162  .00001589  00000-0  36371-4 0  9995\n\
        2 25544  51.6454 111.3004 0001372  94.0447  67.1080 15.49326316254113";

    #[test]
    fn parses_the_iss_element_set() {
        let tle = Tle::parse(ISS).expect("parse");
        assert_eq!(tle.name, "ISS (ZARYA)");
        assert_eq!(tle.catalog_number, 25544);
        assert_eq!(tle.intl_designator, "98067A");
        assert!((tle.elements.inclination.degrees() - 51.6454).abs() < 1e-9);
        assert!((tle.elements.raan.degrees() - 111.3004).abs() < 1e-9);
        assert!((tle.elements.eccentricity - 0.0001372).abs() < 1e-12);
        assert!((tle.elements.mean_motion_rev_day() - 15.493_263_16).abs() < 1e-6);
        // ISS altitude ≈ 420 km.
        let alt = tle.elements.perigee_altitude_m() / 1e3;
        assert!((alt - 420.0).abs() < 20.0, "ISS altitude {alt} km");
        assert!((tle.bstar - 0.36371e-4).abs() < 1e-12);
        assert_eq!(tle.rev_number, 25411);
    }

    #[test]
    fn iss_epoch_lands_in_november_2020() {
        let tle = Tle::parse(ISS).unwrap();
        // Day 316 of 2020 (leap year) is November 11.
        let nov11 = Epoch::from_calendar(2020, 11, 11, 0, 0, 0.0);
        let diff = tle.epoch.julian_date() - nov11.julian_date();
        assert!((0.0..1.0).contains(&diff), "diff {diff} days");
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let bad = ISS.replace("  9995", "  9996");
        assert!(matches!(
            Tle::parse(&bad),
            Err(TleError::Checksum { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_short_lines() {
        assert!(matches!(
            Tle::parse("1 25544\n2 25544"),
            Err(TleError::LineTooShort { .. })
        ));
    }

    #[test]
    fn rejects_swapped_lines() {
        let lines: Vec<&str> = ISS.lines().collect();
        let swapped = format!("{}\n{}", lines[2], lines[1]);
        assert!(matches!(
            Tle::parse(&swapped),
            Err(TleError::BadLineNumber { line: 1 })
        ));
    }

    #[test]
    fn rejects_catalog_mismatch() {
        // Change catalog number on line 2 and fix up its checksum.
        let lines: Vec<&str> = ISS.lines().collect();
        let mut l2 = lines[2].to_string();
        l2.replace_range(2..7, "25545");
        l2.truncate(68);
        let ck = line_checksum(&l2);
        l2.push((b'0' + ck) as char);
        let text = format!("{}\n{}", lines[1], l2);
        assert_eq!(Tle::parse(&text), Err(TleError::CatalogMismatch));
    }

    #[test]
    fn checksum_counts_minus_as_one() {
        // 68 spaces then nothing: checksum 0. One '-' → 1.
        let blank = " ".repeat(68);
        assert_eq!(line_checksum(&blank), 0);
        let dash = format!("-{}", " ".repeat(67));
        assert_eq!(line_checksum(&dash), 1);
    }

    #[test]
    fn exponential_field_round_trips() {
        for v in [0.0, 0.36371e-4, -0.12345e-2, 0.9e-6] {
            let s = format_exponential(v);
            assert_eq!(s.len(), 8, "{s:?}");
            let back = parse_exponential(&s).unwrap();
            assert!((back - v).abs() < v.abs() * 1e-4 + 1e-12, "{v} vs {back}");
        }
    }

    #[test]
    fn synthesized_tle_round_trips_through_parser() {
        let elements = KeplerianElements::circular(
            550e3,
            Angle::from_degrees(53.0),
            Angle::from_degrees(123.4),
            Angle::from_degrees(271.8),
        );
        let epoch = Epoch::from_calendar(2020, 11, 4, 6, 30, 0.0);
        let tle = Tle::synthesize("STARLINK-SIM 1", 70001, epoch, &elements);
        let text = tle.format();
        let back = Tle::parse(&text).expect("round-trip parse");
        assert_eq!(back.name, "STARLINK-SIM 1");
        assert_eq!(back.catalog_number, 70001);
        let b = &back.elements;
        assert!((b.inclination.degrees() - 53.0).abs() < 1e-3);
        assert!((b.raan.degrees() - 123.4).abs() < 1e-3);
        assert!((b.mean_anomaly.degrees() - 271.8).abs() < 1e-3);
        assert!(b.eccentricity < 1e-6);
        assert!((b.semi_major_axis_m - elements.semi_major_axis_m).abs() < 100.0);
        assert!((back.epoch.julian_date() - epoch.julian_date()).abs() < 1e-7);
    }

    #[test]
    fn formatted_lines_are_exactly_69_columns() {
        let elements = KeplerianElements::circular(
            1110e3,
            Angle::from_degrees(53.8),
            Angle::ZERO,
            Angle::ZERO,
        );
        let tle = Tle::synthesize("X", 1, Epoch::J2000, &elements);
        for line in tle.format().lines().skip(1) {
            assert_eq!(line.len(), 69, "{line:?}");
        }
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser must reject or accept arbitrary input without
            /// panicking.
            #[test]
            fn parser_never_panics_on_arbitrary_text(s in "\\PC{0,200}") {
                let _ = Tle::parse(&s);
            }

            /// Arbitrary bytes shaped like two 69-column lines must not
            /// panic either (exercises all the fixed-column slicing).
            #[test]
            fn parser_never_panics_on_line_shaped_noise(
                a in proptest::collection::vec(32u8..127, 69),
                b in proptest::collection::vec(32u8..127, 69),
            ) {
                let mut l1 = String::from_utf8(a).unwrap();
                let mut l2 = String::from_utf8(b).unwrap();
                l1.replace_range(0..1, "1");
                l2.replace_range(0..1, "2");
                let _ = Tle::parse(&format!("{l1}\n{l2}"));
            }

            /// Synthesized TLEs for any circular LEO shell always format
            /// to valid, re-parseable element sets.
            #[test]
            fn synthesis_round_trips_for_any_shell(
                alt_km in 300.0..2000.0f64,
                incl in 0.0..120.0f64,
                raan in 0.0..360.0f64,
                ma in 0.0..360.0f64,
                cat in 1u32..99_999,
            ) {
                let e = KeplerianElements::circular(
                    alt_km * 1e3,
                    Angle::from_degrees(incl),
                    Angle::from_degrees(raan),
                    Angle::from_degrees(ma),
                );
                let tle = Tle::synthesize("FUZZ", cat, Epoch::J2000, &e);
                let back = Tle::parse(&tle.format()).expect("round-trip");
                prop_assert_eq!(back.catalog_number, cat);
                prop_assert!((back.elements.semi_major_axis_m - e.semi_major_axis_m).abs() < 500.0);
                prop_assert!((back.elements.inclination.degrees() - incl).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn parsed_iss_propagates_to_sane_altitude() {
        let tle = Tle::parse(ISS).unwrap();
        let prop = crate::Propagator::new(tle.elements, tle.epoch);
        for t in [0.0, 1800.0, 3600.0] {
            let alt = prop.position_eci(t).0.norm() - leo_geo::consts::EARTH_RADIUS_MEAN_M;
            assert!((350e3..500e3).contains(&alt), "t={t}: alt {alt}");
        }
    }
}
