//! Fig 5: map of the "invisible" Starlink satellites against the 1,000
//! largest population centers.
//!
//! Prints an ASCII plate-carrée world map (cities `.`, invisible
//! satellites `o`) and writes both point layers as JSON for external
//! plotting. Run: `cargo run -p leo-bench --release --bin fig5`.

use leo_apps::spacenative::{invisible_count, invisible_positions};
use leo_bench::cli::Run;
use leo_cities::WorldCities;
use leo_constellation::presets;
use leo_core::InOrbitService;
use leo_geo::projection::AsciiMap;
use leo_geo::Geodetic;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Data {
    cities: Vec<(f64, f64)>,
    invisible_satellites: Vec<(f64, f64)>,
}

fn main() {
    let mut run = Run::start("fig5");
    let (service, cities) = run.phase("compile", || {
        (
            InOrbitService::new(presets::starlink_phase1()),
            WorldCities::load_at_least(1000),
        )
    });
    let sites: Vec<Geodetic> = cities.top_n_geodetic(1000);

    let (report, invisible) = run.phase("visibility", || {
        (
            invisible_count(&service, &sites, 0.0),
            invisible_positions(&service, &sites, 0.0),
        )
    });

    println!(
        "# Fig 5: invisible Starlink satellites ({} of {}) vs the 1000 largest cities",
        report.invisible, report.total_sats
    );
    println!("# '.' = city, 'o' = invisible satellite\n");

    let mut map = AsciiMap::new(144, 40);
    map.plot(sites.iter(), '.');
    map.plot(invisible.iter(), 'o');
    println!("{}", map.render());

    let south = invisible.iter().filter(|p| p.lat.degrees() < 0.0).count();
    println!(
        "\n# {south} of {} invisible satellites are in the southern hemisphere \
         (paper: \"the vast majority … South of most of the World's population\")",
        invisible.len()
    );

    run.write_results(&Fig5Data {
        cities: sites
            .iter()
            .map(|g| (g.lat.degrees(), g.lon.degrees()))
            .collect(),
        invisible_satellites: invisible
            .iter()
            .map(|g| (g.lat.degrees(), g.lon.degrees()))
            .collect(),
    });
    run.finish();
}
