//! The edge-workload benchmark: a serverless FaaS fleet on the
//! constellation, driven by a seeded diurnal + flash-crowd demand
//! scenario, reported as fleet utilization (busy vs standby vs idle
//! satellite-seconds) — the number behind the paper's idle-infrastructure
//! claim (Figs 4–5).
//!
//! Three identities are asserted in-binary on every run (and grepped by
//! CI):
//!
//! - scenario generation is a pure function of its config: a second
//!   generation is `==` the first;
//! - a service carrying an empty fault plan places byte-identically to
//!   a plain service;
//! - the settled-frontier candidate lists agree with the serving
//!   layer's per-cell nearest-server answer: one rotating cell per tick
//!   re-runs the demoted scan and its head must match (asserted inside
//!   the engine — reaching the report at all means it held).
//!
//! `results/edge.json` holds only thread-count-invariant rows; wall
//! times and counter rates live in `results/edge.meta.json`. Knobs:
//! `LEO_EDGE_CELLS`, `LEO_EDGE_TICKS`, `LEO_EDGE_SLOTS`.
//! Run: `cargo run -p leo-bench --release --bin fig_edge` (add `--quick`).

use leo_bench::cli::{Run, RunConfig};
use leo_constellation::presets;
use leo_core::{FailureModel, InOrbitService};
use leo_edge::{
    EdgeConfig, EdgeEngine, EdgeReport, FunctionSpec, QosSpec, Scenario, ScenarioConfig,
};
use leo_net::FaultConfig;

/// Tick spacing: one minute of orbital motion, matching the serve sweep.
const TICK_S: f64 = 60.0;

/// Annual per-satellite failure rate for the outage sweep — high enough
/// that deaths land inside a two-hour window.
const FAULT_RATE_PER_YEAR: f64 = 2000.0;

/// Seed for the outage schedule's death draws.
const FAULT_SEED: u64 = 42;

struct Knobs {
    cells: usize,
    ticks: usize,
    slots: u32,
}

/// Reads the edge knobs through the shared `RunConfig` warning path, so
/// a typo'd variable lands in `edge.meta.json` like a bad `LEO_THREADS`
/// does.
fn knobs(config: &mut RunConfig) -> Knobs {
    let quick = config.quick;
    let already_warned = config.warnings.len();
    let env = |name: &str| std::env::var(name).ok();
    let k = Knobs {
        cells: config.usize_knob(
            "LEO_EDGE_CELLS",
            env("LEO_EDGE_CELLS").as_deref(),
            if quick { 24 } else { 96 },
        ),
        ticks: config.usize_knob(
            "LEO_EDGE_TICKS",
            env("LEO_EDGE_TICKS").as_deref(),
            if quick { 12 } else { 120 },
        ),
        slots: config.usize_knob("LEO_EDGE_SLOTS", env("LEO_EDGE_SLOTS").as_deref(), 8) as u32,
    };
    for w in &config.warnings[already_warned..] {
        eprintln!("warning: {w}");
    }
    k
}

fn scenario_config(k: &Knobs) -> ScenarioConfig {
    ScenarioConfig {
        num_cells: k.cells,
        duration_s: k.ticks as f64 * TICK_S,
        tick_s: TICK_S,
        ..ScenarioConfig::default()
    }
}

fn functions() -> Vec<FunctionSpec> {
    vec![FunctionSpec::interactive(), FunctionSpec::analytics()]
}

fn main() {
    let mut config = RunConfig::from_env();
    let k = knobs(&mut config);
    let mut run = Run::with_config("edge", config);
    let edge_config = EdgeConfig {
        slots_per_server: k.slots,
        qos: QosSpec::default(),
        threads: run.threads(),
    };

    // Identity 1: the scenario is a pure function of its config.
    let scenario = run.phase("generate", || {
        let scenario = Scenario::generate(scenario_config(&k));
        let again = Scenario::generate(scenario_config(&k));
        assert_eq!(scenario, again, "scenario regeneration diverged");
        scenario
    });
    println!(
        "# edge scenario regeneration is deterministic ({} cells, {} flash crowds)",
        scenario.cells().len(),
        scenario.crowds().len()
    );

    // Main sweep: the full scenario on a plain service, candidates from
    // the settled frontier. The engine asserts a rotating sampled cell's
    // head against nearest_server_view on every tick.
    let report = run.phase("sweep", || {
        let service = InOrbitService::new(presets::starlink_550_only());
        EdgeEngine::new(&service, &scenario, functions(), edge_config).run()
    });
    println!("# frontier candidate heads match nearest_server_view (one sampled cell per tick)");

    // Identity 2: an empty fault plan must place byte-identically to
    // the plain service.
    run.phase("empty_plan_check", || {
        let service =
            InOrbitService::with_faults(presets::starlink_550_only(), FaultConfig::none());
        let empty = EdgeEngine::new(&service, &scenario, functions(), edge_config).run();
        assert_eq!(report, empty, "empty fault plan diverged from plain run");
        println!("# empty fault plan byte-identical to plain edge run");
    });

    // Outage sweep: a seeded death schedule, so placement, replica
    // repair, the masked frontier passes, and the sampled head check
    // all run through the masked routing path.
    let outage_report = run.phase("outage_sweep", || {
        let constellation = presets::starlink_550_only();
        let cfg = FaultConfig {
            schedule: Some(
                FailureModel {
                    annual_failure_rate: FAULT_RATE_PER_YEAR,
                    seed: FAULT_SEED,
                }
                .schedule(constellation.num_satellites()),
            ),
            ..FaultConfig::none()
        };
        let service = InOrbitService::with_faults(constellation, cfg);
        EdgeEngine::new(&service, &scenario, functions(), edge_config).run()
    });

    print_summary(&report, &outage_report);
    run.write_results(&EdgeResults {
        sweep: report,
        outage_sweep: outage_report,
    });
    let manifest = run.finish();
    if let Some(rate) = manifest.rate_per_sec("edge.ticks", "sweep") {
        println!("# throughput: {rate:.1} ticks/sec over the sweep phase");
    }
    if !manifest.series().is_empty() {
        println!(
            "# timeseries: {} series in the manifest ({} work, {} timing)",
            manifest.series().len(),
            manifest.series().iter().filter(|s| !s.timing).count(),
            manifest.series().iter().filter(|s| s.timing).count(),
        );
    }
}

/// The edge result file: thread-count-invariant rows only; wall times
/// and counter rates live in the manifest.
#[derive(serde::Serialize)]
struct EdgeResults {
    sweep: EdgeReport,
    outage_sweep: EdgeReport,
}

fn print_summary(report: &EdgeReport, outage: &EdgeReport) {
    let total = report.busy_sat_seconds + report.standby_sat_seconds + report.idle_sat_seconds;
    println!(
        "# fleet utilization: {:.2}% busy, {:.2}% standby, {:.2}% idle over {} sats x {} ticks",
        100.0 * report.utilization,
        100.0 * report.standby_sat_seconds / total,
        100.0 * report.idle_sat_seconds / total,
        report.num_sats,
        report.ticks.len()
    );
    println!(
        "# busy {:.0} / standby {:.0} / idle {:.0} satellite-seconds",
        report.busy_sat_seconds, report.standby_sat_seconds, report.idle_sat_seconds
    );
    println!(
        "# demand: {} invocations, {} served ({:.2}%), {} migrations, {} cold starts, {} replica repairs",
        report.total_demand,
        report.total_served,
        100.0 * report.service_ratio,
        report.total_migrations,
        report.total_cold_starts,
        report.total_replica_repairs
    );
    println!(
        "{:>8} {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8} {:>18}",
        "t", "busy", "standby", "demand", "served", "migr", "cold", "repairs", "checksum"
    );
    for t in &report.ticks {
        println!(
            "{:>8.0} {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>8} {:>18x}",
            t.time_s,
            t.busy_sats,
            t.standby_sats,
            t.demand,
            t.served,
            t.migrations,
            t.cold_starts,
            t.replica_repairs,
            t.placement_checksum
        );
    }
    println!(
        "# outage sweep: {:.2}% served (vs {:.2}% plain), {} replica repairs (vs {}), {} cold starts (vs {})",
        100.0 * outage.service_ratio,
        100.0 * report.service_ratio,
        outage.total_replica_repairs,
        report.total_replica_repairs,
        outage.total_cold_starts,
        report.total_cold_starts
    );
}
