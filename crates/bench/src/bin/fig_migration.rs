//! Fig 6 hand-offs under contention: Sticky-vs-naive state migration
//! timed through the congestion-aware packet engine.
//!
//! The paper's §5 waves the migration cost away — "the high
//! inter-satellite bandwidth could accommodate" moving meetup-server
//! state — and §3.3 concedes in a footnote that EO bulk downloads
//! compete with user traffic on the same links. This binary puts the two
//! claims in one place: it predicts each policy's hand-off sequence over
//! the horizon ([`predict_servers`]), then times every hand-off's state
//! transfer with [`migrate_via_packets`] — real ISL routes from the
//! constellation geometry, drop-tail queues, DCTCP-style congestion
//! control, and open-loop cross-traffic at a sweep of load levels —
//! instead of the analytic `uncontended_transfer_s` bound.
//!
//! Sweeps state size × cross-traffic load × policy (Sticky's few long
//! serving intervals vs MinMax's ~4× more frequent hand-offs — the Fig 6
//! comparison, now with each hand-off carrying a congestion-priced
//! transfer). Run: `cargo run -p leo-bench --release --bin fig_migration`
//! (add `--quick`). Knob: `LEO_MIG_HANDOFFS` caps the hand-offs timed
//! per cell.
//!
//! Determinism contract: `results/migration.json` is byte-identical
//! across `LEO_THREADS` and `LEO_OBS` levels; the `net.pkt.*` counters
//! and time series are accumulated on the sequential fold over the
//! cell grid, so the manifest's work-done metrics are thread-invariant
//! too. CI greps the `#`-prefixed identity markers printed below.

use leo_bench::cli::{Run, RunConfig};
use leo_constellation::{presets, SatId};
use leo_core::replication::{
    migrate_via_packets, predict_servers, MigrationNetConfig, MigrationOutcome,
};
use leo_core::{InOrbitService, Policy};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_sim::parallel_map;
use serde::Serialize;

/// One timed hand-off transfer.
#[derive(Serialize)]
struct HandoffTransfer {
    from: SatId,
    to: SatId,
    at_s: f64,
    outcome: MigrationOutcome,
}

/// One (policy × state size × cross-load) cell of the sweep.
#[derive(Serialize)]
struct MigrationCell {
    policy: String,
    size_bytes: f64,
    cross_load: f64,
    /// Hand-offs the policy's predicted serving sequence contains over
    /// the whole horizon.
    predicted_handoffs: usize,
    /// Predicted hand-off rate, per hour — the Fig 6 axis.
    handoff_rate_per_hour: f64,
    /// The timed subset (first `LEO_MIG_HANDOFFS` hand-offs).
    measured: Vec<HandoffTransfer>,
    completed: usize,
    mean_duration_s: Option<f64>,
    max_duration_s: Option<f64>,
    mean_analytic_packet_s: f64,
    mean_analytic_message_s: f64,
    total_retransmissions: u64,
    total_dropped: u64,
    total_ecn_marked: u64,
    total_route_changes: usize,
}

#[derive(Serialize)]
struct MigrationResults {
    net: MigrationNetConfig,
    horizon_s: f64,
    step_s: f64,
    cells: Vec<MigrationCell>,
}

/// The Fig 6 West-Africa user trio.
fn users() -> Vec<GroundEndpoint> {
    vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ]
}

fn sizes(quick: bool) -> Vec<f64> {
    if quick {
        vec![10e6, 100e6]
    } else {
        vec![10e6, 100e6, 1e9]
    }
}

fn loads(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.9]
    } else {
        vec![0.0, 0.5, 0.9]
    }
}

fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

fn main() {
    let mut config = RunConfig::from_env();
    let max_handoffs = {
        let default = if config.quick { 2 } else { 3 };
        let raw = std::env::var("LEO_MIG_HANDOFFS").ok();
        config.usize_knob("LEO_MIG_HANDOFFS", raw.as_deref(), default)
    };
    let mut run = Run::with_config("migration", config);
    let (quick, threads) = (run.quick(), run.threads());
    let horizon_s = if quick { 1800.0 } else { 3600.0 };
    let step_s = 15.0;
    let net_cfg = MigrationNetConfig::default();
    let policies = [Policy::sticky_default(), Policy::MinMax];

    let service = InOrbitService::new(presets::starlink_550_only());
    let users = users();

    // Each policy's hand-off sequence over the horizon: (from, to, when).
    let handoffs: Vec<Vec<(SatId, SatId, f64)>> = run.phase("predict", || {
        policies
            .iter()
            .map(|&p| {
                let intervals = predict_servers(&service, &users, p, 0.0, horizon_s, step_s);
                intervals
                    .windows(2)
                    .map(|w| (w[0].server, w[1].server, w[1].from_s))
                    .collect()
            })
            .collect()
    });

    // Fan the (policy × size × load × hand-off) grid across the pool.
    // Every transfer is independent; the shared snapshot cache only
    // memoizes deterministic values.
    let combos: Vec<(usize, f64, f64, SatId, SatId, f64)> = (0..policies.len())
        .flat_map(|pi| {
            let hs = &handoffs[pi];
            sizes(quick).into_iter().flat_map(move |size| {
                loads(quick).into_iter().flat_map(move |load| {
                    hs.iter()
                        .take(max_handoffs)
                        .map(move |&(from, to, at)| (pi, size, load, from, to, at))
                })
            })
        })
        .collect();
    let outcomes: Vec<MigrationOutcome> = run.phase("transfers", || {
        parallel_map(combos.clone(), threads, |(_, size, load, from, to, at)| {
            let cfg = MigrationNetConfig {
                cross_load_frac: *load,
                ..net_cfg
            };
            migrate_via_packets(&service, *from, *to, *at, *size, &cfg)
        })
    });

    // Sequential fold in grid order: build the cells and accumulate the
    // net.pkt.* counters / time series here — never inside the workers —
    // so the manifest's work-done metrics are thread-invariant.
    let mut cells: Vec<MigrationCell> = Vec::new();
    run.phase("fold", || {
        for pi in 0..policies.len() {
            let predicted = handoffs[pi].len();
            let rate_per_hour = predicted as f64 / horizon_s * 3600.0;
            for size in sizes(quick) {
                for load in loads(quick) {
                    let measured: Vec<HandoffTransfer> = combos
                        .iter()
                        .zip(&outcomes)
                        .filter(|((ci, cs, cl, ..), _)| *ci == pi && *cs == size && *cl == load)
                        .map(|(&(_, _, _, from, to, at), o)| {
                            leo_obs::counter!("net.pkt.transfers").incr();
                            leo_obs::counter!("net.pkt.transmissions").add(o.transmissions);
                            leo_obs::counter!("net.pkt.retransmissions").add(o.retransmissions);
                            leo_obs::counter!("net.pkt.drops").add(o.dropped);
                            leo_obs::counter!("net.pkt.ecn_marks").add(o.ecn_marked);
                            leo_obs::counter!("net.pkt.route_changes").add(o.route_changes as u64);
                            if let Some(d) = o.duration_s {
                                leo_obs::timeseries!("net.pkt.transfer_s").sample(at, d);
                                leo_obs::timeseries!("net.pkt.transfer_retx")
                                    .sample(at, o.retransmissions as f64);
                            }
                            HandoffTransfer {
                                from,
                                to,
                                at_s: at,
                                outcome: *o,
                            }
                        })
                        .collect();
                    let durations: Vec<f64> = measured
                        .iter()
                        .filter_map(|t| t.outcome.duration_s)
                        .collect();
                    cells.push(MigrationCell {
                        policy: policies[pi].name().into(),
                        size_bytes: size,
                        cross_load: load,
                        predicted_handoffs: predicted,
                        handoff_rate_per_hour: rate_per_hour,
                        completed: durations.len(),
                        mean_duration_s: mean(&durations),
                        max_duration_s: durations.iter().copied().reduce(f64::max),
                        mean_analytic_packet_s: mean(
                            &measured
                                .iter()
                                .map(|t| t.outcome.analytic_packet_s)
                                .collect::<Vec<_>>(),
                        )
                        .unwrap_or(0.0),
                        mean_analytic_message_s: mean(
                            &measured
                                .iter()
                                .map(|t| t.outcome.analytic_message_s)
                                .collect::<Vec<_>>(),
                        )
                        .unwrap_or(0.0),
                        total_retransmissions: measured
                            .iter()
                            .map(|t| t.outcome.retransmissions)
                            .sum(),
                        total_dropped: measured.iter().map(|t| t.outcome.dropped).sum(),
                        total_ecn_marked: measured.iter().map(|t| t.outcome.ecn_marked).sum(),
                        total_route_changes: measured.iter().map(|t| t.outcome.route_changes).sum(),
                        measured,
                    });
                }
            }
        }
    });

    // Identity checks CI greps for.
    run.phase("identity_checks", || {
        // 1. Uncontended transfers must land inside the analytic bracket:
        //    at or above the packetized (pipelined) bound, and within
        //    tolerance of it — never slower than the message-level
        //    store-and-forward bound by more than the slack.
        let mut anchored = 0;
        for cell in cells.iter().filter(|c| c.cross_load == 0.0) {
            for t in &cell.measured {
                let o = &t.outcome;
                let d = o.duration_s.expect("uncontended transfer must complete");
                assert!(
                    d >= o.analytic_packet_s - 1e-9,
                    "measured {d} beat the analytic floor {}",
                    o.analytic_packet_s
                );
                assert!(
                    d <= o.analytic_packet_s * 1.15 + 1e-6,
                    "uncontended measured {d} strayed from the packetized bound {} \
                     (message-level bound {})",
                    o.analytic_packet_s,
                    o.analytic_message_s
                );
                assert_eq!(o.retransmissions, 0, "uncontended transfer retransmitted");
                anchored += 1;
            }
        }
        println!("# uncontended transfers match the analytic bound within tolerance ({anchored} checked)");

        // 2. Contention is never free: for each (policy, size) the mean
        //    transfer at the heaviest load is at least the uncontended mean.
        let max_load = loads(quick).into_iter().fold(0.0_f64, f64::max);
        for policy in &policies {
            for size in sizes(quick) {
                let pick = |l: f64| {
                    cells
                        .iter()
                        .find(|c| {
                            c.policy == policy.name() && c.size_bytes == size && c.cross_load == l
                        })
                        .and_then(|c| c.mean_duration_s)
                };
                if let (Some(idle), Some(busy)) = (pick(0.0), pick(max_load)) {
                    assert!(
                        busy >= idle,
                        "load {max_load} mean {busy} faster than uncontended {idle}"
                    );
                }
            }
        }
        println!("# contention never speeds up a transfer");

        // 3. Rerun the most contended cell's first transfer and require a
        //    byte-identical outcome: the packet engine is deterministic.
        if let Some((combo, prior)) = combos
            .iter()
            .zip(&outcomes)
            .rfind(|((_, _, load, ..), _)| *load == max_load)
        {
            let (_, size, load, from, to, at) = *combo;
            let cfg = MigrationNetConfig {
                cross_load_frac: load,
                ..net_cfg
            };
            let again = migrate_via_packets(&service, from, to, at, size, &cfg);
            let a = serde_json::to_string(prior).expect("serialize");
            let b = serde_json::to_string(&again).expect("serialize");
            assert_eq!(a, b, "packet-level migration diverged between reruns");
        }
        println!("# migration outcomes identical across reruns");
    });

    let sticky_rate = cells
        .iter()
        .find(|c| c.policy == policies[0].name())
        .map(|c| c.handoff_rate_per_hour)
        .unwrap_or(0.0);
    let minmax_rate = cells
        .iter()
        .find(|c| c.policy == policies[1].name())
        .map(|c| c.handoff_rate_per_hour)
        .unwrap_or(0.0);
    println!(
        "# Fig 6 under contention: sticky {sticky_rate:.1} vs minmax {minmax_rate:.1} handoffs/hour, \
         {} transfers timed",
        combos.len()
    );
    println!(
        "{:>8} {:>10} {:>6} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "policy", "size", "load", "ho/hr", "mean xfer", "analytic", "retx", "drops"
    );
    for c in &cells {
        println!(
            "{:>8} {:>8.0}MB {:>6.2} {:>8.1} {:>10.4} s {:>10.4} s {:>8} {:>8}",
            c.policy,
            c.size_bytes / 1e6,
            c.cross_load,
            c.handoff_rate_per_hour,
            c.mean_duration_s.unwrap_or(f64::NAN),
            c.mean_analytic_packet_s,
            c.total_retransmissions,
            c.total_dropped,
        );
    }

    run.write_results(&MigrationResults {
        net: net_cfg,
        horizon_s,
        step_s,
        cells,
    });
    run.finish();
}
