//! Sensitivity sweep: in-orbit meetup advantage vs. user-group spread.
//!
//! §3.2 argues in-orbit meetup servers help both compact groups far from
//! data centers and dispersed groups no data center suits. This sweep
//! maps the whole regime: two users separated by increasing distances
//! (centered on a data-center desert in the South Atlantic, then on a
//! data-center-rich corridor in Europe), comparing the best terrestrial
//! option against the best in-orbit server.
//!
//! Run: `cargo run -p leo-bench --release --bin spread_sweep`.

use leo_bench::write_results;
use leo_constellation::presets;
use leo_core::meetup::{azure_sites, compare};
use leo_core::InOrbitService;
use leo_geo::spherical::intermediate_point;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    region: String,
    separation_km: f64,
    hybrid_rtt_ms: Option<f64>,
    in_orbit_rtt_ms: Option<f64>,
    orbit_wins: Option<bool>,
}

fn sweep(service: &InOrbitService, region: &str, a: Geodetic, b: Geodetic, rows: &mut Vec<Row>) {
    let sites = azure_sites();
    println!("\n# region: {region}");
    println!(
        "{:>14} {:>12} {:>12} {:>8}",
        "separation", "hybrid", "in-orbit", "winner"
    );
    for &t in &[0.02f64, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0] {
        // Users symmetric about the midpoint, spread grows with t.
        let u1 = intermediate_point(a, b, 0.5 - t / 2.0);
        let u2 = intermediate_point(a, b, 0.5 + t / 2.0);
        let sep_km = leo_geo::spherical::great_circle_distance_m(u1, u2) / 1e3;
        let users = vec![GroundEndpoint::new(0, u1), GroundEndpoint::new(1, u2)];
        match compare(service, &users, &sites, 0.0) {
            Some(cmp) => {
                let wins = cmp.in_orbit_rtt_ms < cmp.hybrid_rtt_ms;
                println!(
                    "{:>11.0} km {:>9.1} ms {:>9.1} ms {:>8}",
                    sep_km,
                    cmp.hybrid_rtt_ms,
                    cmp.in_orbit_rtt_ms,
                    if wins { "orbit" } else { "ground" }
                );
                rows.push(Row {
                    region: region.into(),
                    separation_km: sep_km,
                    hybrid_rtt_ms: Some(cmp.hybrid_rtt_ms),
                    in_orbit_rtt_ms: Some(cmp.in_orbit_rtt_ms),
                    orbit_wins: Some(wins),
                });
            }
            None => {
                println!("{sep_km:>11.0} km {:>12} {:>12} {:>8}", "-", "-", "-");
                rows.push(Row {
                    region: region.into(),
                    separation_km: sep_km,
                    hybrid_rtt_ms: None,
                    in_orbit_rtt_ms: None,
                    orbit_wins: None,
                });
            }
        }
    }
}

fn main() {
    let service = InOrbitService::new(presets::starlink_phase1());
    let mut rows = Vec::new();

    // A data-center desert: the Gulf of Guinea / West-African corridor.
    sweep(
        &service,
        "data-center desert (Dakar - Kinshasa axis)",
        Geodetic::ground(14.72, -17.47),
        Geodetic::ground(-4.44, 15.27),
        &mut rows,
    );

    // A data-center-rich corridor: Dublin - Warsaw.
    sweep(
        &service,
        "data-center corridor (Dublin - Warsaw axis)",
        Geodetic::ground(53.35, -6.26),
        Geodetic::ground(52.23, 21.01),
        &mut rows,
    );

    println!(
        "\n# In the desert the in-orbit server wins by ~4-10x at every spread.\n\
         # In the corridor the hybrid option is close behind (both paths pay\n\
         # the same satellite bounce), and the in-orbit edge narrows as the\n\
         # group spreads toward the width of the data-center footprint."
    );
    write_results("spread_sweep", &rows);
}
