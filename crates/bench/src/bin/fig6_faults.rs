//! Fig 6 under faults: hand-off behavior when satellites die and rain
//! fades the ground segment.
//!
//! Sweeps annual server-failure rate × rain climate and reruns the Fig 6
//! sessions (Sticky vs MinMax) under each scenario through the fault
//! layer: dead satellites leave the ISL mesh and every candidate set,
//! and the rain fade raises the elevation a user link needs to close.
//! The zero-fault/clear-sky cell doubles as the regression anchor: it is
//! re-run through a plain (fault-free) service and the two serialized
//! results must match byte for byte, which CI greps for. Run:
//! `cargo run -p leo-bench --release --bin fig6_faults` (add `--quick`).

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::session::run_session;
use leo_core::{Cdf, FailureModel, InOrbitService, Policy, SessionConfig};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_net::weather::{LinkBudget, RainClimate};
use leo_net::{FaultConfig, RainFade};
use leo_sim::parallel_map;
use serde::Serialize;

/// Exceedance probability for the rain rate each climate contributes: a
/// solidly rainy episode (rain this hard ~1 % of the year), not the
/// annual average drizzle. On the consumer Ka budget this pushes the
/// tropical access mask to ~37° elevation — degraded but not dark, which
/// is the regime where fade-forced hand-offs are visible. At 0.5 % the
/// tropical mask climbs past 60° and dispersed groups lose common
/// visibility outright.
const RAIN_EXCEEDANCE: f64 = 0.01;

/// Seed for the per-satellite exponential death draws.
const SEED: u64 = 42;

#[derive(Serialize)]
struct FaultCell {
    annual_failure_rate: f64,
    climate: String,
    rain_rate_mm_h: f64,
    policy: String,
    handoff_count: usize,
    /// Fresh acquisitions (`from == None`): 1 per session plus 1 per
    /// service interruption — rain outages show up here and in
    /// `served_ticks`, not in `handoff_count`.
    acquisitions: usize,
    median_interval_s: Option<f64>,
    mean_group_rtt_ms: Option<f64>,
    served_ticks: usize,
    intervals_s: Vec<f64>,
}

/// Two of the Fig 6 user groups — the paper's West Africa trio and a
/// South-East Asia trio, both sitting under climates where the tropical
/// rain scenario is the physically interesting one.
fn groups() -> Vec<Vec<GroundEndpoint>> {
    let mk = |pts: &[(f64, f64)]| {
        pts.iter()
            .enumerate()
            .map(|(i, &(lat, lon))| GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)))
            .collect::<Vec<_>>()
    };
    vec![
        mk(&[(9.06, 7.49), (3.87, 11.52), (6.52, 3.38)]),
        mk(&[(1.35, 103.82), (3.139, 101.69), (-6.21, 106.85)]),
    ]
}

fn climates(quick: bool) -> Vec<(&'static str, Option<RainClimate>)> {
    if quick {
        vec![("clear", None), ("tropical", Some(RainClimate::TROPICAL))]
    } else {
        vec![
            ("clear", None),
            ("arid", Some(RainClimate::ARID)),
            ("temperate", Some(RainClimate::TEMPERATE)),
            ("tropical", Some(RainClimate::TROPICAL)),
        ]
    }
}

fn rates(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 2000.0]
    } else {
        vec![0.0, 500.0, 2000.0, 8000.0]
    }
}

fn fault_config(num_sats: usize, rate: f64, climate: Option<&RainClimate>) -> FaultConfig {
    let mut cfg = FaultConfig::none();
    // Rate 0 still installs the (all-INFINITY) schedule so the zero cell
    // exercises the masked entry points' empty-plan fast path.
    cfg.schedule = Some(
        FailureModel {
            annual_failure_rate: rate,
            seed: SEED,
        }
        .schedule(num_sats),
    );
    if let Some(c) = climate {
        cfg.rain = Some(RainFade::at_exceedance(
            LinkBudget::CONSUMER,
            c,
            RAIN_EXCEEDANCE,
        ));
    }
    cfg
}

fn main() {
    let mut run = Run::start("fig6_faults");
    let (quick, threads) = (run.quick(), run.threads());
    let session_cfg = SessionConfig {
        start_s: 0.0,
        duration_s: if quick { 900.0 } else { 3600.0 },
        tick_s: if quick { 15.0 } else { 5.0 },
    };
    let policies = [Policy::MinMax, Policy::sticky_default()];

    // One service per (rate, climate) cell: the fault scenario is baked
    // into the service so its snapshot cache holds the masked weights.
    let scenarios: Vec<(f64, &'static str, Option<RainClimate>)> = rates(quick)
        .into_iter()
        .flat_map(|r| climates(quick).into_iter().map(move |(n, c)| (r, n, c)))
        .collect();
    let services: Vec<InOrbitService> = run.phase("compile", || {
        scenarios
            .iter()
            .map(|(rate, _, climate)| {
                let constellation = presets::starlink_550_only();
                let cfg = fault_config(constellation.num_satellites(), *rate, climate.as_ref());
                InOrbitService::with_faults(constellation, cfg)
            })
            .collect()
    });

    // Fan every (scenario × policy × group) session across the pool;
    // sessions of one scenario share that scenario's snapshot cache.
    let combos: Vec<(usize, Policy, Vec<GroundEndpoint>)> = (0..scenarios.len())
        .flat_map(|s| {
            policies
                .iter()
                .flat_map(move |&p| groups().into_iter().map(move |g| (s, p, g)))
        })
        .collect();
    let sessions = run.phase("sessions", || {
        parallel_map(combos.clone(), threads, |(s, policy, users)| {
            run_session(&services[*s], users, *policy, &session_cfg)
        })
    });

    // Aggregate per (scenario, policy) across groups.
    let mut cells: Vec<FaultCell> = Vec::new();
    for (s, &(rate, climate_name, ref climate)) in scenarios.iter().enumerate() {
        let rain_rate = climate
            .as_ref()
            .map(|c| c.rain_rate_at_exceedance(RAIN_EXCEEDANCE))
            .unwrap_or(0.0);
        for &policy in &policies {
            let runs: Vec<_> = combos
                .iter()
                .zip(&sessions)
                .filter(|((ci, cp, _), _)| *ci == s && *cp == policy)
                .map(|(_, r)| r)
                .collect();
            let intervals: Vec<f64> = runs
                .iter()
                .flat_map(|r| r.times_between_handoffs())
                .collect();
            let rtt: Vec<(f64, f64)> = runs
                .iter()
                .flat_map(|r| r.rtt_samples.iter().copied())
                .collect();
            let cdf = Cdf::new(intervals);
            cells.push(FaultCell {
                annual_failure_rate: rate,
                climate: climate_name.to_string(),
                rain_rate_mm_h: rain_rate,
                policy: policy.name().into(),
                handoff_count: runs.iter().map(|r| r.handoff_count()).sum(),
                acquisitions: runs
                    .iter()
                    .map(|r| r.events.iter().filter(|e| e.from.is_none()).count())
                    .sum(),
                median_interval_s: cdf.median(),
                mean_group_rtt_ms: if rtt.is_empty() {
                    None
                } else {
                    Some(rtt.iter().map(|&(_, r)| r).sum::<f64>() / rtt.len() as f64)
                },
                served_ticks: rtt.len(),
                intervals_s: cdf.samples().to_vec(),
            });
        }
    }

    // Regression anchor: the zero-fault/clear-sky scenario must be
    // byte-identical to a service with no fault layer at all.
    run.phase("baseline_check", || {
        let baseline = InOrbitService::new(presets::starlink_550_only());
        let zero = scenarios
            .iter()
            .position(|&(r, n, _)| r == 0.0 && n == "clear")
            .expect("zero cell");
        for &policy in &policies {
            for users in groups() {
                let plain = run_session(&baseline, &users, policy, &session_cfg);
                let faulted = run_session(&services[zero], &users, policy, &session_cfg);
                let a = serde_json::to_string(&plain).expect("serialize");
                let b = serde_json::to_string(&faulted).expect("serialize");
                assert_eq!(a, b, "empty FaultPlan diverged from the no-plan baseline");
            }
        }
        println!("# empty FaultPlan output identical to no-plan baseline");
    });

    println!(
        "# Fig 6 under faults: {} scenarios x {} policies, {} user groups, {:.0}-s ticks",
        scenarios.len(),
        policies.len(),
        groups().len(),
        session_cfg.tick_s
    );
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>6} {:>12} {:>10}",
        "rate/yr", "climate", "policy", "handoffs", "acq", "median int", "mean rtt"
    );
    for c in &cells {
        println!(
            "{:>10.0} {:>10} {:>8} {:>10} {:>6} {:>10.0} s {:>7.2} ms",
            c.annual_failure_rate,
            c.climate,
            c.policy,
            c.handoff_count,
            c.acquisitions,
            c.median_interval_s.unwrap_or(f64::NAN),
            c.mean_group_rtt_ms.unwrap_or(f64::NAN),
        );
    }

    run.write_results(&cells);
    run.finish();
}
