//! Fig 3: meetup-server placement — best terrestrial (Azure) data center
//! reached through the constellation vs. best in-orbit satellite-server,
//! plus the Sticky latency premium quoted in §5.
//!
//! Paper numbers: West Africa ×3 on Starlink — 46 ms hybrid vs 16 ms
//! in-orbit (~3×); South-Central-US / Brazil-South / Australia-East on
//! Kuiper — 97 ms vs 66 ms; Sticky costs +1.4 ms on the West Africa
//! group. Run: `cargo run -p leo-bench --release --bin fig3`.

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::meetup::{azure_sites, compare};
use leo_core::session::run_session;
use leo_core::{InOrbitService, Policy, SessionConfig};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_sim::{parallel_map, TimeSweep};
use serde::Serialize;

#[derive(Serialize)]
struct Scenario {
    name: String,
    constellation: String,
    users: Vec<String>,
    best_site: String,
    hybrid_rtt_ms: f64,
    in_orbit_rtt_ms: f64,
    improvement: f64,
    paper_hybrid_ms: f64,
    paper_in_orbit_ms: f64,
}

fn endpoints(users: &[(&str, f64, f64)]) -> Vec<GroundEndpoint> {
    users
        .iter()
        .enumerate()
        .map(|(i, &(_, lat, lon))| GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)))
        .collect()
}

fn run_scenario(
    name: &str,
    service: &InOrbitService,
    users: &[(&str, f64, f64)],
    paper: (f64, f64),
    quick: bool,
    threads: usize,
) -> Scenario {
    let eps = endpoints(users);
    // Worst case over time samples, matching the paper's "maximum value
    // across these measurements" methodology. The samples are
    // independent, so the sweep engine propagates the instants once and
    // fans the comparisons across the pool.
    let samples = if quick { 3 } else { 13 };
    let times: Vec<f64> = (0..samples).map(|i| i as f64 * 600.0).collect();
    let sweep = TimeSweep::new(service, times.iter().copied()).with_threads(threads);
    let comparisons = sweep.run(times, |&t, _| compare(service, &eps, &azure_sites(), t));
    comparisons
        .into_iter()
        .flatten()
        .map(|cmp| Scenario {
            name: name.into(),
            constellation: service.constellation().name().into(),
            users: users.iter().map(|&(n, _, _)| n.to_string()).collect(),
            best_site: cmp.best_site.clone(),
            hybrid_rtt_ms: cmp.hybrid_rtt_ms,
            in_orbit_rtt_ms: cmp.in_orbit_rtt_ms,
            improvement: cmp.improvement_factor(),
            paper_hybrid_ms: paper.0,
            paper_in_orbit_ms: paper.1,
        })
        .max_by(|a, b| a.in_orbit_rtt_ms.total_cmp(&b.in_orbit_rtt_ms))
        .expect("scenario never served")
}

fn main() {
    let mut run = Run::start("fig3");
    let (quick, threads) = (run.quick(), run.threads());
    let (starlink, kuiper) = run.phase("compile", || {
        (
            InOrbitService::new(presets::starlink_phase1_conservative()),
            InOrbitService::new(presets::kuiper()),
        )
    });

    let west_africa = [
        ("Abuja", 9.06, 7.49),
        ("Yaounde", 3.87, 11.52),
        ("Lagos", 6.52, 3.38),
    ];
    let tri_continent = [
        ("South Central US", 29.42, -98.49),
        ("Brazil South", -23.55, -46.63),
        ("Australia East", -33.87, 151.21),
    ];

    let scenarios = run.phase("meetup_comparison", || {
        vec![
            run_scenario(
                "West Africa x3",
                &starlink,
                &west_africa,
                (46.0, 16.0),
                quick,
                threads,
            ),
            run_scenario(
                "Tri-continent x3",
                &kuiper,
                &tri_continent,
                (97.0, 66.0),
                quick,
                threads,
            ),
        ]
    });

    println!("# Fig 3: meetup-server placement (worst case over sampled instants)");
    println!(
        "{:<18} {:<18} {:>22} {:>12} {:>12} {:>8}",
        "scenario", "constellation", "best terrestrial", "hybrid", "in-orbit", "factor"
    );
    for s in &scenarios {
        println!(
            "{:<18} {:<18} {:>22} {:>9.1} ms {:>9.1} ms {:>7.1}x",
            s.name, s.constellation, s.best_site, s.hybrid_rtt_ms, s.in_orbit_rtt_ms, s.improvement
        );
        println!(
            "{:<18} {:<18} {:>22} {:>9.1} ms {:>9.1} ms {:>7.1}x   <- paper",
            "",
            "",
            "",
            s.paper_hybrid_ms,
            s.paper_in_orbit_ms,
            s.paper_hybrid_ms / s.paper_in_orbit_ms
        );
    }

    // §5's Sticky premium on the West Africa group.
    let eps = endpoints(&west_africa);
    let svc_sessions = InOrbitService::new(presets::starlink_phase1_conservative());
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: if quick { 600.0 } else { 3600.0 },
        tick_s: 10.0,
    };
    // Both policy runs tick the same schedule; run them concurrently over
    // the shared snapshot cache.
    let sessions = run.phase("sticky_premium", || {
        parallel_map(
            vec![Policy::MinMax, Policy::sticky_default()],
            threads,
            |&policy| run_session(&svc_sessions, &eps, policy, &cfg),
        )
    });
    let premium = sessions[1].mean_group_rtt_ms().unwrap_or(f64::NAN)
        - sessions[0].mean_group_rtt_ms().unwrap_or(f64::NAN);
    println!(
        "\n# Sticky latency premium on the West Africa group: {premium:+.2} ms (paper: +1.4 ms)"
    );

    run.write_results(&scenarios);
    run.finish();
}
