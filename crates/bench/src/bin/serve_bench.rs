//! The serving-layer benchmark: millions of "nearest server now"
//! queries over a snapshot sweep, on delta-refreshed routing state.
//!
//! Synthesizes a population-weighted user set from the world-cities
//! catalog, shards it by latitude band, and answers every user at every
//! instant of the schedule through `leo-serve`'s **frontier-primary**
//! path: one settled satellite-major pass per shard per snapshot,
//! warm-started across snapshots, instead of one visibility scan per
//! user. Identities asserted in-binary on every run (grepped by CI):
//!
//! - the delta weight refresh is bit-identical to the full refresh at
//!   every snapshot, chained across the sweep;
//! - on sampled snapshots (`LEO_SERVE_VALIDATE_EVERY`, every snapshot
//!   in quick mode, every 4th in full mode) one shard's settled answers
//!   are re-derived through the demoted per-user scans *and* the
//!   engine's multi-source arg-min frontier, all three bitwise equal;
//! - a service carrying an empty fault plan serves byte-identically to
//!   a plain service, and the masked delta path holds under a real
//!   outage schedule.
//!
//! `results/serve.json` holds only thread-count-invariant rows; the
//! queries/sec headline lives in `results/serve.meta.json` (counter
//! `serve.queries` over the `sweep` phase — run with `LEO_OBS=1`) and
//! is what the CI perf gate diffs, alongside the `engine.frontier.*` /
//! `serve.frontier_*` work counters. The validation cadence is recorded
//! in the manifest as counter `serve.frontier_validate_every`. Knobs:
//! `LEO_SERVE_USERS`, `LEO_SERVE_SNAPSHOTS`, `LEO_SERVE_BAND_DEG`,
//! `LEO_SERVE_SHARD_MAX`, `LEO_SERVE_VALIDATE_EVERY`.
//! Run: `cargo run -p leo-bench --release --bin serve_bench`
//! (add `--quick`).

use leo_bench::cli::{Run, RunConfig};
use leo_constellation::presets;
use leo_core::{FailureModel, InOrbitService};
use leo_net::FaultConfig;
use leo_serve::{synthesize_users, ServeConfig, ServeEngine, SweepReport, USER_SEED};

/// Snapshot spacing. One minute of orbital motion moves every +Grid
/// edge, so the sweep's delta refreshes exercise the worst (dense) case;
/// the repeated-instant fast path is covered by the serve test suite.
const STEP_S: f64 = 60.0;

/// Degrees of uniform scatter around each user's city anchor.
const SPREAD_DEG: f64 = 2.0;

/// Annual per-satellite failure rate for the masked sweep.
const FAULT_RATE_PER_YEAR: f64 = 2000.0;

/// Seed for the fault schedule's death draws.
const FAULT_SEED: u64 = 42;

struct Knobs {
    users: usize,
    snapshots: usize,
    band_deg: f64,
    max_shard: usize,
    validate_every: usize,
}

/// Reads the serve knobs through the shared `RunConfig` warning path, so
/// a typo'd variable lands in `serve.meta.json` like a bad
/// `LEO_THREADS` does.
fn knobs(config: &mut RunConfig) -> Knobs {
    let quick = config.quick;
    let already_warned = config.warnings.len();
    let env = |name: &str| std::env::var(name).ok();
    let k = Knobs {
        users: config.usize_knob(
            "LEO_SERVE_USERS",
            env("LEO_SERVE_USERS").as_deref(),
            if quick { 100_000 } else { 1_200_000 },
        ),
        snapshots: config.usize_knob(
            "LEO_SERVE_SNAPSHOTS",
            env("LEO_SERVE_SNAPSHOTS").as_deref(),
            if quick { 4 } else { 12 },
        ),
        band_deg: config.usize_knob(
            "LEO_SERVE_BAND_DEG",
            env("LEO_SERVE_BAND_DEG").as_deref(),
            4,
        ) as f64,
        max_shard: config.usize_knob(
            "LEO_SERVE_SHARD_MAX",
            env("LEO_SERVE_SHARD_MAX").as_deref(),
            if quick { 16_384 } else { 65_536 },
        ),
        // Quick mode validates every snapshot; full mode samples every
        // 4th — the settled pass is proven bit-identical either way
        // (and the serve test suite pins cadence-independence), so full
        // runs don't pay the demoted per-user scans on every instant.
        validate_every: config.usize_knob(
            "LEO_SERVE_VALIDATE_EVERY",
            env("LEO_SERVE_VALIDATE_EVERY").as_deref(),
            if quick { 1 } else { 4 },
        ),
    };
    for w in &config.warnings[already_warned..] {
        eprintln!("warning: {w}");
    }
    k
}

fn main() {
    let mut config = RunConfig::from_env();
    let k = knobs(&mut config);
    let mut run = Run::with_config("serve", config);
    let threads = run.threads();
    let serve_config = ServeConfig {
        band_deg: k.band_deg,
        max_shard: k.max_shard,
        threads,
        validate_every: k.validate_every,
    };
    // The sampling cadence is part of the run's provenance: record it
    // in the manifest next to the validation counts it explains.
    leo_obs::counter!("serve.frontier_validate_every").add(k.validate_every as u64);
    let times: Vec<f64> = (0..k.snapshots).map(|i| i as f64 * STEP_S).collect();

    let users = run.phase("generate_users", || {
        synthesize_users(k.users, SPREAD_DEG, USER_SEED)
    });

    // Main sweep: the full population on a plain service. The engine
    // asserts the delta/full and frontier identities internally on
    // every snapshot — reaching the report at all means they held.
    let engine = run.phase("shard", || {
        ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            users.clone(),
            serve_config,
        )
    });
    let report = run.phase("sweep", || engine.sweep(&times));
    println!(
        "# delta-refresh weights bit-identical to full refresh across {} snapshots",
        report.snapshots.len()
    );
    if k.validate_every > 0 {
        println!("# multi-source frontier matches nearest assignments");
        println!(
            "# frontier-primary: settled pass validated against per-user scans every {} snapshot(s)",
            k.validate_every
        );
    }

    // Identity check: an empty fault plan must serve byte-identically
    // to the plain service. A population subset keeps this O(seconds).
    let check_users: Vec<_> = users
        .iter()
        .take(20_000.min(users.len()))
        .copied()
        .collect();
    run.phase("empty_plan_check", || {
        let plain = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            check_users.clone(),
            serve_config,
        )
        .sweep(&times);
        let empty = ServeEngine::new(
            InOrbitService::with_faults(presets::starlink_550_only(), FaultConfig::none()),
            check_users.clone(),
            serve_config,
        )
        .sweep(&times);
        assert_eq!(plain, empty, "empty fault plan diverged from plain service");
        println!("# empty fault plan byte-identical to plain service");
    });

    // Masked sweep: a real outage schedule, so the delta chain and the
    // frontier validation run through masked weights and masked attach.
    let fault_report = run.phase("fault_sweep", || {
        let constellation = presets::starlink_550_only();
        let cfg = FaultConfig {
            schedule: Some(
                FailureModel {
                    annual_failure_rate: FAULT_RATE_PER_YEAR,
                    seed: FAULT_SEED,
                }
                .schedule(constellation.num_satellites()),
            ),
            ..FaultConfig::none()
        };
        let faulted = ServeEngine::new(
            InOrbitService::with_faults(constellation, cfg),
            check_users.clone(),
            serve_config,
        );
        faulted.sweep(&times[..times.len().min(4)])
    });
    println!("# masked delta-refresh bit-identical to full masked refresh");

    print_summary(&report, &fault_report);
    run.write_results(&ServeResults {
        sweep: report,
        fault_sweep: fault_report,
    });
    let manifest = run.finish();
    if let Some(qps) = manifest.rate_per_sec("serve.queries", "sweep") {
        println!("# throughput: {qps:.0} queries/sec over the sweep phase");
    }
    if !manifest.series().is_empty() {
        println!(
            "# timeseries: {} series in the manifest ({} work, {} timing)",
            manifest.series().len(),
            manifest.series().iter().filter(|s| !s.timing).count(),
            manifest.series().iter().filter(|s| s.timing).count(),
        );
    }
}

/// The serve result file: thread-count-invariant rows only (stats and
/// checksums); throughput and latency histograms live in the manifest.
#[derive(serde::Serialize)]
struct ServeResults {
    sweep: SweepReport,
    fault_sweep: SweepReport,
}

fn print_summary(report: &SweepReport, fault_report: &SweepReport) {
    println!(
        "# serve sweep: {} queries over {} snapshots ({} delta edges recomputed, {} skipped, {} full rebuilds)",
        report.total_queries,
        report.snapshots.len(),
        report.delta_recomputed,
        report.delta_skipped,
        report.delta_full_rebuilds
    );
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>10} {:>18}",
        "t", "served", "unserved", "handoffs", "rtt ms", "checksum"
    );
    for row in &report.snapshots {
        println!(
            "{:>8.0} {:>10} {:>9} {:>9} {:>10.3} {:>18x}",
            row.time_s,
            row.served,
            row.unserved,
            row.handoffs,
            row.mean_rtt_ms,
            row.assignment_checksum
        );
    }
    let faulted_served: u64 = fault_report.snapshots.iter().map(|r| r.served).sum();
    println!(
        "# fault sweep: {} queries, {} served under the outage schedule",
        fault_report.total_queries, faulted_served
    );
}
