//! Fig 4: number of satellites not directly reachable from the largest
//! *n* cities, n ∈ {100, 200, …, 1000}, for Starlink Phase I and Kuiper.
//!
//! Paper: even with ground stations at 1,000 cities, more than a third of
//! Starlink's and more than half of Kuiper's satellites are "invisible"
//! at any time. Run: `cargo run -p leo-bench --release --bin fig4`.

use leo_apps::spacenative::invisible_series;
use leo_bench::cli::Run;
use leo_cities::WorldCities;
use leo_constellation::presets;
use leo_core::InOrbitService;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    num_cities: usize,
    starlink_invisible: usize,
    starlink_fraction: f64,
    kuiper_invisible: usize,
    kuiper_fraction: f64,
}

fn main() {
    let mut run = Run::start("fig4");
    let (starlink, kuiper, cities) = run.phase("compile", || {
        (
            InOrbitService::new(presets::starlink_phase1()),
            InOrbitService::new(presets::kuiper()),
            WorldCities::load_at_least(1000),
        )
    });

    // The catalog is population-sorted, so the top-n sets are prefixes of
    // the top-1000 list: one propagated snapshot (cached view) per
    // constellation and one visibility query per city covers all ten rows.
    let sites = cities.top_n_geodetic(1000);
    let sizes: Vec<usize> = (100..=1000).step_by(100).collect();
    let s_series = run.phase("starlink_series", || {
        invisible_series(&starlink, &sites, 0.0, &sizes)
    });
    let k_series = run.phase("kuiper_series", || {
        invisible_series(&kuiper, &sites, 0.0, &sizes)
    });

    let rows: Vec<Row> = s_series
        .iter()
        .zip(&k_series)
        .map(|(s, k)| Row {
            num_cities: s.num_sites,
            starlink_invisible: s.invisible,
            starlink_fraction: s.fraction(),
            kuiper_invisible: k.invisible,
            kuiper_fraction: k.fraction(),
        })
        .collect();

    println!("# Fig 4: invisible satellites vs number of ground cities (snapshot at t=0)");
    println!("# constellation sizes: Starlink P1 = 4409, Kuiper = 3236");
    println!(
        "{:>8} {:>12} {:>8} {:>12} {:>8}",
        "cities", "starlink", "frac", "kuiper", "frac"
    );
    for r in &rows {
        println!(
            "{:>8} {:>12} {:>7.1}% {:>12} {:>7.1}%",
            r.num_cities,
            r.starlink_invisible,
            r.starlink_fraction * 100.0,
            r.kuiper_invisible,
            r.kuiper_fraction * 100.0,
        );
    }

    let last = rows.last().unwrap();
    println!("\n# summary (paper in parentheses)");
    println!(
        "#   Starlink invisible at 1000 cities: {:.0}% (more than a third)",
        last.starlink_fraction * 100.0
    );
    println!(
        "#   Kuiper invisible at 1000 cities  : {:.0}% (more than a half)",
        last.kuiper_fraction * 100.0
    );

    run.write_results(&rows);
    run.finish();
}
