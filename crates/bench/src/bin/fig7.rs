//! Fig 7: CDF of the state-transfer latency to the successor server,
//! Sticky vs MinMax.
//!
//! Paper: "the latency incurred in migrating state to the successor
//! server is similar and low for both approaches, with Sticky providing
//! an advantage in the tail." Run:
//! `cargo run -p leo-bench --release --bin fig7` (add `--quick`).

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::session::run_session;
use leo_core::{Cdf, InOrbitService, Policy, SessionConfig};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_sim::parallel_map;
use serde::Serialize;

#[derive(Serialize)]
struct PolicySeries {
    policy: String,
    transfer_latencies_ms: Vec<f64>,
    median_ms: Option<f64>,
    p99_ms: Option<f64>,
}

fn groups() -> Vec<Vec<GroundEndpoint>> {
    let mk = |pts: &[(f64, f64)]| {
        pts.iter()
            .enumerate()
            .map(|(i, &(lat, lon))| GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)))
            .collect::<Vec<_>>()
    };
    vec![
        mk(&[(9.06, 7.49), (3.87, 11.52), (6.52, 3.38)]),
        mk(&[(-34.60, -58.38), (-33.45, -70.67), (-31.42, -64.18)]),
        mk(&[(1.35, 103.82), (3.139, 101.69), (-6.21, 106.85)]),
        mk(&[(47.38, 8.54), (48.86, 2.35), (52.52, 13.40)]),
    ]
}

fn main() {
    let mut run = Run::start("fig7");
    let (quick, threads) = (run.quick(), run.threads());
    let service = run.phase("compile", || {
        InOrbitService::new(presets::starlink_phase1_conservative())
    });
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: if quick { 900.0 } else { 7200.0 },
        tick_s: if quick { 5.0 } else { 1.0 },
    };

    // Same engine shape as Fig 6: fan the (policy × group) sessions
    // across the pool over one shared snapshot cache.
    let policies = [Policy::MinMax, Policy::sticky_default()];
    let combos: Vec<(Policy, Vec<GroundEndpoint>)> = policies
        .iter()
        .flat_map(|&p| groups().into_iter().map(move |g| (p, g)))
        .collect();
    let runs = run.phase("sessions", || {
        parallel_map(combos, threads, |(policy, users)| {
            run_session(&service, users, *policy, &cfg)
        })
    });

    let per_policy = groups().len();
    let mut series = Vec::new();
    for (i, policy) in policies.iter().enumerate() {
        let latencies: Vec<f64> = runs[i * per_policy..(i + 1) * per_policy]
            .iter()
            .flat_map(|r| r.events.iter().filter_map(|e| e.transfer_latency_ms))
            .collect();
        let cdf = Cdf::new(latencies);
        series.push(PolicySeries {
            policy: policy.name().into(),
            median_ms: cdf.median(),
            p99_ms: cdf.quantile(0.99),
            transfer_latencies_ms: cdf.samples().to_vec(),
        });
    }

    println!("# Fig 7: CDF of state-transfer latency to the successor (ms)");
    println!("{:>10} {:>12} {:>12}", "quantile", "MinMax", "Sticky");
    let mm = Cdf::new(series[0].transfer_latencies_ms.clone());
    let st = Cdf::new(series[1].transfer_latencies_ms.clone());
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        println!(
            "{:>10.2} {:>9.2} ms {:>9.2} ms",
            q,
            mm.quantile(q).unwrap_or(f64::NAN),
            st.quantile(q).unwrap_or(f64::NAN)
        );
    }
    println!("\n# summary (paper: similar medians, Sticky better in the tail)");
    println!(
        "#   medians: MinMax {:.2} ms vs Sticky {:.2} ms",
        mm.median().unwrap_or(f64::NAN),
        st.median().unwrap_or(f64::NAN)
    );
    println!(
        "#   p99    : MinMax {:.2} ms vs Sticky {:.2} ms",
        mm.quantile(0.99).unwrap_or(f64::NAN),
        st.quantile(0.99).unwrap_or(f64::NAN)
    );

    run.write_results(&series);
    run.finish();
}
