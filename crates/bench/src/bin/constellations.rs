//! Cross-constellation comparison: the Fig 1/2 access metrics for every
//! preset (Starlink Phase I, Starlink 550-only, Kuiper, Telesat) at
//! representative latitudes — the "which constellation is the better
//! compute provider" table the paper implies but never prints.
//!
//! Run: `cargo run -p leo-bench --release --bin constellations`
//! (add `--quick` for coarse sampling). Emits a run manifest
//! (`results/constellations.meta.json`) like every other benchmark.

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::access::{access_stats, SamplingConfig};
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    constellation: String,
    satellites: usize,
    latitude_deg: f64,
    nearest_rtt_ms: Option<f64>,
    farthest_rtt_ms: Option<f64>,
    avg_reachable: f64,
}

fn main() {
    let mut run = Run::start("constellations");
    let sampling = if run.quick() {
        SamplingConfig {
            start_s: 0.0,
            interval_s: 600.0,
            samples: 4,
        }
    } else {
        SamplingConfig::coarse()
    };
    let latitudes = [0.0, 25.0, 45.0, 60.0, 75.0];

    let mut rows = Vec::new();
    println!("# Access metrics by constellation (worst-over-time RTT, avg reachable count)");
    println!(
        "{:<22} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "constellation", "sats", "lat", "nearest", "farthest", "reachable"
    );
    for constellation in [
        presets::starlink_phase1(),
        presets::starlink_550_only(),
        presets::kuiper(),
        presets::telesat(),
    ] {
        let name = constellation.name().to_string();
        let sats = constellation.num_satellites();
        let service = InOrbitService::new(constellation);
        let mut batch = run.phase(&name, || {
            let mut batch = Vec::new();
            for &lat in &latitudes {
                let stats = access_stats(&service, Geodetic::ground(lat, 0.0), &sampling);
                let fmt = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.1} ms"));
                println!(
                    "{:<22} {:>6} {:>5.0}° {:>12} {:>12} {:>10.1}",
                    name,
                    sats,
                    lat,
                    fmt(stats.nearest_rtt_ms),
                    fmt(stats.farthest_rtt_ms),
                    stats.avg_count
                );
                batch.push(Row {
                    constellation: name.clone(),
                    satellites: sats,
                    latitude_deg: lat,
                    nearest_rtt_ms: stats.nearest_rtt_ms,
                    farthest_rtt_ms: stats.farthest_rtt_ms,
                    avg_reachable: stats.avg_count,
                });
            }
            batch
        });
        rows.append(&mut batch);
    }

    println!("\n# Telesat's 351 satellites buy polar coverage (98.98° shell) that");
    println!("# Kuiper lacks, at the cost of higher RTT from its 1,000+ km shells.");
    run.write_results(&rows);
    run.finish();
}
