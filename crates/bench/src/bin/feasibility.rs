//! §4 feasibility numbers as a table: every quantitative claim of the
//! paper's feasibility section, paper value vs. model output.
//!
//! Run: `cargo run -p leo-bench --release --bin feasibility`.

use leo_bench::write_results;
use leo_feasibility::cost::CostModel;
use leo_feasibility::power::{battery_wh_for_load, generation_w_for_load, radiator_area_m2};
use leo_feasibility::reliability::ReliabilityParams;
use leo_feasibility::{MassBudget, PowerBudget, SatelliteBus, ServerSpec};
use serde::Serialize;

#[derive(Serialize)]
struct FeasibilityRow {
    quantity: String,
    model: f64,
    paper: f64,
    unit: String,
}

fn main() {
    let server = ServerSpec::hpe_dl325_gen10();
    let bus = SatelliteBus::starlink_v1();
    let mass = MassBudget::compute(&server, &bus);
    let power = PowerBudget::compute(&server, &bus);
    let cost = CostModel::default().compare(&server);
    let rel = ReliabilityParams {
        annual_failure_rate: 0.10,
        satellite_life_years: bus.design_life_years,
    };

    let rows = vec![
        FeasibilityRow {
            quantity: "server weight / satellite weight".into(),
            model: mass.mass_fraction * 100.0,
            paper: 6.0,
            unit: "%".into(),
        },
        FeasibilityRow {
            quantity: "server volume / satellite volume".into(),
            model: mass.volume_fraction * 100.0,
            paper: 1.0,
            unit: "%".into(),
        },
        FeasibilityRow {
            quantity: "power draw at 225 W / avg solar".into(),
            model: power.typical_fraction * 100.0,
            paper: 15.0,
            unit: "%".into(),
        },
        FeasibilityRow {
            quantity: "power draw at 350 W / avg solar".into(),
            model: power.peak_fraction * 100.0,
            paper: 23.0,
            unit: "%".into(),
        },
        FeasibilityRow {
            quantity: "launch cost of one server".into(),
            model: cost.launch_cost_usd,
            paper: 42_000.0,
            unit: "USD".into(),
        },
        FeasibilityRow {
            quantity: "3-year cost ratio vs terrestrial".into(),
            model: cost.cost_ratio,
            paper: 3.0,
            unit: "x".into(),
        },
        FeasibilityRow {
            quantity: "satellite design life".into(),
            model: bus.design_life_years,
            paper: 5.0,
            unit: "years".into(),
        },
        FeasibilityRow {
            quantity: "fleet with working server @10%/yr AFR".into(),
            model: rel.steady_state_working_fraction() * 100.0,
            paper: f64::NAN, // qualitative in the paper
            unit: "%".into(),
        },
    ];

    println!("# §4 feasibility: model vs paper");
    println!(
        "{:<42} {:>12} {:>12} {:>6}",
        "quantity", "model", "paper", "unit"
    );
    for r in &rows {
        let paper = if r.paper.is_nan() {
            "(qual.)".to_string()
        } else {
            format!("{:.1}", r.paper)
        };
        println!(
            "{:<42} {:>12.1} {:>12} {:>6}",
            r.quantity, r.model, paper, r.unit
        );
    }

    println!("\n# supporting engineering quantities");
    println!(
        "  battery through worst eclipse at 225 W : {:.0} Wh",
        battery_wh_for_load(225.0, bus.altitude_m)
    );
    println!(
        "  sunlit generation for constant 225 W   : {:.0} W (η=0.9)",
        generation_w_for_load(225.0, bus.altitude_m, 0.9)
    );
    println!(
        "  radiator for the 350 W peak            : {:.2} m² (300 K, ε=0.85)",
        radiator_area_m2(350.0, 300.0, 0.85)
    );

    write_results("feasibility", &rows);
}
