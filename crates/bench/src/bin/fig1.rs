//! Fig 1: max and min RTT (ms) to reachable satellite-servers vs
//! latitude, for Starlink Phase I and Kuiper.
//!
//! Methodology (paper §3.1): from a ground location at each latitude,
//! every minute over two hours, measure the RTT to the nearest and the
//! farthest directly reachable satellite; report the maximum across the
//! time samples. Each instant is propagated and spatially indexed once
//! (`leo_sim::TimeSweep`), shared by every latitude.
//! Run: `cargo run -p leo-bench --release --bin fig1`
//! (add `--quick` for coarse sampling).

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::access::{AccessStats, SamplingConfig};
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_sim::TimeSweep;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    latitude_deg: f64,
    starlink_min_rtt_ms: Option<f64>,
    starlink_max_rtt_ms: Option<f64>,
    kuiper_min_rtt_ms: Option<f64>,
    kuiper_max_rtt_ms: Option<f64>,
}

fn main() {
    let mut run = Run::start("fig1");
    let (quick, threads) = (run.quick(), run.threads());
    let sampling = if quick {
        SamplingConfig::coarse()
    } else {
        SamplingConfig::paper()
    };
    let step = if quick { 5.0 } else { 1.0 };

    let (starlink, kuiper) = run.phase("compile", || {
        (
            InOrbitService::new(presets::starlink_phase1()),
            InOrbitService::new(presets::kuiper()),
        )
    });

    let lats: Vec<f64> = {
        let mut v = Vec::new();
        let mut lat = 0.0;
        while lat <= 90.0 + 1e-9 {
            v.push(lat);
            lat += step;
        }
        v
    };

    let sweep_stats = |service: &InOrbitService| -> Vec<AccessStats> {
        TimeSweep::new(service, sampling.times())
            .with_threads(threads)
            .run(lats.clone(), |&lat, views| {
                let ge = Geodetic::ground(lat, 0.0).to_ecef_spherical();
                AccessStats::from_visible_sets(views.iter().map(|(_, v)| v.index().query(ge)))
            })
    };
    let starlink_stats = run.phase("starlink_sweep", || sweep_stats(&starlink));
    let kuiper_stats = run.phase("kuiper_sweep", || sweep_stats(&kuiper));

    let rows: Vec<Row> = lats
        .iter()
        .zip(starlink_stats.iter().zip(&kuiper_stats))
        .map(|(&lat, (s, k))| Row {
            latitude_deg: lat,
            starlink_min_rtt_ms: s.nearest_rtt_ms,
            starlink_max_rtt_ms: s.farthest_rtt_ms,
            kuiper_min_rtt_ms: k.nearest_rtt_ms,
            kuiper_max_rtt_ms: k.farthest_rtt_ms,
        })
        .collect();

    println!("# Fig 1: Max and Min RTT (ms) to reachable satellite-servers vs latitude");
    println!(
        "# latency = worst case across {} samples every {} s",
        sampling.samples, sampling.interval_s
    );
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "lat", "starlink-min", "starlink-max", "kuiper-min", "kuiper-max"
    );
    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
    for r in &rows {
        println!(
            "{:>8.1} {:>14} {:>14} {:>14} {:>14}",
            r.latitude_deg,
            fmt(r.starlink_min_rtt_ms),
            fmt(r.starlink_max_rtt_ms),
            fmt(r.kuiper_min_rtt_ms),
            fmt(r.kuiper_max_rtt_ms),
        );
    }

    // Paper-level summary.
    let max_star_min = rows
        .iter()
        .filter_map(|r| r.starlink_min_rtt_ms)
        .fold(0.0f64, f64::max);
    let max_star_max = rows
        .iter()
        .filter_map(|r| r.starlink_max_rtt_ms)
        .fold(0.0f64, f64::max);
    let kuiper_cutoff = rows
        .iter()
        .filter(|r| r.kuiper_min_rtt_ms.is_some())
        .map(|r| r.latitude_deg)
        .fold(0.0f64, f64::max);
    println!("\n# summary (paper in parentheses)");
    println!("#   Starlink nearest, worst over all latitudes : {max_star_min:.1} ms (11 ms)");
    println!("#   Starlink farthest, worst over all latitudes: {max_star_max:.1} ms (16 ms)");
    println!("#   Kuiper service cutoff latitude             : {kuiper_cutoff:.0}° (no service beyond 60°)");

    run.write_results(&rows);
    run.finish();
}
