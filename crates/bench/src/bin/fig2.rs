//! Fig 2: number of satellite-servers reachable vs latitude (average
//! over time, with min/max range), Starlink Phase I and Kuiper.
//!
//! Each instant is propagated and spatially indexed once
//! (`leo_sim::TimeSweep`), shared by every latitude.
//! Run: `cargo run -p leo-bench --release --bin fig2` (add `--quick`).

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::access::{AccessStats, SamplingConfig};
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_sim::TimeSweep;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    latitude_deg: f64,
    starlink_min: usize,
    starlink_avg: f64,
    starlink_max: usize,
    kuiper_min: usize,
    kuiper_avg: f64,
    kuiper_max: usize,
}

fn main() {
    let mut run = Run::start("fig2");
    let (quick, threads) = (run.quick(), run.threads());
    let sampling = if quick {
        SamplingConfig::coarse()
    } else {
        SamplingConfig::paper()
    };
    let step = if quick { 5.0 } else { 1.0 };

    let (starlink, kuiper) = run.phase("compile", || {
        (
            InOrbitService::new(presets::starlink_phase1()),
            InOrbitService::new(presets::kuiper()),
        )
    });

    let lats: Vec<f64> = {
        let mut v = Vec::new();
        let mut lat = 0.0;
        while lat <= 90.0 + 1e-9 {
            v.push(lat);
            lat += step;
        }
        v
    };

    let sweep_stats = |service: &InOrbitService| -> Vec<AccessStats> {
        TimeSweep::new(service, sampling.times())
            .with_threads(threads)
            .run(lats.clone(), |&lat, views| {
                let ge = Geodetic::ground(lat, 0.0).to_ecef_spherical();
                AccessStats::from_visible_sets(views.iter().map(|(_, v)| v.index().query(ge)))
            })
    };
    let starlink_stats = run.phase("starlink_sweep", || sweep_stats(&starlink));
    let kuiper_stats = run.phase("kuiper_sweep", || sweep_stats(&kuiper));

    let rows: Vec<Row> = lats
        .iter()
        .zip(starlink_stats.iter().zip(&kuiper_stats))
        .map(|(&lat, (s, k))| Row {
            latitude_deg: lat,
            starlink_min: s.min_count,
            starlink_avg: s.avg_count,
            starlink_max: s.max_count,
            kuiper_min: k.min_count,
            kuiper_avg: k.avg_count,
            kuiper_max: k.max_count,
        })
        .collect();

    println!("# Fig 2: number of satellite-servers within range vs latitude");
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "lat", "sl-min", "sl-avg", "sl-max", "ku-min", "ku-avg", "ku-max"
    );
    for r in &rows {
        println!(
            "{:>8.1} {:>8} {:>8.1} {:>8} {:>8} {:>8.1} {:>8}",
            r.latitude_deg,
            r.starlink_min,
            r.starlink_avg,
            r.starlink_max,
            r.kuiper_min,
            r.kuiper_avg,
            r.kuiper_max,
        );
    }

    // The paper's observations.
    let served = |avg: f64| avg >= 1.0;
    let star_30plus = rows
        .iter()
        .filter(|r| served(r.starlink_avg) && r.starlink_avg >= 30.0)
        .count();
    let star_served = rows.iter().filter(|r| served(r.starlink_avg)).count();
    let kuiper_10plus = rows
        .iter()
        .filter(|r| served(r.kuiper_avg) && r.kuiper_avg >= 10.0)
        .count();
    let kuiper_served = rows.iter().filter(|r| served(r.kuiper_avg)).count();
    println!("\n# summary (paper in parentheses)");
    println!("#   Starlink latitudes with avg ≥ 30 reachable: {star_30plus}/{star_served} served latitudes (\"30+ from almost all locations\")");
    println!("#   Kuiper latitudes with avg ≥ 10 reachable  : {kuiper_10plus}/{kuiper_served} served latitudes (\"10+ for most latitudes\")");

    run.write_results(&rows);
    run.finish();
}
