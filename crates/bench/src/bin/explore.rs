//! Constellation explorer: a small CLI over the library.
//!
//! ```text
//! cargo run -p leo-bench --release --bin explore -- shells starlink
//! cargo run -p leo-bench --release --bin explore -- passes kuiper 47.38 8.54
//! cargo run -p leo-bench --release --bin explore -- tles starlink-550 > tles.txt
//! cargo run -p leo-bench --release --bin explore -- visible starlink 6.52 3.38
//! ```

use leo_constellation::presets;
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_net::handover::{handover_schedule, predict_passes};

fn usage() -> ! {
    eprintln!(
        "usage: explore <command> <constellation> [args]\n\
         commands:\n\
           shells  <constellation>            shell table\n\
           tles    <constellation>            dump all satellites as TLEs\n\
           visible <constellation> <lat> <lon>  reachable servers right now\n\
           passes  <constellation> <lat> <lon>  1-hour pass + hand-over plan\n\
         constellations: starlink | starlink-550 | kuiper | telesat"
    );
    std::process::exit(2);
}

fn parse_f64(s: Option<&String>) -> f64 {
    s.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(name)) = (args.first(), args.get(1)) else {
        usage()
    };
    let Some(constellation) = presets::by_name(name) else {
        eprintln!("unknown constellation {name:?}");
        usage()
    };

    match cmd.as_str() {
        "shells" => {
            println!(
                "{:<16} {:>9} {:>7} {:>7} {:>6} {:>8} {:>8}",
                "shell", "alt (km)", "incl", "planes", "s/pl", "min el", "period"
            );
            for s in constellation.shells() {
                let period = leo_orbit::KeplerianElements::circular(
                    s.altitude_m,
                    s.inclination,
                    leo_geo::Angle::ZERO,
                    leo_geo::Angle::ZERO,
                )
                .period_s();
                println!(
                    "{:<16} {:>9.0} {:>6.1}° {:>7} {:>6} {:>7.0}° {:>5.1} min",
                    s.name,
                    s.altitude_m / 1e3,
                    s.inclination.degrees(),
                    s.num_planes,
                    s.sats_per_plane,
                    s.min_elevation.degrees(),
                    period / 60.0
                );
            }
            println!("total: {} satellites", constellation.num_satellites());
        }
        "tles" => {
            for tle in constellation.to_tles() {
                println!("{}", tle.format());
            }
        }
        "visible" => {
            let lat = parse_f64(args.get(2));
            let lon = parse_f64(args.get(3));
            let service = InOrbitService::new(constellation);
            let mut vis = service.reachable_servers(Geodetic::ground(lat, lon), 0.0);
            vis.sort_by(|a, b| a.range_m.total_cmp(&b.range_m));
            println!("{} servers reachable from ({lat}, {lon}):", vis.len());
            for v in vis.iter().take(20) {
                println!(
                    "  {:<8} {:>8.1} km {:>7.2} ms RTT",
                    v.id.to_string(),
                    v.range_m / 1e3,
                    v.rtt_ms()
                );
            }
            if vis.len() > 20 {
                println!("  … and {} more", vis.len() - 20);
            }
        }
        "passes" => {
            let lat = parse_f64(args.get(2));
            let lon = parse_f64(args.get(3));
            let ground = Geodetic::ground(lat, lon);
            let passes = predict_passes(&constellation, ground, 0.0, 3600.0, 10.0);
            println!(
                "{} passes over ({lat}, {lon}) in the next hour",
                passes.len()
            );
            let slots = handover_schedule(&passes, 0.0, 3600.0);
            println!(
                "hand-over plan ({} hand-offs):",
                slots.len().saturating_sub(1)
            );
            for s in &slots {
                println!(
                    "  {:<8} serves [{:>6.0} s → {:>6.0} s] ({:>4.0} s)",
                    s.sat.to_string(),
                    s.from_s,
                    s.until_s,
                    s.until_s - s.from_s
                );
            }
        }
        _ => usage(),
    }
}
