//! Fig 6: CDF of the time between satellite hand-offs, Sticky vs MinMax.
//!
//! Paper: "the median time between hand-offs is 164 sec for Sticky, i.e.,
//! 4× longer than for MinMax." Run:
//! `cargo run -p leo-bench --release --bin fig6` (add `--quick`).

use leo_bench::cli::Run;
use leo_constellation::presets;
use leo_core::session::run_session;
use leo_core::{Cdf, InOrbitService, Policy, SessionConfig};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_sim::parallel_map;
use serde::Serialize;

#[derive(Serialize)]
struct PolicySeries {
    policy: String,
    intervals_s: Vec<f64>,
    median_s: Option<f64>,
}

/// The user groups driving the sessions: the paper's West Africa example
/// plus additional groups so the CDF aggregates diverse geometry.
fn groups() -> Vec<Vec<GroundEndpoint>> {
    let mk = |pts: &[(f64, f64)]| {
        pts.iter()
            .enumerate()
            .map(|(i, &(lat, lon))| GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)))
            .collect::<Vec<_>>()
    };
    vec![
        // West Africa (Fig 3).
        mk(&[(9.06, 7.49), (3.87, 11.52), (6.52, 3.38)]),
        // Southern South America.
        mk(&[(-34.60, -58.38), (-33.45, -70.67), (-31.42, -64.18)]),
        // South-East Asia.
        mk(&[(1.35, 103.82), (3.139, 101.69), (-6.21, 106.85)]),
        // Central Europe.
        mk(&[(47.38, 8.54), (48.86, 2.35), (52.52, 13.40)]),
    ]
}

fn main() {
    let mut run = Run::start("fig6");
    let (quick, threads) = (run.quick(), run.threads());
    let service = run.phase("compile", || {
        InOrbitService::new(presets::starlink_phase1_conservative())
    });
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: if quick { 900.0 } else { 7200.0 },
        tick_s: if quick { 5.0 } else { 1.0 },
    };

    // All (policy × group) sessions tick the same schedule against one
    // service, so the engine fans them across the pool and each instant's
    // snapshot is propagated once into the shared cache.
    let policies = [Policy::MinMax, Policy::sticky_default()];
    let combos: Vec<(Policy, Vec<GroundEndpoint>)> = policies
        .iter()
        .flat_map(|&p| groups().into_iter().map(move |g| (p, g)))
        .collect();
    let runs = run.phase("sessions", || {
        parallel_map(combos, threads, |(policy, users)| {
            run_session(&service, users, *policy, &cfg)
        })
    });

    let per_policy = groups().len();
    let mut series = Vec::new();
    for (i, policy) in policies.iter().enumerate() {
        let intervals: Vec<f64> = runs[i * per_policy..(i + 1) * per_policy]
            .iter()
            .flat_map(|r| r.times_between_handoffs())
            .collect();
        let cdf = Cdf::new(intervals);
        series.push(PolicySeries {
            policy: policy.name().into(),
            median_s: cdf.median(),
            intervals_s: cdf.samples().to_vec(),
        });
    }

    println!(
        "# Fig 6: CDF of time between hand-offs (s), {} user groups, {:.0}-s ticks",
        groups().len(),
        cfg.tick_s
    );
    println!("{:>10} {:>12} {:>12}", "quantile", "MinMax", "Sticky");
    let mm = Cdf::new(series[0].intervals_s.clone());
    let st = Cdf::new(series[1].intervals_s.clone());
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        println!(
            "{:>10.2} {:>10.0} s {:>10.0} s",
            q,
            mm.quantile(q).unwrap_or(f64::NAN),
            st.quantile(q).unwrap_or(f64::NAN)
        );
    }
    let (mmed, smed) = (
        mm.median().unwrap_or(f64::NAN),
        st.median().unwrap_or(f64::NAN),
    );
    println!("\n# summary (paper in parentheses)");
    println!("#   MinMax median interval : {mmed:.0} s");
    println!("#   Sticky median interval : {smed:.0} s (164 s)");
    println!("#   Sticky/MinMax ratio    : {:.1}x (4x)", smed / mmed);

    run.write_results(&series);
    run.finish();
}
