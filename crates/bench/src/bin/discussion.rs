//! §6 extension analyses: the open questions the paper's discussion
//! raises, answered with the extension modules.
//!
//! * weather availability by climate (the "we did not analyze yet" item);
//! * the GEO boundary (which workloads stay on GEO);
//! * the matchmaking census (how much in-orbit compute expands who can
//!   play together);
//! * capacity (aggregate reachable server slots vs Fig 2's raw counts).
//!
//! Run: `cargo run -p leo-bench --release --bin discussion`.

use leo_apps::geo_baseline::{choose_platform, GeoSatellite, PlatformChoice};
use leo_apps::interactive::AppClass;
use leo_apps::matchmaking::{pairwise_census, Player};
use leo_bench::write_results;
use leo_cities::WorldCities;
use leo_constellation::presets;
use leo_core::capacity::CapacityPool;
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_net::weather::{site_availability, LinkBudget, RainClimate};
use serde::Serialize;

#[derive(Serialize, Default)]
struct DiscussionResults {
    weather: Vec<(String, f64, f64)>,
    matchmaking: Vec<(String, usize, usize, usize)>,
    capacity: Vec<(String, u64)>,
}

fn main() {
    let service = InOrbitService::new(presets::starlink_phase1());
    let mut out = DiscussionResults::default();

    // ── weather ──
    println!("# §6 weather: availability of in-orbit compute under rain fade");
    println!(
        "{:<24} {:>14} {:>14}",
        "site/climate", "consumer 8dB", "gateway 16dB"
    );
    let snap = service.snapshot(0.0);
    for (name, lat, lon, climate) in [
        ("Lagos/tropical", 6.52, 3.38, RainClimate::TROPICAL),
        ("Singapore/tropical", 1.35, 103.82, RainClimate::TROPICAL),
        ("Zurich/temperate", 47.38, 8.54, RainClimate::TEMPERATE),
        ("Riyadh/arid", 24.71, 46.68, RainClimate::ARID),
    ] {
        let ground = Geodetic::ground(lat, lon);
        let ge = ground.to_ecef_spherical();
        let els: Vec<_> = service
            .reachable_servers_in(&snap, ground)
            .iter()
            .map(|v| leo_geo::LookAngles::compute(ground, ge, snap.position(v.id)).elevation)
            .collect();
        let c = site_availability(&LinkBudget::CONSUMER, &climate, &els);
        let g = site_availability(&LinkBudget::GATEWAY, &climate, &els);
        println!("{name:<24} {:>13.4}% {:>13.4}%", c * 100.0, g * 100.0);
        out.weather.push((name.to_string(), c, g));
    }

    // ── GEO boundary ──
    println!("\n# §6 GEO boundary (from Lagos)");
    let lagos = Geodetic::ground(6.52, 3.38);
    let geo = GeoSatellite {
        longitude_deg: 3.38,
    };
    println!(
        "  GEO server RTT            : {:.0} ms",
        geo.server_rtt_ms(lagos)
    );
    for (workload, budget) in [
        ("video broadcast (1 s)", 1000.0),
        ("web browsing (300 ms)", 300.0),
        ("gaming (100 ms)", 100.0),
        ("AR/VR (50 ms)", 50.0),
    ] {
        let choice = match choose_platform(lagos, budget) {
            PlatformChoice::Geo => "GEO is fine",
            PlatformChoice::Leo => "needs LEO",
        };
        println!("  {workload:<26}: {choice}");
    }

    // ── matchmaking ──
    println!("\n# §3.2 matchmaking census (African player population, by app class)");
    let players: Vec<Player> = WorldCities::load()
        .all()
        .iter()
        .filter(|c| (-35.0..37.0).contains(&c.lat_deg) && (-18.0..52.0).contains(&c.lon_deg))
        .take(12)
        .map(|c| Player::new(&c.name, c.lat_deg, c.lon_deg))
        .collect();
    let sites: Vec<Geodetic> = leo_cities::azure_regions()
        .iter()
        .map(|r| r.geodetic())
        .collect();
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "class", "terrestrial", "orbit-only", "infeasible"
    );
    for class in AppClass::all() {
        let census = pairwise_census(&service, &players, &sites, class, 0.0);
        println!(
            "{:<10} {:>12} {:>12} {:>12}",
            format!("{class:?}"),
            census.terrestrial,
            census.orbit_only,
            census.infeasible
        );
        out.matchmaking.push((
            format!("{class:?}"),
            census.terrestrial,
            census.orbit_only,
            census.infeasible,
        ));
    }

    // ── capacity ──
    println!("\n# §3.1 aggregate reachable capacity (32 slots/server, ≤16 ms RTT)");
    let pool = CapacityPool::new(&service, 0.0, 32);
    for (name, lat, lon) in [
        ("Lagos", 6.52, 3.38),
        ("Zurich", 47.38, 8.54),
        ("South Pacific", -30.0, -130.0),
    ] {
        let slots = pool.reachable_free_slots(Geodetic::ground(lat, lon), 16.0);
        println!("  {name:<16}: {slots} slots in view");
        out.capacity.push((name.to_string(), slots));
    }

    write_results("discussion", &out);
}
