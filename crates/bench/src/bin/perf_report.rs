//! Pretty-prints one run manifest, diffs two, or gates a diff on
//! throughput and quantile drift.
//!
//! ```text
//! cargo run -p leo-bench --bin perf_report -- results/fig1.meta.json
//! cargo run -p leo-bench --bin perf_report -- baseline.meta.json candidate.meta.json
//! cargo run -p leo-bench --bin perf_report -- --diff baseline.meta.json candidate.meta.json \
//!     --min-qps-ratio 0.8 --qps-counter serve.queries --qps-phase sweep
//! cargo run -p leo-bench --bin perf_report -- --diff baseline.meta.json candidate.meta.json \
//!     --p99-tol 3.0 --quantile-metric serve.query_latency_s --md-report watchdog.md
//! ```
//!
//! With one manifest: configuration, phase wall-clocks, counters,
//! histogram summaries, and time series. With two: per-phase speedup
//! (baseline over candidate) and counter deltas — the quick answer to
//! "did my change make the sweep faster, and did it change how much work
//! was done?". With `--min-qps-ratio R`, the diff additionally computes
//! each side's throughput (the `--qps-counter` count over the
//! `--qps-phase` wall clock) and exits nonzero when candidate/baseline
//! falls below `R` — the CI perf regression gate.
//!
//! Any of `--p50-tol`/`--p99-tol`/`--ts-tol`/`--quantile-metric`/
//! `--md-report` additionally arms the quantile watchdog
//! (`leo_bench::watchdog`): histogram p50/p99 may grow by at most their
//! tolerance factor, work time-series max/mean must stay within the
//! two-sided `--ts-tol` envelope, and violations exit nonzero.
//! `--quantile-metric NAME` (repeatable) restricts the quantile checks
//! to the named histograms; `--md-report PATH` writes the findings as a
//! markdown table (CI job summaries).

use leo_bench::cli::RunManifest;
use leo_bench::watchdog::{self, WatchdogConfig};
use std::path::Path;
use std::process::ExitCode;

/// Throughput gate settings parsed from the flag arguments.
struct QpsGate {
    min_ratio: Option<f64>,
    counter: String,
    phase: String,
}

impl Default for QpsGate {
    fn default() -> Self {
        QpsGate {
            min_ratio: None,
            counter: "serve.queries".to_string(),
            phase: "sweep".to_string(),
        }
    }
}

/// Watchdog settings: `config` is applied only when `armed` (any
/// watchdog flag was given).
#[derive(Default)]
struct Watchdog {
    armed: bool,
    config: WatchdogConfig,
    md_report: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut gate = QpsGate::default();
    let mut dog = Watchdog::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--diff" => {} // explicit marker; two paths already mean diff
            "--min-qps-ratio" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(r)) if r > 0.0 => gate.min_ratio = Some(r),
                _ => return fail("--min-qps-ratio needs a positive number"),
            },
            "--qps-counter" => match it.next() {
                Some(v) => gate.counter = v.clone(),
                None => return fail("--qps-counter needs a counter name"),
            },
            "--qps-phase" => match it.next() {
                Some(v) => gate.phase = v.clone(),
                None => return fail("--qps-phase needs a phase name"),
            },
            "--p50-tol" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t >= 1.0 => (dog.armed, dog.config.p50_tol) = (true, t),
                _ => return fail("--p50-tol needs a number >= 1"),
            },
            "--p99-tol" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t >= 1.0 => (dog.armed, dog.config.p99_tol) = (true, t),
                _ => return fail("--p99-tol needs a number >= 1"),
            },
            "--ts-tol" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(t)) if t >= 1.0 => (dog.armed, dog.config.ts_tol) = (true, t),
                _ => return fail("--ts-tol needs a number >= 1"),
            },
            "--quantile-metric" => match it.next() {
                Some(v) => {
                    dog.armed = true;
                    dog.config.metrics.push(v.clone());
                }
                None => return fail("--quantile-metric needs a histogram name"),
            },
            "--md-report" => match it.next() {
                Some(v) => {
                    dog.armed = true;
                    dog.md_report = Some(v.clone());
                }
                None => return fail("--md-report needs a file path"),
            },
            flag if flag.starts_with("--") => {
                eprintln!("perf_report: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            path => paths.push(path),
        }
    }
    match paths.as_slice() {
        [one] => match RunManifest::load(Path::new(one)) {
            Ok(m) => {
                print_single(&m);
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        [base, cand] => {
            match (
                RunManifest::load(Path::new(base)),
                RunManifest::load(Path::new(cand)),
            ) {
                (Ok(b), Ok(c)) => {
                    print_diff(&b, &c);
                    let qps = check_qps_gate(&b, &c, &gate);
                    let watch = check_watchdog(&b, &c, &dog, base, cand);
                    if qps != ExitCode::SUCCESS {
                        qps
                    } else {
                        watch
                    }
                }
                (Err(e), _) | (_, Err(e)) => fail(&e),
            }
        }
        _ => fail(
            "usage: perf_report <manifest.meta.json> [candidate.meta.json] \
             [--min-qps-ratio R] [--qps-counter NAME] [--qps-phase NAME] \
             [--p50-tol T] [--p99-tol T] [--ts-tol T] [--quantile-metric NAME]... \
             [--md-report PATH]",
        ),
    }
}

/// Runs the quantile watchdog when any of its flags armed it: prints the
/// verdict, writes the optional markdown report, exits nonzero on
/// violations.
fn check_watchdog(
    base: &RunManifest,
    cand: &RunManifest,
    dog: &Watchdog,
    base_path: &str,
    cand_path: &str,
) -> ExitCode {
    if !dog.armed {
        return ExitCode::SUCCESS;
    }
    let report = watchdog::compare(base, cand, &dog.config);
    println!(
        "\nquantile watchdog: {} histogram(s) checked (p50 tol {:.2}, p99 tol {:.2}), \
         {} work series checked (envelope tol {:.2})",
        report.histograms_checked,
        dog.config.p50_tol,
        dog.config.p99_tol,
        report.series_checked,
        dog.config.ts_tol,
    );
    if let Some(path) = &dog.md_report {
        let md = report.markdown(base_path, cand_path);
        match std::fs::write(path, md) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }
    }
    if report.is_clean() {
        println!("quantile watchdog passed");
        ExitCode::SUCCESS
    } else {
        for f in &report.findings {
            eprintln!(
                "perf_report: {} {} regressed — baseline {:.6}, candidate {:.6}, \
                 ratio {:.3} breaks tolerance {:.3}",
                f.metric, f.stat, f.baseline, f.candidate, f.ratio, f.tolerance
            );
        }
        ExitCode::FAILURE
    }
}

/// Applies the throughput gate to a diffed pair: candidate qps must be
/// at least `min_ratio` of baseline qps. A manifest that cannot produce
/// a rate (counter or phase missing — e.g. a run without `LEO_OBS=1`)
/// fails the gate loudly rather than passing vacuously.
fn check_qps_gate(base: &RunManifest, cand: &RunManifest, gate: &QpsGate) -> ExitCode {
    let Some(min_ratio) = gate.min_ratio else {
        return ExitCode::SUCCESS;
    };
    let rate = |m: &RunManifest, side: &str| match m.rate_per_sec(&gate.counter, &gate.phase) {
        Some(r) if r > 0.0 => Ok(r),
        _ => {
            eprintln!(
                "perf_report: {side} manifest has no rate for counter '{}' over phase '{}' \
                 (was the run made with LEO_OBS=1?)",
                gate.counter, gate.phase
            );
            Err(ExitCode::FAILURE)
        }
    };
    let (b, c) = match (rate(base, "baseline"), rate(cand, "candidate")) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    let ratio = c / b;
    println!(
        "\nthroughput gate: {} over {} — baseline {:.0}/s, candidate {:.0}/s, ratio {:.3} (min {:.3})",
        gate.counter, gate.phase, b, c, ratio, min_ratio
    );
    if ratio < min_ratio {
        eprintln!(
            "perf_report: throughput regression — candidate is {:.1}% of baseline, below the {:.1}% floor",
            100.0 * ratio,
            100.0 * min_ratio
        );
        ExitCode::FAILURE
    } else {
        println!("throughput gate passed");
        ExitCode::SUCCESS
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("perf_report: {msg}");
    ExitCode::FAILURE
}

/// `1234567` → `1,234,567`; counters are long, commas keep them legible.
fn commas(n: u64) -> String {
    let digits = n.to_string();
    let groups: Vec<&str> = digits
        .as_bytes()
        .rchunks(3)
        .rev()
        .map(|chunk| std::str::from_utf8(chunk).expect("decimal digits are ASCII"))
        .collect();
    groups.join(",")
}

/// Seconds with a unit that keeps 3 significant digits readable.
fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

fn print_single(m: &RunManifest) {
    println!(
        "run {} — total {}, {} threads, obs={}{}",
        m.name,
        secs(m.total_s),
        m.threads,
        m.obs_level,
        if m.quick { ", quick" } else { "" },
    );
    if !m.phases.is_empty() {
        println!("\nphases:");
        for p in &m.phases {
            let pct = if m.total_s > 0.0 {
                100.0 * p.wall_s / m.total_s
            } else {
                0.0
            };
            println!("  {:<28} {:>12}  {:>5.1}%", p.name, secs(p.wall_s), pct);
        }
    }
    if !m.counters.is_empty() {
        println!("\ncounters:");
        for c in &m.counters {
            println!("  {:<36} {:>18}", c.name, commas(c.value));
        }
    }
    if !m.histograms.is_empty() {
        println!("\nhistograms:");
        println!(
            "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "name", "count", "mean", "p50", "p99", "max"
        );
        for h in &m.histograms {
            println!(
                "  {:<28} {:>10} {:>12} {:>12} {:>12} {:>12}",
                h.name,
                commas(h.count),
                secs(h.mean),
                secs(h.p50),
                secs(h.p99),
                secs(h.max),
            );
        }
    }
    if !m.series().is_empty() {
        println!("\ntime series:");
        println!(
            "  {:<28} {:>8} {:>12} {:>12} {:>7}",
            "name", "points", "mean", "max", "kind"
        );
        for s in m.series() {
            println!(
                "  {:<28} {:>8} {:>12.3} {:>12.3} {:>7}",
                s.name,
                s.points.len(),
                s.mean_value().unwrap_or(0.0),
                s.max_value().unwrap_or(0.0),
                if s.timing { "timing" } else { "work" },
            );
        }
    }
}

fn print_diff(base: &RunManifest, cand: &RunManifest) {
    println!(
        "baseline  {} — total {}, {} threads, obs={}{}",
        base.name,
        secs(base.total_s),
        base.threads,
        base.obs_level,
        if base.quick { ", quick" } else { "" },
    );
    println!(
        "candidate {} — total {}, {} threads, obs={}{}",
        cand.name,
        secs(cand.total_s),
        cand.threads,
        cand.obs_level,
        if cand.quick { ", quick" } else { "" },
    );
    if cand.total_s > 0.0 {
        println!("total speedup: {:.2}x", base.total_s / cand.total_s);
    }

    // Phases: union in baseline order, candidate-only ones after.
    let mut names: Vec<&str> = base.phases.iter().map(|p| p.name.as_str()).collect();
    for p in &cand.phases {
        if !names.contains(&p.name.as_str()) {
            names.push(&p.name);
        }
    }
    if !names.is_empty() {
        println!(
            "\nphases: {:<28} {:>12} {:>12} {:>9}",
            "", "baseline", "candidate", "speedup"
        );
        for name in names {
            let b = base.phase_wall(name);
            let c = cand.phase_wall(name);
            let speedup = match (b, c) {
                (Some(b), Some(c)) if c > 0.0 => format!("{:.2}x", b / c),
                _ => "-".to_string(),
            };
            println!(
                "        {:<28} {:>12} {:>12} {:>9}",
                name,
                b.map_or("-".into(), secs),
                c.map_or("-".into(), secs),
                speedup,
            );
        }
    }

    // Counters: union, sorted; deltas flag behavioural drift (a perf
    // change should not usually change how much work was done).
    let mut names: Vec<&str> = base
        .counters
        .iter()
        .chain(&cand.counters)
        .map(|c| c.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    if !names.is_empty() {
        println!(
            "\ncounters: {:<34} {:>16} {:>16} {:>14}",
            "", "baseline", "candidate", "delta"
        );
        for name in names {
            let b = base.counter(name);
            let c = cand.counter(name);
            let delta = match (b, c) {
                (Some(b), Some(c)) => {
                    let d = c as i128 - b as i128;
                    if d == 0 {
                        "=".to_string()
                    } else if b > 0 {
                        format!("{d:+} ({:+.1}%)", 100.0 * d as f64 / b as f64)
                    } else {
                        format!("{d:+}")
                    }
                }
                _ => "-".to_string(),
            };
            println!(
                "          {:<34} {:>16} {:>16} {:>14}",
                name,
                b.map_or("-".into(), commas),
                c.map_or("-".into(), commas),
                delta,
            );
        }
    }
}
