//! Shared plumbing for the experiment binaries: one place that reads
//! `--quick`/`LEO_QUICK`, `LEO_THREADS`, and `--out-dir`/`LEO_OUT_DIR`,
//! plus the per-run manifest every binary writes next to its results.
//!
//! A binary wraps its work in a [`Run`]:
//!
//! ```no_run
//! use leo_bench::cli::Run;
//!
//! let mut run = Run::start("fig0");
//! let data = run.phase("sweep", || vec![1.0, 2.0]);
//! run.write_results(&data);
//! run.finish(); // writes results/fig0.meta.json
//! ```
//!
//! The manifest (`<name>.meta.json`) records the run configuration,
//! per-phase wall-clock times, and a dump of every `leo-obs` counter and
//! histogram — see EXPERIMENTS.md for the schema and the `perf_report`
//! binary for pretty-printing and run-vs-run diffing.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Run configuration shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Coarse sampling for CI / smoke runs (`--quick` or `LEO_QUICK`).
    pub quick: bool,
    /// Worker-pool size (`LEO_THREADS`, default machine parallelism).
    pub threads: usize,
    /// Where results and manifests go (`--out-dir`, `LEO_OUT_DIR`,
    /// default `results`).
    pub out_dir: PathBuf,
    /// Environment values that did not parse cleanly and what the run
    /// fell back to. Printed to stderr at startup and recorded in the
    /// manifest, so a typo'd `LEO_THREADS=eight` is visible in the run's
    /// paper trail instead of silently benchmarking on the default pool.
    pub warnings: Vec<String>,
}

impl RunConfig {
    /// Reads the process arguments and environment, reporting any
    /// mis-set variables on stderr.
    pub fn from_env() -> RunConfig {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let config = RunConfig::from_parts(
            &args,
            std::env::var("LEO_QUICK").ok().as_deref(),
            std::env::var("LEO_THREADS").ok().as_deref(),
            std::env::var("LEO_OUT_DIR").ok().as_deref(),
            std::env::var("LEO_OBS").ok().as_deref(),
        );
        for w in &config.warnings {
            eprintln!("warning: {w}");
        }
        config
    }

    /// The same decision as a pure function of the inputs (`None` =
    /// variable unset), so tests never mutate the process environment.
    /// Flags win over environment variables.
    pub fn from_parts(
        args: &[String],
        quick_env: Option<&str>,
        threads_env: Option<&str>,
        out_env: Option<&str>,
        obs_env: Option<&str>,
    ) -> RunConfig {
        let mut warnings = Vec::new();
        let quick = args.iter().any(|a| a == "--quick") || crate::quick_mode_from(quick_env);
        if let Some(v) = quick_env {
            // Anything but "0"/"" enables quick mode (historical
            // contract); flag values outside the documented {"", "0",
            // "1"} so a stray `LEO_QUICK=o` is not mistaken for "off".
            if !matches!(v, "" | "0" | "1") {
                warnings.push(format!(
                    "LEO_QUICK={v:?} is not \"0\" or \"1\"; treating it as quick mode ON"
                ));
            }
        }
        let threads = leo_sim::threads_from(threads_env);
        if let Some(v) = threads_env {
            if v.trim().parse::<usize>().ok().is_none_or(|n| n == 0) {
                warnings.push(format!(
                    "LEO_THREADS={v:?} is not a positive integer; using {threads} worker threads"
                ));
            }
        }
        if let Some(v) = obs_env {
            // `leo_obs::level()` reads the same variable itself; this
            // only surfaces the typo in the manifest paper trail, it
            // never sets the level.
            let (fallback, recognized) = leo_obs::level_from_checked(Some(v));
            if !recognized {
                warnings.push(format!(
                    "LEO_OBS={v:?} is not one of 0/off, 1/metrics, 2/full, 3/trace; \
                     observability is {fallback:?}"
                ));
            }
        }
        let out_dir = args
            .iter()
            .position(|a| a == "--out-dir")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .or(out_env)
            .unwrap_or("results")
            .into();
        RunConfig {
            quick,
            threads,
            out_dir,
            warnings,
        }
    }

    /// Parses a positive-integer knob (`name` is the environment
    /// variable, `value` its raw content, `None` = unset), falling back
    /// to `default` and recording a warning on garbage — the same
    /// config_warnings paper trail `LEO_THREADS` gets, shared by every
    /// binary instead of re-parsed ad hoc.
    pub fn usize_knob(&mut self, name: &str, value: Option<&str>, default: usize) -> usize {
        match value {
            None => default,
            Some(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    self.warnings.push(format!(
                        "{name}={v:?} is not a positive integer; using {default}"
                    ));
                    default
                }
            },
        }
    }
}

/// One experiment binary's execution context: the parsed [`RunConfig`],
/// a wall clock, and the phase log that ends up in the manifest.
pub struct Run {
    name: String,
    config: RunConfig,
    started: Instant,
    phases: Vec<PhaseRecord>,
}

impl Run {
    /// Starts a run named `name` (the results/manifest file stem),
    /// configured from the process arguments and environment.
    pub fn start(name: &str) -> Run {
        Run::with_config(name, RunConfig::from_env())
    }

    /// Starts a run with an explicit configuration (tests, embedding).
    pub fn with_config(name: &str, config: RunConfig) -> Run {
        Run {
            name: name.to_string(),
            config,
            started: Instant::now(),
            phases: Vec::new(),
        }
    }

    /// Quick mode?
    pub fn quick(&self) -> bool {
        self.config.quick
    }

    /// Worker-pool size for `parallel_map` / `TimeSweep::with_threads`.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Output directory for results and the manifest.
    pub fn out_dir(&self) -> &Path {
        &self.config.out_dir
    }

    /// Runs `f`, recording its wall-clock time as phase `label` in the
    /// manifest. Phases appear in execution order. At `LEO_OBS=trace`
    /// the phase is also an interval in the exported trace.
    pub fn phase<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        let trace = leo_obs::trace_scope(label.to_string(), "phase");
        let t0 = Instant::now();
        let result = f();
        self.phases.push(PhaseRecord {
            name: label.to_string(),
            wall_s: t0.elapsed().as_secs_f64(),
        });
        drop(trace);
        result
    }

    /// Writes `data` as pretty JSON to `<out_dir>/<name>.json`. The data
    /// file is the experiment's *result* — it must be byte-identical
    /// whatever the observability level, which is why timings and
    /// counters go to the separate manifest instead.
    pub fn write_results<T: Serialize>(&self, data: &T) {
        crate::write_json(&self.config.out_dir, &format!("{}.json", self.name), data);
    }

    /// Builds the manifest (configuration, phase wall-clocks, and a dump
    /// of every `leo-obs` metric), writes it to
    /// `<out_dir>/<name>.meta.json`, and returns it. At `LEO_OBS=trace`
    /// the buffered trace events are additionally drained into
    /// `<out_dir>/<name>.trace.json` (Chrome trace-event JSON — open in
    /// Perfetto or chrome://tracing).
    pub fn finish(self) -> RunManifest {
        let manifest = self.manifest();
        crate::write_json(
            &self.config.out_dir,
            &format!("{}.meta.json", manifest.name),
            &manifest,
        );
        if leo_obs::trace_enabled() {
            let dump = leo_obs::take_trace();
            let path = self
                .config
                .out_dir
                .join(format!("{}.trace.json", manifest.name));
            match std::fs::write(&path, leo_obs::chrome_trace_json(&dump)) {
                Ok(()) => eprintln!(
                    "wrote {} ({} events{})",
                    path.display(),
                    dump.events.len(),
                    if dump.dropped > 0 {
                        format!(", {} dropped", dump.dropped)
                    } else {
                        String::new()
                    }
                ),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
        manifest
    }

    /// The manifest [`Run::finish`] would write, without writing it.
    pub fn manifest(&self) -> RunManifest {
        let obs = leo_obs::snapshot();
        RunManifest {
            name: self.name.clone(),
            quick: self.config.quick,
            threads: self.config.threads,
            config_warnings: self.config.warnings.clone(),
            obs_level: level_name(leo_obs::level()).to_string(),
            total_s: self.started.elapsed().as_secs_f64(),
            phases: self.phases.clone(),
            counters: obs
                .counters
                .into_iter()
                .map(|(name, value)| CounterRecord { name, value })
                .collect(),
            histograms: obs
                .histograms
                .iter()
                .filter(|d| d.count > 0)
                .map(HistogramRecord::from_dump)
                .collect(),
            timeseries: Some(
                obs.series
                    .iter()
                    .filter(|d| !d.points.is_empty())
                    .map(TimeSeriesRecord::from_dump)
                    .collect(),
            ),
        }
    }
}

fn level_name(l: leo_obs::Level) -> &'static str {
    match l {
        leo_obs::Level::Off => "off",
        leo_obs::Level::Metrics => "metrics",
        leo_obs::Level::Full => "full",
        leo_obs::Level::Trace => "trace",
    }
}

/// One timed phase of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase label, unique within a run by convention.
    pub name: String,
    /// Wall-clock seconds the phase took.
    pub wall_s: f64,
}

/// One counter's total at the end of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRecord {
    /// Registered metric name.
    pub name: String,
    /// Final value. Exact: counters stay far below 2^53.
    pub value: u64,
}

/// One histogram's summary at the end of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRecord {
    /// Registered metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples (seconds for span histograms).
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median, accurate to one log-bucket (≲ 19 %).
    pub p50: f64,
    /// 99th percentile, same accuracy.
    pub p99: f64,
    /// Upper bound on the maximum sample.
    pub max: f64,
}

impl HistogramRecord {
    fn from_dump(d: &leo_obs::HistogramDump) -> HistogramRecord {
        HistogramRecord {
            name: d.name.clone(),
            count: d.count,
            sum: d.sum,
            mean: d.mean().unwrap_or(0.0),
            p50: d.quantile(0.5).unwrap_or(0.0),
            p99: d.quantile(0.99).unwrap_or(0.0),
            max: d.max().unwrap_or(0.0),
        }
    }
}

/// One time series' sampled points at the end of a run (one gauge over
/// the run's own x-axis — orbital seconds for the sweeps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesRecord {
    /// Registered series name.
    pub name: String,
    /// True for wall-clock series: gated like spans, *not* deterministic
    /// across thread counts, excluded from determinism checks and the
    /// watchdog's envelope comparison.
    pub timing: bool,
    /// `[x, value]` points in sample order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeriesRecord {
    fn from_dump(d: &leo_obs::TimeSeriesDump) -> TimeSeriesRecord {
        TimeSeriesRecord {
            name: d.name.clone(),
            timing: d.timing,
            points: d.points.clone(),
        }
    }

    /// Largest sampled value, `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Arithmetic mean of the sampled values, `None` when empty.
    pub fn mean_value(&self) -> Option<f64> {
        (!self.points.is_empty())
            .then(|| self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }
}

/// The per-run manifest written as `<name>.meta.json` — everything about
/// *how* a run went, kept apart from *what* it computed so result files
/// stay byte-identical across observability levels and machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Run name (the results file stem, e.g. `fig3`).
    pub name: String,
    /// Whether the run sampled coarsely (`--quick` / `LEO_QUICK`).
    pub quick: bool,
    /// Worker-pool size the run used.
    pub threads: usize,
    /// Configuration values that did not parse and the fallbacks taken
    /// (see [`RunConfig::warnings`]). Empty on a clean run.
    pub config_warnings: Vec<String>,
    /// Observability level: `off`, `metrics`, or `full`.
    pub obs_level: String,
    /// Total wall-clock seconds from `Run::start` to `Run::finish`.
    pub total_s: f64,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseRecord>,
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterRecord>,
    /// Every non-empty histogram, sorted by name.
    pub histograms: Vec<HistogramRecord>,
    /// Every non-empty time series, sorted by name. `Option` so
    /// manifests written before the field existed still load (a missing
    /// key reads as `None`); use [`RunManifest::series`] to iterate
    /// either way.
    pub timeseries: Option<Vec<TimeSeriesRecord>>,
}

impl RunManifest {
    /// Parses a manifest from a JSON file.
    pub fn load(path: &Path) -> Result<RunManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    }

    /// The named counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named phase's wall-clock seconds, if recorded.
    pub fn phase_wall(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.wall_s)
    }

    /// The recorded time series (empty for pre-timeseries manifests).
    pub fn series(&self) -> &[TimeSeriesRecord] {
        self.timeseries.as_deref().unwrap_or(&[])
    }

    /// The named time series, if recorded.
    pub fn series_named(&self, name: &str) -> Option<&TimeSeriesRecord> {
        self.series().iter().find(|s| s.name == name)
    }

    /// Throughput of `counter` over phase `phase`: counter value divided
    /// by the phase's wall-clock. `None` when either is missing or the
    /// phase took no measurable time — the serve perf gate compares
    /// `serve.queries` over the `sweep` phase this way, so quick and
    /// full runs are comparable as rates.
    pub fn rate_per_sec(&self, counter: &str, phase: &str) -> Option<f64> {
        let count = self.counter(counter)?;
        let wall = self.phase_wall(phase)?;
        (wall > 0.0).then(|| count as f64 / wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(args: &[&str], quick: Option<&str>, out: Option<&str>) -> RunConfig {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunConfig::from_parts(&args, quick, Some("3"), out, None)
    }

    #[test]
    fn quick_flag_and_env_both_enable_quick_mode() {
        assert!(cfg(&["--quick"], None, None).quick);
        assert!(cfg(&[], Some("1"), None).quick);
        assert!(!cfg(&[], Some("0"), None).quick);
        assert!(!cfg(&[], None, None).quick);
    }

    #[test]
    fn out_dir_flag_wins_over_env_and_default() {
        assert_eq!(
            cfg(&["--out-dir", "/tmp/x"], None, Some("/tmp/y")).out_dir,
            PathBuf::from("/tmp/x")
        );
        assert_eq!(
            cfg(&[], None, Some("/tmp/y")).out_dir,
            PathBuf::from("/tmp/y")
        );
        assert_eq!(cfg(&[], None, None).out_dir, PathBuf::from("results"));
    }

    #[test]
    fn threads_env_flows_through() {
        let c = cfg(&[], None, None);
        assert_eq!(c.threads, 3);
        assert!(c.warnings.is_empty(), "clean env warns: {:?}", c.warnings);
    }

    #[test]
    fn garbage_threads_env_warns_and_falls_back() {
        for bad in ["eight", "0", "-2", "3.5", ""] {
            let args: Vec<String> = Vec::new();
            let c = RunConfig::from_parts(&args, None, Some(bad), None, None);
            assert_eq!(c.threads, leo_sim::threads_from(None), "value {bad:?}");
            assert_eq!(c.warnings.len(), 1, "value {bad:?}");
            assert!(
                c.warnings[0].contains("LEO_THREADS") && c.warnings[0].contains("positive"),
                "warning text: {}",
                c.warnings[0]
            );
        }
        // Whitespace-padded integers parse; no warning.
        let c = RunConfig::from_parts(&[], None, Some(" 5 "), None, None);
        assert_eq!((c.threads, c.warnings.len()), (5, 0));
    }

    #[test]
    fn odd_quick_env_warns_but_still_enables_quick_mode() {
        for (v, expect_quick) in [("yes", true), ("o", true), ("TRUE", true)] {
            let c = RunConfig::from_parts(&[], Some(v), Some("3"), None, None);
            assert_eq!(c.quick, expect_quick, "value {v:?}");
            assert_eq!(c.warnings.len(), 1, "value {v:?}");
            assert!(c.warnings[0].contains("LEO_QUICK"));
        }
        for v in ["", "0", "1"] {
            let c = RunConfig::from_parts(&[], Some(v), Some("3"), None, None);
            assert!(c.warnings.is_empty(), "documented value {v:?} warned");
        }
    }

    #[test]
    fn malformed_obs_env_warns_and_lands_in_the_manifest() {
        // Documented spellings are quiet.
        for ok in ["", "0", "off", "1", "metrics", "2", "full", "3", "trace"] {
            let c = RunConfig::from_parts(&[], None, Some("3"), None, Some(ok));
            assert!(c.warnings.is_empty(), "documented value {ok:?} warned");
        }
        // A typo is surfaced — and rides into the manifest like a bad
        // LEO_THREADS does.
        let config = RunConfig::from_parts(&[], None, Some("3"), None, Some("ful"));
        assert_eq!(config.warnings.len(), 1);
        assert!(
            config.warnings[0].contains("LEO_OBS") && config.warnings[0].contains("trace"),
            "warning text: {}",
            config.warnings[0]
        );
        let m = Run::with_config("t", config).manifest();
        assert_eq!(m.config_warnings.len(), 1);
        assert!(serde_json::to_string(&m).unwrap().contains("LEO_OBS"));
    }

    #[test]
    fn warnings_land_in_the_manifest() {
        let args: Vec<String> = Vec::new();
        let config = RunConfig::from_parts(&args, Some("maybe"), Some("many"), None, None);
        assert_eq!(config.warnings.len(), 2);
        let run = Run::with_config("t", config.clone());
        let m = run.manifest();
        assert_eq!(m.config_warnings, config.warnings);
    }

    #[test]
    fn usize_knob_parses_warns_and_falls_back() {
        let mut c = cfg(&[], None, None);
        assert_eq!(c.usize_knob("LEO_SERVE_USERS", None, 7), 7);
        assert_eq!(c.usize_knob("LEO_SERVE_USERS", Some("12"), 7), 12);
        assert_eq!(c.usize_knob("LEO_SERVE_USERS", Some(" 3 "), 7), 3);
        assert!(c.warnings.is_empty());
        for bad in ["zero", "0", "-1", "1.5", ""] {
            assert_eq!(c.usize_knob("LEO_SERVE_USERS", Some(bad), 7), 7);
        }
        assert_eq!(c.warnings.len(), 5);
        assert!(c.warnings[0].contains("LEO_SERVE_USERS"));
    }

    #[test]
    fn malformed_threads_env_surfaces_in_the_serve_manifest() {
        // The serve_bench path: RunConfig parsed from a garbage
        // LEO_THREADS, knobs layered on, manifest named "serve" — the
        // warning must ride all the way into serve.meta.json.
        let args: Vec<String> = Vec::new();
        let mut config = RunConfig::from_parts(&args, None, Some("eight"), None, None);
        config.usize_knob("LEO_SERVE_USERS", Some("oops"), 100);
        let m = Run::with_config("serve", config).manifest();
        assert_eq!(m.name, "serve");
        assert_eq!(m.config_warnings.len(), 2);
        assert!(m.config_warnings[0].contains("LEO_THREADS"));
        assert!(m.config_warnings[1].contains("LEO_SERVE_USERS"));
        let text = serde_json::to_string(&m).unwrap();
        assert!(text.contains("LEO_THREADS"));
    }

    #[test]
    fn run_records_phases_in_order() {
        let mut run = Run::with_config(
            "t",
            RunConfig {
                quick: true,
                threads: 2,
                out_dir: PathBuf::from("results"),
                warnings: Vec::new(),
            },
        );
        let x = run.phase("a", || 1 + 1);
        assert_eq!(x, 2);
        run.phase("b", || ());
        let m = run.manifest();
        let names: Vec<&str> = m.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert!(m.phases.iter().all(|p| p.wall_s >= 0.0));
        assert!(m.quick);
        assert_eq!(m.threads, 2);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest {
            name: "fig9".into(),
            quick: false,
            threads: 8,
            config_warnings: vec!["LEO_THREADS=\"x\" is not a positive integer".into()],
            obs_level: "metrics".into(),
            total_s: 1.25,
            phases: vec![PhaseRecord {
                name: "sweep".into(),
                wall_s: 1.0,
            }],
            counters: vec![CounterRecord {
                name: "engine.dijkstra.pops".into(),
                value: 123_456,
            }],
            histograms: vec![HistogramRecord {
                name: "sim.worker_busy_s".into(),
                count: 4,
                sum: 2.0,
                mean: 0.5,
                p50: 0.5,
                p99: 0.7,
                max: 0.8,
            }],
            timeseries: Some(vec![TimeSeriesRecord {
                name: "serve.handoffs".into(),
                timing: false,
                points: vec![(0.0, 0.0), (60.0, 17.0), (120.0, 9.0)],
            }]),
        };
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.counter("engine.dijkstra.pops"), Some(123_456));
        assert_eq!(back.phase_wall("sweep"), Some(1.0));
        assert_eq!(back.counter("missing"), None);
        assert_eq!(
            back.rate_per_sec("engine.dijkstra.pops", "sweep"),
            Some(123_456.0)
        );
        assert_eq!(back.rate_per_sec("missing", "sweep"), None);
        assert_eq!(back.rate_per_sec("engine.dijkstra.pops", "missing"), None);
        let s = back.series_named("serve.handoffs").expect("series kept");
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.max_value(), Some(17.0));
        assert!((s.mean_value().unwrap() - 26.0 / 3.0).abs() < 1e-12);
        assert_eq!(back.series_named("missing"), None);
    }

    /// Manifests written before the `timeseries` field existed (the
    /// committed baselines the CI perf gate diffs against) must still
    /// load: the missing key reads as `None` and `series()` is empty.
    #[test]
    fn pre_timeseries_manifests_still_load() {
        let text = r#"{
            "name": "old",
            "quick": false,
            "threads": 1,
            "config_warnings": [],
            "obs_level": "metrics",
            "total_s": 1.0,
            "phases": [{"name": "sweep", "wall_s": 0.5}],
            "counters": [{"name": "serve.queries", "value": 10}],
            "histograms": []
        }"#;
        let back: RunManifest = serde_json::from_str(text).unwrap();
        assert_eq!(back.timeseries, None);
        assert!(back.series().is_empty());
        assert_eq!(back.name, "old");
        assert_eq!(back.rate_per_sec("serve.queries", "sweep"), Some(20.0));
    }

    /// A phase can legitimately record zero wall time (sub-resolution
    /// work, or a clock that didn't advance). The rate must then be
    /// `None`, never a division artifact like `inf` or `NaN`.
    #[test]
    fn rate_per_sec_of_zero_duration_phase_is_none() {
        let m = RunManifest {
            name: "edge".into(),
            quick: true,
            threads: 1,
            config_warnings: vec![],
            obs_level: "metrics".into(),
            total_s: 0.0,
            phases: vec![
                PhaseRecord {
                    name: "instant".into(),
                    wall_s: 0.0,
                },
                PhaseRecord {
                    name: "negative".into(),
                    wall_s: -1.0, // a corrupted manifest must not yield a rate either
                },
            ],
            counters: vec![CounterRecord {
                name: "edge.ticks".into(),
                value: 42,
            }],
            histograms: vec![],
            timeseries: None,
        };
        assert_eq!(m.rate_per_sec("edge.ticks", "instant"), None);
        assert_eq!(m.rate_per_sec("edge.ticks", "negative"), None);
        // A zero *count* over real time is a legitimate rate of zero.
        let mut m2 = m;
        m2.phases[0].wall_s = 2.0;
        m2.counters[0].value = 0;
        assert_eq!(m2.rate_per_sec("edge.ticks", "instant"), Some(0.0));
    }
}
