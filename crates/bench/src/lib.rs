//! # leo-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`fig1` … `fig7`, `feasibility`), plus Criterion micro-benchmarks and
//! ablation benches. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! Every binary prints gnuplot-ready columns to stdout and writes the
//! same series as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::Path;

pub mod cli;
pub mod watchdog;

/// Writes an experiment's data as pretty JSON under `results/<name>.json`
/// (creating the directory), and reports where it went on stderr.
/// Binaries using the [`cli::Run`] context should prefer
/// [`cli::Run::write_results`], which honours `--out-dir`.
pub fn write_results<T: Serialize>(name: &str, data: &T) {
    write_json(Path::new("results"), &format!("{name}.json"), data);
}

/// Writes `data` as pretty JSON to `dir/filename` (creating the
/// directory), reporting where it went — or why it couldn't — on stderr.
pub fn write_json<T: Serialize>(dir: &Path, filename: &str, data: &T) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(filename);
    match serde_json::to_string_pretty(data) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {filename}: {e}"),
    }
}

/// Returns true when the binary was invoked with `--quick`, or when the
/// `LEO_QUICK` environment variable is set to anything but `0` or the
/// empty string (coarser sampling for CI / smoke runs).
pub fn quick_mode() -> bool {
    if std::env::args().any(|a| a == "--quick") {
        return true;
    }
    quick_mode_from(std::env::var("LEO_QUICK").ok().as_deref())
}

/// The `LEO_QUICK` decision as a pure function of the variable's value
/// (`None` = unset): anything but `0` or the empty string enables quick
/// mode. Split out so tests never have to mutate the process
/// environment, which is racy under the parallel test runner.
pub fn quick_mode_from(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

// The experiment binaries predate the sweep engine; keep the old
// `leo_bench::parallel_map` path working.
pub use leo_sim::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_honors_the_environment() {
        assert!(quick_mode_from(Some("1")));
        assert!(quick_mode_from(Some("yes")));
        assert!(!quick_mode_from(Some("0")));
        assert!(!quick_mode_from(Some("")));
        assert!(!quick_mode_from(None));
    }
}
