//! # leo-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`fig1` … `fig7`, `feasibility`), plus Criterion micro-benchmarks and
//! ablation benches. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! Every binary prints gnuplot-ready columns to stdout and writes the
//! same series as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::Path;

/// Writes an experiment's data as pretty JSON under `results/<name>.json`
/// (creating the directory), and reports where it went on stderr.
pub fn write_results<T: Serialize>(name: &str, data: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(data) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Returns true when the binary was invoked with `--quick` (coarser
/// sampling for CI / smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Splits `items` across `threads` chunks and maps them in parallel with
/// crossbeam scoped threads, preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|s| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i64> = (0..100).collect();
        let out = parallel_map(items.clone(), 7, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(parallel_map(Vec::<i32>::new(), 4, |&x| x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn parallel_map_with_more_threads_than_items() {
        let out = parallel_map(vec![1, 2, 3], 16, |&x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }
}
