//! # leo-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`fig1` … `fig7`, `feasibility`), plus Criterion micro-benchmarks and
//! ablation benches. See DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! Every binary prints gnuplot-ready columns to stdout and writes the
//! same series as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use std::path::Path;

/// Writes an experiment's data as pretty JSON under `results/<name>.json`
/// (creating the directory), and reports where it went on stderr.
pub fn write_results<T: Serialize>(name: &str, data: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(data) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Returns true when the binary was invoked with `--quick`, or when the
/// `LEO_QUICK` environment variable is set to anything but `0` or the
/// empty string (coarser sampling for CI / smoke runs).
pub fn quick_mode() -> bool {
    if std::env::args().any(|a| a == "--quick") {
        return true;
    }
    matches!(std::env::var("LEO_QUICK"), Ok(v) if !v.is_empty() && v != "0")
}

// The experiment binaries predate the sweep engine; keep the old
// `leo_bench::parallel_map` path working.
pub use leo_sim::parallel_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_honors_the_environment() {
        // Serial by construction: this is the only test in the crate
        // touching LEO_QUICK.
        let saved = std::env::var("LEO_QUICK").ok();
        std::env::set_var("LEO_QUICK", "1");
        assert!(quick_mode());
        std::env::set_var("LEO_QUICK", "0");
        assert!(!quick_mode());
        std::env::set_var("LEO_QUICK", "");
        assert!(!quick_mode());
        match saved {
            Some(v) => std::env::set_var("LEO_QUICK", v),
            None => std::env::remove_var("LEO_QUICK"),
        }
    }
}
