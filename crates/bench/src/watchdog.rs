//! Quantile-aware regression watchdog: diffs two run manifests on
//! histogram quantiles (p50/p99) and time-series envelopes, with
//! configurable tolerances.
//!
//! The CI throughput gate (`perf_report --min-qps-ratio`) watches one
//! number; latency *distributions* can drift a long way underneath it
//! (a fatter tail at the same mean, a bimodal split). The watchdog
//! closes that gap:
//!
//! * **histograms** — candidate p50 and p99 may each grow by at most a
//!   configured factor over baseline (one-sided: these are latencies and
//!   work sizes, getting smaller is fine);
//! * **time series** — the max and mean of each *work* series (the
//!   deterministic per-snapshot gauges) must stay within a two-sided
//!   factor of baseline: work drift in either direction means the run
//!   did different work, which a perf change should not silently do.
//!   Timing series (wall-clock samples) are skipped — they vary by
//!   machine.
//!
//! [`compare`] produces a [`WatchdogReport`]; [`WatchdogReport::markdown`]
//! renders it as a report suitable for a CI job summary. The
//! `perf_report` binary wires this behind `--p50-tol`/`--p99-tol`/
//! `--ts-tol`/`--quantile-metric`/`--md-report`.

use crate::cli::RunManifest;

/// Tolerances for [`compare`]. Each is a ratio floor/ceiling relative to
/// baseline; `f64::INFINITY` disables that check.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Candidate p50 may be at most `p50_tol` × baseline p50.
    pub p50_tol: f64,
    /// Candidate p99 may be at most `p99_tol` × baseline p99.
    pub p99_tol: f64,
    /// Work time-series max/mean must stay within
    /// `[1/ts_tol, ts_tol]` × baseline.
    pub ts_tol: f64,
    /// When non-empty, only histograms and time series named here are
    /// checked. CI uses this to restrict a mixed-scale diff (full-run
    /// committed baseline vs quick-mode candidate) to the
    /// scale-invariant per-query latency histogram; same-scale diffs
    /// should leave it empty so every work envelope is judged.
    pub metrics: Vec<String>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // Log-bucketed quantiles are accurate to one bucket (≲ 19 %),
            // so anything under ~1.2 would flake on bucket boundaries;
            // the defaults leave room for machine noise on top.
            p50_tol: 2.0,
            p99_tol: 2.0,
            ts_tol: 1.5,
            metrics: Vec::new(),
        }
    }
}

/// One watchdog violation: `metric`'s `stat` moved from `baseline` to
/// `candidate`, a ratio of `ratio` against a tolerance of `tolerance`.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Histogram or time-series name.
    pub metric: String,
    /// Which statistic regressed: `p50`, `p99`, `ts.max`, or `ts.mean`.
    pub stat: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// `candidate / baseline` (`INFINITY` when baseline is zero).
    pub ratio: f64,
    /// The tolerance the ratio violated.
    pub tolerance: f64,
}

/// The outcome of one [`compare`]: violations plus how much was checked
/// (so an empty findings list from an empty comparison is visibly
/// vacuous, not silently green).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchdogReport {
    /// Tolerance violations, in manifest order.
    pub findings: Vec<Finding>,
    /// Histograms present in both manifests and quantile-checked.
    pub histograms_checked: usize,
    /// Work time series present in both manifests and envelope-checked.
    pub series_checked: usize,
}

impl WatchdogReport {
    /// True when nothing violated its tolerance.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as markdown (a table of violations, or a green
    /// one-liner), for CI job summaries.
    pub fn markdown(&self, baseline: &str, candidate: &str) -> String {
        let mut out = String::new();
        out.push_str("## Quantile watchdog\n\n");
        out.push_str(&format!(
            "Compared `{candidate}` against `{baseline}`: {} histogram(s) on p50/p99, \
             {} work time series on max/mean.\n\n",
            self.histograms_checked, self.series_checked
        ));
        if self.is_clean() {
            out.push_str("No regressions: every quantile and envelope within tolerance.\n");
            return out;
        }
        out.push_str(&format!("**{} violation(s):**\n\n", self.findings.len()));
        out.push_str("| metric | stat | baseline | candidate | ratio | tolerance |\n");
        out.push_str("|---|---|---:|---:|---:|---:|\n");
        for f in &self.findings {
            out.push_str(&format!(
                "| `{}` | {} | {:.6} | {:.6} | {:.3} | {:.3} |\n",
                f.metric, f.stat, f.baseline, f.candidate, f.ratio, f.tolerance
            ));
        }
        out
    }
}

/// `candidate / baseline` with the zero-baseline convention: both zero is
/// a clean 1.0, baseline-only-zero is `INFINITY` (flagged by any finite
/// tolerance).
fn ratio(baseline: f64, candidate: f64) -> f64 {
    if baseline > 0.0 {
        candidate / baseline
    } else if candidate == 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}

/// Diffs `cand` against `base` under `cfg`. Metrics present in only one
/// manifest are skipped — the watchdog judges drift, not coverage (the
/// counter diff in `perf_report` already shows appearing/disappearing
/// metrics).
pub fn compare(base: &RunManifest, cand: &RunManifest, cfg: &WatchdogConfig) -> WatchdogReport {
    let mut report = WatchdogReport::default();
    for b in &base.histograms {
        if !cfg.metrics.is_empty() && !cfg.metrics.contains(&b.name) {
            continue;
        }
        let Some(c) = cand.histograms.iter().find(|c| c.name == b.name) else {
            continue;
        };
        report.histograms_checked += 1;
        for (stat, bv, cv, tol) in [
            ("p50", b.p50, c.p50, cfg.p50_tol),
            ("p99", b.p99, c.p99, cfg.p99_tol),
        ] {
            let r = ratio(bv, cv);
            if r > tol {
                report.findings.push(Finding {
                    metric: b.name.clone(),
                    stat,
                    baseline: bv,
                    candidate: cv,
                    ratio: r,
                    tolerance: tol,
                });
            }
        }
    }
    for b in base.series() {
        if b.timing || (!cfg.metrics.is_empty() && !cfg.metrics.contains(&b.name)) {
            continue;
        }
        let Some(c) = cand.series_named(&b.name) else {
            continue;
        };
        if c.timing {
            continue;
        }
        report.series_checked += 1;
        for (stat, bv, cv) in [
            ("ts.max", b.max_value(), c.max_value()),
            ("ts.mean", b.mean_value(), c.mean_value()),
        ] {
            let (Some(bv), Some(cv)) = (bv, cv) else {
                continue;
            };
            let r = ratio(bv, cv);
            if r > cfg.ts_tol || r < 1.0 / cfg.ts_tol {
                report.findings.push(Finding {
                    metric: b.name.clone(),
                    stat,
                    baseline: bv,
                    candidate: cv,
                    ratio: r,
                    tolerance: cfg.ts_tol,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::{HistogramRecord, TimeSeriesRecord};

    fn manifest(
        histograms: Vec<HistogramRecord>,
        timeseries: Vec<TimeSeriesRecord>,
    ) -> RunManifest {
        RunManifest {
            name: "t".into(),
            quick: false,
            threads: 1,
            config_warnings: vec![],
            obs_level: "metrics".into(),
            total_s: 1.0,
            phases: vec![],
            counters: vec![],
            histograms,
            timeseries: Some(timeseries),
        }
    }

    fn hist(name: &str, p50: f64, p99: f64) -> HistogramRecord {
        HistogramRecord {
            name: name.into(),
            count: 100,
            sum: 100.0 * p50,
            mean: p50,
            p50,
            p99,
            max: p99 * 2.0,
        }
    }

    fn series(name: &str, timing: bool, values: &[f64]) -> TimeSeriesRecord {
        TimeSeriesRecord {
            name: name.into(),
            timing,
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 * 60.0, v))
                .collect(),
        }
    }

    /// The acceptance fixture: a synthetic p99 regression (fat tail at a
    /// steady median) must be flagged, and the markdown must name it.
    #[test]
    fn flags_a_synthetic_p99_regression() {
        let base = manifest(vec![hist("serve.query_latency_s", 1e-3, 2e-3)], vec![]);
        let cand = manifest(vec![hist("serve.query_latency_s", 1e-3, 9e-3)], vec![]);
        let report = compare(&base, &cand, &WatchdogConfig::default());
        assert_eq!(report.histograms_checked, 1);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert_eq!(
            (f.metric.as_str(), f.stat),
            ("serve.query_latency_s", "p99")
        );
        assert!((f.ratio - 4.5).abs() < 1e-9);
        assert!(!report.is_clean());
        let md = report.markdown("base.meta.json", "cand.meta.json");
        assert!(md.contains("serve.query_latency_s") && md.contains("p99"));
        assert!(md.contains("1 violation"));
    }

    #[test]
    fn within_tolerance_is_clean_and_improvements_never_flag() {
        let base = manifest(vec![hist("h", 1.0, 2.0)], vec![]);
        // 1.5x p50 and p99: inside the default 2.0 tolerance.
        let close = manifest(vec![hist("h", 1.5, 3.0)], vec![]);
        assert!(compare(&base, &close, &WatchdogConfig::default()).is_clean());
        // 10x *better* is one-sided fine.
        let faster = manifest(vec![hist("h", 0.1, 0.2)], vec![]);
        assert!(compare(&base, &faster, &WatchdogConfig::default()).is_clean());
    }

    #[test]
    fn metric_filter_restricts_quantile_and_envelope_checks() {
        let base = manifest(
            vec![hist("noisy", 1.0, 1.0), hist("gated", 1.0, 1.0)],
            vec![series("scaled", false, &[100.0])],
        );
        // A mixed-scale diff: the unfiltered work series runs 12x lower.
        let cand = manifest(
            vec![hist("noisy", 50.0, 50.0), hist("gated", 1.0, 1.0)],
            vec![series("scaled", false, &[8.0])],
        );
        let cfg = WatchdogConfig {
            metrics: vec!["gated".into()],
            ..WatchdogConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert_eq!(report.histograms_checked, 1);
        assert_eq!(report.series_checked, 0, "series filter must apply too");
        assert!(report.is_clean(), "filtered-out metric still flagged");
        // Without the filter the noisy histogram trips both quantile
        // checks and the scaled series trips both envelope stats.
        let unfiltered = compare(&base, &cand, &WatchdogConfig::default());
        assert_eq!(unfiltered.findings.len(), 4);
    }

    #[test]
    fn timeseries_envelope_is_two_sided_and_skips_timing_series() {
        let base = manifest(
            vec![],
            vec![
                series("work", false, &[10.0, 20.0, 30.0]),
                series("wall", true, &[0.1, 0.2, 0.3]),
            ],
        );
        // Work series halved: outside [1/1.5, 1.5] both directions.
        let cand = manifest(
            vec![],
            vec![
                series("work", false, &[5.0, 10.0, 15.0]),
                series("wall", true, &[99.0, 99.0, 99.0]),
            ],
        );
        let report = compare(&base, &cand, &WatchdogConfig::default());
        assert_eq!(report.series_checked, 1, "timing series must be skipped");
        assert_eq!(report.findings.len(), 2); // ts.max and ts.mean
        assert!(report.findings.iter().all(|f| f.metric == "work"));
        assert!(report.findings.iter().any(|f| f.stat == "ts.max"));
        assert!(report.findings.iter().any(|f| f.stat == "ts.mean"));
    }

    #[test]
    fn zero_baselines_follow_the_ratio_convention() {
        // Both zero: clean. Baseline zero, candidate not: flagged.
        let base = manifest(vec![], vec![series("s", false, &[0.0, 0.0])]);
        let same = manifest(vec![], vec![series("s", false, &[0.0, 0.0])]);
        assert!(compare(&base, &same, &WatchdogConfig::default()).is_clean());
        let grew = manifest(vec![], vec![series("s", false, &[0.0, 5.0])]);
        let report = compare(&base, &grew, &WatchdogConfig::default());
        assert!(!report.is_clean());
        assert!(report.findings.iter().all(|f| f.ratio.is_infinite()));
    }

    #[test]
    fn disjoint_manifests_are_vacuously_clean_but_visibly_so() {
        let base = manifest(vec![hist("only.base", 1.0, 1.0)], vec![]);
        let cand = manifest(vec![hist("only.cand", 1.0, 1.0)], vec![]);
        let report = compare(&base, &cand, &WatchdogConfig::default());
        assert!(report.is_clean());
        assert_eq!((report.histograms_checked, report.series_checked), (0, 0));
        let md = report.markdown("b", "c");
        assert!(md.contains("0 histogram(s)"));
    }

    #[test]
    fn pre_timeseries_baselines_skip_envelope_checks() {
        let mut base = manifest(vec![hist("h", 1.0, 1.0)], vec![]);
        base.timeseries = None; // an old committed baseline
        let cand = manifest(
            vec![hist("h", 1.0, 1.0)],
            vec![series("new", false, &[1.0])],
        );
        let report = compare(&base, &cand, &WatchdogConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.series_checked, 0);
    }
}
