//! Trace / time-series determinism and export validity.
//!
//! The standing guarantee extended to the new observability layer:
//!
//! * results and every *work* metric (counters, time-series points) are
//!   byte-identical across `LEO_THREADS` 1/4 and `LEO_OBS`
//!   metrics/trace;
//! * the Chrome trace-event export is valid JSON and its span tree
//!   nests correctly (begin/end balanced per thread ordinal).
//!
//! The obs level is process-global, so every test here serializes on
//! one mutex and resets the registries around itself.

use leo_bench::cli::{Run, RunConfig};
use leo_constellation::presets;
use leo_core::InOrbitService;
use leo_obs::Level;
use leo_serve::{synthesize_users, ServeConfig, ServeEngine, SweepReport, USER_SEED};
use leo_sim::TimeSweep;
use std::path::PathBuf;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn config(threads: usize) -> ServeConfig {
    ServeConfig {
        band_deg: 6.0,
        max_shard: 512,
        threads,
        validate_every: 2,
    }
}

fn times() -> Vec<f64> {
    (0..3).map(|i| i as f64 * 60.0).collect()
}

/// One small serve sweep at the given level and thread count, returning
/// the result, the counter totals, and the *work* time series (the
/// deterministic subset — timing series are wall-clock by definition).
fn run_sweep(level: Level, threads: usize) -> (SweepReport, String, String) {
    leo_obs::set_level(level);
    leo_obs::reset();
    let report = ServeEngine::new(
        InOrbitService::new(presets::starlink_550_only()),
        synthesize_users(1500, 2.0, USER_SEED),
        config(threads),
    )
    .sweep(&times());
    let snap = leo_obs::snapshot();
    let counters = format!("{:?}", snap.counters);
    let work_series: Vec<_> = snap.series.iter().filter(|s| !s.timing).collect();
    let series = format!("{work_series:?}");
    leo_obs::set_level(Level::Off);
    (report, counters, series)
}

#[test]
fn counters_and_timeseries_identical_across_threads_and_levels() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (base_report, base_counters, base_series) = run_sweep(Level::Metrics, 1);
    assert!(
        base_counters.contains("serve.queries"),
        "sweep recorded no counters"
    );
    assert!(
        base_series.contains("serve.served") && base_series.contains("serve.frontier_mode"),
        "sweep recorded no work series: {base_series}"
    );
    for (level, threads) in [(Level::Metrics, 4), (Level::Trace, 1), (Level::Trace, 4)] {
        let (report, counters, series) = run_sweep(level, threads);
        assert_eq!(report, base_report, "{level:?}/{threads} result drift");
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            serde_json::to_string(&base_report).unwrap(),
            "{level:?}/{threads} serialized result drift"
        );
        assert_eq!(counters, base_counters, "{level:?}/{threads} counter drift");
        assert_eq!(series, base_series, "{level:?}/{threads} series drift");
    }
    // Off records nothing but must compute the same bytes. (Series
    // registrations are interned for the process lifetime; at Off they
    // simply accumulate no points.)
    let (off_report, _, off_series) = run_sweep(Level::Off, 4);
    assert_eq!(off_report, base_report, "off-level result drift");
    assert!(
        !off_series.contains("points: [("),
        "off level must record no points: {off_series}"
    );
    let _ = leo_obs::take_trace();
}

#[test]
fn timesweep_edge_gauge_is_thread_invariant() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sample = |threads: usize| {
        leo_obs::set_level(Level::Metrics);
        leo_obs::reset();
        let service = InOrbitService::new(presets::starlink_550_only());
        let sweep = TimeSweep::new(&service, times()).with_threads(threads);
        let views = sweep.prepare();
        assert_eq!(views.len(), 3);
        let snap = leo_obs::snapshot();
        let series = snap
            .series
            .iter()
            .find(|s| s.name == "engine.isl_active_edges")
            .expect("prepare samples the engine gauge")
            .clone();
        leo_obs::set_level(Level::Off);
        series
    };
    let one = sample(1);
    assert_eq!(one.points.len(), 3, "one point per instant");
    assert!(one.points.iter().all(|&(_, v)| v > 0.0));
    assert_eq!(
        one.points.iter().map(|p| p.0).collect::<Vec<_>>(),
        times(),
        "x-axis must be the schedule, in order"
    );
    assert_eq!(sample(4), one, "thread count changed the gauge series");
}

/// The trace-event JSON shape, for the vendored serde facade: fields
/// absent on a given event read as `None`.
#[allow(non_snake_case)]
#[derive(serde::Deserialize)]
struct TraceFile {
    displayTimeUnit: String,
    traceEvents: Vec<TraceEventJson>,
}

#[derive(serde::Deserialize)]
struct TraceEventJson {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    pid: u64,
    tid: u64,
    s: Option<String>,
}

#[test]
fn trace_export_is_valid_and_nests_per_thread() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    leo_obs::set_level(Level::Trace);
    leo_obs::reset();

    let out_dir: PathBuf =
        std::env::temp_dir().join(format!("leo-obs-trace-test-{}", std::process::id()));
    let mut run = Run::with_config(
        "trace_probe",
        RunConfig {
            quick: true,
            threads: 4,
            out_dir: out_dir.clone(),
            warnings: Vec::new(),
        },
    );
    let report = run.phase("sweep", || {
        ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            synthesize_users(1500, 2.0, USER_SEED),
            config(4),
        )
        .sweep(&times())
    });
    assert!(report.total_queries > 0);
    let manifest = run.finish();
    leo_obs::set_level(Level::Off);

    // The manifest carries the timeseries section...
    assert_eq!(manifest.obs_level, "trace");
    assert!(
        manifest.series_named("serve.served").is_some(),
        "manifest lost the work series"
    );
    assert!(
        manifest.series().iter().any(|s| s.timing),
        "trace level should include the wall-clock series"
    );

    // ...and finish() wrote a loadable Chrome trace next to it.
    let trace_path = out_dir.join("trace_probe.trace.json");
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed: TraceFile = serde_json::from_str(&text).expect("trace JSON parses");
    assert_eq!(parsed.displayTimeUnit, "ms");
    assert!(
        !parsed.traceEvents.is_empty(),
        "a traced sweep must emit events"
    );

    // Structural validity: phases and instants present, pids constant,
    // instants carry thread scope.
    assert!(parsed.traceEvents.iter().any(|e| e.cat == "phase"));
    assert!(parsed
        .traceEvents
        .iter()
        .any(|e| e.ph == "i" && e.name == "serve.snapshot"));
    for e in &parsed.traceEvents {
        assert_eq!(e.pid, 1);
        assert!(e.ts >= 0.0);
        assert!(!e.name.is_empty() && !e.cat.is_empty());
        match e.ph.as_str() {
            "B" | "E" => assert!(e.s.is_none()),
            "i" => assert_eq!(e.s.as_deref(), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Span-tree nesting: per tid, begins and ends pair LIFO with
    // matching names and non-decreasing timestamps.
    let mut stacks: std::collections::HashMap<u64, Vec<&str>> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for e in &parsed.traceEvents {
        let prev = last_ts.entry(e.tid).or_insert(0.0);
        assert!(
            e.ts >= *prev,
            "tid {} timestamps regressed: {} after {}",
            e.tid,
            e.ts,
            prev
        );
        *prev = e.ts;
        match e.ph.as_str() {
            "B" => stacks.entry(e.tid).or_default().push(&e.name),
            "E" => {
                let open = stacks
                    .entry(e.tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("tid {}: end without begin ({})", e.tid, e.name));
                assert_eq!(open, e.name, "tid {}: mis-nested span", e.tid);
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "tid {tid}: {} span(s) left open: {stack:?}",
            stack.len()
        );
    }

    let _ = std::fs::remove_dir_all(&out_dir);
}
