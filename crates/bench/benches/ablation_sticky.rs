//! Ablation of the Sticky heuristic's three knobs (DESIGN.md §6):
//! latency slack (paper: 10 %), candidate pool size (paper: 5), and the
//! successor-latency tie-break. For each configuration the bench prints
//! the *quality* metrics (hand-off count, mean RTT) once, then measures
//! the selection runtime.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_core::session::run_session;
use leo_core::{InOrbitService, Policy, SessionConfig, StickyParams};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;

fn users() -> Vec<GroundEndpoint> {
    vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ]
}

fn session_cfg() -> SessionConfig {
    SessionConfig {
        start_s: 0.0,
        duration_s: 900.0,
        tick_s: 15.0,
    }
}

fn params(slack: f64, pool: usize) -> StickyParams {
    StickyParams {
        latency_slack: slack,
        pool_size: pool,
        lookahead_step_s: 30.0,
        lookahead_horizon_s: 300.0,
    }
}

fn print_quality_table(service: &InOrbitService) {
    println!("\n# Sticky ablation (15-min session, 15-s ticks):");
    println!(
        "{:>8} {:>6} {:>10} {:>14} {:>16}",
        "slack", "pool", "handoffs", "mean rtt (ms)", "median gap (s)"
    );
    let us = users();
    let cfg = session_cfg();
    for (slack, pool) in [
        (0.05, 5),
        (0.10, 5), // the paper's configuration
        (0.20, 5),
        (0.10, 1),
        (0.10, 15),
    ] {
        let r = run_session(service, &us, Policy::Sticky(params(slack, pool)), &cfg);
        println!(
            "{:>7.0}% {:>6} {:>10} {:>14.2} {:>16.0}",
            slack * 100.0,
            pool,
            r.handoff_count(),
            r.mean_group_rtt_ms().unwrap_or(f64::NAN),
            r.handoff_interval_cdf().median().unwrap_or(f64::NAN),
        );
    }
    let mm = run_session(service, &us, Policy::MinMax, &cfg);
    println!(
        "{:>8} {:>6} {:>10} {:>14.2} {:>16.0}  <- MinMax baseline",
        "-",
        "-",
        mm.handoff_count(),
        mm.mean_group_rtt_ms().unwrap_or(f64::NAN),
        mm.handoff_interval_cdf().median().unwrap_or(f64::NAN),
    );
}

fn bench_ablation(c: &mut Criterion) {
    let service = InOrbitService::new(presets::starlink_550_only());
    print_quality_table(&service);

    let us = users();
    let cfg = SessionConfig {
        start_s: 0.0,
        duration_s: 120.0,
        tick_s: 15.0,
    };
    let mut group = c.benchmark_group("sticky_ablation_runtime");
    group.sample_size(10);
    for (label, slack, pool) in [
        ("slack05_pool5", 0.05, 5usize),
        ("slack10_pool5", 0.10, 5),
        ("slack20_pool5", 0.20, 5),
        ("slack10_pool15", 0.10, 15),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_session(
                    &service,
                    &us,
                    Policy::Sticky(params(slack, pool)),
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
