//! Routing cost: ISL topology construction, per-snapshot graph build, and
//! Dijkstra shortest paths — the per-tick cost of every session.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_geo::Geodetic;
use leo_net::routing::{build_graph, delays_to_all_sats, ground_to_ground, GroundEndpoint};
use leo_net::IslTopology;

fn bench_topology_build(c: &mut Criterion) {
    let starlink550 = presets::starlink_550_only();
    let starlink = presets::starlink_phase1();
    let mut group = c.benchmark_group("isl_topology");
    group.sample_size(10);
    group.bench_function("plus_grid_1584", |b| {
        b.iter(|| black_box(IslTopology::plus_grid(&starlink550)))
    });
    group.bench_function("plus_grid_4409", |b| {
        b.iter(|| black_box(IslTopology::plus_grid(&starlink)))
    });
    group.finish();
}

fn bench_graph_and_paths(c: &mut Criterion) {
    let constellation = presets::starlink_550_only();
    let topo = IslTopology::plus_grid(&constellation);
    let snap = constellation.snapshot(0.0);
    let a = GroundEndpoint::new(0, Geodetic::ground(51.51, -0.13));
    let b = GroundEndpoint::new(1, Geodetic::ground(40.71, -74.01));
    let grounds = [a, b];
    let graph = build_graph(&constellation, &topo, &snap, &grounds);

    let mut group = c.benchmark_group("routing");
    group.sample_size(30);
    group.bench_function("build_graph_1584", |bch| {
        bch.iter(|| black_box(build_graph(&constellation, &topo, &snap, &grounds)))
    });
    group.bench_function("dijkstra_london_newyork", |bch| {
        bch.iter(|| black_box(ground_to_ground(&graph, &a, &b)))
    });
    group.bench_function("delays_to_all_sats", |bch| {
        bch.iter(|| black_box(delays_to_all_sats(&graph, &constellation, &a)))
    });
    group.finish();
}

criterion_group!(benches, bench_topology_build, bench_graph_and_paths);
criterion_main!(benches);
