//! Routing cost: ISL topology construction, per-snapshot graph build, and
//! Dijkstra shortest paths — the per-tick cost of every session.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_constellation::SatId;
use leo_geo::Geodetic;
use leo_net::engine::{DijkstraArena, RoutingEngine};
use leo_net::routing::{build_graph, delays_to_all_sats, ground_to_ground, GroundEndpoint};
use leo_net::IslTopology;

fn bench_topology_build(c: &mut Criterion) {
    let starlink550 = presets::starlink_550_only();
    let starlink = presets::starlink_phase1();
    let mut group = c.benchmark_group("isl_topology");
    group.sample_size(10);
    group.bench_function("plus_grid_1584", |b| {
        b.iter(|| black_box(IslTopology::plus_grid(&starlink550)))
    });
    group.bench_function("plus_grid_4409", |b| {
        b.iter(|| black_box(IslTopology::plus_grid(&starlink)))
    });
    group.finish();
}

fn bench_graph_and_paths(c: &mut Criterion) {
    let constellation = presets::starlink_550_only();
    let topo = IslTopology::plus_grid(&constellation);
    let snap = constellation.snapshot(0.0);
    let a = GroundEndpoint::new(0, Geodetic::ground(51.51, -0.13));
    let b = GroundEndpoint::new(1, Geodetic::ground(40.71, -74.01));
    let grounds = [a, b];
    let graph = build_graph(&constellation, &topo, &snap, &grounds);

    let mut group = c.benchmark_group("routing");
    group.sample_size(30);
    group.bench_function("build_graph_1584", |bch| {
        bch.iter(|| black_box(build_graph(&constellation, &topo, &snap, &grounds)))
    });
    group.bench_function("dijkstra_london_newyork", |bch| {
        bch.iter(|| black_box(ground_to_ground(&graph, &a, &b)))
    });
    group.bench_function("delays_to_all_sats", |bch| {
        bch.iter(|| black_box(delays_to_all_sats(&graph, &constellation, &a)))
    });
    group.finish();
}

/// The CSR engine against the allocating graph path at full 1,584-sat
/// scale, on the Fig 3 West Africa group: the per-snapshot bulk-delay
/// query that dominates fig3/fig6/fig7 sweeps. The `baseline_*` entry
/// rebuilds the graph per snapshot like the pre-engine code did; the
/// `engine_*` entry refreshes weights in place and reuses one arena.
fn bench_engine_1584(c: &mut Criterion) {
    let constellation = presets::starlink_550_only();
    let topo = IslTopology::plus_grid(&constellation);
    let snap = constellation.snapshot(300.0);
    let users = [
        GroundEndpoint::new(0, Geodetic::ground(6.52, 3.38)), // Lagos
        GroundEndpoint::new(1, Geodetic::ground(5.56, -0.20)), // Accra
        GroundEndpoint::new(2, Geodetic::ground(9.06, 7.49)), // Abuja
    ];

    let single = [users[0]];

    let engine = RoutingEngine::compile(&constellation, &topo);
    let mut weights = engine.refresh(&snap);
    let links = engine.attach_scan(&constellation, &snap, &users);
    let mut arena = DijkstraArena::new();

    let mut group = c.benchmark_group("routing_1584");
    group.sample_size(20);
    // The bulk-delays primitive: one ground source to every satellite,
    // per snapshot (what the pre-engine code paid build_graph for on
    // every call).
    group.bench_function("baseline_bulk_delays", |bch| {
        bch.iter(|| {
            let graph = build_graph(&constellation, &topo, &snap, &single);
            black_box(delays_to_all_sats(&graph, &constellation, &single[0]))
        })
    });
    group.bench_function("engine_bulk_delays", |bch| {
        bch.iter(|| {
            engine.refresh_into(&snap, &mut weights);
            let links = engine.attach_scan(&constellation, &snap, &single);
            black_box(engine.delays_from_all(&weights, &links, &mut arena))
        })
    });
    // The Fig 3 meetup query: the same, for the 3-user West Africa group.
    group.bench_function("baseline_group_delays", |bch| {
        bch.iter(|| {
            let graph = build_graph(&constellation, &topo, &snap, &users);
            let per_user: Vec<Vec<f64>> = users
                .iter()
                .map(|u| delays_to_all_sats(&graph, &constellation, u))
                .collect();
            black_box(per_user)
        })
    });
    group.bench_function("engine_group_delays", |bch| {
        bch.iter(|| {
            engine.refresh_into(&snap, &mut weights);
            let links = engine.attach_scan(&constellation, &snap, &users);
            black_box(engine.delays_from_all(&weights, &links, &mut arena))
        })
    });
    group.bench_function("engine_refresh_only", |bch| {
        bch.iter(|| {
            engine.refresh_into(&snap, &mut weights);
            black_box(weights.len())
        })
    });
    group.bench_function("engine_sat_to_sat", |bch| {
        bch.iter(|| {
            black_box(engine.sat_to_sat_delay(
                &weights,
                Some(&links),
                SatId(0),
                SatId(700),
                &mut arena,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_topology_build,
    bench_graph_and_paths,
    bench_engine_1584
);
criterion_main!(benches);
