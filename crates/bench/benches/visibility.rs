//! Visibility-query cost: the inner loop of Figs 1, 2, 4 and of every
//! selection tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_cities::WorldCities;
use leo_constellation::presets;
use leo_geo::{Ecef, Geodetic};
use leo_net::visibility::{coverage_mask, visible_sats};

fn bench_visible_sats(c: &mut Criterion) {
    let starlink = presets::starlink_phase1();
    let kuiper = presets::kuiper();
    let snap_s = starlink.snapshot(0.0);
    let snap_k = kuiper.snapshot(0.0);
    let g = Geodetic::ground(20.0, 30.0);
    let ge = g.to_ecef_spherical();

    let mut group = c.benchmark_group("visible_sats");
    group.bench_function("starlink_phase1", |b| {
        b.iter(|| black_box(visible_sats(&starlink, &snap_s, g, ge)))
    });
    group.bench_function("kuiper", |b| {
        b.iter(|| black_box(visible_sats(&kuiper, &snap_k, g, ge)))
    });
    group.finish();
}

fn bench_coverage_mask(c: &mut Criterion) {
    let starlink = presets::starlink_phase1();
    let snap = starlink.snapshot(0.0);
    let cities = WorldCities::load();
    let grounds: Vec<(Geodetic, Ecef)> = cities
        .top_n_geodetic(100)
        .into_iter()
        .map(|g| (g, g.to_ecef_spherical()))
        .collect();

    let mut group = c.benchmark_group("coverage_mask");
    group.sample_size(20);
    group.bench_function("starlink_100_cities", |b| {
        b.iter(|| black_box(coverage_mask(&starlink, &snap, &grounds)))
    });
    group.finish();
}

criterion_group!(benches, bench_visible_sats, bench_coverage_mask);
criterion_main!(benches);
