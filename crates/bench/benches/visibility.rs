//! Visibility-query cost: the inner loop of Figs 1, 2, 4 and of every
//! selection tick.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_cities::WorldCities;
use leo_constellation::presets;
use leo_geo::{Ecef, Geodetic};
use leo_net::index::VisibilityIndex;
use leo_net::visibility::{coverage_mask, visible_sats};

fn bench_visible_sats(c: &mut Criterion) {
    let starlink = presets::starlink_phase1();
    let kuiper = presets::kuiper();
    let snap_s = starlink.snapshot(0.0);
    let snap_k = kuiper.snapshot(0.0);
    let g = Geodetic::ground(20.0, 30.0);
    let ge = g.to_ecef_spherical();

    let mut group = c.benchmark_group("visible_sats");
    group.bench_function("starlink_phase1", |b| {
        b.iter(|| black_box(visible_sats(&starlink, &snap_s, g, ge)))
    });
    group.bench_function("kuiper", |b| {
        b.iter(|| black_box(visible_sats(&kuiper, &snap_k, g, ge)))
    });
    group.finish();
}

/// Indexed vs brute-force visibility at Starlink Phase I first-shell
/// scale (1,584 satellites): the acceptance benchmark of the spatial
/// index. The two paths return identical results; only the candidate-set
/// size differs.
fn bench_indexed_vs_brute(c: &mut Criterion) {
    let shell = presets::starlink_550_only();
    let snap = shell.snapshot(0.0);
    let index = VisibilityIndex::build(&shell, &snap);
    // Average over a spread of latitudes so neither path is cherry-picked.
    let grounds: Vec<(Geodetic, Ecef)> = [0.0, 15.0, 30.0, 45.0]
        .iter()
        .map(|&lat| {
            let g = Geodetic::ground(lat, 17.0);
            (g, g.to_ecef_spherical())
        })
        .collect();

    let mut group = c.benchmark_group("visibility_1584");
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            for &(g, ge) in &grounds {
                black_box(visible_sats(&shell, &snap, g, ge));
            }
        })
    });
    group.bench_function("indexed", |b| {
        b.iter(|| {
            for &(_, ge) in &grounds {
                black_box(index.query(ge));
            }
        })
    });
    group.bench_function("index_build", |b| {
        b.iter(|| black_box(VisibilityIndex::build(&shell, &snap)))
    });
    group.finish();
}

fn bench_coverage_mask(c: &mut Criterion) {
    let starlink = presets::starlink_phase1();
    let snap = starlink.snapshot(0.0);
    let cities = WorldCities::load();
    let grounds: Vec<(Geodetic, Ecef)> = cities
        .top_n_geodetic(100)
        .into_iter()
        .map(|g| (g, g.to_ecef_spherical()))
        .collect();

    let mut group = c.benchmark_group("coverage_mask");
    group.sample_size(20);
    group.bench_function("starlink_100_cities", |b| {
        b.iter(|| black_box(coverage_mask(&starlink, &snap, &grounds)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_visible_sats,
    bench_indexed_vs_brute,
    bench_coverage_mask
);
criterion_main!(benches);
