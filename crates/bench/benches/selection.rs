//! Server-selection cost: group-delay computation, the MinMax pick, and
//! one full Sticky selection (including its lookahead).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_core::selection::{sticky_select, GroupDelays, StickyParams};
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;

fn users() -> Vec<GroundEndpoint> {
    vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ]
}

fn bench_group_delays(c: &mut Criterion) {
    let service = InOrbitService::new(presets::starlink_550_only());
    let us = users();

    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    group.bench_function("group_delays_3_users_1584_sats", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(GroupDelays::compute(&service, &us, t))
        })
    });

    let delays = GroupDelays::compute(&service, &us, 0.0);
    group.bench_function("minmax_pick", |b| b.iter(|| black_box(delays.minmax())));
    group.bench_function("within_slack_10pct", |b| {
        b.iter(|| black_box(delays.within_slack(0.10)))
    });
    group.finish();
}

fn bench_sticky(c: &mut Criterion) {
    let service = InOrbitService::new(presets::starlink_550_only());
    let us = users();
    let params = StickyParams {
        lookahead_step_s: 60.0,
        lookahead_horizon_s: 300.0,
        ..StickyParams::default()
    };

    let mut group = c.benchmark_group("sticky_select");
    group.sample_size(10);
    group.bench_function("full_selection_with_lookahead", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(sticky_select(&service, &us, t, &params))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_group_delays, bench_sticky);
criterion_main!(benches);
