//! Discrete-event simulator throughput: event-loop cost for contended
//! and uncontended transfer batches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_net::des::{DesNetwork, Link};
use leo_net::packet::{Flow, PacketLink, PacketNetwork};

fn contended(n_transfers: usize) -> Vec<f64> {
    let mut net = DesNetwork::new();
    let l = net.add_link(Link::new(1e10, 0.005));
    for i in 0..n_transfers {
        net.schedule_transfer(vec![l], 1e8, i as f64 * 1e-4);
    }
    net.run().iter().map(|r| r.completion_s).collect()
}

fn multi_hop(n_transfers: usize) -> Vec<f64> {
    let mut net = DesNetwork::new();
    let links: Vec<_> = (0..8)
        .map(|_| net.add_link(Link::new(1e10, 0.003)))
        .collect();
    for i in 0..n_transfers {
        net.schedule_transfer(links.clone(), 1e7, i as f64 * 1e-3);
    }
    net.run().iter().map(|r| r.completion_s).collect()
}

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(20);
    group.bench_function("contended_1k_transfers", |b| {
        b.iter(|| black_box(contended(1_000)))
    });
    group.bench_function("contended_10k_transfers", |b| {
        b.iter(|| black_box(contended(10_000)))
    });
    group.bench_function("multi_hop_8_links_1k_transfers", |b| {
        b.iter(|| black_box(multi_hop(1_000)))
    });
    group.finish();
}

fn packet_contention(packets: usize) -> usize {
    let mut net = PacketNetwork::new();
    let l = net.add_link(PacketLink::new(10e9, 0.002, 128));
    net.add_flow(Flow {
        route: vec![l],
        packet_bits: 12_000.0,
        interval_s: 12_000.0 / 2e9,
        start_s: 0.0,
        packets,
    });
    net.add_flow(Flow {
        route: vec![l],
        packet_bits: 120_000.0,
        interval_s: 120_000.0 / 9e9,
        start_s: 0.0,
        packets: packets / 10,
    });
    net.run().iter().map(|s| s.delivered).sum()
}

fn bench_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_des");
    group.sample_size(20);
    group.bench_function("shared_downlink_10k_packets", |b| {
        b.iter(|| black_box(packet_contention(10_000)))
    });
    group.bench_function("shared_downlink_100k_packets", |b| {
        b.iter(|| black_box(packet_contention(100_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_des, bench_packet);
criterion_main!(benches);
