//! Ablation of the minimum-elevation assumption (DESIGN.md §6): the
//! paper does not state its elevation mask, and Figs 1–3 depend on it.
//! This bench prints the Fig 1/2 headline quantities under 25° / 30° /
//! 35° / 40° masks, then measures the visibility query at each mask.
//! It also prints the J2-vs-two-body position divergence over the paper's
//! two-hour horizon, validating the propagation substitution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::shell::ShellSpec;
use leo_constellation::{presets, Constellation};
use leo_geo::{Angle, Epoch, Geodetic};
use leo_net::visibility::visible_sats;
use leo_orbit::propagate::ForceModel;
use leo_orbit::Propagator;

fn starlink_with_elevation(min_el_deg: f64) -> Constellation {
    let shells: Vec<ShellSpec> = presets::starlink_phase1_shells()
        .into_iter()
        .map(|mut s| {
            s.min_elevation = Angle::from_degrees(min_el_deg);
            s
        })
        .collect();
    Constellation::from_shells("starlink-ablation", shells)
}

fn print_elevation_table() {
    println!("\n# Elevation-mask ablation (Starlink P1, equator, t=0):");
    println!(
        "{:>10} {:>10} {:>14} {:>14}",
        "mask", "visible", "nearest rtt", "farthest rtt"
    );
    let g = Geodetic::ground(0.0, 0.0);
    let ge = g.to_ecef_spherical();
    for el in [25.0, 30.0, 35.0, 40.0] {
        let c = starlink_with_elevation(el);
        let snap = c.snapshot(0.0);
        let vis = visible_sats(&c, &snap, g, ge);
        let near = vis.iter().map(|v| v.rtt_ms()).fold(f64::INFINITY, f64::min);
        let far = vis.iter().map(|v| v.rtt_ms()).fold(0.0, f64::max);
        println!(
            "{:>9.0}° {:>10} {:>11.2} ms {:>11.2} ms",
            el,
            vis.len(),
            near,
            far
        );
    }
}

fn print_j2_divergence() {
    println!("\n# J2 vs two-body divergence over the paper's 2-hour horizon:");
    let e = leo_orbit::KeplerianElements::circular(
        550e3,
        Angle::from_degrees(53.0),
        Angle::ZERO,
        Angle::ZERO,
    );
    let j2 = Propagator::new(e, Epoch::J2000);
    let tb = Propagator::with_force_model(e, Epoch::J2000, ForceModel::TwoBody);
    for t in [600.0, 1800.0, 3600.0, 7200.0] {
        let d = j2.position_eci(t).0.distance(tb.position_eci(t).0);
        println!("  t = {:>5.0} s: {:>8.2} km", t, d / 1e3);
    }
    println!("  (≪ the ~600 km inter-satellite spacing — latency figures unaffected)");
}

fn bench_elevation(c: &mut Criterion) {
    print_elevation_table();
    print_j2_divergence();

    let g = Geodetic::ground(0.0, 0.0);
    let ge = g.to_ecef_spherical();
    let mut group = c.benchmark_group("visibility_by_elevation");
    group.sample_size(20);
    for el in [25.0, 40.0] {
        let constellation = starlink_with_elevation(el);
        let snap = constellation.snapshot(0.0);
        group.bench_function(format!("mask_{el:.0}_deg"), |b| {
            b.iter(|| black_box(visible_sats(&constellation, &snap, g, ge)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_elevation);
criterion_main!(benches);
