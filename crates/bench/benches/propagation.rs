//! Propagation throughput: single-satellite state evaluation and
//! whole-constellation snapshots, with the J2 on/off ablation (validating
//! that the cheaper two-body model is *not* meaningfully cheaper — J2's
//! secular terms cost almost nothing, so there is no reason to drop them).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_geo::{Angle, Epoch};
use leo_orbit::propagate::ForceModel;
use leo_orbit::{KeplerianElements, Propagator};

fn bench_single_state(c: &mut Criterion) {
    let elements = KeplerianElements::circular(
        550e3,
        Angle::from_degrees(53.0),
        Angle::from_degrees(17.0),
        Angle::from_degrees(123.0),
    );
    let j2 = Propagator::new(elements, Epoch::J2000);
    let two_body = Propagator::with_force_model(elements, Epoch::J2000, ForceModel::TwoBody);

    let mut group = c.benchmark_group("propagate_single");
    group.bench_function("state_at_j2", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(j2.state_at(t))
        })
    });
    group.bench_function("state_at_two_body", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(two_body.state_at(t))
        })
    });
    group.bench_function("position_ecef", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            black_box(j2.position_ecef(t))
        })
    });
    group.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let starlink550 = presets::starlink_550_only();
    let starlink = presets::starlink_phase1();

    let mut group = c.benchmark_group("constellation_snapshot");
    group.sample_size(20);
    group.bench_function("starlink_550_shell_1584_sats", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 60.0;
            black_box(starlink550.snapshot(t))
        })
    });
    group.bench_function("starlink_phase1_4409_sats", |b| {
        let mut t = 0.0;
        b.iter(|| {
            t += 60.0;
            black_box(starlink.snapshot(t))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_state, bench_snapshots);
criterion_main!(benches);
