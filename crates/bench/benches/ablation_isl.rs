//! Ablation of the ISL topology assumption (DESIGN.md §6): +Grid vs
//! intra-plane-ring-only vs no ISLs, measured on the Fig 3 hybrid path
//! (London → New York through the constellation, and the West Africa →
//! South Africa data-center path). Quality table printed once, then the
//! graph-build + routing runtime per topology.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use leo_constellation::presets;
use leo_geo::Geodetic;
use leo_net::routing::{build_graph, ground_to_ground, GroundEndpoint};
use leo_net::IslTopology;

fn print_quality_table() {
    let c = presets::starlink_550_only();
    let snap = c.snapshot(0.0);
    let routes = [
        ("London-NewYork", (51.51, -0.13), (40.71, -74.01)),
        ("Abuja-Johannesburg", (9.06, 7.49), (-26.20, 28.04)),
        ("Lagos-Yaounde", (6.52, 3.38), (3.87, 11.52)),
    ];
    println!("\n# ISL topology ablation: ground-to-ground RTT (direct graph, no ground relays)");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "route", "+Grid", "ring-only", "no ISLs"
    );
    for (name, (la1, lo1), (la2, lo2)) in routes {
        let a = GroundEndpoint::new(0, Geodetic::ground(la1, lo1));
        let b = GroundEndpoint::new(1, Geodetic::ground(la2, lo2));
        let mut row = format!("{name:<22}");
        for topo in [
            IslTopology::plus_grid(&c),
            IslTopology::ring_only(&c),
            IslTopology::none(&c),
        ] {
            let graph = build_graph(&c, &topo, &snap, &[a, b]);
            let cell = match ground_to_ground(&graph, &a, &b) {
                Some(p) => format!("{:>9.1} ms", p.rtt_ms()),
                None => format!("{:>12}", "unreachable"),
            };
            row.push_str(&cell);
        }
        println!("{row}");
    }
    println!("# ring-only/no-ISL reachability requires both endpoints under one ring/satellite;");
    println!("# +Grid is what makes the constellation a *network* rather than bent pipes.");
}

fn bench_topologies(c: &mut Criterion) {
    print_quality_table();

    let constellation = presets::starlink_550_only();
    let snap = constellation.snapshot(0.0);
    let a = GroundEndpoint::new(0, Geodetic::ground(51.51, -0.13));
    let b = GroundEndpoint::new(1, Geodetic::ground(40.71, -74.01));
    let grounds = [a, b];

    let mut group = c.benchmark_group("isl_ablation");
    group.sample_size(20);
    for (label, topo) in [
        ("plus_grid", IslTopology::plus_grid(&constellation)),
        ("ring_only", IslTopology::ring_only(&constellation)),
        ("none", IslTopology::none(&constellation)),
    ] {
        group.bench_function(format!("route_{label}"), |bch| {
            bch.iter(|| {
                let graph = build_graph(&constellation, &topo, &snap, &grounds);
                black_box(ground_to_ground(&graph, &a, &b))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topologies);
criterion_main!(benches);
