//! # leo-sim
//!
//! The parallel sweep engine behind the experiment harness.
//!
//! Every figure of the paper has the same computational shape: evaluate
//! some per-ground-point quantity at each instant of a sampling schedule.
//! Done naively that re-propagates the constellation (and rescans every
//! satellite) once per *(ground, time)* pair. [`TimeSweep`] restructures
//! the work:
//!
//! 1. each instant is propagated **once**, into a shared
//!    [`SnapshotView`] (positions + spatial visibility index + refreshed
//!    ISL edge weights for the compiled routing engine), in parallel
//!    across the pool;
//! 2. ground points are fanned across the worker pool, each worker
//!    folding sequentially over the prebuilt views;
//! 3. results come back in input order, and — because each ground
//!    point's fold is sequential and pure — the output is identical
//!    whatever the thread count.
//!
//! [`parallel_map`] is the underlying order-preserving fork/join
//! primitive, exposed for workloads that don't fit the time-sweep mold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use leo_core::{InOrbitService, SnapshotView};
use std::sync::Arc;

/// Splits `items` across `threads` chunks and maps them in parallel with
/// scoped threads, preserving input order in the output.
///
/// # Panics
/// Panics when `threads` is zero. A panic in `f` is re-raised on the
/// caller's thread with its *original payload* (the first one in chunk
/// order when several workers panic), so `catch_unwind` callers and test
/// harnesses see the real message rather than the scope's generic
/// "a scoped thread panicked".
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads > 0);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    leo_obs::counter!("sim.parallel_map_calls").incr();
    leo_obs::counter!("sim.items_processed").add(n as u64);
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = out
            .chunks_mut(chunk)
            .zip(items.chunks(chunk))
            .map(|(slot_chunk, item_chunk)| {
                let f = &f;
                s.spawn(move || {
                    let _busy = leo_obs::histogram!("sim.worker_busy_s").span();
                    for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                })
            })
            .collect();
        // Join every handle explicitly: a panic left unjoined would make
        // the scope itself panic with a generic message, discarding the
        // worker's payload. All handles must be joined (not just up to
        // the first error), so collect before picking the first payload
        // in chunk order to re-raise below.
        let panics: Vec<_> = handles.into_iter().filter_map(|h| h.join().err()).collect();
        panics.into_iter().next()
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Worker-pool size: the `LEO_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism
/// (capped at 16 — the sweeps are memory-bandwidth-bound well before
/// that).
pub fn default_threads() -> usize {
    threads_from(std::env::var("LEO_THREADS").ok().as_deref())
}

/// The `LEO_THREADS` decision as a pure function of the variable's value
/// (`None` = unset). Split out so tests and the experiment harness's CLI
/// layer never have to mutate the process environment, which is racy
/// under the parallel test runner.
pub fn threads_from(value: Option<&str>) -> usize {
    if let Some(v) = value {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// The prebuilt per-instant views a sweep worker reads from: the sampling
/// times paired with their shared [`SnapshotView`]s.
#[derive(Clone, Copy)]
pub struct SweepViews<'a> {
    times: &'a [f64],
    views: &'a [Arc<SnapshotView>],
}

impl<'a> SweepViews<'a> {
    /// Number of instants in the sweep.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the sweep has no instants.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sampling times, in sweep order.
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// The `i`-th instant and its view.
    pub fn at(&self, i: usize) -> (f64, &'a SnapshotView) {
        (self.times[i], &self.views[i])
    }

    /// Iterates `(time, view)` pairs in sweep order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &'a SnapshotView)> + '_ {
        self.times
            .iter()
            .zip(self.views)
            .map(|(&t, v)| (t, v.as_ref()))
    }
}

/// A parallel sweep of per-ground-point work over a sampling schedule.
///
/// ```
/// use leo_constellation::presets::starlink_550_only;
/// use leo_core::InOrbitService;
/// use leo_geo::Geodetic;
/// use leo_sim::TimeSweep;
///
/// let service = InOrbitService::new(starlink_550_only());
/// let sweep = TimeSweep::new(&service, (0..4).map(|i| i as f64 * 60.0));
/// let lats = vec![0.0, 30.0, 60.0];
/// // Worst-case visible-satellite count per latitude over the schedule:
/// let worst: Vec<usize> = sweep.run(lats, |&lat, views| {
///     let ge = Geodetic::ground(lat, 0.0).to_ecef_spherical();
///     views
///         .iter()
///         .map(|(_, v)| v.index().query(ge).len())
///         .max()
///         .unwrap()
/// });
/// assert_eq!(worst.len(), 3);
/// ```
pub struct TimeSweep<'a> {
    service: &'a InOrbitService,
    times: Vec<f64>,
    threads: usize,
}

impl<'a> TimeSweep<'a> {
    /// A sweep over `times` with the default worker-pool size
    /// ([`default_threads`]).
    pub fn new(service: &'a InOrbitService, times: impl IntoIterator<Item = f64>) -> Self {
        TimeSweep {
            service,
            times: times.into_iter().collect(),
            threads: default_threads(),
        }
    }

    /// Overrides the worker-pool size.
    ///
    /// # Panics
    /// Panics when `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
        self
    }

    /// The service the sweep runs against.
    pub fn service(&self) -> &'a InOrbitService {
        self.service
    }

    /// The sampling times, in sweep order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Propagates and indexes every instant of the schedule, in parallel,
    /// returning the shared views in schedule order. Idempotent: views
    /// come from the service's snapshot cache, so a second call (or a
    /// concurrent session touching the same instants) reuses them.
    pub fn prepare(&self) -> Vec<Arc<SnapshotView>> {
        let _span = leo_obs::span!("sim.prepare_s");
        leo_obs::counter!("sim.sweep_instants").add(self.times.len() as u64);
        let views = parallel_map(self.times.clone(), self.threads, |&t| self.service.view(t));
        // Per-instant gauge of the CSR engine's usable ISL edges —
        // sampled here on the main thread, in schedule order, after the
        // parallel build (so the series is thread-count-invariant). A
        // fault plan cutting links or killing satellites shows up as
        // steps in this curve.
        if leo_obs::metrics_enabled() {
            for (t, view) in self.times.iter().zip(&views) {
                leo_obs::timeseries!("engine.isl_active_edges")
                    .sample(*t, view.isl_weights().active_edges() as f64);
            }
        }
        views
    }

    /// Runs `f` once per ground item against the prebuilt views, fanning
    /// the items across the worker pool. Output order matches input
    /// order, and — `f` being pure — the result is independent of the
    /// thread count.
    pub fn run<G, R, F>(&self, grounds: Vec<G>, f: F) -> Vec<R>
    where
        G: Send + Sync,
        R: Send,
        F: Fn(&G, SweepViews<'_>) -> R + Sync,
    {
        let views = self.prepare();
        let ctx = SweepViews {
            times: &self.times,
            views: &views,
        };
        parallel_map(grounds, self.threads, |g| f(g, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<i64> = (0..100).collect();
        let out = parallel_map(items.clone(), 7, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        assert_eq!(
            parallel_map(Vec::<i32>::new(), 4, |&x| x),
            Vec::<i32>::new()
        );
        assert_eq!(parallel_map(vec![42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn parallel_map_with_more_threads_than_items() {
        let out = parallel_map(vec![1, 2, 3], 16, |&x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() > 0);
    }

    #[test]
    fn prepare_shares_views_through_the_cache() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let sweep = TimeSweep::new(&service, [0.0, 60.0]).with_threads(2);
        let a = sweep.prepare();
        let b = sweep.prepare();
        for (x, y) in a.iter().zip(&b) {
            assert!(Arc::ptr_eq(x, y));
        }
    }

    #[test]
    fn run_is_deterministic_across_thread_counts() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let times: Vec<f64> = (0..3).map(|i| i as f64 * 120.0).collect();
        let lats: Vec<f64> = (0..10).map(|i| i as f64 * 8.0).collect();
        let count_worst = |&lat: &f64, views: SweepViews<'_>| -> Vec<usize> {
            let ge = Geodetic::ground(lat, 0.0).to_ecef_spherical();
            views
                .iter()
                .map(|(_, v)| v.index().query(ge).len())
                .collect()
        };
        let one = TimeSweep::new(&service, times.clone())
            .with_threads(1)
            .run(lats.clone(), count_worst);
        let many = TimeSweep::new(&service, times)
            .with_threads(8)
            .run(lats, count_worst);
        assert_eq!(one, many);
    }

    #[test]
    fn sweep_views_expose_schedule_order() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let sweep = TimeSweep::new(&service, [0.0, 30.0, 60.0]).with_threads(2);
        let order: Vec<Vec<f64>> = sweep.run(vec![()], |_, views| {
            assert_eq!(views.len(), 3);
            assert!(!views.is_empty());
            let (t1, _) = views.at(1);
            assert_eq!(t1, 30.0);
            views.iter().map(|(t, _)| t).collect()
        });
        assert_eq!(order, vec![vec![0.0, 30.0, 60.0]]);
    }

    #[test]
    fn parallel_map_preserves_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(vec![1, 2, 3, 4], 2, |&x| {
                if x == 3 {
                    panic!("item {x} exploded");
                }
                x
            })
        })
        .expect_err("worker panic must propagate");
        let msg = caught
            .downcast_ref::<String>()
            .expect("payload must be the worker's formatted message");
        assert_eq!(msg, "item 3 exploded");
    }

    #[test]
    fn parallel_map_reports_first_panic_in_chunk_order() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..8).collect::<Vec<i32>>(), 4, |&x| {
                if x % 2 == 1 {
                    panic!("odd item {x}");
                }
                x
            })
        })
        .expect_err("worker panic must propagate");
        let msg = caught.downcast_ref::<String>().expect("formatted message");
        assert_eq!(msg, "odd item 1");
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_is_rejected() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let _ = TimeSweep::new(&service, [0.0]).with_threads(0);
    }
}
