//! The virtual stationarity session runner (Figs 6–7).
//!
//! A *session* is a user group holding state on a sequence of
//! satellite-servers over time: the "GEO-like stationarity" abstraction of
//! §5. The runner ticks the clock, re-evaluates the selection policy, and
//! records a [`HandoffEvent`] every time the meetup-server changes. Two
//! measurements reproduce the paper's figures:
//!
//! * **time between hand-offs** (Fig 6) — the stationarity the policy
//!   achieves;
//! * **state-transfer latency** (Fig 7) — the one-way delay from the old
//!   server to its successor over the ISL mesh at the hand-off instant.

use crate::selection::{sticky_select, GroupDelays, Policy};
use crate::service::InOrbitService;
use crate::stats::Cdf;
use leo_constellation::SatId;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// Session timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Session start, seconds after the constellation epoch.
    pub start_s: f64,
    /// Session length, seconds.
    pub duration_s: f64,
    /// Re-evaluation interval, seconds (1 s reproduces the paper's
    /// second-scale hand-off timing; coarser ticks quantize Fig 6).
    pub tick_s: f64,
}

impl SessionConfig {
    /// Two hours at 1 s ticks from the epoch.
    pub fn paper() -> Self {
        SessionConfig {
            start_s: 0.0,
            duration_s: 7200.0,
            tick_s: 1.0,
        }
    }
}

/// One server hand-off (or the initial acquisition, with `from == None`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HandoffEvent {
    /// When the hand-off happened, seconds after the epoch.
    pub time_s: f64,
    /// Previous server; `None` for the initial acquisition.
    pub from: Option<SatId>,
    /// New server.
    pub to: SatId,
    /// One-way state-transfer latency old → new over the ISL mesh at the
    /// hand-off instant, milliseconds. `None` for the initial acquisition.
    pub transfer_latency_ms: Option<f64>,
    /// Group RTT to the new server right after the hand-off, ms.
    pub group_rtt_ms: f64,
}

/// The outcome of a session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Policy that produced this run.
    pub policy: Policy,
    /// All hand-off events, in time order (first is the acquisition).
    pub events: Vec<HandoffEvent>,
    /// `(time_s, group_rtt_ms)` samples at every tick where a server was
    /// held.
    pub rtt_samples: Vec<(f64, f64)>,
    /// When the session ended, seconds.
    pub end_s: f64,
}

impl SessionResult {
    /// Times between consecutive hand-offs, seconds (Fig 6's quantity).
    /// The interval from the last hand-off to the session end is *not*
    /// counted (censored observation).
    pub fn times_between_handoffs(&self) -> Vec<f64> {
        self.events
            .windows(2)
            .map(|w| w[1].time_s - w[0].time_s)
            .collect()
    }

    /// CDF of times between hand-offs.
    pub fn handoff_interval_cdf(&self) -> Cdf {
        Cdf::new(self.times_between_handoffs())
    }

    /// CDF of state-transfer latencies, ms (Fig 7's quantity).
    pub fn transfer_latency_cdf(&self) -> Cdf {
        Cdf::new(
            self.events
                .iter()
                .filter_map(|e| e.transfer_latency_ms)
                .collect(),
        )
    }

    /// Number of true hand-offs (excludes the initial acquisition).
    pub fn handoff_count(&self) -> usize {
        self.events.iter().filter(|e| e.from.is_some()).count()
    }

    /// Mean group RTT over the session, ms.
    pub fn mean_group_rtt_ms(&self) -> Option<f64> {
        if self.rtt_samples.is_empty() {
            return None;
        }
        Some(self.rtt_samples.iter().map(|&(_, r)| r).sum::<f64>() / self.rtt_samples.len() as f64)
    }
}

/// Runs one session for `users` under `policy`, in the
/// direct-visibility model of §3.2/§5 (every user talks to the meetup
/// satellite directly; a hand-off is *forced* when any user loses sight
/// of it).
///
/// * **MinMax** re-picks the latency-optimal commonly-visible satellite
///   every tick.
/// * **Sticky** holds its server until the forced hand-off, then runs the
///   three-step selection of §5 — that is what "prioritizes
///   stationarity" buys.
///
/// Ticks where no satellite serves the whole group drop the current
/// server (the session stalls); service resumes with a fresh acquisition.
pub fn run_session(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    policy: Policy,
    config: &SessionConfig,
) -> SessionResult {
    assert!(config.tick_s > 0.0, "tick must be positive");
    let mut events = Vec::new();
    let mut rtt_samples = Vec::new();
    let mut current: Option<SatId> = None;

    let ticks = (config.duration_s / config.tick_s).round() as usize;
    for i in 0..=ticks {
        let t = config.start_s + i as f64 * config.tick_s;
        let delays = GroupDelays::direct(service, users, t);
        let Some((optimal, _)) = delays.minmax() else {
            current = None;
            continue;
        };

        let desired = match policy {
            Policy::MinMax => optimal,
            Policy::Sticky(params) => match current {
                // Hold while the incumbent still serves the whole group.
                Some(cur) if delays.delay_s(cur).is_finite() => cur,
                _ => sticky_select(service, users, t, &params).unwrap_or(optimal),
            },
        };

        if current != Some(desired) {
            let transfer_latency_ms = current.and_then(|old| {
                let view = service.view(t);
                // Attribute the hand-off to the fault layer when the old
                // server was taken out by it (death or rain-faded access
                // link) rather than by orbital motion. No-op without a
                // fault plan, so fault-free counter totals are unchanged.
                if service.fault_masked_server(&view, users, old) {
                    leo_obs::counter!("fault.handoffs").incr();
                }
                service
                    .migration_delay_view(&view, users, old, desired)
                    .map(|d| d * 1e3)
            });
            events.push(HandoffEvent {
                time_s: t,
                from: current,
                to: desired,
                transfer_latency_ms,
                group_rtt_ms: delays.rtt_ms(desired),
            });
            current = Some(desired);
        }
        rtt_samples.push((t, delays.rtt_ms(desired)));
    }

    SessionResult {
        policy,
        events,
        rtt_samples,
        end_s: config.start_s + config.duration_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::StickyParams;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn users() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    fn quick_sticky() -> Policy {
        Policy::Sticky(StickyParams {
            lookahead_step_s: 30.0,
            lookahead_horizon_s: 300.0,
            ..StickyParams::default()
        })
    }

    fn short_config() -> SessionConfig {
        SessionConfig {
            start_s: 0.0,
            duration_s: 600.0,
            tick_s: 10.0,
        }
    }

    #[test]
    fn sessions_start_with_an_acquisition_event() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let r = run_session(&service, &users(), Policy::MinMax, &short_config());
        assert!(!r.events.is_empty());
        assert_eq!(r.events[0].from, None);
        assert_eq!(r.events[0].transfer_latency_ms, None);
    }

    #[test]
    fn handoff_events_chain_consistently() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let r = run_session(&service, &users(), Policy::MinMax, &short_config());
        for w in r.events.windows(2) {
            assert_eq!(w[1].from, Some(w[0].to), "events must chain");
            assert!(w[1].time_s > w[0].time_s);
        }
    }

    #[test]
    fn true_handoffs_carry_transfer_latencies() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let r = run_session(&service, &users(), Policy::MinMax, &short_config());
        for e in r.events.iter().skip(1) {
            let lat = e.transfer_latency_ms.expect("transfer latency");
            // Most transfers are a few ms; the tail reaches ~100+ ms when
            // MinMax jumps between ascending and descending passes whose
            // +Grid path winds across many planes (the Fig 7 tail).
            assert!((0.0..500.0).contains(&lat), "latency {lat} ms");
        }
    }

    #[test]
    fn sticky_hands_off_less_often_than_minmax() {
        // The paper's headline (Fig 6): Sticky reduces hand-off frequency
        // substantially (4× median interval on the paper's workload).
        let service = InOrbitService::new(presets::starlink_550_only());
        let cfg = SessionConfig {
            start_s: 0.0,
            duration_s: 1800.0,
            tick_s: 10.0,
        };
        let mm = run_session(&service, &users(), Policy::MinMax, &cfg);
        let st = run_session(&service, &users(), quick_sticky(), &cfg);
        assert!(
            st.handoff_count() <= mm.handoff_count(),
            "sticky {} vs minmax {}",
            st.handoff_count(),
            mm.handoff_count()
        );
        assert!(mm.handoff_count() >= 2, "MinMax should churn on 30 min");
    }

    #[test]
    fn sticky_pays_a_small_latency_premium() {
        // §5: Sticky costs +1.4 ms on the West Africa group. Holding a
        // server to the end of its pass costs a few ms of mean RTT.
        let service = InOrbitService::new(presets::starlink_550_only());
        let cfg = short_config();
        let mm = run_session(&service, &users(), Policy::MinMax, &cfg);
        let st = run_session(&service, &users(), quick_sticky(), &cfg);
        let (mm_rtt, st_rtt) = (
            mm.mean_group_rtt_ms().unwrap(),
            st.mean_group_rtt_ms().unwrap(),
        );
        assert!(
            st_rtt <= mm_rtt + 5.0,
            "sticky mean {st_rtt} vs minmax mean {mm_rtt}"
        );
    }

    #[test]
    fn rtt_samples_cover_every_tick_when_served() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let cfg = short_config();
        let r = run_session(&service, &users(), Policy::MinMax, &cfg);
        assert_eq!(r.rtt_samples.len(), 61); // 600/10 + 1 ticks, all served
        for &(_, rtt) in &r.rtt_samples {
            assert!(rtt > 0.0 && rtt < 60.0);
        }
    }

    #[test]
    fn interval_and_transfer_cdfs_are_consistent_with_events() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let r = run_session(&service, &users(), Policy::MinMax, &short_config());
        assert_eq!(r.times_between_handoffs().len() + 1, r.events.len().max(1));
        assert_eq!(r.transfer_latency_cdf().len(), r.handoff_count());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_is_rejected() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let cfg = SessionConfig {
            start_s: 0.0,
            duration_s: 10.0,
            tick_s: 0.0,
        };
        run_session(&service, &users(), Policy::MinMax, &cfg);
    }
}
