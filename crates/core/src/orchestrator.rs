//! Multi-session orchestration under capacity constraints.
//!
//! The single-session machinery ([`crate::session`]) assumes its
//! satellite has room. At scale, many meetup groups compete for the
//! *same* well-placed servers (§3.1: "One satellite may not offer a
//! large amount of available compute"). The orchestrator runs many
//! concurrent groups against per-server slot budgets: each group keeps
//! its server while it remains servable and funded, and on a forced
//! hand-off picks the best *available* (not merely best) successor —
//! trading latency for admission the way any capacity-constrained
//! scheduler must.

use crate::selection::GroupDelays;
use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One tenant group in the orchestrator.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Group name (for reports).
    pub name: String,
    /// The group's users.
    pub users: Vec<GroundEndpoint>,
    /// Server slots the group's meetup service needs.
    pub slots: u32,
}

/// Orchestrator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Slots per satellite-server.
    pub slots_per_server: u32,
    /// Start time, seconds.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
    /// Tick, seconds.
    pub tick_s: f64,
}

/// Per-group outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// Group name.
    pub name: String,
    /// Server hand-offs (excluding initial acquisition).
    pub handoffs: u32,
    /// Ticks the group was served.
    pub served_ticks: u32,
    /// Ticks the group wanted service but every suitable server was full
    /// (capacity blocking) or none was visible (coverage blocking).
    pub blocked_ticks: u32,
    /// Mean group RTT over served ticks, ms.
    pub mean_rtt_ms: f64,
}

/// Orchestration result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorResult {
    /// Per-group outcomes, in input order.
    pub groups: Vec<GroupOutcome>,
    /// Peak number of slots in use at any tick.
    pub peak_slots_in_use: u64,
}

impl OrchestratorResult {
    /// Fraction of group-ticks served (1.0 = nobody ever blocked).
    pub fn service_ratio(&self) -> f64 {
        let served: u64 = self.groups.iter().map(|g| g.served_ticks as u64).sum();
        let total: u64 = self
            .groups
            .iter()
            .map(|g| (g.served_ticks + g.blocked_ticks) as u64)
            .sum();
        if total == 0 {
            1.0
        } else {
            served as f64 / total as f64
        }
    }
}

/// Runs all groups concurrently.
pub fn orchestrate(
    service: &InOrbitService,
    groups: &[GroupSpec],
    config: &OrchestratorConfig,
) -> OrchestratorResult {
    assert!(config.tick_s > 0.0 && config.slots_per_server > 0);
    let mut current: Vec<Option<SatId>> = vec![None; groups.len()];
    let mut used: HashMap<SatId, u32> = HashMap::new();
    let mut outcomes: Vec<GroupOutcome> = groups
        .iter()
        .map(|g| GroupOutcome {
            name: g.name.clone(),
            handoffs: 0,
            served_ticks: 0,
            blocked_ticks: 0,
            mean_rtt_ms: 0.0,
        })
        .collect();
    let mut rtt_sums = vec![0.0f64; groups.len()];
    let mut peak_slots = 0u64;

    let ticks = (config.duration_s / config.tick_s).round() as usize;
    for i in 0..=ticks {
        let t = config.start_s + i as f64 * config.tick_s;
        for (gi, group) in groups.iter().enumerate() {
            let delays = GroupDelays::direct(service, &group.users, t);

            // Keep the incumbent while servable.
            if let Some(cur) = current[gi] {
                if delays.delay_s(cur).is_finite() {
                    outcomes[gi].served_ticks += 1;
                    rtt_sums[gi] += delays.rtt_ms(cur);
                    continue;
                }
                // Forced hand-off: release the old reservation.
                *used.get_mut(&cur).expect("reservation exists") -= group.slots;
                current[gi] = None;
            }

            // Acquire the best server with free capacity.
            let candidates = delays.within_slack(f64::INFINITY); // all servable, sorted by delay
            let pick = candidates.iter().find(|(sat, _)| {
                used.get(sat).copied().unwrap_or(0) + group.slots <= config.slots_per_server
            });
            match pick {
                Some(&(sat, _)) => {
                    *used.entry(sat).or_insert(0) += group.slots;
                    // A re-acquisition after prior service is a hand-off;
                    // the very first acquisition is not.
                    if outcomes[gi].served_ticks > 0 {
                        outcomes[gi].handoffs += 1;
                    }
                    current[gi] = Some(sat);
                    outcomes[gi].served_ticks += 1;
                    rtt_sums[gi] += delays.rtt_ms(sat);
                }
                None => outcomes[gi].blocked_ticks += 1,
            }
        }
        let in_use: u64 = used.values().map(|&v| v as u64).sum();
        peak_slots = peak_slots.max(in_use);
    }

    for (gi, o) in outcomes.iter_mut().enumerate() {
        o.mean_rtt_ms = if o.served_ticks > 0 {
            rtt_sums[gi] / o.served_ticks as f64
        } else {
            f64::NAN
        };
    }
    OrchestratorResult {
        groups: outcomes,
        peak_slots_in_use: peak_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_550_only())
    }

    fn group(name: &str, lat: f64, lon: f64, slots: u32) -> GroupSpec {
        GroupSpec {
            name: name.into(),
            users: vec![
                GroundEndpoint::new(0, Geodetic::ground(lat, lon)),
                GroundEndpoint::new(1, Geodetic::ground(lat - 1.5, lon + 2.0)),
            ],
            slots,
        }
    }

    fn config(slots_per_server: u32) -> OrchestratorConfig {
        OrchestratorConfig {
            slots_per_server,
            start_s: 0.0,
            duration_s: 600.0,
            tick_s: 20.0,
        }
    }

    #[test]
    fn single_group_with_ample_capacity_is_never_blocked() {
        let s = service();
        let r = orchestrate(&s, &[group("solo", 10.0, 10.0, 1)], &config(32));
        assert_eq!(r.groups[0].blocked_ticks, 0);
        assert_eq!(r.service_ratio(), 1.0);
        assert!(r.groups[0].mean_rtt_ms < 16.0);
        assert!(r.peak_slots_in_use >= 1);
    }

    #[test]
    fn colocated_groups_spread_across_servers_when_one_fills() {
        let s = service();
        // Four groups at the same place, each needing the whole server.
        let groups: Vec<GroupSpec> = (0..4)
            .map(|i| group(&format!("g{i}"), 10.0, 10.0, 1))
            .collect();
        let r = orchestrate(&s, &groups, &config(1));
        // Plenty of visible servers at this latitude: all four served.
        for g in &r.groups {
            assert_eq!(g.blocked_ticks, 0, "{} blocked", g.name);
        }
        assert!(r.peak_slots_in_use >= 4);
        // Later groups get farther (or equal) servers than the first.
        assert!(r.groups[3].mean_rtt_ms >= r.groups[0].mean_rtt_ms - 0.5);
    }

    #[test]
    fn scarce_capacity_blocks_the_overflow() {
        let s = service();
        // More single-slot groups than any location has visible servers.
        let visible = s.reachable_servers(Geodetic::ground(10.0, 10.0), 0.0).len();
        let groups: Vec<GroupSpec> = (0..visible + 4)
            .map(|i| group(&format!("g{i}"), 10.0, 10.0, 1))
            .collect();
        let r = orchestrate(&s, &groups, &config(1));
        let blocked: u32 = r.groups.iter().map(|g| g.blocked_ticks).sum();
        assert!(blocked > 0, "expected capacity blocking");
        assert!(r.service_ratio() < 1.0);
    }

    #[test]
    fn unserved_region_counts_as_coverage_blocking() {
        let s = service();
        let r = orchestrate(&s, &[group("arctic", 86.0, 0.0, 1)], &config(8));
        assert_eq!(r.groups[0].served_ticks, 0);
        assert!(r.groups[0].blocked_ticks > 0);
        assert!(r.groups[0].mean_rtt_ms.is_nan());
    }

    #[test]
    fn reservations_are_released_on_handoff() {
        // Over 30 minutes every group hands off several times; if slots
        // leaked, the 1-slot servers would exhaust and blocking would
        // appear. No blocking → release works.
        let s = service();
        let groups: Vec<GroupSpec> = (0..3)
            .map(|i| group(&format!("g{i}"), 20.0, 30.0 + i as f64 * 3.0, 1))
            .collect();
        let cfg = OrchestratorConfig {
            slots_per_server: 1,
            start_s: 0.0,
            duration_s: 1800.0,
            tick_s: 20.0,
        };
        let r = orchestrate(&s, &groups, &cfg);
        for g in &r.groups {
            assert_eq!(g.blocked_ticks, 0, "{} blocked — slot leak?", g.name);
            assert!(g.handoffs > 0, "{} never handed off", g.name);
        }
    }

    #[test]
    fn service_ratio_of_empty_run_is_one() {
        let r = OrchestratorResult {
            groups: vec![],
            peak_slots_in_use: 0,
        };
        assert_eq!(r.service_ratio(), 1.0);
    }
}
