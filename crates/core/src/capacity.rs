//! Capacity-aware placement on satellite-servers.
//!
//! §3.1: *"One satellite may not offer a large amount of available
//! compute, so we quantify how many satellites are reachable from a
//! ground location at any time."* The paper's answer (Fig 2) is that
//! 10–40+ servers are in view — comparable to a "cloudlet". This module
//! closes the loop: given each satellite a finite number of tenant
//! slots, admit workloads to reachable servers and report utilization
//! and rejection, so the aggregate capacity over a location can be
//! studied rather than just counted.

use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_geo::Geodetic;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A workload request from one ground location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// Where the tenant is.
    pub location: Geodetic,
    /// Slots requested (a slot ≈ one vCPU-bundle of the onboard server).
    pub slots: u32,
    /// Maximum acceptable RTT to the hosting server, ms.
    pub max_rtt_ms: f64,
}

/// Outcome of one placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementOutcome {
    /// Admitted on a server with the achieved RTT.
    Placed {
        /// The hosting satellite-server.
        server: SatId,
        /// RTT from the tenant to the server, ms.
        rtt_ms: f64,
    },
    /// No reachable server met the RTT bound.
    NoServerInRange,
    /// Reachable servers exist but all are full.
    CapacityExhausted,
}

impl PlacementOutcome {
    /// True when the request was admitted.
    pub fn is_placed(&self) -> bool {
        matches!(self, PlacementOutcome::Placed { .. })
    }
}

/// A capacity-aware placement pool over one constellation snapshot.
///
/// Placement policy: admit on the *nearest* reachable server with free
/// slots (latency-first, as the paper's use cases are latency-driven).
#[derive(Debug, Clone)]
pub struct CapacityPool<'a> {
    service: &'a InOrbitService,
    time_s: f64,
    slots_per_server: u32,
    used: HashMap<SatId, u32>,
}

impl<'a> CapacityPool<'a> {
    /// Creates a pool at simulation time `time_s` with uniform per-server
    /// capacity.
    ///
    /// # Panics
    /// Panics when `slots_per_server` is zero.
    pub fn new(service: &'a InOrbitService, time_s: f64, slots_per_server: u32) -> Self {
        assert!(slots_per_server > 0, "servers need at least one slot");
        CapacityPool {
            service,
            time_s,
            slots_per_server,
            used: HashMap::new(),
        }
    }

    /// Free slots on one server.
    pub fn free_slots(&self, server: SatId) -> u32 {
        self.slots_per_server - self.used.get(&server).copied().unwrap_or(0)
    }

    /// Total slots in use across the pool.
    pub fn used_slots(&self) -> u64 {
        self.used.values().map(|&v| v as u64).sum()
    }

    /// Attempts one placement.
    pub fn place(&mut self, request: &PlacementRequest) -> PlacementOutcome {
        let mut reachable = self
            .service
            .reachable_servers(request.location, self.time_s)
            .into_iter()
            .filter(|v| v.rtt_ms() <= request.max_rtt_ms)
            .collect::<Vec<_>>();
        if reachable.is_empty() {
            return PlacementOutcome::NoServerInRange;
        }
        reachable.sort_by(|a, b| a.range_m.total_cmp(&b.range_m));
        for v in reachable {
            if self.free_slots(v.id) >= request.slots {
                *self.used.entry(v.id).or_insert(0) += request.slots;
                return PlacementOutcome::Placed {
                    server: v.id,
                    rtt_ms: v.rtt_ms(),
                };
            }
        }
        PlacementOutcome::CapacityExhausted
    }

    /// Attempts to reserve `slots` on one *specific* server, returning
    /// whether the reservation was admitted. This is the sticky-placement
    /// primitive: a workload that already runs on a server wants to stay
    /// there (no migration cost) even when a nearer server has opened up,
    /// so the caller names the server instead of letting
    /// [`CapacityPool::place`] pick the latency optimum.
    pub fn try_reserve(&mut self, server: SatId, slots: u32) -> bool {
        if self.free_slots(server) >= slots {
            *self.used.entry(server).or_insert(0) += slots;
            true
        } else {
            false
        }
    }

    /// Releases slots previously placed on a server (e.g. on hand-off).
    ///
    /// # Panics
    /// Panics when releasing more than is in use — that is a caller
    /// accounting bug worth failing loudly on.
    pub fn release(&mut self, server: SatId, slots: u32) {
        let entry = self.used.get_mut(&server).expect("server has placements");
        assert!(*entry >= slots, "releasing more slots than placed");
        *entry -= slots;
        if *entry == 0 {
            self.used.remove(&server);
        }
    }

    /// Aggregate free capacity reachable from a location under an RTT
    /// bound — the "cloudlet size" overhead the paper compares against.
    pub fn reachable_free_slots(&self, location: Geodetic, max_rtt_ms: f64) -> u64 {
        self.service
            .reachable_servers(location, self.time_s)
            .into_iter()
            .filter(|v| v.rtt_ms() <= max_rtt_ms)
            .map(|v| self.free_slots(v.id) as u64)
            .sum()
    }
}

/// Admits a batch of requests in order, returning per-request outcomes
/// plus the admitted fraction.
pub fn admit_batch(
    pool: &mut CapacityPool<'_>,
    requests: &[PlacementRequest],
) -> (Vec<PlacementOutcome>, f64) {
    let outcomes: Vec<PlacementOutcome> = requests.iter().map(|r| pool.place(r)).collect();
    let admitted = outcomes.iter().filter(|o| o.is_placed()).count();
    let fraction = if requests.is_empty() {
        1.0
    } else {
        admitted as f64 / requests.len() as f64
    };
    (outcomes, fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_550_only())
    }

    fn request(lat: f64, lon: f64, slots: u32) -> PlacementRequest {
        PlacementRequest {
            location: Geodetic::ground(lat, lon),
            slots,
            max_rtt_ms: 16.0,
        }
    }

    #[test]
    fn placement_prefers_the_nearest_server() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let req = request(10.0, 10.0, 1);
        let PlacementOutcome::Placed { server, rtt_ms } = pool.place(&req) else {
            panic!("expected placement");
        };
        let nearest = s
            .reachable_servers(req.location, 0.0)
            .into_iter()
            .min_by(|a, b| a.range_m.total_cmp(&b.range_m))
            .unwrap();
        assert_eq!(server, nearest.id);
        assert!((rtt_ms - nearest.rtt_ms()).abs() < 1e-12);
    }

    #[test]
    fn full_servers_spill_to_the_next_nearest() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 1);
        let req = request(10.0, 10.0, 1);
        let first = pool.place(&req);
        let second = pool.place(&req);
        let (
            PlacementOutcome::Placed { server: s1, .. },
            PlacementOutcome::Placed { server: s2, rtt_ms },
        ) = (first, second)
        else {
            panic!("both should place");
        };
        assert_ne!(s1, s2);
        assert!(rtt_ms <= req.max_rtt_ms);
    }

    #[test]
    fn capacity_eventually_exhausts() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 1);
        let req = request(10.0, 10.0, 1);
        let visible = s.reachable_servers(req.location, 0.0).len();
        for _ in 0..visible {
            assert!(pool.place(&req).is_placed());
        }
        assert_eq!(pool.place(&req), PlacementOutcome::CapacityExhausted);
        assert_eq!(pool.used_slots(), visible as u64);
    }

    #[test]
    fn release_frees_capacity_for_reuse() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 1);
        let req = request(0.0, 0.0, 1);
        let PlacementOutcome::Placed { server, .. } = pool.place(&req) else {
            panic!()
        };
        pool.release(server, 1);
        let PlacementOutcome::Placed { server: again, .. } = pool.place(&req) else {
            panic!()
        };
        assert_eq!(server, again);
    }

    #[test]
    fn unserved_latitude_reports_no_server() {
        // The 53°-only shell cannot serve the poles.
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 8);
        let req = request(89.0, 0.0, 1);
        assert_eq!(pool.place(&req), PlacementOutcome::NoServerInRange);
    }

    #[test]
    fn tight_rtt_bounds_shrink_the_candidate_set() {
        let s = service();
        let pool = CapacityPool::new(&s, 0.0, 4);
        let loc = Geodetic::ground(20.0, 30.0);
        let wide = pool.reachable_free_slots(loc, 16.0);
        let tight = pool.reachable_free_slots(loc, 5.0);
        assert!(tight < wide, "tight {tight} vs wide {wide}");
        assert!(tight > 0);
    }

    #[test]
    fn admit_batch_reports_the_admitted_fraction() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 1);
        let req = request(10.0, 10.0, 1);
        let visible = s.reachable_servers(req.location, 0.0).len();
        let batch: Vec<_> = (0..visible + 5).map(|_| req).collect();
        let (outcomes, fraction) = admit_batch(&mut pool, &batch);
        assert_eq!(outcomes.len(), visible + 5);
        let expect = visible as f64 / (visible + 5) as f64;
        assert!((fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn try_reserve_pins_a_specific_server_until_it_fills() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 2);
        let target = s.reachable_servers(Geodetic::ground(10.0, 10.0), 0.0)[0].id;
        assert!(pool.try_reserve(target, 1));
        assert!(pool.try_reserve(target, 1));
        assert_eq!(pool.free_slots(target), 0);
        assert!(!pool.try_reserve(target, 1), "full server must refuse");
        assert_eq!(pool.used_slots(), 2);
        pool.release(target, 2);
        assert!(pool.try_reserve(target, 2), "released capacity is reusable");
    }

    #[test]
    fn try_reserve_respects_oversized_requests() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 4);
        let target = s.reachable_servers(Geodetic::ground(10.0, 10.0), 0.0)[0].id;
        assert!(!pool.try_reserve(target, 5), "request exceeds the server");
        assert_eq!(pool.used_slots(), 0, "a refused reservation holds nothing");
    }

    #[test]
    #[should_panic(expected = "releasing more slots than placed")]
    fn over_release_is_a_loud_bug() {
        let s = service();
        let mut pool = CapacityPool::new(&s, 0.0, 4);
        let req = request(10.0, 10.0, 2);
        let PlacementOutcome::Placed { server, .. } = pool.place(&req) else {
            panic!()
        };
        pool.release(server, 3);
    }
}
