//! Empirical distributions for the experiment harness.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// ```
/// use leo_core::Cdf;
///
/// let cdf = Cdf::new(vec![20.0, 164.0, 80.0, 40.0, 320.0]);
/// assert_eq!(cdf.median(), Some(80.0));
/// assert_eq!(cdf.fraction_at_or_below(100.0), 0.6);
/// assert_eq!(cdf.quantile(1.0), Some(320.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are rejected).
    ///
    /// # Panics
    /// Panics when any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Empirical CDF value `P(X ≤ x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile by nearest-rank; `None` when empty or `q` is NaN.
    /// Out-of-range `q` clamps to `[0, 1]` (so `q ≤ 0` is the minimum,
    /// `q ≥ 1` the maximum) — NaN, which `clamp` would silently pass
    /// through to index 0 disguised as the minimum, is refused instead.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Merges `other`'s samples into this CDF — the combined distribution
    /// over the union of the two sample multisets. Linear: both sides are
    /// already sorted.
    pub fn merge(&mut self, other: &Cdf) {
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted.len() && j < other.sorted.len() {
            if self.sorted[i].total_cmp(&other.sorted[j]).is_le() {
                merged.push(self.sorted[i]);
                i += 1;
            } else {
                merged.push(other.sorted[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted[i..]);
        merged.extend_from_slice(&other.sorted[j..]);
        self.sorted = merged;
    }

    /// `(x, P(X ≤ x))` pairs suitable for plotting the CDF curve.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_a_known_distribution() {
        let cdf = Cdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.median(), Some(3.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(5.0));
        assert_eq!(cdf.quantile(0.2), Some(1.0));
        assert_eq!(cdf.quantile(0.8), Some(4.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(5.0));
        assert_eq!(cdf.mean(), Some(3.0));
    }

    #[test]
    fn fraction_matches_hand_count() {
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 10.0]);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.mean(), None);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.curve().is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN sample")]
    fn nan_samples_are_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn empty_cdf_quantiles_and_extremes_are_none() {
        let cdf = Cdf::new(vec![]);
        assert_eq!(cdf.len(), 0);
        assert_eq!(cdf.quantile(0.0), None);
        assert_eq!(cdf.quantile(1.0), None);
        assert_eq!(cdf.min(), None);
        assert_eq!(cdf.max(), None);
        assert!(cdf.samples().is_empty());
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let cdf = Cdf::new(vec![42.0]);
        for q in [0.0, 0.1, 0.5, 0.9, 1.0, -3.0, 7.0] {
            assert_eq!(cdf.quantile(q), Some(42.0), "q = {q}");
        }
        assert_eq!(cdf.median(), Some(42.0));
        assert_eq!(cdf.mean(), Some(42.0));
        assert_eq!(cdf.min(), cdf.max());
        assert_eq!(cdf.curve(), vec![(42.0, 1.0)]);
    }

    #[test]
    fn nan_quantile_is_none_not_the_minimum() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(cdf.quantile(f64::NAN), None);
        assert_eq!(cdf.quantile(-f64::NAN), None);
        // Non-NaN out-of-range values still clamp.
        assert_eq!(cdf.quantile(f64::NEG_INFINITY), Some(1.0));
        assert_eq!(cdf.quantile(f64::INFINITY), Some(3.0));
        assert_eq!(Cdf::new(vec![]).quantile(f64::NAN), None);
    }

    #[test]
    fn fraction_at_exact_sample_boundaries() {
        // P(X ≤ x) must include ties at x and flip exactly at the
        // sample values, not between them.
        let cdf = Cdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_below(3.0), 1.0);
        assert_eq!(
            cdf.fraction_at_or_below(f64::from_bits(2.0f64.to_bits() - 1)),
            0.25,
            "one ulp below a tie pair excludes both"
        );
        assert_eq!(cdf.fraction_at_or_below(f64::NEG_INFINITY), 0.0);
        assert_eq!(cdf.fraction_at_or_below(f64::INFINITY), 1.0);
    }

    #[test]
    fn single_sample_fraction_flips_at_the_sample() {
        let cdf = Cdf::new(vec![5.0]);
        assert_eq!(cdf.fraction_at_or_below(4.999), 0.0);
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    fn merge_equals_rebuilding_from_concatenated_samples() {
        let mut a = Cdf::new(vec![3.0, 1.0, 4.0]);
        let b = Cdf::new(vec![2.0, 1.0, 5.0]);
        a.merge(&b);
        assert_eq!(a, Cdf::new(vec![3.0, 1.0, 4.0, 2.0, 1.0, 5.0]));
        assert_eq!(a.len(), 6);
        assert_eq!(a.median(), Some(2.0));
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Cdf::new(vec![1.0, 2.0]);
        let before = a.clone();
        a.merge(&Cdf::new(vec![]));
        assert_eq!(a, before);
        let mut empty = Cdf::new(vec![]);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cdf_round_trips_through_json() {
        let cdf = Cdf::new(vec![20.0, 164.0, 80.0, 40.0, 320.0]);
        let text = serde_json::to_string(&cdf).unwrap();
        let back: Cdf = serde_json::from_str(&text).unwrap();
        assert_eq!(back, cdf);
        assert_eq!(back.median(), cdf.median());
    }

    proptest! {
        #[test]
        fn prop_merge_matches_concat_rebuild(
            xs in proptest::collection::vec(-1e6..1e6f64, 0..40),
            ys in proptest::collection::vec(-1e6..1e6f64, 0..40),
        ) {
            let mut merged = Cdf::new(xs.clone());
            merged.merge(&Cdf::new(ys.clone()));
            let mut concat = xs;
            concat.extend(ys);
            prop_assert_eq!(merged, Cdf::new(concat));
        }
    }

    #[test]
    fn curve_ends_at_probability_one() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0]);
        let curve = cdf.curve();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve.last().unwrap().1, 1.0);
        assert_eq!(curve[0], (1.0, 1.0 / 3.0));
    }

    proptest! {
        #[test]
        fn prop_cdf_is_monotone(samples in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
            let cdf = Cdf::new(samples);
            let mut prev = 0.0;
            for x in (-10..=10).map(|i| i as f64 * 1e5) {
                let f = cdf.fraction_at_or_below(x);
                prop_assert!(f >= prev);
                prop_assert!((0.0..=1.0).contains(&f));
                prev = f;
            }
        }

        #[test]
        fn prop_quantile_is_monotone(samples in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
            let cdf = Cdf::new(samples);
            let mut prev = f64::NEG_INFINITY;
            for i in 0..=10 {
                let q = cdf.quantile(i as f64 / 10.0).unwrap();
                prop_assert!(q >= prev);
                prev = q;
            }
        }

        #[test]
        fn prop_median_is_bracketed(samples in proptest::collection::vec(-1e3..1e3f64, 1..50)) {
            let cdf = Cdf::new(samples.clone());
            let m = cdf.median().unwrap();
            let below = samples.iter().filter(|&&x| x <= m).count();
            // Nearest-rank median: at least half the samples are ≤ it.
            prop_assert!(below * 2 >= samples.len());
        }
    }
}
