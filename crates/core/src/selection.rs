//! Meetup-server selection: the MinMax baseline and the Sticky heuristic.
//!
//! §5 of the paper:
//!
//! > The naive approach for selecting a meetup-server picks the
//! > latency-optimal satellite at each instant. We refer to this as
//! > "MinMax", as it minimizes the maximum latency across a set of
//! > clients connected. (…) We thus propose an alternative heuristic,
//! > "Sticky", that prioritizes stationarity by planning ahead leveraging
//! > predictable satellite motions, as follows:
//! >
//! > 1. Compute the set of meetup-servers that provide latency within
//! >    10 % of MinMax.
//! > 2. For each of these candidate meetup-servers, compute the time
//! >    until the next hand-off. Pick the 5 candidates with the longest
//! >    time until a hand-off.
//! > 3. Among these 5, pick one which would result in the least latency
//! >    for hand-off to its successor.

use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// The group-latency vector at one instant: for each satellite, the
/// *maximum* one-way delay (seconds) any user in the group experiences to
/// reach it. `INFINITY` marks unreachable satellites.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDelays {
    delays: Vec<f64>,
}

impl GroupDelays {
    /// Collapses per-user delay vectors (`[user][sat]`) into the group
    /// max-delay vector.
    ///
    /// # Panics
    /// Panics when user vectors have inconsistent lengths or no users are
    /// given.
    pub fn from_user_delays(per_user: &[Vec<f64>]) -> Self {
        assert!(!per_user.is_empty(), "no users");
        let n = per_user[0].len();
        assert!(
            per_user.iter().all(|v| v.len() == n),
            "inconsistent satellite counts"
        );
        let mut delays = vec![0.0f64; n];
        for v in per_user {
            for (d, &u) in delays.iter_mut().zip(v) {
                *d = d.max(u);
            }
        }
        GroupDelays { delays }
    }

    /// Group delays over the *full network graph*: a satellite's delay
    /// for a user may traverse ISLs when the satellite is not directly
    /// visible. Used for meetup placement across dispersed groups
    /// (Fig 3's tri-continent scenario).
    pub fn compute(service: &InOrbitService, users: &[GroundEndpoint], t: f64) -> Self {
        let view = service.view(t);
        Self::from_user_delays(&service.user_delays_view(&view, users))
    }

    /// Group delays under the *direct-visibility* session model: a
    /// satellite is a candidate only while every user sees it above the
    /// minimum elevation, and each user's delay is the slant-range delay
    /// (§3.2: user terminals talk to the satellite directly, no gateway).
    /// This is the model §5's hand-off analysis runs on.
    pub fn direct(service: &InOrbitService, users: &[GroundEndpoint], t: f64) -> Self {
        let view = service.view(t);
        Self::from_user_delays(&service.user_direct_delays_view(&view, users))
    }

    /// Group delay of one satellite, seconds (max over users, one-way).
    pub fn delay_s(&self, sat: SatId) -> f64 {
        self.delays[sat.0 as usize]
    }

    /// Removes a satellite from consideration (marks it unreachable) —
    /// used by the failure-injection session runner to take dead
    /// servers out of the candidate set.
    pub fn exclude(&mut self, sat: SatId) {
        self.delays[sat.0 as usize] = f64::INFINITY;
    }

    /// Group RTT of one satellite, milliseconds.
    pub fn rtt_ms(&self, sat: SatId) -> f64 {
        2.0 * self.delay_s(sat) * 1e3
    }

    /// Number of satellites covered.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// True when no satellites are covered.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// The latency-optimal satellite and its group delay, or `None` when
    /// no satellite is reachable by all users.
    pub fn minmax(&self) -> Option<(SatId, f64)> {
        self.delays
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &d)| (SatId(i as u32), d))
    }

    /// Satellites whose group delay is within `(1 + slack)` of the MinMax
    /// optimum (Sticky step 1), sorted by increasing delay.
    pub fn within_slack(&self, slack: f64) -> Vec<(SatId, f64)> {
        let Some((_, best)) = self.minmax() else {
            return Vec::new();
        };
        let bound = best * (1.0 + slack);
        let mut out: Vec<(SatId, f64)> = self
            .delays
            .iter()
            .enumerate()
            // The explicit finiteness check matters when callers pass an
            // infinite slack to mean "all servable": INF ≤ INF is true,
            // so unreachable satellites would otherwise slip through.
            .filter(|(_, &d)| d.is_finite() && d <= bound)
            .map(|(i, &d)| (SatId(i as u32), d))
            .collect();
        // Delay ties (two satellites at the exact same group delay) break
        // by SatId so the candidate order is a pure function of the set.
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Batched per-user nearest-server assignment over `[user][sat]` delay
/// rows: for each user, the satellite with the smallest finite delay and
/// that delay. Exact-delay ties break toward the lower satellite id —
/// the same rule as `GroupDelays::within_slack` and the serving layer's
/// `nearest_server_view` — so the assignment is a pure function of the
/// rows. Users with no reachable satellite map to `None`.
pub fn nearest_assignments(direct: &[Vec<f64>]) -> Vec<Option<(SatId, f64)>> {
    direct
        .iter()
        .map(|row| {
            let mut best: Option<(SatId, f64)> = None;
            for (i, &d) in row.iter().enumerate() {
                let beats = match best {
                    None => true,
                    Some((_, b)) => d < b,
                };
                if d.is_finite() && beats {
                    best = Some((SatId(i as u32), d));
                }
            }
            best
        })
        .collect()
}

/// Parameters of the Sticky heuristic (paper defaults: 10 % slack, pool
/// of 5, lookahead sampled every 10 s up to 20 min).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StickyParams {
    /// Latency slack over MinMax for candidacy (step 1; paper: 0.10).
    pub latency_slack: f64,
    /// How many longest-lived candidates reach step 3 (paper: 5).
    pub pool_size: usize,
    /// Lookahead sampling step for "time until next hand-off", seconds.
    pub lookahead_step_s: f64,
    /// Lookahead horizon, seconds. Candidates still alive at the horizon
    /// are treated as equally long-lived.
    pub lookahead_horizon_s: f64,
}

impl Default for StickyParams {
    fn default() -> Self {
        StickyParams {
            latency_slack: 0.10,
            pool_size: 5,
            lookahead_step_s: 10.0,
            lookahead_horizon_s: 1200.0,
        }
    }
}

/// A meetup-server selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Re-pick the latency-optimal satellite at every instant.
    MinMax,
    /// The paper's stationarity-first heuristic.
    Sticky(StickyParams),
}

impl Policy {
    /// The paper's Sticky configuration.
    pub fn sticky_default() -> Policy {
        Policy::Sticky(StickyParams::default())
    }

    /// Short display name used by the experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::MinMax => "MinMax",
            Policy::Sticky(_) => "Sticky",
        }
    }
}

/// How long (seconds from `t0`) each candidate remains *servable* — i.e.
/// directly visible to every user in the group — by lookahead sampling
/// of the predictable satellite motion. This is §5's "time until the
/// next hand-off": once any user loses sight of the server, a hand-off
/// is forced. Returns `lookahead_horizon_s` for candidates still
/// servable at the horizon.
pub fn candidate_lifetimes(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    t0: f64,
    candidates: &[SatId],
    params: &StickyParams,
) -> Vec<f64> {
    let mut lifetimes = vec![params.lookahead_horizon_s; candidates.len()];
    let mut alive: Vec<bool> = vec![true; candidates.len()];
    let mut remaining = candidates.len();
    let mut tau = params.lookahead_step_s;
    while remaining > 0 && tau <= params.lookahead_horizon_s + 1e-9 {
        let delays = GroupDelays::direct(service, users, t0 + tau);
        for (i, &cand) in candidates.iter().enumerate() {
            if alive[i] && !delays.delay_s(cand).is_finite() {
                lifetimes[i] = tau - params.lookahead_step_s;
                alive[i] = false;
                remaining -= 1;
            }
        }
        tau += params.lookahead_step_s;
    }
    lifetimes
}

/// Sticky step 2's ranking, factored out so determinism is testable:
/// order `(satellite, group delay)` candidates by lifetime (longest
/// first), breaking ties by group delay (lowest first) and finally by
/// `SatId`, and keep the top `pool`. Returns `(satellite, lifetime)`
/// pairs. The explicit tie-breaks make the finalist pool a pure function
/// of the candidate *set*, independent of the order candidates arrive in
/// — lookahead sampling quantizes lifetimes to the step size, so exact
/// ties are the common case, not a corner one.
pub fn rank_by_lifetime(
    candidates: &[(SatId, f64)],
    lifetimes: &[f64],
    pool: usize,
) -> Vec<(SatId, f64)> {
    assert_eq!(
        candidates.len(),
        lifetimes.len(),
        "one lifetime per candidate"
    );
    let mut ranked: Vec<(SatId, f64, f64)> = candidates
        .iter()
        .zip(lifetimes)
        .map(|(&(sat, delay), &lifetime)| (sat, delay, lifetime))
        .collect();
    ranked.sort_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then(a.1.total_cmp(&b.1))
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(pool.max(1));
    ranked
        .into_iter()
        .map(|(sat, _, lifetime)| (sat, lifetime))
        .collect()
}

/// Runs the full Sticky selection at time `t0` under the
/// direct-visibility session model, returning the chosen server, or
/// `None` when no satellite currently serves the whole group.
///
/// The three steps of §5:
/// 1. candidates = servers within `latency_slack` of the MinMax optimum;
/// 2. keep the `pool_size` candidates with the longest time until a
///    forced hand-off (loss of common visibility);
/// 3. among those, pick the one whose hand-off to *its own* successor
///    (the MinMax pick at its death time) has the least latency.
pub fn sticky_select(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    t0: f64,
    params: &StickyParams,
) -> Option<SatId> {
    let now = GroupDelays::direct(service, users, t0);
    let candidates = now.within_slack(params.latency_slack);
    if candidates.is_empty() {
        return None;
    }
    let ids: Vec<SatId> = candidates.iter().map(|&(s, _)| s).collect();

    // Step 2: keep the pool_size longest-lived candidates.
    let lifetimes = candidate_lifetimes(service, users, t0, &ids, params);
    let ranked = rank_by_lifetime(&candidates, &lifetimes, params.pool_size);

    // Step 3: among finalists, minimize the hand-off latency to each
    // one's successor at its own death time. The migration may relay
    // through the users' ground segment when that is shorter than the
    // +Grid path.
    let mut best: Option<(SatId, f64)> = None;
    for &(cand, lifetime) in &ranked {
        let death = t0 + lifetime.max(params.lookahead_step_s);
        let future = GroupDelays::direct(service, users, death);
        let Some((successor, _)) = future.minmax() else {
            continue;
        };
        let view = service.view(death);
        let handoff = service
            .migration_delay_view(&view, users, cand, successor)
            .unwrap_or(f64::INFINITY);
        if best.is_none_or(|(_, d)| handoff < d) {
            best = Some((cand, handoff));
        }
    }
    best.map(|(s, _)| s).or_else(|| Some(ranked[0].0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn west_africa_users() -> Vec<GroundEndpoint> {
        // The Fig 3 scenario: three users in West Africa (Abuja, Yaoundé,
        // and Lagos as the third endpoint pictured).
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    #[test]
    fn group_delays_take_the_per_user_maximum() {
        let per_user = vec![vec![1.0, 5.0, f64::INFINITY], vec![2.0, 3.0, 4.0]];
        let g = GroupDelays::from_user_delays(&per_user);
        assert_eq!(g.delay_s(SatId(0)), 2.0);
        assert_eq!(g.delay_s(SatId(1)), 5.0);
        assert!(g.delay_s(SatId(2)).is_infinite());
        assert_eq!(g.minmax(), Some((SatId(0), 2.0)));
    }

    #[test]
    fn within_slack_is_sorted_and_contains_the_optimum() {
        let per_user = vec![vec![10.0, 10.9, 11.5, 10.05, f64::INFINITY]];
        let g = GroupDelays::from_user_delays(&per_user);
        let c = g.within_slack(0.10);
        let ids: Vec<u32> = c.iter().map(|&(s, _)| s.0).collect();
        assert_eq!(ids, vec![0, 3, 1]); // 11.5 is outside 10 %, INF excluded
        for w in c.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn infinite_slack_returns_all_servable_but_no_unreachable() {
        let g = GroupDelays::from_user_delays(&[vec![1.0, 3.0, f64::INFINITY, 2.0]]);
        let c = g.within_slack(f64::INFINITY);
        let ids: Vec<u32> = c.iter().map(|&(s, _)| s.0).collect();
        assert_eq!(ids, vec![0, 3, 1]);
    }

    #[test]
    fn minmax_of_all_unreachable_is_none() {
        let g = GroupDelays::from_user_delays(&[vec![f64::INFINITY; 4]]);
        assert_eq!(g.minmax(), None);
        assert!(g.within_slack(0.1).is_empty());
    }

    #[test]
    fn nearest_assignments_pick_the_per_user_minimum() {
        let direct = vec![
            vec![3.0, 1.0, 2.0],
            vec![f64::INFINITY, f64::INFINITY, f64::INFINITY],
            vec![5.0, 5.0, 7.0], // exact tie breaks to the lower id
            vec![],
        ];
        let picks = nearest_assignments(&direct);
        assert_eq!(
            picks,
            vec![Some((SatId(1), 1.0)), None, Some((SatId(0), 5.0)), None]
        );
    }

    #[test]
    fn nearest_assignments_agree_with_single_user_minmax() {
        let s = InOrbitService::new(presets::starlink_550_only());
        let users = west_africa_users();
        let direct = s.user_direct_delays(&s.snapshot(30.0), &users);
        let picks = nearest_assignments(&direct);
        for (row, pick) in direct.iter().zip(&picks) {
            let single = GroupDelays::from_user_delays(std::slice::from_ref(row));
            assert_eq!(*pick, single.minmax());
        }
    }

    #[test]
    #[should_panic(expected = "no users")]
    fn empty_user_set_is_rejected() {
        GroupDelays::from_user_delays(&[]);
    }

    #[test]
    fn west_africa_minmax_rtt_is_about_16_ms() {
        // Fig 3: "the RTT to a meetup server hosted using in-orbit compute
        // on the same constellation would be 16 ms".
        let service = InOrbitService::new(presets::starlink_phase1());
        let users = west_africa_users();
        let g = GroupDelays::compute(&service, &users, 0.0);
        let (_, d) = g.minmax().expect("served");
        let rtt = 2.0 * d * 1e3;
        // Paper: 16 ms. With the 25° FCC elevation mask our selection finds
        // nearer servers (~6 ms); the qualitative claim — comfortably below
        // the 46 ms hybrid — is what this test pins (see EXPERIMENTS.md).
        assert!(
            (4.0..20.0).contains(&rtt),
            "West Africa in-orbit RTT {rtt} ms, paper says ≤16"
        );
    }

    #[test]
    fn sticky_picks_a_candidate_within_the_latency_band() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let users = west_africa_users();
        let params = StickyParams {
            lookahead_step_s: 30.0,
            lookahead_horizon_s: 300.0,
            ..StickyParams::default()
        };
        let g = GroupDelays::direct(&service, &users, 0.0);
        let (_, best) = g.minmax().unwrap();
        let chosen = sticky_select(&service, &users, 0.0, &params).expect("selection");
        assert!(
            g.delay_s(chosen) <= best * 1.10 + 1e-12,
            "sticky choice violates the 10 % band"
        );
    }

    #[test]
    fn candidate_lifetimes_are_bounded_by_the_horizon() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let users = west_africa_users();
        let params = StickyParams {
            lookahead_step_s: 60.0,
            lookahead_horizon_s: 240.0,
            ..StickyParams::default()
        };
        let g = GroupDelays::direct(&service, &users, 0.0);
        let ids: Vec<SatId> = g.within_slack(0.1).iter().map(|&(s, _)| s).collect();
        let lifetimes = candidate_lifetimes(&service, &users, 0.0, &ids, &params);
        assert_eq!(lifetimes.len(), ids.len());
        for lt in lifetimes {
            assert!((0.0..=240.0).contains(&lt));
        }
    }

    #[test]
    fn within_slack_breaks_delay_ties_by_sat_id() {
        // Satellites 1 and 3 tie exactly; the candidate list must order
        // them by id, not by float whim.
        let g = GroupDelays::from_user_delays(&[vec![2.0, 1.5, 9.0, 1.5, 1.0]]);
        let ids: Vec<u32> = g
            .within_slack(f64::INFINITY)
            .iter()
            .map(|&(s, _)| s.0)
            .collect();
        assert_eq!(ids, vec![4, 1, 3, 0, 2]);
    }

    #[test]
    fn ranking_is_independent_of_candidate_order() {
        // Lifetimes quantized to the lookahead step tie constantly; the
        // finalist pool must be a function of the set, not the arrival
        // order.
        let forward: Vec<(SatId, f64)> = vec![
            (SatId(2), 0.010),
            (SatId(7), 0.010),
            (SatId(1), 0.011),
            (SatId(9), 0.012),
        ];
        let lifetimes_fwd = vec![120.0, 120.0, 120.0, 60.0];
        let mut reversed = forward.clone();
        reversed.reverse();
        let lifetimes_rev: Vec<f64> = lifetimes_fwd.iter().rev().copied().collect();
        let a = rank_by_lifetime(&forward, &lifetimes_fwd, 3);
        let b = rank_by_lifetime(&reversed, &lifetimes_rev, 3);
        assert_eq!(a, b);
        // lifetime desc, then delay asc, then SatId asc.
        assert_eq!(
            a.iter().map(|&(s, _)| s.0).collect::<Vec<_>>(),
            vec![2, 7, 1]
        );
    }

    #[test]
    fn rank_pool_of_zero_still_yields_one_finalist() {
        let ranked = rank_by_lifetime(&[(SatId(3), 0.01)], &[30.0], 0);
        assert_eq!(ranked, vec![(SatId(3), 30.0)]);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(Policy::MinMax.name(), "MinMax");
        assert_eq!(Policy::sticky_default().name(), "Sticky");
    }
}
