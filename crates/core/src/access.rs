//! Per-latitude access statistics — the measurements behind Figs 1 and 2.
//!
//! The paper: *"For each constellation, we compute the RTT from a ground
//! location every minute over two hours, and use the maximum value across
//! these measurements. We do so for the nearest reachable satellite, as
//! well as the farthest (directly) reachable satellite."* Fig 2 reports
//! the number of reachable satellites (average over time, with min/max
//! range).

use crate::service::InOrbitService;
use leo_geo::Geodetic;
use leo_net::VisibleSat;
use serde::{Deserialize, Serialize};

/// Sampling schedule for the access experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// First sample time, seconds after the constellation epoch.
    pub start_s: f64,
    /// Interval between samples, seconds (paper: 60 s).
    pub interval_s: f64,
    /// Number of samples (paper: 2 h / 1 min = 120 + 1).
    pub samples: usize,
}

impl SamplingConfig {
    /// The paper's schedule: every minute over two hours.
    pub fn paper() -> Self {
        SamplingConfig {
            start_s: 0.0,
            interval_s: 60.0,
            samples: 121,
        }
    }

    /// A faster schedule for tests: every 5 minutes over one hour.
    pub fn coarse() -> Self {
        SamplingConfig {
            start_s: 0.0,
            interval_s: 300.0,
            samples: 13,
        }
    }

    /// Iterator over sample times.
    pub fn times(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.samples).map(move |i| self.start_s + i as f64 * self.interval_s)
    }
}

/// Access statistics for one ground location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Worst-case-over-time RTT to the *nearest* reachable satellite, ms.
    /// `None` when some sample had no reachable satellite (no service).
    pub nearest_rtt_ms: Option<f64>,
    /// Worst-case-over-time RTT to the *farthest* directly reachable
    /// satellite, ms. `None` under the same condition.
    pub farthest_rtt_ms: Option<f64>,
    /// Minimum over time of the reachable-satellite count.
    pub min_count: usize,
    /// Mean over time of the reachable-satellite count.
    pub avg_count: f64,
    /// Maximum over time of the reachable-satellite count.
    pub max_count: usize,
}

impl AccessStats {
    /// Folds per-sample visible-satellite sets into the worst-case /
    /// count statistics. This is the aggregation shared by
    /// [`access_stats`] and the sweep-engine ports of Figs 1–2, which
    /// produce the per-instant sets from prebuilt snapshot views.
    pub fn from_visible_sets<I>(sets: I) -> AccessStats
    where
        I: IntoIterator,
        I::Item: AsRef<[VisibleSat]>,
    {
        let mut nearest_worst: f64 = 0.0;
        let mut farthest_worst: f64 = 0.0;
        let mut served_everywhere = true;
        let mut min_count = usize::MAX;
        let mut max_count = 0usize;
        let mut total_count = 0usize;
        let mut samples = 0usize;

        for set in sets {
            let vis = set.as_ref();
            samples += 1;
            min_count = min_count.min(vis.len());
            max_count = max_count.max(vis.len());
            total_count += vis.len();
            if vis.is_empty() {
                served_everywhere = false;
                continue;
            }
            let near = vis.iter().map(|v| v.rtt_ms()).fold(f64::INFINITY, f64::min);
            let far = vis.iter().map(|v| v.rtt_ms()).fold(0.0, f64::max);
            nearest_worst = nearest_worst.max(near);
            farthest_worst = farthest_worst.max(far);
        }

        AccessStats {
            nearest_rtt_ms: (served_everywhere && samples > 0).then_some(nearest_worst),
            farthest_rtt_ms: (served_everywhere && samples > 0).then_some(farthest_worst),
            min_count: if samples == 0 { 0 } else { min_count },
            avg_count: if samples == 0 {
                0.0
            } else {
                total_count as f64 / samples as f64
            },
            max_count,
        }
    }
}

/// Computes [`AccessStats`] for a ground location.
pub fn access_stats(
    service: &InOrbitService,
    ground: Geodetic,
    sampling: &SamplingConfig,
) -> AccessStats {
    AccessStats::from_visible_sets(
        sampling
            .times()
            .map(|t| service.reachable_servers(ground, t)),
    )
}

/// One row of the Fig 1/2 latitude sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatitudeRow {
    /// Ground latitude, degrees.
    pub latitude_deg: f64,
    /// The access statistics at that latitude (longitude 0, as in the
    /// paper's single-ground-location methodology).
    pub stats: AccessStats,
}

/// Sweeps latitudes `0..=max_lat_deg` in steps of `step_deg` at
/// longitude 0 (reproduces the x-axis of Figs 1–2).
pub fn latitude_sweep(
    service: &InOrbitService,
    max_lat_deg: f64,
    step_deg: f64,
    sampling: &SamplingConfig,
) -> Vec<LatitudeRow> {
    let mut rows = Vec::new();
    let mut lat = 0.0;
    while lat <= max_lat_deg + 1e-9 {
        rows.push(LatitudeRow {
            latitude_deg: lat,
            stats: access_stats(service, Geodetic::ground(lat, 0.0), sampling),
        });
        lat += step_deg;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    #[test]
    fn sampling_schedule_matches_paper() {
        let s = SamplingConfig::paper();
        let times: Vec<f64> = s.times().collect();
        assert_eq!(times.len(), 121);
        assert_eq!(times[0], 0.0);
        assert_eq!(*times.last().unwrap(), 7200.0);
    }

    #[test]
    fn starlink_equator_stats_match_fig1_and_fig2() {
        let service = InOrbitService::new(presets::starlink_phase1());
        let stats = access_stats(
            &service,
            Geodetic::ground(0.0, 0.0),
            &SamplingConfig::coarse(),
        );
        // Fig 1: nearest within ~11 ms everywhere; farthest within 16 ms.
        let near = stats.nearest_rtt_ms.expect("served");
        let far = stats.farthest_rtt_ms.expect("served");
        assert!(near < 11.0, "nearest {near}");
        assert!(far <= 16.2, "farthest {far}");
        // Fig 2: 30+ satellites visible from almost all locations.
        assert!(stats.min_count >= 20, "min count {}", stats.min_count);
        assert!(stats.avg_count >= 30.0, "avg count {}", stats.avg_count);
    }

    #[test]
    fn kuiper_is_unserved_beyond_60_degrees() {
        let service = InOrbitService::new(presets::kuiper());
        let stats = access_stats(
            &service,
            Geodetic::ground(62.0, 0.0),
            &SamplingConfig::coarse(),
        );
        assert_eq!(stats.nearest_rtt_ms, None);
        assert_eq!(stats.max_count, 0);
    }

    #[test]
    fn latitude_sweep_produces_requested_rows() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let quick = SamplingConfig {
            start_s: 0.0,
            interval_s: 600.0,
            samples: 3,
        };
        let rows = latitude_sweep(&service, 20.0, 10.0, &quick);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].latitude_deg, 0.0);
        assert_eq!(rows[2].latitude_deg, 20.0);
    }

    #[test]
    fn counts_are_internally_consistent() {
        let service = InOrbitService::new(presets::kuiper());
        let stats = access_stats(
            &service,
            Geodetic::ground(30.0, 0.0),
            &SamplingConfig::coarse(),
        );
        assert!(stats.min_count as f64 <= stats.avg_count);
        assert!(stats.avg_count <= stats.max_count as f64);
    }

    #[test]
    fn nearest_never_exceeds_farthest() {
        let service = InOrbitService::new(presets::kuiper());
        let stats = access_stats(
            &service,
            Geodetic::ground(40.0, 0.0),
            &SamplingConfig::coarse(),
        );
        if let (Some(n), Some(f)) = (stats.nearest_rtt_ms, stats.farthest_rtt_ms) {
            assert!(n <= f);
        }
    }
}
