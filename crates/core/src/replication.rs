//! Ahead-of-time state replication planning.
//!
//! §5's closing paragraph: *"it may be beneficial to separate
//! session-specific state from generic application state, e.g., the
//! player and game state versus the virtual world of a game, and perform
//! live migration only for the session-specific state, while generic
//! state is replicated even further ahead."*
//!
//! Satellite motion is predictable, so the sequence of future
//! meetup-servers is computable in advance. [`predict_servers`] rolls
//! the selection policy forward; [`ReplicationPlan`] turns the
//! prediction into a prefetch schedule for the generic state (replicate
//! to the next `depth` future servers, `lead_time_s` before they take
//! over) and quantifies the payoff: at hand-off time only the small
//! session state moves on the critical path.

use crate::selection::{sticky_select, GroupDelays, Policy};
use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_net::des::{uncontended_transfer_s, Link};
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// One predicted serving interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingInterval {
    /// The server.
    pub server: SatId,
    /// When it takes over, seconds.
    pub from_s: f64,
    /// When it hands off (exclusive), seconds.
    pub until_s: f64,
}

impl ServingInterval {
    /// Interval length, seconds.
    pub fn duration_s(&self) -> f64 {
        self.until_s - self.from_s
    }
}

/// Rolls the selection policy forward from `start_s` for `horizon_s`,
/// sampling every `step_s`, and returns the predicted sequence of
/// serving intervals. Gaps (no satellite serves the whole group) end the
/// current interval; prediction resumes at the next served sample.
pub fn predict_servers(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    policy: Policy,
    start_s: f64,
    horizon_s: f64,
    step_s: f64,
) -> Vec<ServingInterval> {
    assert!(step_s > 0.0 && horizon_s > 0.0);
    let mut intervals: Vec<ServingInterval> = Vec::new();
    let mut current: Option<ServingInterval> = None;
    let steps = (horizon_s / step_s).round() as usize;
    for i in 0..=steps {
        let t = start_s + i as f64 * step_s;
        let delays = GroupDelays::direct(service, users, t);
        let desired = match (policy, &current) {
            (_, _) if delays.minmax().is_none() => None,
            (Policy::MinMax, _) => delays.minmax().map(|(s, _)| s),
            (Policy::Sticky(_), Some(cur)) if delays.delay_s(cur.server).is_finite() => {
                Some(cur.server)
            }
            (Policy::Sticky(params), _) => sticky_select(service, users, t, &params)
                .or_else(|| delays.minmax().map(|(s, _)| s)),
        };
        match (&mut current, desired) {
            (Some(cur), Some(d)) if cur.server == d => cur.until_s = t + step_s,
            (cur, Some(d)) => {
                if let Some(done) = cur.take() {
                    intervals.push(done);
                }
                *cur = Some(ServingInterval {
                    server: d,
                    from_s: t,
                    until_s: t + step_s,
                });
            }
            (cur, None) => {
                if let Some(done) = cur.take() {
                    intervals.push(done);
                }
            }
        }
    }
    if let Some(done) = current {
        intervals.push(done);
    }
    intervals
}

/// Sizes of the two state classes, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSizes {
    /// Session-specific state (player positions, scores…): migrated live
    /// at each hand-off, on the critical path.
    pub session_bytes: f64,
    /// Generic application state (the virtual world…): replicated ahead,
    /// off the critical path.
    pub generic_bytes: f64,
}

/// One prefetch order: push the generic state to `target` by `by_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchOrder {
    /// Destination server.
    pub target: SatId,
    /// Start the push at this time, seconds.
    pub start_s: f64,
    /// Must complete by this time (the server's takeover), seconds.
    pub deadline_s: f64,
}

/// A replication plan over a predicted server sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPlan {
    /// The predicted serving sequence the plan is built on.
    pub intervals: Vec<ServingInterval>,
    /// Prefetch orders for the generic state.
    pub orders: Vec<PrefetchOrder>,
    /// State sizes the plan was built for.
    pub sizes: StateSizes,
}

impl ReplicationPlan {
    /// Builds a plan: for each future serving interval (up to `depth`
    /// ahead of the current one), schedule the generic-state push to
    /// start `lead_time_s` before takeover.
    pub fn build(
        intervals: Vec<ServingInterval>,
        sizes: StateSizes,
        depth: usize,
        lead_time_s: f64,
    ) -> Self {
        let orders = intervals
            .iter()
            .skip(1)
            .take(depth)
            .map(|iv| PrefetchOrder {
                target: iv.server,
                start_s: (iv.from_s - lead_time_s).max(0.0),
                deadline_s: iv.from_s,
            })
            .collect();
        ReplicationPlan {
            intervals,
            orders,
            sizes,
        }
    }

    /// Critical-path data volume at each hand-off *with* the plan:
    /// session state only.
    pub fn critical_path_bytes(&self) -> f64 {
        self.sizes.session_bytes
    }

    /// Critical-path volume *without* the plan: everything moves at
    /// hand-off time.
    pub fn unplanned_critical_path_bytes(&self) -> f64 {
        self.sizes.session_bytes + self.sizes.generic_bytes
    }

    /// Hand-off critical-path time (seconds) with and without the plan,
    /// over a migration path of `links`.
    pub fn handoff_times_s(&self, links: &[Link]) -> (f64, f64) {
        let with = uncontended_transfer_s(self.critical_path_bytes() * 8.0, links);
        let without = uncontended_transfer_s(self.unplanned_critical_path_bytes() * 8.0, links);
        (with, without)
    }

    /// True when every prefetch has enough time to finish over `links`
    /// before its deadline.
    pub fn prefetches_feasible(&self, links: &[Link]) -> bool {
        let t = uncontended_transfer_s(self.sizes.generic_bytes * 8.0, links);
        self.orders.iter().all(|o| o.deadline_s - o.start_s >= t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn users() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_phase1_conservative())
    }

    #[test]
    fn prediction_intervals_are_ordered_and_disjoint() {
        let s = service();
        let iv = predict_servers(&s, &users(), Policy::MinMax, 0.0, 900.0, 15.0);
        assert!(!iv.is_empty());
        for w in iv.windows(2) {
            assert!(w[0].until_s <= w[1].from_s + 1e-9);
            assert_ne!(w[0].server, w[1].server, "adjacent intervals must differ");
        }
        for i in &iv {
            assert!(i.duration_s() > 0.0);
        }
    }

    #[test]
    fn sticky_prediction_yields_fewer_longer_intervals() {
        let s = service();
        let mm = predict_servers(&s, &users(), Policy::MinMax, 0.0, 1800.0, 15.0);
        let st = predict_servers(&s, &users(), Policy::sticky_default(), 0.0, 1800.0, 15.0);
        assert!(
            st.len() <= mm.len(),
            "sticky {} vs minmax {}",
            st.len(),
            mm.len()
        );
    }

    #[test]
    fn plan_covers_the_requested_depth() {
        let s = service();
        let iv = predict_servers(&s, &users(), Policy::sticky_default(), 0.0, 1800.0, 15.0);
        let sizes = StateSizes {
            session_bytes: 10e6,
            generic_bytes: 2e9,
        };
        let depth = 2.min(iv.len().saturating_sub(1));
        let plan = ReplicationPlan::build(iv.clone(), sizes, 2, 60.0);
        assert_eq!(plan.orders.len(), depth);
        for (o, target_iv) in plan.orders.iter().zip(iv.iter().skip(1)) {
            assert_eq!(o.target, target_iv.server);
            assert!(o.start_s <= o.deadline_s);
            assert_eq!(o.deadline_s, target_iv.from_s);
        }
    }

    #[test]
    fn plan_shrinks_the_critical_path_by_the_generic_share() {
        let sizes = StateSizes {
            session_bytes: 10e6, // 10 MB of player state
            generic_bytes: 2e9,  // 2 GB virtual world
        };
        let plan = ReplicationPlan::build(vec![], sizes, 0, 0.0);
        let links = [Link::new(100e9, 0.003)];
        let (with, without) = plan.handoff_times_s(&links);
        // 10 MB at 100 Gbps ≈ 0.8 ms (+3 ms prop) vs 2.01 GB ≈ 161 ms:
        // the propagation floor keeps the ratio near ~40×.
        assert!(with < 0.005, "with plan: {with} s");
        assert!(without > 0.1, "without plan: {without} s");
        assert!(without / with > 30.0);
    }

    #[test]
    fn prefetch_feasibility_depends_on_lead_time() {
        let iv = vec![
            ServingInterval {
                server: SatId(0),
                from_s: 0.0,
                until_s: 100.0,
            },
            ServingInterval {
                server: SatId(1),
                from_s: 100.0,
                until_s: 250.0,
            },
        ];
        let sizes = StateSizes {
            session_bytes: 1e6,
            generic_bytes: 12.5e9, // 100 Gbit → 1 s at 100 Gbps
        };
        let links = [Link::new(100e9, 0.003)];
        let tight = ReplicationPlan::build(iv.clone(), sizes, 1, 0.5);
        assert!(!tight.prefetches_feasible(&links));
        let relaxed = ReplicationPlan::build(iv, sizes, 1, 5.0);
        assert!(relaxed.prefetches_feasible(&links));
    }

    #[test]
    fn lead_time_never_schedules_before_time_zero() {
        let iv = vec![
            ServingInterval {
                server: SatId(0),
                from_s: 0.0,
                until_s: 30.0,
            },
            ServingInterval {
                server: SatId(1),
                from_s: 30.0,
                until_s: 60.0,
            },
        ];
        let plan = ReplicationPlan::build(
            iv,
            StateSizes {
                session_bytes: 1.0,
                generic_bytes: 1.0,
            },
            1,
            300.0,
        );
        assert_eq!(plan.orders[0].start_s, 0.0);
    }
}
