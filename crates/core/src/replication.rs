//! Ahead-of-time state replication planning.
//!
//! §5's closing paragraph: *"it may be beneficial to separate
//! session-specific state from generic application state, e.g., the
//! player and game state versus the virtual world of a game, and perform
//! live migration only for the session-specific state, while generic
//! state is replicated even further ahead."*
//!
//! Satellite motion is predictable, so the sequence of future
//! meetup-servers is computable in advance. [`predict_servers`] rolls
//! the selection policy forward; [`ReplicationPlan`] turns the
//! prediction into a prefetch schedule for the generic state (replicate
//! to the next `depth` future servers, `lead_time_s` before they take
//! over) and quantifies the payoff: at hand-off time only the small
//! session state moves on the critical path.

use crate::selection::{sticky_select, GroupDelays, Policy};
use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_geo::consts::SPEED_OF_LIGHT_M_S;
use leo_net::congestion::{
    uncontended_packet_transfer_s, CbrFlow, CcAlgorithm, CongestionLink, CongestionNetwork,
    WindowedFlow,
};
use leo_net::des::{uncontended_transfer_s, Link};
use leo_net::graph::NodeId;
use leo_net::routing::{self, GroundEndpoint};
use serde::{Deserialize, Serialize};

/// One predicted serving interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingInterval {
    /// The server.
    pub server: SatId,
    /// When it takes over, seconds.
    pub from_s: f64,
    /// When it hands off (exclusive), seconds.
    pub until_s: f64,
}

impl ServingInterval {
    /// Interval length, seconds.
    pub fn duration_s(&self) -> f64 {
        self.until_s - self.from_s
    }
}

/// Rolls the selection policy forward from `start_s` for `horizon_s`,
/// sampling every `step_s`, and returns the predicted sequence of
/// serving intervals. Gaps (no satellite serves the whole group) end the
/// current interval; prediction resumes at the next served sample.
pub fn predict_servers(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    policy: Policy,
    start_s: f64,
    horizon_s: f64,
    step_s: f64,
) -> Vec<ServingInterval> {
    assert!(step_s > 0.0 && horizon_s > 0.0);
    let mut intervals: Vec<ServingInterval> = Vec::new();
    let mut current: Option<ServingInterval> = None;
    let steps = (horizon_s / step_s).round() as usize;
    for i in 0..=steps {
        let t = start_s + i as f64 * step_s;
        let delays = GroupDelays::direct(service, users, t);
        let desired = match (policy, &current) {
            (_, _) if delays.minmax().is_none() => None,
            (Policy::MinMax, _) => delays.minmax().map(|(s, _)| s),
            (Policy::Sticky(_), Some(cur)) if delays.delay_s(cur.server).is_finite() => {
                Some(cur.server)
            }
            (Policy::Sticky(params), _) => sticky_select(service, users, t, &params)
                .or_else(|| delays.minmax().map(|(s, _)| s)),
        };
        match (&mut current, desired) {
            (Some(cur), Some(d)) if cur.server == d => cur.until_s = t + step_s,
            (cur, Some(d)) => {
                if let Some(done) = cur.take() {
                    intervals.push(done);
                }
                *cur = Some(ServingInterval {
                    server: d,
                    from_s: t,
                    until_s: t + step_s,
                });
            }
            (cur, None) => {
                if let Some(done) = cur.take() {
                    intervals.push(done);
                }
            }
        }
    }
    if let Some(done) = current {
        intervals.push(done);
    }
    intervals
}

/// Sizes of the two state classes, bytes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSizes {
    /// Session-specific state (player positions, scores…): migrated live
    /// at each hand-off, on the critical path.
    pub session_bytes: f64,
    /// Generic application state (the virtual world…): replicated ahead,
    /// off the critical path.
    pub generic_bytes: f64,
}

/// One prefetch order: push the generic state to `target` by `by_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchOrder {
    /// Destination server.
    pub target: SatId,
    /// Start the push at this time, seconds.
    pub start_s: f64,
    /// Must complete by this time (the server's takeover), seconds.
    pub deadline_s: f64,
}

/// A replication plan over a predicted server sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationPlan {
    /// The predicted serving sequence the plan is built on.
    pub intervals: Vec<ServingInterval>,
    /// Prefetch orders for the generic state.
    pub orders: Vec<PrefetchOrder>,
    /// State sizes the plan was built for.
    pub sizes: StateSizes,
}

impl ReplicationPlan {
    /// Builds a plan: for each future serving interval (up to `depth`
    /// ahead of the current one), schedule the generic-state push to
    /// start `lead_time_s` before takeover.
    pub fn build(
        intervals: Vec<ServingInterval>,
        sizes: StateSizes,
        depth: usize,
        lead_time_s: f64,
    ) -> Self {
        let orders = intervals
            .iter()
            .skip(1)
            .take(depth)
            .map(|iv| PrefetchOrder {
                target: iv.server,
                start_s: (iv.from_s - lead_time_s).max(0.0),
                deadline_s: iv.from_s,
            })
            .collect();
        ReplicationPlan {
            intervals,
            orders,
            sizes,
        }
    }

    /// Critical-path data volume at each hand-off *with* the plan:
    /// session state only.
    pub fn critical_path_bytes(&self) -> f64 {
        self.sizes.session_bytes
    }

    /// Critical-path volume *without* the plan: everything moves at
    /// hand-off time.
    pub fn unplanned_critical_path_bytes(&self) -> f64 {
        self.sizes.session_bytes + self.sizes.generic_bytes
    }

    /// Hand-off critical-path time (seconds) with and without the plan,
    /// over a migration path of `links`.
    pub fn handoff_times_s(&self, links: &[Link]) -> (f64, f64) {
        let with = uncontended_transfer_s(self.critical_path_bytes() * 8.0, links);
        let without = uncontended_transfer_s(self.unplanned_critical_path_bytes() * 8.0, links);
        (with, without)
    }

    /// True when every prefetch has enough time to finish over `links`
    /// before its deadline.
    pub fn prefetches_feasible(&self, links: &[Link]) -> bool {
        let t = uncontended_transfer_s(self.sizes.generic_bytes * 8.0, links);
        self.orders.iter().all(|o| o.deadline_s - o.start_s >= t)
    }
}

/// Network model for packet-level migration timing: per-ISL capacity,
/// queueing, marking, the sender's congestion-control algorithm, and the
/// background load competing for each hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationNetConfig {
    /// Capacity of every ISL on the route, bits per second.
    pub isl_rate_bps: f64,
    /// Drop-tail queue capacity per ISL, packets.
    pub queue_packets: usize,
    /// ECN marking threshold (queue occupancy, packets); `None` disables
    /// marking.
    pub ecn_threshold: Option<usize>,
    /// Simulated packet size, bits. Large "GSO-burst" packets keep event
    /// counts tractable without changing queueing behavior qualitatively.
    pub packet_bits: f64,
    /// Congestion-control algorithm for the migration sender.
    pub algorithm: CcAlgorithm,
    /// Background EO/user cross-traffic on *each* ISL of the route, as a
    /// fraction of `isl_rate_bps`. Open-loop: it does not back off.
    pub cross_load_frac: f64,
    /// Route-refresh cadence, seconds: every `segment_s` the ISL route is
    /// rebuilt from the constellation snapshot at that instant. Packets in
    /// flight across a route change are lost (handover loss) and the
    /// window restarts halved.
    pub segment_s: f64,
    /// Give up after this many route segments without completing.
    pub max_segments: usize,
}

impl Default for MigrationNetConfig {
    fn default() -> Self {
        Self {
            isl_rate_bps: 10e9,
            queue_packets: 256,
            ecn_threshold: Some(64),
            packet_bits: 384_000.0, // 48 kB GSO bursts
            algorithm: CcAlgorithm::Dctcp { gain: 0.0625 },
            cross_load_frac: 0.0,
            segment_s: 15.0,
            max_segments: 240,
        }
    }
}

/// Outcome of one packet-level state migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Wall-clock transfer time, seconds; `None` if the transfer did not
    /// complete within `max_segments` route segments.
    pub duration_s: Option<f64>,
    /// Analytic uncontended bound for the *initial* route, packetized
    /// (first packet store-and-forwards, the rest pipeline behind the
    /// slowest hop). Equals [`uncontended_transfer_s`] on one-hop routes.
    pub analytic_packet_s: f64,
    /// Analytic uncontended bound for the initial route with the state as
    /// one indivisible message ([`uncontended_transfer_s`]); an upper
    /// bound on the packetized bound.
    pub analytic_message_s: f64,
    /// ISL hops on the initial route.
    pub hops: usize,
    /// Distinct packets the transfer comprises.
    pub packets: u64,
    /// Route segments the transfer spanned.
    pub segments: usize,
    /// Segments whose route differed from the previous segment's.
    pub route_changes: usize,
    /// Total packet transmissions, including retransmissions.
    pub transmissions: u64,
    /// Retransmissions after drop-tail loss or timeout.
    pub retransmissions: u64,
    /// Transmissions lost to full queues.
    pub dropped: u64,
    /// Packets still in flight when a route segment ended: lost to the
    /// handover, re-sent on the next segment.
    pub boundary_loss: u64,
    /// Deliveries carrying an ECN congestion-experienced mark.
    pub ecn_marked: u64,
}

/// Times a live state migration from `from` to `to` starting at `start_s`
/// through the congestion-aware packet engine, instead of the analytic
/// [`uncontended_transfer_s`] bound.
///
/// The transfer is simulated in segments of [`MigrationNetConfig::segment_s`]
/// seconds. For each segment the shortest ISL route is rebuilt from the
/// constellation snapshot at the segment's start (link propagation delays
/// from actual inter-satellite distances, capacity and queueing from the
/// config), an independent open-loop cross-traffic flow is placed on every
/// hop, and the windowed sender moves as much of the remaining state as
/// the segment allows. Packets in flight when the segment ends are lost —
/// the handover-loss case — and the window restarts halved on the next
/// segment's route.
///
/// Deterministic: identical inputs produce identical outcomes, independent
/// of thread count or observability level.
pub fn migrate_via_packets(
    service: &InOrbitService,
    from: SatId,
    to: SatId,
    start_s: f64,
    size_bytes: f64,
    cfg: &MigrationNetConfig,
) -> MigrationOutcome {
    assert!(
        size_bytes.is_finite() && size_bytes > 0.0,
        "state size must be positive and finite, got {size_bytes}"
    );
    assert!(
        start_s.is_finite(),
        "migration start must be finite, got {start_s}"
    );
    assert!(
        cfg.segment_s.is_finite() && cfg.segment_s > 0.0,
        "segment length must be positive and finite, got {}",
        cfg.segment_s
    );
    let total_packets = ((size_bytes * 8.0) / cfg.packet_bits).ceil().max(1.0) as u64;
    let mut outcome = MigrationOutcome {
        duration_s: None,
        analytic_packet_s: 0.0,
        analytic_message_s: 0.0,
        hops: 0,
        packets: total_packets,
        segments: 0,
        route_changes: 0,
        transmissions: 0,
        retransmissions: 0,
        dropped: 0,
        boundary_loss: 0,
        ecn_marked: 0,
    };
    if from == to {
        outcome.duration_s = Some(0.0);
        outcome.packets = 0;
        return outcome;
    }

    let mut remaining = total_packets;
    let mut elapsed_s = 0.0;
    let mut prev_route: Option<Vec<NodeId>> = None;
    let mut carried_cwnd: Option<f64> = None;

    for seg in 0..cfg.max_segments {
        let seg_start = start_s + elapsed_s;
        let view = service.view(seg_start);
        let graph = service.graph(view.snapshot(), &[]);
        let Some(path) = routing::sat_to_sat(&graph, from, to) else {
            // No route this segment; wait for the topology to change.
            outcome.segments = seg + 1;
            elapsed_s += cfg.segment_s;
            prev_route = None;
            continue;
        };
        let route_changed = prev_route.as_deref().is_some_and(|r| r != path.nodes);
        if route_changed {
            outcome.route_changes += 1;
        }

        // Materialize the route as congestion links: configured capacity
        // and queueing, propagation from the actual hop geometry.
        let links: Vec<CongestionLink> = path
            .nodes
            .windows(2)
            .map(|pair| {
                let (NodeId::Sat(a), NodeId::Sat(b)) = (pair[0], pair[1]) else {
                    unreachable!("sat-to-sat routes stay on the ISL mesh")
                };
                let snap = view.snapshot();
                let prop_s = snap.position(a).distance_m(snap.position(b)) / SPEED_OF_LIGHT_M_S;
                let link = CongestionLink::new(cfg.isl_rate_bps, prop_s, cfg.queue_packets);
                match cfg.ecn_threshold {
                    Some(t) => link.with_ecn(t.min(cfg.queue_packets)),
                    None => link,
                }
            })
            .collect();
        if outcome.hops == 0 {
            outcome.hops = links.len();
            outcome.analytic_packet_s =
                uncontended_packet_transfer_s(cfg.packet_bits, total_packets, &links);
            let des_links: Vec<Link> = links
                .iter()
                .map(|l| Link::new(l.rate_bps, l.prop_delay_s))
                .collect();
            outcome.analytic_message_s = uncontended_transfer_s(size_bytes * 8.0, &des_links);
        }
        outcome.segments = seg + 1;

        let mut net = CongestionNetwork::new();
        let ids: Vec<_> = links.iter().map(|l| net.add_link(*l)).collect();
        if cfg.cross_load_frac > 0.0 {
            for id in &ids {
                net.add_cbr(CbrFlow::with_load(
                    vec![*id],
                    cfg.packet_bits,
                    cfg.cross_load_frac * cfg.isl_rate_bps,
                    0.0,
                    cfg.segment_s,
                ));
            }
        }
        // The sender knows the route it was handed: start at the path
        // bandwidth-delay product (pacing prevents a burst) so an
        // uncontended transfer runs at line rate immediately; carry the
        // halved window across route changes.
        let base_rtt_s: f64 = links
            .iter()
            .map(|l| cfg.packet_bits / l.rate_bps + 2.0 * l.prop_delay_s)
            .sum();
        let bdp_packets = (cfg.isl_rate_bps * base_rtt_s / cfg.packet_bits).max(10.0);
        let init_cwnd = match carried_cwnd {
            Some(w) if route_changed => (w / 2.0).max(1.0),
            Some(w) => w,
            None => bdp_packets,
        };
        let flow = WindowedFlow {
            route: ids,
            packet_bits: cfg.packet_bits,
            packets: remaining,
            start_s: 0.0,
            init_cwnd,
            max_cwnd: (2.0 * bdp_packets).max(init_cwnd),
            algorithm: cfg.algorithm,
            rto_s: None,
            base_rtt_s: Some(base_rtt_s),
            // The sender knows the route's BDP: start in congestion
            // avoidance, not slow start, or the first RTT doubles past
            // 2x BDP and overflows the queue the window was sized for.
            init_ssthresh: Some(init_cwnd),
        };
        let sender = net.add_windowed(flow);
        let done = net.run_while_incomplete(cfg.segment_s);
        let stats = net.windowed_stats(sender);
        outcome.transmissions += stats.transmissions;
        outcome.retransmissions += stats.retransmissions;
        outcome.dropped += stats.dropped;
        outcome.ecn_marked += stats.ecn_marked;
        if done {
            outcome.duration_s =
                Some(elapsed_s + stats.completion_s.expect("completed transfer has a time"));
            return outcome;
        }
        // Segment over: in-flight packets die with the old route.
        outcome.boundary_loss += stats
            .transmissions
            .saturating_sub(stats.arrivals + stats.dropped);
        remaining -= stats.delivered;
        elapsed_s += cfg.segment_s;
        carried_cwnd = Some(stats.final_cwnd);
        prev_route = Some(path.nodes);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn users() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_phase1_conservative())
    }

    #[test]
    fn prediction_intervals_are_ordered_and_disjoint() {
        let s = service();
        let iv = predict_servers(&s, &users(), Policy::MinMax, 0.0, 900.0, 15.0);
        assert!(!iv.is_empty());
        for w in iv.windows(2) {
            assert!(w[0].until_s <= w[1].from_s + 1e-9);
            assert_ne!(w[0].server, w[1].server, "adjacent intervals must differ");
        }
        for i in &iv {
            assert!(i.duration_s() > 0.0);
        }
    }

    #[test]
    fn sticky_prediction_yields_fewer_longer_intervals() {
        let s = service();
        let mm = predict_servers(&s, &users(), Policy::MinMax, 0.0, 1800.0, 15.0);
        let st = predict_servers(&s, &users(), Policy::sticky_default(), 0.0, 1800.0, 15.0);
        assert!(
            st.len() <= mm.len(),
            "sticky {} vs minmax {}",
            st.len(),
            mm.len()
        );
    }

    #[test]
    fn plan_covers_the_requested_depth() {
        let s = service();
        let iv = predict_servers(&s, &users(), Policy::sticky_default(), 0.0, 1800.0, 15.0);
        let sizes = StateSizes {
            session_bytes: 10e6,
            generic_bytes: 2e9,
        };
        let depth = 2.min(iv.len().saturating_sub(1));
        let plan = ReplicationPlan::build(iv.clone(), sizes, 2, 60.0);
        assert_eq!(plan.orders.len(), depth);
        for (o, target_iv) in plan.orders.iter().zip(iv.iter().skip(1)) {
            assert_eq!(o.target, target_iv.server);
            assert!(o.start_s <= o.deadline_s);
            assert_eq!(o.deadline_s, target_iv.from_s);
        }
    }

    #[test]
    fn plan_shrinks_the_critical_path_by_the_generic_share() {
        let sizes = StateSizes {
            session_bytes: 10e6, // 10 MB of player state
            generic_bytes: 2e9,  // 2 GB virtual world
        };
        let plan = ReplicationPlan::build(vec![], sizes, 0, 0.0);
        let links = [Link::new(100e9, 0.003)];
        let (with, without) = plan.handoff_times_s(&links);
        // 10 MB at 100 Gbps ≈ 0.8 ms (+3 ms prop) vs 2.01 GB ≈ 161 ms:
        // the propagation floor keeps the ratio near ~40×.
        assert!(with < 0.005, "with plan: {with} s");
        assert!(without > 0.1, "without plan: {without} s");
        assert!(without / with > 30.0);
    }

    #[test]
    fn prefetch_feasibility_depends_on_lead_time() {
        let iv = vec![
            ServingInterval {
                server: SatId(0),
                from_s: 0.0,
                until_s: 100.0,
            },
            ServingInterval {
                server: SatId(1),
                from_s: 100.0,
                until_s: 250.0,
            },
        ];
        let sizes = StateSizes {
            session_bytes: 1e6,
            generic_bytes: 12.5e9, // 100 Gbit → 1 s at 100 Gbps
        };
        let links = [Link::new(100e9, 0.003)];
        let tight = ReplicationPlan::build(iv.clone(), sizes, 1, 0.5);
        assert!(!tight.prefetches_feasible(&links));
        let relaxed = ReplicationPlan::build(iv, sizes, 1, 5.0);
        assert!(relaxed.prefetches_feasible(&links));
    }

    /// A small config that keeps packet counts tractable in tests.
    fn mig_cfg() -> MigrationNetConfig {
        MigrationNetConfig {
            isl_rate_bps: 1e9,
            ..MigrationNetConfig::default()
        }
    }

    #[test]
    fn migrating_to_the_same_server_is_free() {
        let s = service();
        let out = migrate_via_packets(&s, SatId(5), SatId(5), 0.0, 1e6, &mig_cfg());
        assert_eq!(out.duration_s, Some(0.0));
        assert_eq!(out.transmissions, 0);
        assert_eq!(out.packets, 0);
    }

    #[test]
    fn uncontended_migration_lands_between_the_analytic_bounds() {
        let s = service();
        // 10 MB of session state over an idle route: the measured time
        // must be at least the packetized (pipelined) bound and, with a
        // window sized to the path BDP, close to it — certainly no worse
        // than the message-level store-and-forward bound.
        let out = migrate_via_packets(&s, SatId(0), SatId(3), 0.0, 10e6, &mig_cfg());
        let t = out.duration_s.expect("uncontended transfer completes");
        assert!(out.hops >= 1);
        assert!(
            out.analytic_packet_s <= out.analytic_message_s + 1e-12,
            "packetized bound must not exceed the message bound"
        );
        assert!(
            t >= out.analytic_packet_s - 1e-9,
            "measured {t} below the analytic floor {}",
            out.analytic_packet_s
        );
        assert!(
            t <= out.analytic_packet_s * 1.15 + 1e-6,
            "uncontended measured {t} should track the packetized bound {}",
            out.analytic_packet_s
        );
        assert_eq!(out.retransmissions, 0);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn cross_traffic_slows_migration_monotonically() {
        let s = service();
        let run = |load: f64| {
            let cfg = MigrationNetConfig {
                cross_load_frac: load,
                ..mig_cfg()
            };
            migrate_via_packets(&s, SatId(0), SatId(3), 0.0, 10e6, &cfg)
                .duration_s
                .expect("transfer completes")
        };
        let idle = run(0.0);
        let busy = run(0.85);
        assert!(
            busy > idle,
            "cross-traffic must slow the transfer: {busy} vs {idle}"
        );
    }

    #[test]
    fn contended_migration_sees_congestion_signals() {
        let s = service();
        let cfg = MigrationNetConfig {
            cross_load_frac: 0.9,
            ..mig_cfg()
        };
        let out = migrate_via_packets(&s, SatId(0), SatId(3), 0.0, 20e6, &cfg);
        assert!(out.duration_s.is_some());
        assert!(
            out.ecn_marked > 0 || out.dropped > 0,
            "a 90%-loaded route must produce marks or drops: {out:?}"
        );
    }

    #[test]
    fn migration_outcomes_are_deterministic() {
        let s = service();
        let cfg = MigrationNetConfig {
            cross_load_frac: 0.6,
            ..mig_cfg()
        };
        let a = migrate_via_packets(&s, SatId(0), SatId(7), 120.0, 5e6, &cfg);
        let b = migrate_via_packets(&s, SatId(0), SatId(7), 120.0, 5e6, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn slow_transfers_span_segments_and_survive_route_refreshes() {
        let s = service();
        // Starve the transfer so it cannot finish inside one segment:
        // heavy cross-traffic, short segments, a bigger payload.
        let cfg = MigrationNetConfig {
            isl_rate_bps: 50e6,
            cross_load_frac: 0.9,
            segment_s: 2.0,
            max_segments: 400,
            packet_bits: 48_000.0,
            ..MigrationNetConfig::default()
        };
        let out = migrate_via_packets(&s, SatId(0), SatId(3), 0.0, 20e6, &cfg);
        assert!(
            out.segments > 1,
            "expected a multi-segment transfer, got {out:?}"
        );
        if let Some(t) = out.duration_s {
            assert!(
                t > cfg.segment_s,
                "duration {t} vs segment {}",
                cfg.segment_s
            );
        }
    }

    #[test]
    fn lead_time_never_schedules_before_time_zero() {
        let iv = vec![
            ServingInterval {
                server: SatId(0),
                from_s: 0.0,
                until_s: 30.0,
            },
            ServingInterval {
                server: SatId(1),
                from_s: 30.0,
                until_s: 60.0,
            },
        ];
        let plan = ReplicationPlan::build(
            iv,
            StateSizes {
                session_bytes: 1.0,
                generic_bytes: 1.0,
            },
            1,
            300.0,
        );
        assert_eq!(plan.orders[0].start_s, 0.0);
    }
}
