//! # leo-core
//!
//! The in-orbit computing service layer — the primary contribution of
//! *"In-orbit Computing: An Outlandish thought Experiment?"* (HotNets '20).
//!
//! The paper's thesis: LEO mega-constellations could sell compute on each
//! satellite, the way clouds sell compute in data centers. This crate
//! turns that idea into an API over the `leo-*` substrates:
//!
//! * [`service::InOrbitService`] — the entry point: a constellation plus
//!   its ISL topology, exposing reachable-server queries, network graphs
//!   at any instant, and the selection/session machinery below.
//! * [`access`] — per-latitude access statistics: min/max RTT to
//!   reachable satellite-servers and reachable-server counts over time
//!   (reproduces Figs 1–2).
//! * [`selection`] — meetup-server placement for a user group:
//!   the latency-optimal **MinMax** baseline and the paper's **Sticky**
//!   heuristic (§5: candidates within 10 % of MinMax → the 5 with the
//!   longest time to hand-off → least successor hand-off latency).
//! * [`session`] — the **virtual stationarity** session runner: drives a
//!   user group over time under a selection policy, recording hand-off
//!   events and state-transfer latencies (reproduces Figs 6–7).
//! * [`meetup`] — the Fig 3 scenario: best terrestrial (hybrid) meetup
//!   server via the constellation vs. best in-orbit server.
//! * [`stats`] — empirical CDFs and summaries used by the experiments.
//! * [`replication`] — §5's closing idea: predict future servers and
//!   replicate generic state ahead of the hand-off.
//! * [`capacity`] — per-server slot budgets and latency-first admission
//!   (§3.1's "one satellite may not offer a large amount of compute").
//! * [`orchestrator`] — many concurrent groups sharing the finite
//!   per-satellite capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod capacity;
pub mod failover;
pub mod meetup;
pub mod orchestrator;
pub mod replication;
pub mod selection;
pub mod service;
pub mod session;
pub mod stats;

pub use failover::{FailoverReport, FailureModel};
pub use selection::{nearest_assignments, GroupDelays, Policy, StickyParams};
pub use service::{InOrbitService, SnapshotView};
pub use session::{HandoffEvent, SessionConfig, SessionResult};
pub use stats::Cdf;
