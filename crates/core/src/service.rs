//! The [`InOrbitService`] facade: a constellation operated as a compute
//! provider.

use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::Geodetic;
use leo_net::routing::{self, GroundEndpoint};
use leo_net::visibility::{self, VisibleSat};
use leo_net::{IslTopology, NetworkGraph};

/// A LEO constellation operated as an in-orbit computing provider: every
/// satellite hosts a server, reachable directly from the ground or over
/// inter-satellite links.
///
/// ```
/// use leo_core::InOrbitService;
/// use leo_constellation::presets::starlink_550_only;
/// use leo_geo::Geodetic;
///
/// let service = InOrbitService::new(starlink_550_only());
/// let lagos = Geodetic::ground(6.52, 3.38);
/// let servers = service.reachable_servers(lagos, 0.0);
/// assert!(!servers.is_empty());
/// // Every reachable server is within the paper's 16 ms bound:
/// assert!(servers.iter().all(|s| s.rtt_ms() < 16.5));
/// ```
#[derive(Debug, Clone)]
pub struct InOrbitService {
    constellation: Constellation,
    topology: IslTopology,
}

impl InOrbitService {
    /// Wraps a constellation, building its +Grid ISL topology.
    pub fn new(constellation: Constellation) -> Self {
        let topology = IslTopology::plus_grid(&constellation);
        InOrbitService {
            constellation,
            topology,
        }
    }

    /// The underlying constellation.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The ISL topology.
    pub fn topology(&self) -> &IslTopology {
        &self.topology
    }

    /// Number of satellite-servers (one per satellite — the paper's
    /// "if just one server were added to each of its satellites").
    pub fn num_servers(&self) -> usize {
        self.constellation.num_satellites()
    }

    /// Positions at `t` seconds after the epoch.
    pub fn snapshot(&self, t: f64) -> Snapshot {
        self.constellation.snapshot(t)
    }

    /// Satellite-servers directly reachable from a ground point at `t`.
    pub fn reachable_servers(&self, ground: Geodetic, t: f64) -> Vec<VisibleSat> {
        let snap = self.snapshot(t);
        self.reachable_servers_in(&snap, ground)
    }

    /// Same as [`InOrbitService::reachable_servers`] against a prebuilt
    /// snapshot (avoids re-propagating when the caller already has one).
    pub fn reachable_servers_in(&self, snapshot: &Snapshot, ground: Geodetic) -> Vec<VisibleSat> {
        visibility::visible_sats(
            &self.constellation,
            snapshot,
            ground,
            ground.to_ecef_spherical(),
        )
    }

    /// The full network graph at a snapshot with the given ground
    /// endpoints attached.
    pub fn graph(&self, snapshot: &Snapshot, grounds: &[GroundEndpoint]) -> NetworkGraph {
        routing::build_graph(&self.constellation, &self.topology, snapshot, grounds)
    }

    /// One-way delays (seconds) from each ground endpoint to every
    /// satellite at a snapshot: `result[user][sat_id]`, `INFINITY` when
    /// unreachable. The bulk query behind meetup-server selection.
    pub fn user_delays(&self, snapshot: &Snapshot, users: &[GroundEndpoint]) -> Vec<Vec<f64>> {
        let graph = self.graph(snapshot, users);
        users
            .iter()
            .map(|u| routing::delays_to_all_sats(&graph, &self.constellation, u))
            .collect()
    }

    /// One-way delay (seconds) between two satellite-servers over the ISL
    /// mesh at a snapshot, or `None` when disconnected.
    pub fn server_to_server_delay(&self, snapshot: &Snapshot, a: SatId, b: SatId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let graph = self.graph(snapshot, &[]);
        routing::sat_to_sat(&graph, a, b).map(|p| p.delay_s)
    }

    /// One-way state-migration delay (seconds) between two servers when
    /// the session's ground segment may relay: the shortest path over
    /// ISLs *or* down through any of `grounds` and back up. Successive
    /// meetup-servers both sit above the same user group, so the
    /// via-ground bounce often beats winding across the +Grid between an
    /// ascending and a descending plane.
    pub fn migration_delay(
        &self,
        snapshot: &Snapshot,
        grounds: &[GroundEndpoint],
        a: SatId,
        b: SatId,
    ) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let graph = self.graph(snapshot, grounds);
        routing::sat_to_sat(&graph, a, b).map(|p| p.delay_s)
    }

    /// Direct (single-hop) one-way delays from each user to every
    /// satellite: `result[user][sat]` is the slant-range delay when the
    /// satellite is visible to that user, `INFINITY` otherwise.
    ///
    /// This is the paper's gateway-free session model (§3.2: "user
    /// terminals can communicate directly via satellites without any
    /// gateway intervention") — and it needs no graph construction, so
    /// per-tick session costs stay tiny.
    pub fn user_direct_delays(
        &self,
        snapshot: &Snapshot,
        users: &[GroundEndpoint],
    ) -> Vec<Vec<f64>> {
        users
            .iter()
            .map(|u| {
                let mut row = vec![f64::INFINITY; self.constellation.num_satellites()];
                for v in visibility::visible_sats(&self.constellation, snapshot, u.geodetic, u.ecef)
                {
                    row[v.id.0 as usize] = v.delay_s();
                }
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_550_only())
    }

    #[test]
    fn server_count_equals_satellite_count() {
        let s = service();
        assert_eq!(s.num_servers(), 1584);
    }

    #[test]
    fn reachable_servers_are_nonempty_at_served_latitudes() {
        let s = service();
        let vis = s.reachable_servers(Geodetic::ground(20.0, 30.0), 0.0);
        assert!(!vis.is_empty());
    }

    #[test]
    fn user_delays_shape_matches_users_and_servers() {
        let s = service();
        let users = [
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        ];
        let snap = s.snapshot(0.0);
        let delays = s.user_delays(&snap, &users);
        assert_eq!(delays.len(), 2);
        assert_eq!(delays[0].len(), s.num_servers());
        // Shell is ISL-connected, so every server is reachable.
        assert!(delays.iter().flatten().all(|d| d.is_finite()));
    }

    #[test]
    fn server_to_server_delay_is_symmetric_and_zero_on_diagonal() {
        let s = service();
        let snap = s.snapshot(100.0);
        assert_eq!(s.server_to_server_delay(&snap, SatId(5), SatId(5)), Some(0.0));
        let ab = s.server_to_server_delay(&snap, SatId(0), SatId(700)).unwrap();
        let ba = s.server_to_server_delay(&snap, SatId(700), SatId(0)).unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0);
    }

    #[test]
    fn direct_visibility_gives_single_hop_minimum_delay() {
        let s = service();
        let g = Geodetic::ground(0.0, 0.0);
        let snap = s.snapshot(0.0);
        let direct = s.reachable_servers_in(&snap, g);
        let users = [GroundEndpoint::new(0, g)];
        let delays = &s.user_delays(&snap, &users)[0];
        for v in direct {
            // The graph delay to a directly visible satellite equals the
            // direct slant-range delay (straight line beats any relay).
            assert!((delays[v.id.0 as usize] - v.delay_s()).abs() < 1e-12);
        }
    }
}
