//! The [`InOrbitService`] facade: a constellation operated as a compute
//! provider.

use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::{look, Geodetic};
use leo_net::engine::{with_thread_arena, GroundLinks, IslWeights, RoutingEngine};
use leo_net::fault::{FaultConfig, FaultPlan};
use leo_net::frontier::{self, BandSet, GroundSet, NearestState};
use leo_net::routing::{self, GroundEndpoint};
use leo_net::visibility::{self, VisibleSat};
use leo_net::{IslTopology, NetworkGraph, VisibilityIndex};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Propagated positions at one instant, paired with the spatial
/// visibility index over them and the refreshed ISL routing weights of
/// the service's compiled [`RoutingEngine`]. This is the unit the
/// snapshot cache holds and what the sweep engine in `leo-sim` hands to
/// its workers: one propagation + one index build + one weight refresh,
/// shared by every query at that instant.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    snapshot: Snapshot,
    index: VisibilityIndex,
    engine: Arc<RoutingEngine>,
    isl: IslWeights,
    /// The outage mask at this instant, when the owning service carries
    /// a fault scenario. `None` keeps every code path on the exact
    /// pre-fault route.
    fault: Option<Arc<FaultPlan>>,
}

impl SnapshotView {
    /// Builds a view by propagating `constellation` to `t` and refreshing
    /// `engine`'s edge weights at that instant.
    pub fn build(
        constellation: &Constellation,
        engine: &Arc<RoutingEngine>,
        t: f64,
    ) -> SnapshotView {
        Self::build_with(constellation, engine, t, None)
    }

    /// [`SnapshotView::build`] under an optional fault scenario: the
    /// scenario's plan at `t` masks the refreshed ISL weights and rides
    /// along for the view's visibility and attachment queries.
    pub fn build_with(
        constellation: &Constellation,
        engine: &Arc<RoutingEngine>,
        t: f64,
        faults: Option<&FaultConfig>,
    ) -> SnapshotView {
        let snapshot = constellation.snapshot(t);
        let index = VisibilityIndex::build(constellation, &snapshot);
        match faults {
            None => {
                let isl = engine.refresh(&snapshot);
                SnapshotView {
                    snapshot,
                    index,
                    engine: Arc::clone(engine),
                    isl,
                    fault: None,
                }
            }
            Some(cfg) => {
                let plan = cfg.plan_at(t);
                let mut isl = IslWeights::default();
                engine.refresh_into_masked(&snapshot, &plan, &mut isl);
                SnapshotView {
                    snapshot,
                    index,
                    engine: Arc::clone(engine),
                    isl,
                    fault: Some(Arc::new(plan)),
                }
            }
        }
    }

    /// The outage mask at this instant, when the owning service carries
    /// a fault scenario.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_deref()
    }

    /// The propagated positions.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The latitude-banded visibility index over this snapshot.
    pub fn index(&self) -> &VisibilityIndex {
        &self.index
    }

    /// The compiled routing engine the weights belong to.
    pub fn engine(&self) -> &RoutingEngine {
        &self.engine
    }

    /// The ISL edge weights refreshed for this instant.
    pub fn isl_weights(&self) -> &IslWeights {
        &self.isl
    }

    /// Wires ground endpoints into the routing node space through this
    /// view's visibility index (honoring the view's fault plan, if any).
    /// Attach once per query group, then run any number of delay queries
    /// against the result.
    pub fn attach(&self, grounds: &[GroundEndpoint]) -> GroundLinks {
        match &self.fault {
            Some(plan) => self.engine.attach_masked(&self.index, grounds, plan),
            None => self.engine.attach(&self.index, grounds),
        }
    }

    /// One-way delay between two satellites at this instant — over the
    /// ISL mesh alone, or also via the attached ground endpoints when
    /// `links` is given. Early-exits at the target; `None` when
    /// disconnected.
    pub fn sat_to_sat_delay(&self, links: Option<&GroundLinks>, a: SatId, b: SatId) -> Option<f64> {
        with_thread_arena(|arena| self.engine.sat_to_sat_delay(&self.isl, links, a, b, arena))
    }

    /// One-way delay between two attached ground endpoints (by slot in
    /// the group passed to [`SnapshotView::attach`]), or `None` when
    /// disconnected.
    pub fn ground_to_ground_delay(&self, links: &GroundLinks, a: usize, b: usize) -> Option<f64> {
        with_thread_arena(|arena| {
            self.engine
                .ground_to_ground_delay(&self.isl, links, a, b, arena)
        })
    }

    /// One-way delays from every attached ground endpoint to every
    /// satellite (`result[ground][sat]`, `INFINITY` when unreachable),
    /// all rows sharing this worker's arena.
    pub fn delays_from_all(&self, links: &GroundLinks) -> Vec<Vec<f64>> {
        with_thread_arena(|arena| self.engine.delays_from_all(&self.isl, links, arena))
    }

    /// One settled satellite-major frontier pass over `set`: the nearest
    /// visible (non-faulted) server for every point, in the caller's
    /// point order — bit-identical to running
    /// [`InOrbitService::nearest_servers_view`] over the same points, at
    /// a fraction of the candidate scans. The settled labels stay in
    /// `state` for [`SnapshotView::refresh_nearest_servers`] at the next
    /// instant. Fault-plan aware through the view, like every query.
    pub fn settle_nearest_servers(
        &self,
        set: &GroundSet,
        state: &mut NearestState,
        out: &mut Vec<Option<VisibleSat>>,
    ) {
        frontier::settle_nearest(&self.index, set, self.fault_plan(), state, out);
    }

    /// Warm-started refresh of a frontier settled at an earlier instant:
    /// valid when this view's snapshot differs from the settled one by
    /// exactly the satellites flagged in `moved` (bitwise position
    /// compare) under an equal fault plan — then bit-identical to a cold
    /// [`SnapshotView::settle_nearest_servers`]. Callers are expected to
    /// verify both preconditions and fall back to a cold settle.
    pub fn refresh_nearest_servers(
        &self,
        set: &GroundSet,
        moved: &[bool],
        state: &mut NearestState,
        out: &mut Vec<Option<VisibleSat>>,
    ) {
        frontier::refresh_nearest(&self.index, set, self.fault_plan(), moved, state, out);
    }

    /// Full candidate lists for one latitude band of prepared points via
    /// the settled frontier, as `(caller_point_index, candidates)` pairs
    /// sorted nearest-first with `SatId` tie-breaks — the edge fleet's
    /// per-cell query shape, without a per-cell visibility scan.
    pub fn frontier_visible_lists(&self, band: &BandSet) -> Vec<(u32, Vec<VisibleSat>)> {
        band.visible_lists(&self.index, self.fault_plan())
    }
}

/// How many instants the snapshot cache holds before it is cleared.
/// Sweeps (121 sample times shared across ~91 ground points in Fig 1)
/// fit comfortably; hour-long 1 s-tick sessions stream through, clearing
/// a few times, which costs re-propagation but bounds memory.
const SNAPSHOT_CACHE_CAP: usize = 1024;

/// A LEO constellation operated as an in-orbit computing provider: every
/// satellite hosts a server, reachable directly from the ground or over
/// inter-satellite links.
///
/// Repeated queries at the same instant — the normal shape of every
/// experiment sweep — share one propagated [`SnapshotView`] through an
/// internal cache keyed by the query time, so positions are computed and
/// indexed once per instant no matter how many ground points ask.
///
/// ```
/// use leo_core::InOrbitService;
/// use leo_constellation::presets::starlink_550_only;
/// use leo_geo::Geodetic;
///
/// let service = InOrbitService::new(starlink_550_only());
/// let lagos = Geodetic::ground(6.52, 3.38);
/// let servers = service.reachable_servers(lagos, 0.0);
/// assert!(!servers.is_empty());
/// // Every reachable server is within the paper's 16 ms bound:
/// assert!(servers.iter().all(|s| s.rtt_ms() < 16.5));
/// ```
#[derive(Debug)]
pub struct InOrbitService {
    constellation: Constellation,
    topology: IslTopology,
    engine: Arc<RoutingEngine>,
    faults: Option<Arc<FaultConfig>>,
    cache: Mutex<HashMap<u64, Arc<SnapshotView>>>,
}

impl Clone for InOrbitService {
    fn clone(&self) -> Self {
        InOrbitService {
            constellation: self.constellation.clone(),
            topology: self.topology.clone(),
            engine: Arc::clone(&self.engine),
            faults: self.faults.clone(),
            // Cached views are immutable and Arc-shared; cloning the map
            // is a handful of pointer bumps.
            cache: Mutex::new(self.cache.lock().expect("cache lock").clone()),
        }
    }
}

impl InOrbitService {
    /// Wraps a constellation, building its +Grid ISL topology and
    /// compiling the CSR routing engine over it.
    pub fn new(constellation: Constellation) -> Self {
        Self::with_fault_option(constellation, None)
    }

    /// [`InOrbitService::new`] under a fault scenario: every view the
    /// service builds carries the scenario's outage mask at its instant,
    /// so routing, visibility, selection, and sessions all see dead
    /// satellites, cut ISLs, and rain fades. A scenario with no faults
    /// still routes queries through the masked entry points (which
    /// delegate to the unmasked ones), so outputs stay byte-identical to
    /// a plain service — the property `tests/fault_injection.rs` pins.
    pub fn with_faults(constellation: Constellation, faults: FaultConfig) -> Self {
        Self::with_fault_option(constellation, Some(Arc::new(faults)))
    }

    fn with_fault_option(constellation: Constellation, faults: Option<Arc<FaultConfig>>) -> Self {
        let topology = IslTopology::plus_grid(&constellation);
        let engine = Arc::new(RoutingEngine::compile(&constellation, &topology));
        InOrbitService {
            constellation,
            topology,
            engine,
            faults,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The fault scenario this service runs under, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_deref()
    }

    /// The compiled CSR routing engine (static topology; weights are
    /// refreshed per [`SnapshotView`]).
    pub fn routing_engine(&self) -> &Arc<RoutingEngine> {
        &self.engine
    }

    /// The cached [`SnapshotView`] at `t` seconds after the epoch,
    /// propagating and indexing on first use. Distinct times propagate
    /// concurrently: the cache lock is held only for lookup and insert,
    /// not during propagation.
    pub fn view(&self, t: f64) -> Arc<SnapshotView> {
        let key = t.to_bits();
        if let Some(v) = self.cache.lock().expect("cache lock").get(&key) {
            leo_obs::counter!("service.snapshot_hits").incr();
            return Arc::clone(v);
        }
        let built = Arc::new(SnapshotView::build_with(
            &self.constellation,
            &self.engine,
            t,
            self.faults.as_deref(),
        ));
        let mut cache = self.cache.lock().expect("cache lock");
        if cache.len() >= SNAPSHOT_CACHE_CAP {
            cache.clear();
        }
        // Two threads may race to build the same instant; keep the first
        // insert so all holders share one allocation. Hit/miss is
        // classified by who *inserts* (the race loser counts a hit even
        // though it built), so the totals per instant — one miss, k−1
        // hits for k calls — do not depend on thread interleaving. The
        // CI determinism check relies on this.
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                leo_obs::counter!("service.snapshot_hits").incr();
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                leo_obs::counter!("service.snapshot_misses").incr();
                Arc::clone(e.insert(built))
            }
        }
    }

    /// The underlying constellation.
    pub fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    /// The ISL topology.
    pub fn topology(&self) -> &IslTopology {
        &self.topology
    }

    /// Number of satellite-servers (one per satellite — the paper's
    /// "if just one server were added to each of its satellites").
    pub fn num_servers(&self) -> usize {
        self.constellation.num_satellites()
    }

    /// Positions at `t` seconds after the epoch. Served from the snapshot
    /// cache: repeated calls at one instant cost a copy, not a
    /// re-propagation.
    pub fn snapshot(&self, t: f64) -> Snapshot {
        self.view(t).snapshot().clone()
    }

    /// Satellite-servers directly reachable from a ground point at `t`,
    /// answered through the cached spatial index. Under a fault scenario,
    /// dead satellites and rain-faded access links are excluded.
    pub fn reachable_servers(&self, ground: Geodetic, t: f64) -> Vec<VisibleSat> {
        let view = self.view(t);
        let ge = ground.to_ecef_spherical();
        match view.fault_plan() {
            Some(plan) => view.index().query_masked(ge, plan),
            None => view.index().query(ge),
        }
    }

    /// Same as [`InOrbitService::reachable_servers`] against a prebuilt
    /// snapshot (avoids re-propagating when the caller already has one).
    pub fn reachable_servers_in(&self, snapshot: &Snapshot, ground: Geodetic) -> Vec<VisibleSat> {
        let ge = ground.to_ecef_spherical();
        match self.plan_in(snapshot) {
            Some(plan) => {
                visibility::visible_sats_masked(&self.constellation, snapshot, ground, ge, &plan)
            }
            None => visibility::visible_sats(&self.constellation, snapshot, ground, ge),
        }
    }

    /// The fault plan governing a prebuilt snapshot: the service's
    /// scenario evaluated at the snapshot's own instant. `None` for a
    /// plain service, so unmasked paths stay exactly as before.
    fn plan_in(&self, snapshot: &Snapshot) -> Option<FaultPlan> {
        self.faults
            .as_deref()
            .map(|cfg| cfg.plan_at(snapshot.time_s))
    }

    /// ISL weights for a prebuilt snapshot, masked by the service's fault
    /// scenario when one is set.
    fn refresh_for(&self, snapshot: &Snapshot, plan: Option<&FaultPlan>) -> IslWeights {
        match plan {
            Some(plan) => {
                let mut weights = IslWeights::default();
                self.engine
                    .refresh_into_masked(snapshot, plan, &mut weights);
                weights
            }
            None => self.engine.refresh(snapshot),
        }
    }

    /// Ground attachment for a prebuilt snapshot, honoring the fault
    /// scenario when one is set.
    fn attach_for(
        &self,
        snapshot: &Snapshot,
        grounds: &[GroundEndpoint],
        plan: Option<&FaultPlan>,
    ) -> GroundLinks {
        match plan {
            Some(plan) => {
                self.engine
                    .attach_scan_masked(&self.constellation, snapshot, grounds, plan)
            }
            None => self
                .engine
                .attach_scan(&self.constellation, snapshot, grounds),
        }
    }

    /// The full network graph at a snapshot with the given ground
    /// endpoints attached.
    pub fn graph(&self, snapshot: &Snapshot, grounds: &[GroundEndpoint]) -> NetworkGraph {
        routing::build_graph(&self.constellation, &self.topology, snapshot, grounds)
    }

    /// One-way delays (seconds) from each ground endpoint to every
    /// satellite at a snapshot: `result[user][sat_id]`, `INFINITY` when
    /// unreachable. The bulk query behind meetup-server selection.
    ///
    /// Engine-backed adapter: refreshes ISL weights from `snapshot` on
    /// each call. Sweep code should prefer
    /// [`InOrbitService::user_delays_view`], which reuses the weights
    /// already refreshed in the cached [`SnapshotView`].
    pub fn user_delays(&self, snapshot: &Snapshot, users: &[GroundEndpoint]) -> Vec<Vec<f64>> {
        let plan = self.plan_in(snapshot);
        let weights = self.refresh_for(snapshot, plan.as_ref());
        let links = self.attach_for(snapshot, users, plan.as_ref());
        with_thread_arena(|arena| self.engine.delays_from_all(&weights, &links, arena))
    }

    /// [`InOrbitService::user_delays`] against a prebuilt view: one
    /// shared weight refresh per instant, arena-backed Dijkstra per row.
    pub fn user_delays_view(&self, view: &SnapshotView, users: &[GroundEndpoint]) -> Vec<Vec<f64>> {
        let links = view.attach(users);
        view.delays_from_all(&links)
    }

    /// One-way delay (seconds) between two satellite-servers over the ISL
    /// mesh at a snapshot, or `None` when disconnected.
    pub fn server_to_server_delay(&self, snapshot: &Snapshot, a: SatId, b: SatId) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let plan = self.plan_in(snapshot);
        if let Some(p) = &plan {
            if p.sat_dead(a) || p.sat_dead(b) {
                return None;
            }
        }
        let weights = self.refresh_for(snapshot, plan.as_ref());
        with_thread_arena(|arena| self.engine.sat_to_sat_delay(&weights, None, a, b, arena))
    }

    /// [`InOrbitService::server_to_server_delay`] against a prebuilt
    /// view, reusing its refreshed weights.
    pub fn server_to_server_delay_view(
        &self,
        view: &SnapshotView,
        a: SatId,
        b: SatId,
    ) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        view.sat_to_sat_delay(None, a, b)
    }

    /// One-way state-migration delay (seconds) between two servers when
    /// the session's ground segment may relay: the shortest path over
    /// ISLs *or* down through any of `grounds` and back up. Successive
    /// meetup-servers both sit above the same user group, so the
    /// via-ground bounce often beats winding across the +Grid between an
    /// ascending and a descending plane.
    pub fn migration_delay(
        &self,
        snapshot: &Snapshot,
        grounds: &[GroundEndpoint],
        a: SatId,
        b: SatId,
    ) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let plan = self.plan_in(snapshot);
        if let Some(p) = &plan {
            if p.sat_dead(a) || p.sat_dead(b) {
                return None;
            }
        }
        let weights = self.refresh_for(snapshot, plan.as_ref());
        let links = self.attach_for(snapshot, grounds, plan.as_ref());
        with_thread_arena(|arena| {
            self.engine
                .sat_to_sat_delay(&weights, Some(&links), a, b, arena)
        })
    }

    /// [`InOrbitService::migration_delay`] against a prebuilt view,
    /// reusing its refreshed weights and spatial index.
    pub fn migration_delay_view(
        &self,
        view: &SnapshotView,
        grounds: &[GroundEndpoint],
        a: SatId,
        b: SatId,
    ) -> Option<f64> {
        if a == b {
            return Some(0.0);
        }
        let links = view.attach(grounds);
        view.sat_to_sat_delay(Some(&links), a, b)
    }

    /// Direct (single-hop) one-way delays from each user to every
    /// satellite: `result[user][sat]` is the slant-range delay when the
    /// satellite is visible to that user, `INFINITY` otherwise.
    ///
    /// This is the paper's gateway-free session model (§3.2: "user
    /// terminals can communicate directly via satellites without any
    /// gateway intervention") — and it needs no graph construction, so
    /// per-tick session costs stay tiny.
    pub fn user_direct_delays(
        &self,
        snapshot: &Snapshot,
        users: &[GroundEndpoint],
    ) -> Vec<Vec<f64>> {
        let plan = self.plan_in(snapshot);
        users
            .iter()
            .map(|u| {
                let mut row = vec![f64::INFINITY; self.constellation.num_satellites()];
                let visible = match &plan {
                    Some(plan) => visibility::visible_sats_masked(
                        &self.constellation,
                        snapshot,
                        u.geodetic,
                        u.ecef,
                        plan,
                    ),
                    None => {
                        visibility::visible_sats(&self.constellation, snapshot, u.geodetic, u.ecef)
                    }
                };
                for v in visible {
                    row[v.id.0 as usize] = v.delay_s();
                }
                row
            })
            .collect()
    }

    /// [`InOrbitService::user_direct_delays`] answered through a
    /// [`SnapshotView`]'s spatial index — the per-tick hot path of the
    /// session runner and the Sticky lookahead.
    pub fn user_direct_delays_view(
        &self,
        view: &SnapshotView,
        users: &[GroundEndpoint],
    ) -> Vec<Vec<f64>> {
        users
            .iter()
            .map(|u| {
                let mut row = vec![f64::INFINITY; self.constellation.num_satellites()];
                match view.fault_plan() {
                    Some(plan) => view.index().for_each_visible_masked(u.ecef, plan, |v| {
                        row[v.id.0 as usize] = v.delay_s()
                    }),
                    None => view
                        .index()
                        .for_each_visible(u.ecef, |v| row[v.id.0 as usize] = v.delay_s()),
                }
                row
            })
            .collect()
    }

    /// The nearest visible server for one user at this instant — the
    /// serving layer's primitive query. Smallest slant range wins; exact
    /// range ties (possible for symmetric geometries) break toward the
    /// lower satellite id, so the answer is a pure function of the view
    /// and never depends on scan order. Fault-plan aware through the
    /// view: dead or rain-faded satellites are never returned, and with
    /// an empty plan the answer is identical to the plain service.
    pub fn nearest_server_view(
        &self,
        view: &SnapshotView,
        user: &GroundEndpoint,
    ) -> Option<VisibleSat> {
        let mut best: Option<VisibleSat> = None;
        let mut consider = |v: VisibleSat| {
            let better = match best.as_ref() {
                None => true,
                Some(b) => v.range_m < b.range_m || (v.range_m == b.range_m && v.id.0 < b.id.0),
            };
            if better {
                best = Some(v);
            }
        };
        match view.fault_plan() {
            Some(plan) => view
                .index()
                .for_each_visible_masked(user.ecef, plan, &mut consider),
            None => view.index().for_each_visible(user.ecef, &mut consider),
        }
        best
    }

    /// [`InOrbitService::nearest_server_view`] over a whole user batch,
    /// one entry per user in input order (`None` where no server is
    /// visible). This is what a serve shard runs per snapshot.
    pub fn nearest_servers_view(
        &self,
        view: &SnapshotView,
        users: &[GroundEndpoint],
    ) -> Vec<Option<VisibleSat>> {
        users
            .iter()
            .map(|u| self.nearest_server_view(view, u))
            .collect()
    }

    /// True when the fault plan of `view` rules out `sat` as a server for
    /// this user group: the satellite is dead, or some user's access link
    /// to it is rain-faded shut. Geometric invisibility is *not* a fault —
    /// the session layer already hands off on that — so satellites no user
    /// could see anyway return `false`. Always `false` without a plan,
    /// keeping fault-free sessions byte-identical.
    pub fn fault_masked_server(
        &self,
        view: &SnapshotView,
        users: &[GroundEndpoint],
        sat: SatId,
    ) -> bool {
        let Some(plan) = view.fault_plan() else {
            return false;
        };
        if plan.is_empty() {
            return false;
        }
        if plan.sat_dead(sat) {
            return true;
        }
        let pos = view.snapshot().position(sat);
        let min_el = self.constellation.min_elevation_of(sat);
        users.iter().any(|u| {
            look::is_visible_spherical(u.ecef, pos, min_el) && plan.access_link_masked(u.ecef, pos)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn service() -> InOrbitService {
        InOrbitService::new(presets::starlink_550_only())
    }

    #[test]
    fn server_count_equals_satellite_count() {
        let s = service();
        assert_eq!(s.num_servers(), 1584);
    }

    #[test]
    fn reachable_servers_are_nonempty_at_served_latitudes() {
        let s = service();
        let vis = s.reachable_servers(Geodetic::ground(20.0, 30.0), 0.0);
        assert!(!vis.is_empty());
    }

    #[test]
    fn user_delays_shape_matches_users_and_servers() {
        let s = service();
        let users = [
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        ];
        let snap = s.snapshot(0.0);
        let delays = s.user_delays(&snap, &users);
        assert_eq!(delays.len(), 2);
        assert_eq!(delays[0].len(), s.num_servers());
        // Shell is ISL-connected, so every server is reachable.
        assert!(delays.iter().flatten().all(|d| d.is_finite()));
    }

    #[test]
    fn server_to_server_delay_is_symmetric_and_zero_on_diagonal() {
        let s = service();
        let snap = s.snapshot(100.0);
        assert_eq!(
            s.server_to_server_delay(&snap, SatId(5), SatId(5)),
            Some(0.0)
        );
        let ab = s
            .server_to_server_delay(&snap, SatId(0), SatId(700))
            .unwrap();
        let ba = s
            .server_to_server_delay(&snap, SatId(700), SatId(0))
            .unwrap();
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0);
    }

    #[test]
    fn cached_view_is_shared_and_matches_direct_propagation() {
        let s = service();
        let a = s.view(321.0);
        let b = s.view(321.0);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let fresh = s.constellation().snapshot(321.0);
        assert_eq!(a.snapshot().len(), fresh.len());
        for (id, pos) in fresh.iter() {
            assert_eq!(a.snapshot().position(id), pos);
        }
    }

    #[test]
    fn indexed_direct_delays_equal_brute_force() {
        let s = service();
        let users = [
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(-33.9, 18.4)),
        ];
        let view = s.view(777.0);
        let brute = s.user_direct_delays(view.snapshot(), &users);
        let indexed = s.user_direct_delays_view(&view, &users);
        assert_eq!(brute, indexed);
    }

    #[test]
    fn clones_share_cached_views() {
        let s = service();
        let a = s.view(10.0);
        let s2 = s.clone();
        let b = s2.view(10.0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn faultless_fault_config_changes_nothing() {
        let plain = service();
        let faulted =
            InOrbitService::with_faults(presets::starlink_550_only(), FaultConfig::none());
        let g = Geodetic::ground(6.52, 3.38);
        assert_eq!(
            plain.reachable_servers(g, 60.0),
            faulted.reachable_servers(g, 60.0)
        );
        let users = [GroundEndpoint::new(0, g)];
        let snap = plain.snapshot(60.0);
        assert_eq!(
            plain.user_delays(&snap, &users),
            faulted.user_delays(&faulted.snapshot(60.0), &users)
        );
        assert!(faulted.view(60.0).fault_plan().unwrap().is_empty());
    }

    #[test]
    fn dead_satellite_is_excluded_from_every_query() {
        let plain = service();
        let g = Geodetic::ground(0.0, 0.0);
        let victim = plain.reachable_servers(g, 0.0)[0].id;
        let mut deaths = vec![f64::INFINITY; victim.0 as usize + 1];
        deaths[victim.0 as usize] = 0.0;
        let cfg = FaultConfig {
            schedule: Some(leo_net::FailureSchedule::from_death_times(deaths)),
            ..FaultConfig::none()
        };
        let s = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
        assert!(s.reachable_servers(g, 0.0).iter().all(|v| v.id != victim));
        let snap = s.snapshot(0.0);
        assert!(s
            .reachable_servers_in(&snap, g)
            .iter()
            .all(|v| v.id != victim));
        assert_eq!(s.server_to_server_delay(&snap, SatId(0), victim), None);
        let users = [GroundEndpoint::new(0, g)];
        let delays = s.user_delays(&snap, &users);
        assert!(delays[0][victim.0 as usize].is_infinite());
        let direct = s.user_direct_delays_view(&s.view(0.0), &users);
        assert!(direct[0][victim.0 as usize].is_infinite());
        assert!(s.fault_masked_server(&s.view(0.0), &users, victim));
        assert!(!plain.fault_masked_server(&plain.view(0.0), &users, victim));
    }

    #[test]
    fn total_ground_outage_masks_every_server_in_view() {
        let mut cfg = FaultConfig::none();
        cfg.cut_links.push((SatId(0), SatId(1)));
        let s = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
        let view = s.view(0.0);
        let g = Geodetic::ground(0.0, 0.0);
        let users = [GroundEndpoint::new(0, g)];
        // A cut ISL is not an access fault: no server is masked for users.
        let up = s.user_direct_delays_view(&view, &users);
        let plain = service();
        assert_eq!(up, plain.user_direct_delays_view(&plain.view(0.0), &users));
        // But the cut edge itself is gone from the mesh.
        let before = plain
            .server_to_server_delay(&plain.snapshot(0.0), SatId(0), SatId(1))
            .unwrap();
        let after = s
            .server_to_server_delay(&s.snapshot(0.0), SatId(0), SatId(1))
            .unwrap();
        assert!(after >= before);
    }

    #[test]
    fn direct_visibility_gives_single_hop_minimum_delay() {
        let s = service();
        let g = Geodetic::ground(0.0, 0.0);
        let snap = s.snapshot(0.0);
        let direct = s.reachable_servers_in(&snap, g);
        let users = [GroundEndpoint::new(0, g)];
        let delays = &s.user_delays(&snap, &users)[0];
        for v in direct {
            // The graph delay to a directly visible satellite equals the
            // direct slant-range delay (straight line beats any relay).
            assert!((delays[v.id.0 as usize] - v.delay_s()).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_server_is_the_smallest_visible_range() {
        let s = service();
        let view = s.view(150.0);
        let user = GroundEndpoint::new(0, Geodetic::ground(12.0, 77.0));
        let nearest = s.nearest_server_view(&view, &user).unwrap();
        let all = s.reachable_servers_in(view.snapshot(), user.geodetic);
        let best = all.iter().map(|v| v.range_m).fold(f64::INFINITY, f64::min);
        assert_eq!(nearest.range_m, best);
        // Batched answers equal the one-by-one answers, in input order.
        let users = [
            user,
            GroundEndpoint::new(1, Geodetic::ground(-26.2, 28.0)),
            GroundEndpoint::new(2, Geodetic::ground(89.0, 0.0)),
        ];
        let batch = s.nearest_servers_view(&view, &users);
        for (u, got) in users.iter().zip(&batch) {
            assert_eq!(*got, s.nearest_server_view(&view, u));
        }
    }

    #[test]
    fn nearest_server_skips_a_dead_satellite() {
        let plain = service();
        let g = Geodetic::ground(0.0, 0.0);
        let user = GroundEndpoint::new(0, g);
        let victim = plain
            .nearest_server_view(&plain.view(0.0), &user)
            .unwrap()
            .id;
        let mut deaths = vec![f64::INFINITY; victim.0 as usize + 1];
        deaths[victim.0 as usize] = 0.0;
        let cfg = FaultConfig {
            schedule: Some(leo_net::FailureSchedule::from_death_times(deaths)),
            ..FaultConfig::none()
        };
        let s = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
        let next = s.nearest_server_view(&s.view(0.0), &user).unwrap();
        assert_ne!(next.id, victim, "a dead satellite must never serve");
    }

    fn spread_users(n: usize) -> Vec<GroundEndpoint> {
        (0..n)
            .map(|i| {
                GroundEndpoint::new(
                    i as u32,
                    Geodetic::ground(
                        -54.0 + (i as f64 * 1.37) % 108.0,
                        -180.0 + (i as f64 * 11.31) % 360.0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn settled_frontier_equals_per_user_scans_through_the_view() {
        let s = service();
        let users = spread_users(400);
        let set = GroundSet::build(&users.iter().map(|u| u.ecef).collect::<Vec<_>>());
        for t in [0.0, 333.0] {
            let view = s.view(t);
            let legacy = s.nearest_servers_view(&view, &users);
            let mut state = NearestState::default();
            let mut settled = Vec::new();
            view.settle_nearest_servers(&set, &mut state, &mut settled);
            assert_eq!(legacy.len(), settled.len());
            for (j, (a, b)) in legacy.iter().zip(&settled).enumerate() {
                match (a, b) {
                    (None, None) => {}
                    (Some(p), Some(q)) => {
                        assert_eq!(p.id, q.id, "user {j}");
                        assert_eq!(p.range_m.to_bits(), q.range_m.to_bits(), "user {j}");
                    }
                    _ => panic!("user {j}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn settled_frontier_equals_per_user_scans_under_faults() {
        let mut deaths = vec![f64::INFINITY; 300];
        for d in deaths.iter_mut().step_by(4) {
            *d = 0.0;
        }
        let cfg = FaultConfig {
            schedule: Some(leo_net::FailureSchedule::from_death_times(deaths)),
            ..FaultConfig::none()
        };
        let s = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
        let users = spread_users(300);
        let set = GroundSet::build(&users.iter().map(|u| u.ecef).collect::<Vec<_>>());
        let view = s.view(120.0);
        assert!(!view.fault_plan().unwrap().is_empty());
        let legacy = s.nearest_servers_view(&view, &users);
        let mut state = NearestState::default();
        let mut settled = Vec::new();
        view.settle_nearest_servers(&set, &mut state, &mut settled);
        assert_eq!(legacy, settled);
        for v in settled.iter().flatten() {
            assert!(!view.fault_plan().unwrap().sat_dead(v.id));
        }
    }

    #[test]
    fn frontier_visible_lists_match_reachable_servers() {
        let s = service();
        let users = spread_users(120);
        let pts: Vec<_> = users.iter().map(|u| u.ecef).collect();
        let banded = leo_net::BandedGroundSets::build(&pts, 4.0);
        let view = s.view(200.0);
        let mut got: Vec<Option<Vec<VisibleSat>>> = vec![None; users.len()];
        for band in banded.bands() {
            for (g, list) in view.frontier_visible_lists(band) {
                got[g as usize] = Some(list);
            }
        }
        for (u, g) in users.iter().zip(got) {
            let mut want = s.reachable_servers_in(view.snapshot(), u.geodetic);
            want.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
            assert_eq!(g.expect("every user banded"), want);
        }
    }

    #[test]
    fn empty_fault_plan_gives_identical_nearest_servers() {
        let plain = service();
        let faulted =
            InOrbitService::with_faults(presets::starlink_550_only(), FaultConfig::none());
        let users: Vec<GroundEndpoint> = (0..8)
            .map(|i| GroundEndpoint::new(i, Geodetic::ground(i as f64 * 9.0 - 30.0, 17.0)))
            .collect();
        assert_eq!(
            plain.nearest_servers_view(&plain.view(45.0), &users),
            faulted.nearest_servers_view(&faulted.view(45.0), &users),
        );
    }
}
