//! The Fig 3 meetup-server comparison: best terrestrial data center
//! reached *through* the constellation ("hybrid") vs. the best in-orbit
//! satellite-server.
//!
//! §3.2 of the paper, West Africa example: three users in Abuja, Yaoundé,
//! and a third West African location need a meetup server. The nearest
//! Azure regions are in South Africa; connecting to them over Starlink
//! costs 46 ms for the worst-off user, while an in-orbit server on the
//! same constellation costs 16 ms — "an almost 3× reduction". A second
//! scenario on Kuiper (users at South Central US, Brazil South, Australia
//! East) yields 97 ms vs 66 ms.

use crate::selection::GroupDelays;
use crate::service::InOrbitService;
use leo_constellation::SatId;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// A candidate terrestrial hosting site (e.g. an Azure region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TerrestrialSite {
    /// Site name (e.g. `"South Africa North"`).
    pub name: String,
    /// Ground position.
    pub position: Geodetic,
}

/// The outcome of a meetup comparison at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeetupComparison {
    /// Best terrestrial site (by group max RTT over the constellation).
    pub best_site: String,
    /// Group RTT to that site (max over users), milliseconds.
    pub hybrid_rtt_ms: f64,
    /// Best in-orbit server.
    pub in_orbit_server: SatId,
    /// Group RTT to the in-orbit server, milliseconds.
    pub in_orbit_rtt_ms: f64,
}

impl MeetupComparison {
    /// How many times lower the in-orbit latency is (paper: ~3× for West
    /// Africa, ~1.5× for the tri-continent scenario).
    pub fn improvement_factor(&self) -> f64 {
        self.hybrid_rtt_ms / self.in_orbit_rtt_ms
    }
}

/// Group RTT (max over users) to one terrestrial site through the
/// constellation at time `t`, or `None` when some user cannot reach it.
pub fn hybrid_group_rtt_ms(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    site: &TerrestrialSite,
    t: f64,
) -> Option<f64> {
    let view = service.view(t);
    // The site joins the routing node space as one more ground endpoint;
    // its index must not collide with the users'.
    let site_index = users.iter().map(|u| u.index).max().unwrap_or(0) + 1;
    let site_ep = GroundEndpoint::new(site_index, site.position);
    let mut grounds = users.to_vec();
    grounds.push(site_ep);
    let links = view.attach(&grounds);
    let site_slot = grounds.len() - 1;
    let mut worst: f64 = 0.0;
    for (u_slot, _) in users.iter().enumerate() {
        let delay_s = view.ground_to_ground_delay(&links, u_slot, site_slot)?;
        worst = worst.max(2.0 * delay_s * 1e3);
    }
    Some(worst)
}

/// Full comparison: the best terrestrial site from `sites` vs. the best
/// in-orbit server, at time `t`. Returns `None` when either option is
/// entirely unreachable.
pub fn compare(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    sites: &[TerrestrialSite],
    t: f64,
) -> Option<MeetupComparison> {
    assert!(!users.is_empty(), "no users");
    let best_site = sites
        .iter()
        .filter_map(|s| hybrid_group_rtt_ms(service, users, s, t).map(|r| (s, r)))
        .min_by(|a, b| a.1.total_cmp(&b.1))?;

    // Prefer the direct model (every user sees the meetup satellite — the
    // paper's West Africa setting); fall back to ISL-relayed paths for
    // dispersed groups no single satellite covers (the tri-continent
    // Kuiper scenario).
    let direct = GroupDelays::direct(service, users, t);
    let (sat, delay) = match direct.minmax() {
        Some(pick) => pick,
        None => GroupDelays::compute(service, users, t).minmax()?,
    };

    Some(MeetupComparison {
        best_site: best_site.0.name.clone(),
        hybrid_rtt_ms: best_site.1,
        in_orbit_server: sat,
        in_orbit_rtt_ms: 2.0 * delay * 1e3,
    })
}

/// The Azure catalog as terrestrial sites.
pub fn azure_sites() -> Vec<TerrestrialSite> {
    leo_cities::azure_regions()
        .iter()
        .map(|r| TerrestrialSite {
            name: r.name.to_string(),
            position: r.geodetic(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn west_africa() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)), // Abuja
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)), // Yaoundé
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)), // Lagos
        ]
    }

    #[test]
    fn west_africa_prefers_in_orbit_by_a_wide_margin() {
        // The paper's headline Fig 3 numbers: 46 ms hybrid vs 16 ms
        // in-orbit (~3×). Exact values depend on the constellation phase;
        // assert the bands and the ordering.
        let service = InOrbitService::new(presets::starlink_phase1());
        let cmp = compare(&service, &west_africa(), &azure_sites(), 0.0).expect("served");
        assert!(
            (4.0..22.0).contains(&cmp.in_orbit_rtt_ms),
            "in-orbit {} ms (paper: 16)",
            cmp.in_orbit_rtt_ms
        );
        assert!(
            (25.0..70.0).contains(&cmp.hybrid_rtt_ms),
            "hybrid {} ms (paper: 46)",
            cmp.hybrid_rtt_ms
        );
        assert!(
            cmp.improvement_factor() > 2.0,
            "improvement {}",
            cmp.improvement_factor()
        );
        assert!(
            cmp.best_site.contains("South Africa") || cmp.best_site.contains("Europe"),
            "unexpected best site {}",
            cmp.best_site
        );
    }

    #[test]
    fn tri_continent_group_on_kuiper_still_prefers_orbit() {
        // Second Fig 3 scenario: users at three Azure metros — South
        // Central US, Brazil South, Australia East — on Kuiper: 97 ms
        // hybrid vs 66 ms in-orbit.
        let service = InOrbitService::new(presets::kuiper());
        let users = vec![
            GroundEndpoint::new(0, Geodetic::ground(29.42, -98.49)), // San Antonio
            GroundEndpoint::new(1, Geodetic::ground(-23.55, -46.63)), // São Paulo
            GroundEndpoint::new(2, Geodetic::ground(-33.87, 151.21)), // Sydney
        ];
        let cmp = compare(&service, &users, &azure_sites(), 0.0).expect("served");
        assert!(
            cmp.in_orbit_rtt_ms < cmp.hybrid_rtt_ms,
            "in-orbit {} vs hybrid {}",
            cmp.in_orbit_rtt_ms,
            cmp.hybrid_rtt_ms
        );
        assert!(
            (50.0..90.0).contains(&cmp.in_orbit_rtt_ms),
            "in-orbit {} ms (paper: 66)",
            cmp.in_orbit_rtt_ms
        );
        assert!(
            (80.0..130.0).contains(&cmp.hybrid_rtt_ms),
            "hybrid {} ms (paper: 97)",
            cmp.hybrid_rtt_ms
        );
    }

    #[test]
    fn hybrid_rtt_to_a_colocated_site_is_small() {
        // A user group next to a data center: the hybrid path is a short
        // satellite bounce.
        let service = InOrbitService::new(presets::starlink_550_only());
        let users = vec![GroundEndpoint::new(0, Geodetic::ground(29.5, -98.4))];
        let site = TerrestrialSite {
            name: "South Central US".into(),
            position: Geodetic::ground(29.42, -98.49),
        };
        let rtt = hybrid_group_rtt_ms(&service, &users, &site, 0.0).expect("reachable");
        assert!(rtt < 12.0, "bounce rtt {rtt}");
    }

    #[test]
    fn relayed_in_orbit_optimum_never_loses_to_hybrid() {
        // Over the full network graph the in-orbit optimum can match but
        // never exceed the hybrid optimum: the path to any terrestrial
        // site passes through some satellite, and stopping at that
        // satellite is never worse. (The *direct* model used by
        // `compare` can be slightly worse than a hybrid bounce when a
        // data center sits between the users — which is exactly when
        // in-orbit compute isn't needed.)
        let service = InOrbitService::new(presets::starlink_550_only());
        for (lat, lon) in [(40.0, -100.0), (-10.0, 25.0), (50.0, 10.0)] {
            let users = vec![
                GroundEndpoint::new(0, Geodetic::ground(lat, lon)),
                GroundEndpoint::new(1, Geodetic::ground(lat - 4.0, lon + 5.0)),
            ];
            let relayed = GroupDelays::compute(&service, &users, 0.0);
            let Some((_, best)) = relayed.minmax() else {
                continue;
            };
            let in_orbit_rtt = 2.0 * best * 1e3;
            for site in azure_sites().iter().take(8) {
                if let Some(hybrid) = hybrid_group_rtt_ms(&service, &users, site, 0.0) {
                    assert!(
                        in_orbit_rtt <= hybrid + 1e-9,
                        "at ({lat},{lon}) vs {}: {in_orbit_rtt} > {hybrid}",
                        site.name
                    );
                }
            }
        }
    }

    #[test]
    fn azure_sites_cover_the_catalog() {
        assert_eq!(azure_sites().len(), leo_cities::azure_regions().len());
    }
}
