//! Failure injection: sessions on an unreliable fleet.
//!
//! §4 ("Life-cycle"): *"if a satellite-server malfunctions before its
//! expected life, unlike in a data center, it would not be replaced
//! immediately."* §5's virtual stationarity must therefore survive not
//! just orbital hand-offs but *server deaths mid-session*. This module
//! injects deterministic exponential failures into the session runner
//! and measures the damage: extra hand-offs, and whether the abstraction
//! ever stalls.
//!
//! Failure times are sampled per satellite from `Exp(λ)` using the same
//! SplitMix64 generator as every other stochastic piece of the
//! reproduction, keyed by `(seed, satellite id)` — so runs are exactly
//! repeatable and adding satellites does not reshuffle existing draws.

use crate::selection::{sticky_select, GroupDelays, Policy};
use crate::service::InOrbitService;
use crate::session::{HandoffEvent, SessionConfig, SessionResult};
use leo_cities::synth::SplitMix64;
use leo_constellation::SatId;
use leo_net::routing::GroundEndpoint;
use serde::{Deserialize, Serialize};

/// Server failure model for a session run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Annual failure rate λ, fraction per year. Real servers are a few
    /// percent; tests exaggerate to make failures land inside short
    /// sessions.
    pub annual_failure_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl FailureModel {
    /// The deterministic failure time of a satellite's server, in
    /// seconds after the epoch (`INFINITY` effectively, when the draw
    /// lands beyond any simulated horizon).
    pub fn failure_time_s(&self, sat: SatId) -> f64 {
        if self.annual_failure_rate <= 0.0 {
            return f64::INFINITY;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ (0x9E37_79B9 ^ u64::from(sat.0)).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        // Exponential draw: −ln(U)/λ years → seconds.
        let u = rng.next_f64().max(1e-18);
        let years = -u.ln() / self.annual_failure_rate;
        years * 365.25 * 86_400.0
    }

    /// True when the satellite's server is still alive at time `t`.
    pub fn alive(&self, sat: SatId, t: f64) -> bool {
        t < self.failure_time_s(sat)
    }

    /// Lowers this model into a [`leo_net::FailureSchedule`] over the
    /// first `num_sats` satellites — the bridge from the session-layer
    /// failure model to the network-layer fault plan. The same seeded
    /// draws that kill servers in [`run_session_with_failures`] then also
    /// mask them out of routing, visibility, and attachment when the
    /// schedule is handed to
    /// [`InOrbitService::with_faults`](crate::InOrbitService::with_faults).
    pub fn schedule(&self, num_sats: usize) -> leo_net::FailureSchedule {
        leo_net::FailureSchedule::from_death_times(
            (0..num_sats)
                .map(|i| self.failure_time_s(SatId(i as u32)))
                .collect(),
        )
    }
}

/// What failure injection did to a session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Hand-offs forced by a server dying under the session (as opposed
    /// to orbital motion).
    pub failure_handoffs: u32,
    /// Ticks where the whole group was servable geometrically but every
    /// candidate server was dead.
    pub dead_ticks: u32,
}

/// Runs a session on a fleet with failing servers. Mirrors
/// [`crate::session::run_session`] but masks dead satellites out of the
/// candidate set; a Sticky selection that lands on a dead satellite
/// falls back to the masked optimum.
pub fn run_session_with_failures(
    service: &InOrbitService,
    users: &[GroundEndpoint],
    policy: Policy,
    config: &SessionConfig,
    failures: &FailureModel,
) -> (SessionResult, FailoverReport) {
    assert!(config.tick_s > 0.0, "tick must be positive");
    let mut events = Vec::new();
    let mut rtt_samples = Vec::new();
    let mut current: Option<SatId> = None;
    let mut report = FailoverReport {
        failure_handoffs: 0,
        dead_ticks: 0,
    };

    let ticks = (config.duration_s / config.tick_s).round() as usize;
    for i in 0..=ticks {
        let t = config.start_s + i as f64 * config.tick_s;
        let mut delays = GroupDelays::direct(service, users, t);
        let geometrically_servable = delays.minmax().is_some();
        // Mask dead servers.
        for sat in 0..delays.len() {
            let id = SatId(sat as u32);
            if delays.delay_s(id).is_finite() && !failures.alive(id, t) {
                delays.exclude(id);
            }
        }
        let Some((optimal, _)) = delays.minmax() else {
            if geometrically_servable {
                report.dead_ticks += 1;
            }
            current = None;
            continue;
        };

        // Did the incumbent just die under us? (It may lose visibility at
        // the same instant; the death still forced the hand-off.)
        let incumbent_died = current.is_some_and(|cur| !failures.alive(cur, t));

        let desired = match policy {
            Policy::MinMax => optimal,
            Policy::Sticky(params) => match current {
                Some(cur) if delays.delay_s(cur).is_finite() => cur,
                _ => match sticky_select(service, users, t, &params) {
                    // Sticky's internal lookahead is failure-blind; reject
                    // a pick that is already dead.
                    Some(pick) if delays.delay_s(pick).is_finite() => pick,
                    _ => optimal,
                },
            },
        };

        if current != Some(desired) {
            if incumbent_died {
                report.failure_handoffs += 1;
            }
            let transfer_latency_ms = current.and_then(|old| {
                // A dead server cannot push its state; the successor
                // restores from the ground segment instead — same path
                // model, but only when the old server is alive.
                if failures.alive(old, t) {
                    let view = service.view(t);
                    service
                        .migration_delay_view(&view, users, old, desired)
                        .map(|d| d * 1e3)
                } else {
                    None
                }
            });
            events.push(HandoffEvent {
                time_s: t,
                from: current,
                to: desired,
                transfer_latency_ms,
                group_rtt_ms: delays.rtt_ms(desired),
            });
            current = Some(desired);
        }
        rtt_samples.push((t, delays.rtt_ms(desired)));
    }

    (
        SessionResult {
            policy,
            events,
            rtt_samples,
            end_s: config.start_s + config.duration_s,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn users() -> Vec<GroundEndpoint> {
        vec![
            GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
            GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
            GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
        ]
    }

    fn config() -> SessionConfig {
        SessionConfig {
            start_s: 0.0,
            duration_s: 900.0,
            tick_s: 15.0,
        }
    }

    #[test]
    fn failure_times_are_deterministic_and_exponentialish() {
        let m = FailureModel {
            annual_failure_rate: 0.1,
            seed: 7,
        };
        assert_eq!(m.failure_time_s(SatId(3)), m.failure_time_s(SatId(3)));
        assert_ne!(m.failure_time_s(SatId(3)), m.failure_time_s(SatId(4)));
        // Mean of Exp(0.1/yr) is 10 years; sample mean over many sats
        // should land within a factor of ~1.5.
        let n = 2000;
        let mean_years: f64 = (0..n)
            .map(|i| m.failure_time_s(SatId(i)) / (365.25 * 86_400.0))
            .sum::<f64>()
            / n as f64;
        assert!((6.5..15.0).contains(&mean_years), "mean {mean_years}");
    }

    #[test]
    fn schedule_bridge_agrees_with_the_model() {
        let m = FailureModel {
            annual_failure_rate: 500.0,
            seed: 9,
        };
        let sched = m.schedule(64);
        assert_eq!(sched.len(), 64);
        for i in 0..64u32 {
            let id = SatId(i);
            assert_eq!(sched.death_time_s(id), m.failure_time_s(id));
            for t in [0.0, 3600.0, 86_400.0, 1e9] {
                assert_eq!(sched.alive(id, t), m.alive(id, t), "sat {i} at t={t}");
            }
        }
        // Out-of-range satellites default to alive, matching a fleet that
        // grew after the schedule was drawn.
        assert!(sched.alive(SatId(64), 1e12));
    }

    #[test]
    fn zero_rate_never_fails() {
        let m = FailureModel {
            annual_failure_rate: 0.0,
            seed: 1,
        };
        assert!(m.alive(SatId(0), 1e12));
    }

    #[test]
    fn realistic_failure_rates_leave_short_sessions_untouched() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let m = FailureModel {
            annual_failure_rate: 0.08,
            seed: 42,
        };
        let (with, report) =
            run_session_with_failures(&service, &users(), Policy::MinMax, &config(), &m);
        let without = crate::session::run_session(&service, &users(), Policy::MinMax, &config());
        // At 8 %/yr, a 15-minute session sees essentially no deaths.
        assert_eq!(report.failure_handoffs, 0);
        assert_eq!(report.dead_ticks, 0);
        assert_eq!(with.handoff_count(), without.handoff_count());
    }

    #[test]
    fn absurd_failure_rates_disrupt_but_do_not_stall_the_session() {
        // λ = 2000/yr → mean server life ≈ 4.4 h; several of the ~25
        // commonly-visible servers die during the session, yet the dense
        // shell keeps the group served.
        let service = InOrbitService::new(presets::starlink_550_only());
        let m = FailureModel {
            annual_failure_rate: 2000.0,
            seed: 42,
        };
        let (result, report) =
            run_session_with_failures(&service, &users(), Policy::MinMax, &config(), &m);
        assert!(result.rtt_samples.len() > 50, "session mostly served");
        assert_eq!(report.dead_ticks, 0, "no full outage at this density");
        // The RTT stays within the direct-visibility envelope even with
        // the best servers dying.
        for &(_, rtt) in &result.rtt_samples {
            assert!(rtt < 16.5);
        }
    }

    #[test]
    fn total_fleet_death_stalls_service_and_counts_dead_ticks() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let m = FailureModel {
            annual_failure_rate: 1e9, // everything dead at t ≈ 0⁺
            seed: 3,
        };
        let (result, report) =
            run_session_with_failures(&service, &users(), Policy::MinMax, &config(), &m);
        assert!(report.dead_ticks > 50, "dead ticks {}", report.dead_ticks);
        assert!(result.rtt_samples.len() < 5);
    }

    #[test]
    fn sticky_survives_failures_of_its_held_server() {
        let service = InOrbitService::new(presets::starlink_550_only());
        let m = FailureModel {
            annual_failure_rate: 2000.0,
            seed: 11,
        };
        let (result, _) =
            run_session_with_failures(&service, &users(), Policy::sticky_default(), &config(), &m);
        // Every held server in the event log must have been alive when
        // acquired.
        for e in &result.events {
            assert!(
                m.alive(e.to, e.time_s),
                "acquired a dead server at {}",
                e.time_s
            );
        }
    }
}
