//! Edge-case backfill for [`leo_core::capacity`] and
//! [`leo_core::orchestrator`] — the entry points the `leo-edge`
//! workload layer builds on. Zero-capacity servers, single-group
//! fleets, and all-satellites-dead services were previously untested.

use leo_constellation::{presets, SatId};
use leo_core::capacity::{admit_batch, CapacityPool, PlacementOutcome, PlacementRequest};
use leo_core::orchestrator::{orchestrate, GroupSpec, OrchestratorConfig};
use leo_core::InOrbitService;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_net::{FailureSchedule, FaultConfig};

fn service() -> InOrbitService {
    InOrbitService::new(presets::starlink_550_only())
}

/// A service whose every satellite is dead from t=0.
fn dead_service() -> InOrbitService {
    let constellation = presets::starlink_550_only();
    let n = constellation.num_satellites();
    let cfg = FaultConfig {
        schedule: Some(FailureSchedule::from_death_times(vec![0.0; n])),
        ..FaultConfig::none()
    };
    InOrbitService::with_faults(constellation, cfg)
}

fn request(slots: u32) -> PlacementRequest {
    PlacementRequest {
        location: Geodetic::ground(10.0, 10.0),
        slots,
        max_rtt_ms: 16.0,
    }
}

fn group(name: &str, slots: u32) -> GroupSpec {
    GroupSpec {
        name: name.into(),
        users: vec![
            GroundEndpoint::new(0, Geodetic::ground(10.0, 10.0)),
            GroundEndpoint::new(1, Geodetic::ground(11.0, 12.0)),
        ],
        slots,
    }
}

fn config(slots_per_server: u32) -> OrchestratorConfig {
    OrchestratorConfig {
        slots_per_server,
        start_s: 0.0,
        duration_s: 300.0,
        tick_s: 60.0,
    }
}

// ------------------------------------------------- zero-capacity servers

#[test]
#[should_panic(expected = "servers need at least one slot")]
fn zero_capacity_pool_is_rejected_loudly() {
    let s = service();
    let _ = CapacityPool::new(&s, 0.0, 0);
}

#[test]
#[should_panic(expected = "slots_per_server > 0")]
fn zero_capacity_orchestrator_is_rejected_loudly() {
    let s = service();
    orchestrate(&s, &[group("g", 1)], &config(0));
}

#[test]
fn zero_slot_requests_admit_without_consuming_capacity() {
    // A request for zero slots is vacuous but legal: it places on the
    // nearest server and holds nothing.
    let s = service();
    let mut pool = CapacityPool::new(&s, 0.0, 1);
    let outcome = pool.place(&request(0));
    assert!(outcome.is_placed());
    assert_eq!(pool.used_slots(), 0);
    let outcome = pool.place(&request(1));
    assert!(outcome.is_placed(), "real capacity unaffected");
}

#[test]
fn oversized_single_request_exhausts_without_placing() {
    // One request bigger than any single server: every server is
    // reachable yet none can host — CapacityExhausted, not NoServer.
    let s = service();
    let mut pool = CapacityPool::new(&s, 0.0, 4);
    assert_eq!(pool.place(&request(5)), PlacementOutcome::CapacityExhausted);
    assert_eq!(pool.used_slots(), 0, "failed placement holds nothing");
}

// ------------------------------------------------- single-function fleet

#[test]
fn single_group_single_tick_fleet_serves_and_releases_nothing_extra() {
    let s = service();
    let cfg = OrchestratorConfig {
        slots_per_server: 1,
        start_s: 0.0,
        duration_s: 0.0, // a single tick
        tick_s: 60.0,
    };
    let r = orchestrate(&s, &[group("solo", 1)], &cfg);
    assert_eq!(r.groups.len(), 1);
    assert_eq!(r.groups[0].served_ticks, 1);
    assert_eq!(r.groups[0].blocked_ticks, 0);
    assert_eq!(r.groups[0].handoffs, 0, "one tick cannot hand off");
    assert_eq!(r.peak_slots_in_use, 1);
    assert!(r.groups[0].mean_rtt_ms.is_finite());
    assert_eq!(r.service_ratio(), 1.0);
}

#[test]
fn single_group_needing_the_whole_server_still_places() {
    let s = service();
    let r = orchestrate(&s, &[group("greedy", 8)], &config(8));
    assert_eq!(r.groups[0].blocked_ticks, 0);
    assert_eq!(r.peak_slots_in_use, 8);
}

#[test]
fn empty_group_list_is_a_clean_no_op() {
    let s = service();
    let r = orchestrate(&s, &[], &config(8));
    assert!(r.groups.is_empty());
    assert_eq!(r.peak_slots_in_use, 0);
    assert_eq!(r.service_ratio(), 1.0);
}

// ------------------------------------------------- all satellites dead

#[test]
fn dead_fleet_reports_no_server_in_range() {
    let s = dead_service();
    let mut pool = CapacityPool::new(&s, 0.0, 8);
    assert_eq!(pool.place(&request(1)), PlacementOutcome::NoServerInRange);
    assert_eq!(
        pool.reachable_free_slots(Geodetic::ground(10.0, 10.0), 16.0),
        0
    );
}

#[test]
fn dead_fleet_blocks_every_orchestrated_tick() {
    let s = dead_service();
    let r = orchestrate(&s, &[group("doomed", 1)], &config(8));
    assert_eq!(r.groups[0].served_ticks, 0);
    assert_eq!(r.groups[0].blocked_ticks, 6, "every tick coverage-blocked");
    assert_eq!(r.groups[0].handoffs, 0);
    assert!(r.groups[0].mean_rtt_ms.is_nan(), "never served → NaN RTT");
    assert_eq!(r.peak_slots_in_use, 0);
    assert_eq!(r.service_ratio(), 0.0);
}

#[test]
fn dead_fleet_admits_no_batch() {
    let s = dead_service();
    let mut pool = CapacityPool::new(&s, 0.0, 8);
    let batch: Vec<_> = (0..5).map(|_| request(1)).collect();
    let (outcomes, fraction) = admit_batch(&mut pool, &batch);
    assert!(outcomes
        .iter()
        .all(|o| *o == PlacementOutcome::NoServerInRange));
    assert_eq!(fraction, 0.0);
}

#[test]
fn fleet_that_dies_mid_run_hands_nothing_back() {
    // All satellites die at t=150, halfway through a six-tick run: the
    // group serves the first ticks, then blocks to the end, and its
    // slots are released (peak stays at the live-phase level).
    let constellation = presets::starlink_550_only();
    let n = constellation.num_satellites();
    let cfg = FaultConfig {
        schedule: Some(FailureSchedule::from_death_times(vec![150.0; n])),
        ..FaultConfig::none()
    };
    let s = InOrbitService::with_faults(constellation, cfg);
    let r = orchestrate(&s, &[group("cutoff", 1)], &config(8));
    assert_eq!(r.groups[0].served_ticks, 3, "t=0,60,120 served");
    assert_eq!(r.groups[0].blocked_ticks, 3, "t=180,240,300 blocked");
    assert!(r.groups[0].mean_rtt_ms.is_finite());
    assert_eq!(r.peak_slots_in_use, 1);
}

// ------------------------------------------------- sticky reservations

#[test]
fn try_reserve_and_place_share_one_budget() {
    // The sticky path (try_reserve) and the nearest-first path (place)
    // must deplete the same pool: a server pinned full via try_reserve
    // is skipped by place.
    let s = service();
    let mut pool = CapacityPool::new(&s, 0.0, 1);
    let req = request(1);
    let nearest = s
        .reachable_servers(req.location, 0.0)
        .into_iter()
        .min_by(|a, b| a.range_m.total_cmp(&b.range_m))
        .unwrap();
    assert!(pool.try_reserve(nearest.id, 1));
    let PlacementOutcome::Placed { server, .. } = pool.place(&req) else {
        panic!("spill to the next server");
    };
    assert_ne!(
        server, nearest.id,
        "place must spill past the pinned server"
    );
}

#[test]
fn try_reserve_on_an_unknown_server_is_bounded_by_capacity() {
    // try_reserve names servers directly, so even a satellite no ground
    // user could see is bookable — but never beyond its slot budget.
    let s = service();
    let mut pool = CapacityPool::new(&s, 0.0, 2);
    let far = SatId(0);
    assert!(pool.try_reserve(far, 2));
    assert!(!pool.try_reserve(far, 1));
    pool.release(far, 2);
    assert_eq!(pool.used_slots(), 0);
}
