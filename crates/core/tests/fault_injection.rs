//! End-to-end properties of the fault-injection layer.
//!
//! Three contracts the unit tests cannot pin alone:
//!
//! 1. **No masked traversal** — every delay the masked engine reports
//!    equals the shortest path over a reference graph from which the
//!    masked satellites, cut ISLs, and faded access links were *removed
//!    before* Dijkstra ran. Routing around the mask is therefore exact,
//!    not best-effort.
//! 2. **Empty plan = no plan** — a service carrying a fault scenario
//!    that masks nothing produces byte-identical session results to a
//!    service with no fault layer at all.
//! 3. **Fade-forced re-selection** — Sticky drops a held server whose
//!    access link rains out, not just one that dies or sets.

use leo_constellation::{presets, SatId};
use leo_core::session::run_session;
use leo_core::{FailureModel, InOrbitService, Policy, SessionConfig};
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;
use leo_net::visibility::visible_sats_masked;
use leo_net::weather::LinkBudget;
use leo_net::{FaultConfig, FaultPlan, NetworkGraph, NodeId, RainFade};

fn users() -> Vec<GroundEndpoint> {
    vec![
        GroundEndpoint::new(0, Geodetic::ground(9.06, 7.49)),
        GroundEndpoint::new(1, Geodetic::ground(3.87, 11.52)),
        GroundEndpoint::new(2, Geodetic::ground(6.52, 3.38)),
    ]
}

/// The ground truth: a graph with every masked element *absent*, so its
/// shortest paths cannot traverse them by construction.
fn reference_graph(
    service: &InOrbitService,
    snapshot: &leo_constellation::Snapshot,
    grounds: &[GroundEndpoint],
    plan: &FaultPlan,
) -> NetworkGraph {
    let c = service.constellation();
    let mut net = NetworkGraph::new();
    for sat in c.satellites() {
        net.add_node(NodeId::Sat(sat.id));
    }
    for (edge, len) in service.topology().active_edges(snapshot) {
        if !plan.isl_edge_masked(edge.a, edge.b) {
            net.add_edge_distance(NodeId::Sat(edge.a), NodeId::Sat(edge.b), len);
        }
    }
    for gp in grounds {
        net.add_node(gp.node());
        for v in visible_sats_masked(c, snapshot, gp.geodetic, gp.ecef, plan) {
            net.add_edge_distance(gp.node(), NodeId::Sat(v.id), v.range_m);
        }
    }
    net
}

#[test]
fn masked_routes_equal_shortest_paths_on_the_masked_graph() {
    // A scenario with all three fault kinds live at once: a failure
    // schedule that has already killed a band of satellites, two cut
    // ISLs, and a rain fade that raises the access mask.
    let mut cfg = FaultConfig::none();
    cfg.schedule = Some(
        FailureModel {
            annual_failure_rate: 4000.0,
            seed: 17,
        }
        .schedule(1584),
    );
    cfg.cut_links.push((SatId(100), SatId(101)));
    cfg.cut_links.push((SatId(40), SatId(62)));
    cfg.rain = Some(RainFade {
        budget: LinkBudget::CONSUMER,
        rain_rate_mm_h: 10.0,
    });
    let service = InOrbitService::with_faults(presets::starlink_550_only(), cfg.clone());
    let grounds = users();

    for t in [0.0, 1800.0, 3600.0] {
        let view = service.view(t);
        let plan = view.fault_plan().expect("fault service carries a plan");
        // λ = 4000/yr kills ~20 % of the fleet per half hour; t = 0
        // exercises the cuts+rain-only plan instead.
        assert!(
            t == 0.0 || plan.num_dead() > 0,
            "schedule should have killed sats by t={t}"
        );
        let reference = reference_graph(&service, view.snapshot(), &grounds, plan);
        let links = view.attach(&grounds);

        // Ground-to-ground: every pair, both directions.
        for i in 0..grounds.len() {
            for j in 0..grounds.len() {
                if i == j {
                    continue;
                }
                let engine = view.ground_to_ground_delay(&links, i, j);
                let reference_path = reference.shortest_path(grounds[i].node(), grounds[j].node());
                match (engine, reference_path) {
                    (Some(d), Some(p)) => {
                        assert!(
                            (d - p.delay_s).abs() <= 1e-12 * p.delay_s.max(1.0),
                            "t={t} {i}->{j}: engine {d} vs reference {}",
                            p.delay_s
                        );
                        for node in &p.nodes {
                            if let NodeId::Sat(s) = node {
                                assert!(!plan.sat_dead(*s), "path crosses dead {s}");
                            }
                        }
                    }
                    (None, None) => {}
                    (e, r) => panic!("t={t} {i}->{j}: engine {e:?} vs reference {r:?}"),
                }
            }
        }

        // Sat-to-sat over the masked ISL mesh, including dead endpoints.
        let probes = [
            (SatId(0), SatId(700)),
            (SatId(100), SatId(101)),
            (SatId(40), SatId(62)),
            (SatId(3), SatId(1583)),
        ];
        for (a, b) in probes {
            let engine = view.sat_to_sat_delay(None, a, b);
            let reference_d = reference
                .shortest_path(NodeId::Sat(a), NodeId::Sat(b))
                .map(|p| p.delay_s);
            match (engine, reference_d) {
                (Some(d), Some(r)) => {
                    // The reference graph includes ground nodes; a
                    // sat-to-sat route must not use them, so recheck on
                    // path nodes instead of delay when they differ.
                    let path = reference
                        .shortest_path(NodeId::Sat(a), NodeId::Sat(b))
                        .unwrap();
                    if path.nodes.iter().all(|n| matches!(n, NodeId::Sat(_))) {
                        assert!(
                            (d - r).abs() <= 1e-12 * r.max(1.0),
                            "t={t} {a}->{b}: engine {d} vs reference {r}"
                        );
                    } else {
                        assert!(d >= r - 1e-12, "ISL-only route beat the relayed one");
                    }
                }
                (None, None) => {}
                (Some(d), None) => panic!("t={t} {a}->{b}: engine found {d}, reference none"),
                (None, Some(_)) => {
                    // Reference may relay through ground; the ISL-only
                    // query is allowed to fail where the mesh is severed.
                }
            }
        }
    }
}

#[test]
fn dead_endpoints_are_unreachable_not_rerouted() {
    let mut cfg = FaultConfig::none();
    cfg.schedule = Some(
        FailureModel {
            annual_failure_rate: 4000.0,
            seed: 17,
        }
        .schedule(1584),
    );
    let service = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
    let view = service.view(3600.0);
    let plan = view.fault_plan().unwrap();
    let dead: Vec<SatId> = (0..1584)
        .map(|i| SatId(i as u32))
        .filter(|&s| plan.sat_dead(s))
        .collect();
    assert!(!dead.is_empty());
    for &d in dead.iter().take(5) {
        assert_eq!(view.sat_to_sat_delay(None, SatId(0), d), None);
        assert_eq!(
            service.server_to_server_delay(view.snapshot(), SatId(0), d),
            None
        );
    }
}

#[test]
fn empty_fault_plan_sessions_are_byte_identical() {
    let plain = InOrbitService::new(presets::starlink_550_only());
    let mut cfg = FaultConfig::none();
    // A schedule where nothing ever dies: plans are empty, but every
    // query flows through the masked entry points.
    cfg.schedule = Some(leo_net::FailureSchedule::never(1584));
    let faulted = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
    let session = SessionConfig {
        start_s: 0.0,
        duration_s: 600.0,
        tick_s: 10.0,
    };
    for policy in [Policy::MinMax, Policy::sticky_default()] {
        let a = run_session(&plain, &users(), policy, &session);
        let b = run_session(&faulted, &users(), policy, &session);
        let a_text = serde_json::to_string(&a).unwrap();
        let b_text = serde_json::to_string(&b).unwrap();
        assert_eq!(
            a_text,
            b_text,
            "{} diverged under an empty plan",
            policy.name()
        );
    }
}

#[test]
fn sticky_reselects_when_the_access_link_fades() {
    // A ~46° rain mask (14 mm/h on the consumer budget) forces servers
    // out of service well above the 25° geometric horizon, so holds
    // shorten and hand-offs multiply — without any satellite dying.
    let mut cfg = FaultConfig::none();
    cfg.rain = Some(RainFade {
        budget: LinkBudget::CONSUMER,
        rain_rate_mm_h: 14.0,
    });
    let clear = InOrbitService::new(presets::starlink_550_only());
    let rainy = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
    let session = SessionConfig {
        start_s: 0.0,
        duration_s: 1800.0,
        tick_s: 10.0,
    };
    let single_user = vec![GroundEndpoint::new(0, Geodetic::ground(6.52, 3.38))];

    let prev = leo_obs::level();
    leo_obs::set_level(leo_obs::Level::Metrics);
    let clear_run = run_session(&clear, &single_user, Policy::sticky_default(), &session);
    let handoffs_before = fault_handoff_count();
    let rainy_run = run_session(&rainy, &single_user, Policy::sticky_default(), &session);
    let handoffs_after = fault_handoff_count();
    leo_obs::set_level(prev);

    // Rain shortens holds and punches service gaps; both show up as
    // extra events (hand-offs + re-acquisitions).
    assert!(
        rainy_run.events.len() > clear_run.events.len(),
        "rain fade must disrupt the session: rainy {} vs clear {} events",
        rainy_run.events.len(),
        clear_run.events.len()
    );
    assert!(
        handoffs_after > handoffs_before,
        "fade-forced hand-offs must be attributed to the fault layer"
    );
    // And the session never *holds* a faulted server across a tick: at
    // each event the acquired satellite is unmasked at acquisition time.
    for e in &rainy_run.events {
        let view = rainy.view(e.time_s);
        assert!(
            !rainy.fault_masked_server(&view, &single_user, e.to),
            "acquired a rain-masked server at t={}",
            e.time_s
        );
    }
}

fn fault_handoff_count() -> u64 {
    leo_obs::snapshot()
        .counters
        .into_iter()
        .find(|(name, _)| name == "fault.handoffs")
        .map(|(_, v)| v)
        .unwrap_or(0)
}
