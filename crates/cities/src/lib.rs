//! # leo-cities
//!
//! Ground-segment datasets: the world's largest population centers and the
//! 2020-era Azure data-center regions.
//!
//! The paper's Figs 4–5 place ground stations at the largest *n* cities by
//! population (n up to 1000) and count the satellites invisible from all
//! of them; Fig 3 compares in-orbit meetup servers against Azure regions.
//!
//! * [`city`] — the [`City`] record and conversions.
//! * [`data`] — an embedded catalog of 1,000+ real largest population
//!   centers (coordinates good to ~0.1°, metro-area populations).
//! * [`synth`] — deterministic extension of the real catalog to any
//!   requested size by population-weighted sampling around real urban
//!   basins (documented substitution; see DESIGN.md §4).
//! * [`dataset`] — [`WorldCities`]: ranked queries
//!   (`top_n`), filters, and ground-station conversion.
//! * [`azure`] — the Azure region catalog used by the Fig 3 scenarios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod azure;
pub mod city;
pub mod data;
pub mod dataset;
pub mod synth;

pub use azure::{azure_regions, AzureRegion};
pub use city::City;
pub use dataset::WorldCities;
