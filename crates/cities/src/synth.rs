//! Deterministic extension of the real city catalog.
//!
//! The paper's Fig. 4 sweeps ground-station sets up to the 1,000 largest
//! population centers. The embedded real catalog ([`crate::data`]) holds
//! 1,000+; when more are requested, this module synthesizes additional
//! cities by population-weighted sampling *around real urban basins*:
//! a real anchor city is drawn with probability proportional to its
//! population, and a synthetic secondary city is placed a small offset
//! away with a population continuing the catalog's rank-size tail.
//!
//! Rationale (also in DESIGN.md §4): the figure's shape depends on the
//! *geographic footprint* of ground sites — secondary cities cluster near
//! primary ones in reality (urban corridors), so sampling near anchors
//! preserves exactly the property the experiment measures. The generator
//! is fully deterministic (SplitMix64 with a fixed seed), so every run and
//! every test sees the same catalog.

use crate::city::City;
use crate::data::{RAW_CITIES, REAL_CITY_COUNT};

/// Deterministic 64-bit SplitMix generator (stable across platforms and
/// releases, unlike external RNG crates' seeding guarantees).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

/// Fixed seed for the synthetic extension — changing it would change the
/// golden numbers in EXPERIMENTS.md, so don't.
pub const SYNTH_SEED: u64 = 0x1E0_CAFE_2020;

/// Synthesizes `count` additional cities following the real catalog.
///
/// Populations continue the rank-size (Zipf-like) tail of the real list;
/// positions are offset up to ±3° from a population-weighted real anchor.
pub fn synthesize(count: usize) -> Vec<City> {
    let mut rng = SplitMix64::new(SYNTH_SEED);

    // Cumulative population weights over the real catalog.
    let total_pop: u64 = RAW_CITIES.iter().map(|c| c.4).sum();
    let mut cumulative = Vec::with_capacity(REAL_CITY_COUNT);
    let mut acc = 0u64;
    for c in RAW_CITIES {
        acc += c.4;
        cumulative.push(acc);
    }

    // Tail starts below the smallest real population.
    let min_real_pop = RAW_CITIES.iter().map(|c| c.4).min().unwrap_or(100) * 1000;

    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let pick = (rng.next_f64() * total_pop as f64) as u64;
        let idx = cumulative
            .partition_point(|&c| c <= pick)
            .min(REAL_CITY_COUNT - 1);
        let (name, country, lat, lon, _) = RAW_CITIES[idx];

        let dlat = rng.range(-3.0, 3.0);
        let dlon = rng.range(-3.0, 3.0);
        let lat = (lat + dlat).clamp(-65.0, 72.0);
        let lon = {
            let mut l = lon + dlon;
            if l > 180.0 {
                l -= 360.0;
            } else if l < -180.0 {
                l += 360.0;
            }
            l
        };
        // Rank-size tail: population decays with synthetic rank.
        let population = (min_real_pop as f64 * (1.0 / (1.0 + i as f64 * 0.01)).max(0.05)) as u64;
        out.push(City {
            name: format!("{name}-satellite-{i}"),
            country: country.to_string(),
            lat_deg: lat,
            lon_deg: lon,
            population,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_floats_are_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn splitmix_mean_is_near_half() {
        let mut rng = SplitMix64::new(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesize(100);
        let b = synthesize(100);
        assert_eq!(a, b);
    }

    #[test]
    fn synthesized_cities_have_valid_coordinates() {
        for c in synthesize(500) {
            assert!((-90.0..=90.0).contains(&c.lat_deg), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.lon_deg), "{}", c.name);
            assert!(c.population > 0);
        }
    }

    #[test]
    fn synthesized_populations_never_exceed_real_minimum() {
        let min_real = RAW_CITIES.iter().map(|c| c.4).min().unwrap() * 1000;
        for c in synthesize(300) {
            assert!(c.population <= min_real, "{} too populous", c.name);
        }
    }

    #[test]
    fn synthesized_cities_stay_near_civilization() {
        // Every synthetic city is within ~5° of some real city (3° offset
        // plus clamping) — no ground stations in the open ocean far from
        // any real urban basin.
        for c in synthesize(200) {
            let near = RAW_CITIES.iter().any(|&(_, _, la, lo, _)| {
                let dlo = (c.lon_deg - lo).abs().min(360.0 - (c.lon_deg - lo).abs());
                (c.lat_deg - la).abs() < 9.0 && dlo < 5.0
            });
            assert!(
                near,
                "{} stranded at ({}, {})",
                c.name, c.lat_deg, c.lon_deg
            );
        }
    }

    #[test]
    fn synthesized_footprint_is_population_weighted() {
        // Most anchors are in the northern hemisphere, so most synthetic
        // cities must be too.
        let cities = synthesize(1000);
        let north = cities.iter().filter(|c| c.lat_deg > 0.0).count();
        assert!(north > 600, "north {north}");
    }
}
