//! The [`City`] record.

use leo_geo::Geodetic;
use serde::{Deserialize, Serialize};

/// A population center usable as a ground-station site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name.
    pub name: String,
    /// ISO-ish country name.
    pub country: String,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
    /// Metro-area population.
    pub population: u64,
}

impl City {
    /// Creates a city record.
    pub fn new(name: &str, country: &str, lat_deg: f64, lon_deg: f64, population: u64) -> Self {
        City {
            name: name.to_string(),
            country: country.to_string(),
            lat_deg,
            lon_deg,
            population,
        }
    }

    /// The city's ground position (sea level).
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::ground(self.lat_deg, self.lon_deg)
    }
}

impl std::fmt::Display for City {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}, {}", self.name, self.country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geodetic_conversion_preserves_coordinates() {
        let c = City::new("Abuja", "Nigeria", 9.06, 7.49, 3_278_000);
        let g = c.geodetic();
        assert!((g.lat.degrees() - 9.06).abs() < 1e-12);
        assert!((g.lon.degrees() - 7.49).abs() < 1e-12);
        assert_eq!(g.alt_m, 0.0);
    }

    #[test]
    fn display_is_name_comma_country() {
        let c = City::new("Yaoundé", "Cameroon", 3.87, 11.52, 2_765_000);
        assert_eq!(c.to_string(), "Yaoundé, Cameroon");
    }
}
