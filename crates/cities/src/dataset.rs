//! The [`WorldCities`] ranked dataset.

use crate::city::City;
use crate::data::{RAW_CITIES, REAL_CITY_COUNT};
use crate::synth;
use leo_geo::Geodetic;

/// The world-city catalog, sorted by descending population, extensible
/// with deterministic synthetic cities beyond the real records.
///
/// ```
/// use leo_cities::WorldCities;
///
/// let cities = WorldCities::load();
/// assert_eq!(cities.top_n(1)[0].name, "Tokyo");
/// // Fig 4 uses ground stations at the 1000 largest cities:
/// let sites = WorldCities::load_at_least(1000).top_n_geodetic(1000);
/// assert_eq!(sites.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct WorldCities {
    cities: Vec<City>,
}

impl WorldCities {
    /// Loads the real embedded catalog (1,000+ cities), population-sorted.
    pub fn load() -> Self {
        let mut cities: Vec<City> = RAW_CITIES
            .iter()
            .map(|&(name, country, lat, lon, pop_k)| City {
                name: name.to_string(),
                country: country.to_string(),
                lat_deg: lat,
                lon_deg: lon,
                population: pop_k * 1000,
            })
            .collect();
        cities.sort_by_key(|c| std::cmp::Reverse(c.population));
        WorldCities { cities }
    }

    /// Loads a catalog of at least `n` cities, synthesizing beyond the
    /// real records when needed (see [`crate::synth`]).
    pub fn load_at_least(n: usize) -> Self {
        let mut ds = Self::load();
        if n > ds.cities.len() {
            ds.cities.extend(synth::synthesize(n - ds.cities.len()));
            // Real cities all outrank synthetic ones by construction, but
            // re-sort to keep the invariant explicit.
            ds.cities.sort_by_key(|c| std::cmp::Reverse(c.population));
        }
        ds
    }

    /// Number of real (non-synthesized) records available.
    pub fn real_count() -> usize {
        REAL_CITY_COUNT
    }

    /// All cities, descending population.
    pub fn all(&self) -> &[City] {
        &self.cities
    }

    /// The `n` largest cities by population.
    ///
    /// # Panics
    /// Panics when `n` exceeds the loaded catalog size — call
    /// [`WorldCities::load_at_least`] first for large `n`.
    pub fn top_n(&self, n: usize) -> &[City] {
        assert!(
            n <= self.cities.len(),
            "requested {n} cities, catalog holds {}; use load_at_least",
            self.cities.len()
        );
        &self.cities[..n]
    }

    /// Finds a city by exact name.
    pub fn by_name(&self, name: &str) -> Option<&City> {
        self.cities.iter().find(|c| c.name == name)
    }

    /// Ground positions of the `n` largest cities.
    pub fn top_n_geodetic(&self, n: usize) -> Vec<Geodetic> {
        self.top_n(n).iter().map(City::geodetic).collect()
    }

    /// Cities within a latitude band (inclusive), descending population.
    pub fn in_latitude_band(&self, min_lat_deg: f64, max_lat_deg: f64) -> Vec<&City> {
        self.cities
            .iter()
            .filter(|c| (min_lat_deg..=max_lat_deg).contains(&c.lat_deg))
            .collect()
    }
}

impl Default for WorldCities {
    fn default() -> Self {
        Self::load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_by_descending_population() {
        let ds = WorldCities::load();
        for w in ds.all().windows(2) {
            assert!(w[0].population >= w[1].population);
        }
    }

    #[test]
    fn tokyo_is_the_largest_city() {
        let ds = WorldCities::load();
        assert_eq!(ds.all()[0].name, "Tokyo");
    }

    #[test]
    fn top_n_returns_exactly_n() {
        let ds = WorldCities::load();
        assert_eq!(ds.top_n(100).len(), 100);
        assert_eq!(ds.top_n(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "use load_at_least")]
    fn top_n_beyond_catalog_panics() {
        let ds = WorldCities::load();
        let _ = ds.top_n(10_000);
    }

    #[test]
    fn load_at_least_reaches_1000_for_fig4() {
        let ds = WorldCities::load_at_least(1000);
        assert!(ds.all().len() >= 1000);
        let top = ds.top_n(1000);
        assert_eq!(top.len(), 1000);
        // Real cities must rank ahead of synthetic ones.
        assert!(top[..100].iter().all(|c| !c.name.contains("satellite")));
    }

    #[test]
    fn by_name_finds_fig3_cities() {
        let ds = WorldCities::load();
        for name in [
            "Abuja",
            "Yaounde",
            "Lagos",
            "San Antonio",
            "Sydney",
            "Sao Paulo",
        ] {
            assert!(ds.by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn latitude_band_filter_respects_bounds() {
        let ds = WorldCities::load();
        for c in ds.in_latitude_band(-10.0, 10.0) {
            assert!((-10.0..=10.0).contains(&c.lat_deg));
        }
        assert!(!ds.in_latitude_band(-10.0, 10.0).is_empty());
    }

    #[test]
    fn geodetic_export_matches_city_records() {
        let ds = WorldCities::load();
        let points = ds.top_n_geodetic(50);
        for (p, c) in points.iter().zip(ds.top_n(50)) {
            assert!((p.lat.degrees() - c.lat_deg).abs() < 1e-12);
        }
    }
}
