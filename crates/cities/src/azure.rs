//! The 2020-era Microsoft Azure region catalog.
//!
//! §3.2 of the paper compares in-orbit meetup servers against the best
//! Azure data center reachable through the constellation. The coordinates
//! below are the approximate metro locations of each region (Azure
//! publishes regions by metro, not street address); the regions named in
//! the paper's two scenarios — South Africa North/West, South Central US,
//! Brazil South, Australia East — are all present.

use leo_geo::Geodetic;
use serde::Serialize;

/// An Azure data-center region.
///
/// Serialize-only: the catalog is a compiled-in constant (`&'static str`
/// names cannot be deserialized into), and nothing reads regions back.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AzureRegion {
    /// Official region name, e.g. `"South Africa North"`.
    pub name: &'static str,
    /// Metro the region is hosted in.
    pub metro: &'static str,
    /// Latitude, degrees north.
    pub lat_deg: f64,
    /// Longitude, degrees east.
    pub lon_deg: f64,
}

impl AzureRegion {
    /// Ground position of the region.
    pub fn geodetic(&self) -> Geodetic {
        Geodetic::ground(self.lat_deg, self.lon_deg)
    }
}

/// All Azure regions generally available circa 2020.
pub fn azure_regions() -> &'static [AzureRegion] {
    const REGIONS: &[AzureRegion] = &[
        AzureRegion {
            name: "East US",
            metro: "Virginia",
            lat_deg: 36.68,
            lon_deg: -78.39,
        },
        AzureRegion {
            name: "East US 2",
            metro: "Virginia",
            lat_deg: 36.87,
            lon_deg: -78.25,
        },
        AzureRegion {
            name: "Central US",
            metro: "Iowa",
            lat_deg: 41.59,
            lon_deg: -93.62,
        },
        AzureRegion {
            name: "North Central US",
            metro: "Illinois",
            lat_deg: 41.88,
            lon_deg: -87.63,
        },
        AzureRegion {
            name: "South Central US",
            metro: "Texas",
            lat_deg: 29.42,
            lon_deg: -98.49,
        },
        AzureRegion {
            name: "West Central US",
            metro: "Wyoming",
            lat_deg: 41.14,
            lon_deg: -104.80,
        },
        AzureRegion {
            name: "West US",
            metro: "California",
            lat_deg: 37.39,
            lon_deg: -121.96,
        },
        AzureRegion {
            name: "West US 2",
            metro: "Washington",
            lat_deg: 47.23,
            lon_deg: -119.85,
        },
        AzureRegion {
            name: "Canada Central",
            metro: "Toronto",
            lat_deg: 43.65,
            lon_deg: -79.38,
        },
        AzureRegion {
            name: "Canada East",
            metro: "Quebec City",
            lat_deg: 46.81,
            lon_deg: -71.21,
        },
        AzureRegion {
            name: "Brazil South",
            metro: "Sao Paulo",
            lat_deg: -23.55,
            lon_deg: -46.63,
        },
        AzureRegion {
            name: "North Europe",
            metro: "Dublin",
            lat_deg: 53.35,
            lon_deg: -6.26,
        },
        AzureRegion {
            name: "West Europe",
            metro: "Amsterdam",
            lat_deg: 52.37,
            lon_deg: 4.90,
        },
        AzureRegion {
            name: "UK South",
            metro: "London",
            lat_deg: 51.51,
            lon_deg: -0.13,
        },
        AzureRegion {
            name: "UK West",
            metro: "Cardiff",
            lat_deg: 51.48,
            lon_deg: -3.18,
        },
        AzureRegion {
            name: "France Central",
            metro: "Paris",
            lat_deg: 48.86,
            lon_deg: 2.35,
        },
        AzureRegion {
            name: "France South",
            metro: "Marseille",
            lat_deg: 43.30,
            lon_deg: 5.37,
        },
        AzureRegion {
            name: "Germany West Central",
            metro: "Frankfurt",
            lat_deg: 50.11,
            lon_deg: 8.68,
        },
        AzureRegion {
            name: "Germany North",
            metro: "Berlin",
            lat_deg: 52.52,
            lon_deg: 13.40,
        },
        AzureRegion {
            name: "Switzerland North",
            metro: "Zurich",
            lat_deg: 47.38,
            lon_deg: 8.54,
        },
        AzureRegion {
            name: "Switzerland West",
            metro: "Geneva",
            lat_deg: 46.20,
            lon_deg: 6.14,
        },
        AzureRegion {
            name: "Norway East",
            metro: "Oslo",
            lat_deg: 59.91,
            lon_deg: 10.75,
        },
        AzureRegion {
            name: "Norway West",
            metro: "Stavanger",
            lat_deg: 58.97,
            lon_deg: 5.73,
        },
        AzureRegion {
            name: "Southeast Asia",
            metro: "Singapore",
            lat_deg: 1.35,
            lon_deg: 103.82,
        },
        AzureRegion {
            name: "East Asia",
            metro: "Hong Kong",
            lat_deg: 22.32,
            lon_deg: 114.17,
        },
        AzureRegion {
            name: "Japan East",
            metro: "Tokyo",
            lat_deg: 35.68,
            lon_deg: 139.69,
        },
        AzureRegion {
            name: "Japan West",
            metro: "Osaka",
            lat_deg: 34.69,
            lon_deg: 135.50,
        },
        AzureRegion {
            name: "Korea Central",
            metro: "Seoul",
            lat_deg: 37.57,
            lon_deg: 126.98,
        },
        AzureRegion {
            name: "Korea South",
            metro: "Busan",
            lat_deg: 35.18,
            lon_deg: 129.08,
        },
        AzureRegion {
            name: "Australia East",
            metro: "Sydney",
            lat_deg: -33.87,
            lon_deg: 151.21,
        },
        AzureRegion {
            name: "Australia Southeast",
            metro: "Melbourne",
            lat_deg: -37.81,
            lon_deg: 144.96,
        },
        AzureRegion {
            name: "Australia Central",
            metro: "Canberra",
            lat_deg: -35.28,
            lon_deg: 149.13,
        },
        AzureRegion {
            name: "Central India",
            metro: "Pune",
            lat_deg: 18.52,
            lon_deg: 73.86,
        },
        AzureRegion {
            name: "South India",
            metro: "Chennai",
            lat_deg: 13.08,
            lon_deg: 80.27,
        },
        AzureRegion {
            name: "West India",
            metro: "Mumbai",
            lat_deg: 19.08,
            lon_deg: 72.88,
        },
        AzureRegion {
            name: "UAE North",
            metro: "Dubai",
            lat_deg: 25.20,
            lon_deg: 55.27,
        },
        AzureRegion {
            name: "UAE Central",
            metro: "Abu Dhabi",
            lat_deg: 24.45,
            lon_deg: 54.38,
        },
        AzureRegion {
            name: "South Africa North",
            metro: "Johannesburg",
            lat_deg: -26.20,
            lon_deg: 28.04,
        },
        AzureRegion {
            name: "South Africa West",
            metro: "Cape Town",
            lat_deg: -33.92,
            lon_deg: 18.42,
        },
        AzureRegion {
            name: "China East",
            metro: "Shanghai",
            lat_deg: 31.23,
            lon_deg: 121.47,
        },
        AzureRegion {
            name: "China North",
            metro: "Beijing",
            lat_deg: 39.90,
            lon_deg: 116.41,
        },
    ];
    REGIONS
}

/// Looks a region up by its official name.
pub fn region_by_name(name: &str) -> Option<&'static AzureRegion> {
    azure_regions().iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_regions_exist() {
        for name in [
            "South Africa North",
            "South Africa West",
            "South Central US",
            "Brazil South",
            "Australia East",
        ] {
            assert!(region_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn africa_has_exactly_two_regions() {
        // §3.2: "Microsoft Azure … has two data center regions in Africa".
        let africa = azure_regions()
            .iter()
            .filter(|r| r.name.contains("South Africa"))
            .count();
        assert_eq!(africa, 2);
    }

    #[test]
    fn coordinates_are_valid() {
        for r in azure_regions() {
            assert!((-90.0..=90.0).contains(&r.lat_deg), "{}", r.name);
            assert!((-180.0..=180.0).contains(&r.lon_deg), "{}", r.name);
        }
    }

    #[test]
    fn no_duplicate_region_names() {
        let mut seen = std::collections::HashSet::new();
        for r in azure_regions() {
            assert!(seen.insert(r.name), "duplicate {}", r.name);
        }
    }

    #[test]
    fn catalog_size_matches_2020_era_azure() {
        // "More global regions than any other cloud provider" — ~40 GA
        // regions in 2020.
        assert!(azure_regions().len() >= 38);
    }

    #[test]
    fn south_africa_north_is_johannesburg() {
        let r = region_by_name("South Africa North").unwrap();
        assert_eq!(r.metro, "Johannesburg");
        assert!((r.lat_deg + 26.2).abs() < 0.1);
    }
}
