//! Low-precision solar ephemeris and Earth-shadow (eclipse) geometry.
//!
//! The feasibility analysis in §4 of the paper notes that "satellites use
//! batteries for continuous operation, given that substantial orbital time
//! is spent in the Earth's shadow". The power model in `leo-feasibility`
//! needs the eclipse fraction of an orbit, which requires (a) the direction
//! of the Sun and (b) a shadow test. The Astronomical Almanac low-precision
//! formula used here is accurate to ~0.01°, vastly better than required.

use crate::angle::Angle;
use crate::consts::{AU_M, EARTH_RADIUS_MEAN_M};
use crate::coords::Eci;
use crate::time::Epoch;
use crate::vec3::Vec3;

/// Unit vector from the Earth's center toward the Sun in the ECI frame at
/// `seconds` after `epoch`.
pub fn sun_direction_eci(epoch: Epoch, seconds: f64) -> Vec3 {
    let d = epoch.days_since_j2000(seconds);
    // Mean longitude and mean anomaly of the Sun, degrees.
    let l = 280.460 + 0.985_647_4 * d;
    let g = Angle::from_degrees(357.528 + 0.985_600_3 * d);
    // Ecliptic longitude with equation-of-center correction.
    let lambda = Angle::from_degrees(l + 1.915 * g.sin() + 0.020 * (g * 2.0).sin());
    // Obliquity of the ecliptic.
    let eps = Angle::from_degrees(23.439 - 0.000_000_4 * d);
    let (sl, cl) = lambda.sin_cos();
    let (se, ce) = eps.sin_cos();
    Vec3::new(cl, ce * sl, se * sl).normalized()
}

/// Position of the Sun in ECI, meters (direction × 1 AU; the Sun–Earth
/// distance variation of ±1.7 % is irrelevant for shadow geometry).
pub fn sun_position_eci(epoch: Epoch, seconds: f64) -> Eci {
    Eci(sun_direction_eci(epoch, seconds) * AU_M)
}

/// True when a satellite at ECI position `sat` is inside the Earth's
/// (cylindrical) shadow given the Sun direction.
///
/// The cylindrical model ignores penumbra; for LEO power budgeting the
/// penumbral transit lasts seconds and is negligible.
pub fn in_earth_shadow(sat: Eci, sun_dir: Vec3) -> bool {
    let r = sat.0;
    // Must be on the anti-sun side…
    let along = r.dot(sun_dir);
    if along >= 0.0 {
        return false;
    }
    // …and within one Earth radius of the shadow axis.
    let perp = (r - sun_dir * along).norm();
    perp < EARTH_RADIUS_MEAN_M
}

/// Fraction of a circular orbit spent in the Earth's shadow, for a
/// satellite at `altitude_m` whose orbit plane makes angle `beta` with the
/// Sun direction (the "beta angle").
///
/// Closed form for the cylindrical shadow model:
/// eclipse occurs iff `cos β > sin ρ` is violated appropriately, where
/// `sin ρ = R / (R + h)`; the half-angle of the eclipse arc is
/// `acos( sqrt(h² + 2Rh) / ((R+h) cos β) )`.
pub fn eclipse_fraction(altitude_m: f64, beta: Angle) -> f64 {
    let r = EARTH_RADIUS_MEAN_M;
    let rh = r + altitude_m;
    let cb = beta.cos().abs();
    let horizon = (altitude_m * altitude_m + 2.0 * r * altitude_m).sqrt();
    let x = horizon / (rh * cb);
    if x >= 1.0 {
        0.0 // orbit never crosses the shadow at this beta angle
    } else {
        x.acos() / std::f64::consts::PI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sun_direction_is_unit_length() {
        let s = sun_direction_eci(Epoch::J2000, 0.0);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sun_near_vernal_equinox_points_along_x() {
        // Around March 20 the Sun crosses the vernal equinox: ecliptic
        // longitude ≈ 0 so the ECI direction is close to +X.
        let e = Epoch::from_calendar(2020, 3, 20, 12, 0, 0.0);
        let s = sun_direction_eci(e, 0.0);
        assert!(s.x > 0.999, "sun at equinox: {s:?}");
        assert!(s.y.abs() < 0.05 && s.z.abs() < 0.05);
    }

    #[test]
    fn sun_declination_at_solstices() {
        // June solstice: declination ≈ +23.44°; December: ≈ −23.44°.
        let jun = Epoch::from_calendar(2020, 6, 20, 12, 0, 0.0);
        let dec = Epoch::from_calendar(2020, 12, 21, 12, 0, 0.0);
        let sj = sun_direction_eci(jun, 0.0);
        let sd = sun_direction_eci(dec, 0.0);
        let decl_j = sj.z.asin().to_degrees();
        let decl_d = sd.z.asin().to_degrees();
        assert!((decl_j - 23.44).abs() < 0.2, "{decl_j}");
        assert!((decl_d + 23.44).abs() < 0.2, "{decl_d}");
    }

    #[test]
    fn satellite_behind_earth_is_in_shadow() {
        let sun = Vec3::X;
        let sat = Eci(Vec3::new(-(EARTH_RADIUS_MEAN_M + 550e3), 0.0, 0.0));
        assert!(in_earth_shadow(sat, sun));
    }

    #[test]
    fn satellite_on_sun_side_is_lit() {
        let sun = Vec3::X;
        let sat = Eci(Vec3::new(EARTH_RADIUS_MEAN_M + 550e3, 0.0, 0.0));
        assert!(!in_earth_shadow(sat, sun));
    }

    #[test]
    fn satellite_beside_shadow_cylinder_is_lit() {
        let sun = Vec3::X;
        let sat = Eci(Vec3::new(-1e7, EARTH_RADIUS_MEAN_M * 1.5, 0.0));
        assert!(!in_earth_shadow(sat, sun));
    }

    #[test]
    fn eclipse_fraction_at_zero_beta_for_starlink_altitude() {
        // 550 km, β = 0: eclipse fraction ≈ acos(√(h²+2Rh)/(R+h))/π ≈ 0.375.
        let f = eclipse_fraction(550e3, Angle::ZERO);
        assert!((f - 0.375).abs() < 0.01, "{f}");
    }

    #[test]
    fn high_beta_orbits_are_eclipse_free() {
        let f = eclipse_fraction(550e3, Angle::from_degrees(80.0));
        assert_eq!(f, 0.0);
    }

    #[test]
    fn closed_form_matches_shadow_sampling() {
        // Integrate the shadow predicate around a circular orbit and compare
        // with the closed-form eclipse fraction.
        let alt = 550e3;
        let beta = Angle::from_degrees(20.0);
        let sun = Vec3::X;
        let rh = EARTH_RADIUS_MEAN_M + alt;
        let n = 100_000;
        let mut dark = 0;
        for i in 0..n {
            let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            // Orbit plane tilted so its normal makes (90°−β) with the sun:
            // param the orbit as cos·u + sin·v with u ⟂ sun offset by beta.
            let u = Vec3::new(-beta.cos(), 0.0, beta.sin());
            let v = Vec3::Y;
            let pos = (u * th.cos() + v * th.sin()) * rh;
            if in_earth_shadow(Eci(pos), sun) {
                dark += 1;
            }
        }
        let sampled = dark as f64 / n as f64;
        let closed = eclipse_fraction(alt, beta);
        assert!(
            (sampled - closed).abs() < 2e-3,
            "sampled {sampled}, closed-form {closed}"
        );
    }

    proptest! {
        #[test]
        fn prop_eclipse_fraction_decreases_with_beta(
            alt in 300e3..2000e3f64,
            b1 in 0.0..60.0f64,
            db in 0.5..20.0f64,
        ) {
            let f1 = eclipse_fraction(alt, Angle::from_degrees(b1));
            let f2 = eclipse_fraction(alt, Angle::from_degrees(b1 + db));
            prop_assert!(f2 <= f1 + 1e-12);
        }

        #[test]
        fn prop_eclipse_fraction_bounded(alt in 300e3..2000e3f64, b in 0.0..90.0f64) {
            let f = eclipse_fraction(alt, Angle::from_degrees(b));
            prop_assert!((0.0..0.5).contains(&f));
        }

        #[test]
        fn prop_sun_direction_always_unit(d in 0.0..20000.0f64) {
            let s = sun_direction_eci(Epoch::J2000, d * 86400.0);
            prop_assert!((s.norm() - 1.0).abs() < 1e-9);
        }
    }
}
