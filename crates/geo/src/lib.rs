//! # leo-geo
//!
//! Earth model, coordinate frames, and spherical geometry for LEO
//! constellation simulation.
//!
//! This crate is the lowest-level substrate of the in-orbit computing
//! reproduction. It provides:
//!
//! * Physical constants ([`consts`]): WGS-84 ellipsoid, gravitational
//!   parameter, speed of light, J2 coefficient.
//! * A small 3-vector type ([`Vec3`]) used by every higher layer.
//! * Angles with explicit units ([`Angle`]) and normalization helpers.
//! * Time handling ([`Epoch`], [`gmst`]) sufficient for Earth rotation.
//! * Coordinate frames and conversions ([`coords`]): geodetic latitude /
//!   longitude / altitude, Earth-centered Earth-fixed (ECEF), and
//!   Earth-centered inertial (ECI), plus the east-north-up (ENU) frame used
//!   for look angles.
//! * Ground-to-satellite geometry ([`look`]): elevation, azimuth, slant
//!   range, maximum slant range for a minimum elevation, coverage radius.
//! * Great-circle geometry ([`spherical`]).
//! * A low-precision solar ephemeris and Earth-shadow (eclipse) test
//!   ([`sun`]) used by the power feasibility model.
//! * An equirectangular projection and ASCII map renderer ([`projection`])
//!   used to regenerate Fig. 5 of the paper.
//!
//! All internal computation uses SI units (meters, seconds, radians);
//! constructors and accessors provide kilometre / degree conveniences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod consts;
pub mod coords;
pub mod look;
pub mod projection;
pub mod spherical;
pub mod sun;
pub mod time;
pub mod vec3;

pub use angle::Angle;
pub use coords::{Ecef, Eci, Enu, Geodetic};
pub use look::LookAngles;
pub use time::{gmst, Epoch};
pub use vec3::Vec3;
