//! Map projection and ASCII rendering used to regenerate Fig. 5 of the
//! paper ("invisible" Starlink satellites plotted against the 1000 largest
//! population centers).
//!
//! The paper's figure is an equirectangular (plate carrée) world map with
//! two point layers. [`AsciiMap`] renders such layers into a fixed-size
//! character grid suitable for terminal output and for golden-file
//! comparison in tests; the experiment binary additionally emits the raw
//! lat/lon series so an external plotter can reproduce the figure exactly.

use crate::coords::Geodetic;

/// Equirectangular projection of a geodetic point onto a `width` × `height`
/// grid covering longitude [−180°, 180°) × latitude [−90°, 90°].
///
/// Returns `(col, row)` with row 0 at the north edge, or `None` when the
/// point falls outside the projectable range (it never does for normalized
/// coordinates, but callers may pass unnormalized longitudes).
pub fn equirectangular(point: Geodetic, width: usize, height: usize) -> Option<(usize, usize)> {
    let mut lon = point.lon.normalized_signed().degrees();
    if lon >= 180.0 {
        lon -= 360.0; // map the 180° meridian onto the west edge
    }
    let lat = point.lat.degrees();
    if !(-90.0..=90.0).contains(&lat) {
        return None;
    }
    let x = (lon + 180.0) / 360.0 * width as f64;
    let y = (90.0 - lat) / 180.0 * height as f64;
    let col = (x.floor() as isize).clamp(0, width as isize - 1) as usize;
    let row = (y.floor() as isize).clamp(0, height as isize - 1) as usize;
    Some((col, row))
}

/// A character-grid world map with layered point plotting.
#[derive(Debug, Clone)]
pub struct AsciiMap {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl AsciiMap {
    /// Creates an empty map of the given character dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        AsciiMap {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    /// Map width in characters.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in characters.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Plots a layer of points with `glyph`. Later layers overwrite earlier
    /// ones (the paper draws invisible satellites *over* the city layer).
    pub fn plot<'a>(&mut self, points: impl IntoIterator<Item = &'a Geodetic>, glyph: char) {
        for p in points {
            if let Some((c, r)) = equirectangular(*p, self.width, self.height) {
                self.cells[r * self.width + c] = glyph;
            }
        }
    }

    /// Number of cells currently showing `glyph`.
    pub fn count(&self, glyph: char) -> usize {
        self.cells.iter().filter(|&&c| c == glyph).count()
    }

    /// Renders the map with a one-character border.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push_str("+\n");
        for r in 0..self.height {
            out.push('|');
            out.extend(self.cells[r * self.width..(r + 1) * self.width].iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('+');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn origin_projects_to_map_center() {
        let (c, r) = equirectangular(Geodetic::ground(0.0, 0.0), 100, 50).unwrap();
        assert_eq!((c, r), (50, 25));
    }

    #[test]
    fn corners_project_inside_the_grid() {
        let (c, r) = equirectangular(Geodetic::ground(90.0, -180.0), 100, 50).unwrap();
        assert_eq!((c, r), (0, 0));
        let (c, r) = equirectangular(Geodetic::ground(-90.0, 179.999), 100, 50).unwrap();
        assert_eq!((c, r), (99, 49));
    }

    #[test]
    fn northern_points_land_on_upper_rows() {
        let (_, r_north) = equirectangular(Geodetic::ground(60.0, 0.0), 100, 50).unwrap();
        let (_, r_south) = equirectangular(Geodetic::ground(-60.0, 0.0), 100, 50).unwrap();
        assert!(r_north < r_south);
    }

    #[test]
    fn unnormalized_longitude_wraps() {
        let a = equirectangular(Geodetic::ground(10.0, 190.0), 360, 180).unwrap();
        let b = equirectangular(Geodetic::ground(10.0, -170.0), 360, 180).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn later_layers_overwrite_earlier_ones() {
        let mut map = AsciiMap::new(40, 20);
        let p = Geodetic::ground(0.0, 0.0);
        map.plot([&p], '.');
        map.plot([&p], 'o');
        assert_eq!(map.count('o'), 1);
        assert_eq!(map.count('.'), 0);
    }

    #[test]
    fn render_has_expected_dimensions() {
        let map = AsciiMap::new(40, 20);
        let s = map.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 22);
        assert!(lines.iter().all(|l| l.chars().count() == 42));
    }

    proptest! {
        #[test]
        fn prop_projection_stays_in_bounds(
            lat in -90.0..=90.0f64,
            lon in -720.0..720.0f64,
            w in 1usize..500,
            h in 1usize..250,
        ) {
            let (c, r) = equirectangular(Geodetic::ground(lat, lon), w, h).unwrap();
            prop_assert!(c < w && r < h);
        }

        #[test]
        fn prop_projection_is_monotone_in_latitude(
            lat1 in -89.0..89.0f64,
            dlat in 0.5..10.0f64,
            lon in -179.0..179.0f64,
        ) {
            prop_assume!(lat1 + dlat <= 90.0);
            let (_, r_lo) = equirectangular(Geodetic::ground(lat1, lon), 360, 180).unwrap();
            let (_, r_hi) = equirectangular(Geodetic::ground(lat1 + dlat, lon), 360, 180).unwrap();
            prop_assert!(r_hi <= r_lo);
        }
    }
}
