//! An angle newtype with explicit units.
//!
//! Mixing degrees and radians is the classic source of silent geometry bugs
//! in orbital code; [`Angle`] stores radians internally and forces the unit
//! choice at every construction and extraction site.

use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An angle, stored internally in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Angle(f64);

impl Angle {
    /// The zero angle.
    pub const ZERO: Angle = Angle(0.0);

    /// Creates an angle from radians.
    pub const fn from_radians(rad: f64) -> Self {
        Angle(rad)
    }

    /// Creates an angle from degrees.
    pub fn from_degrees(deg: f64) -> Self {
        Angle(deg.to_radians())
    }

    /// The angle in radians.
    pub const fn radians(self) -> f64 {
        self.0
    }

    /// The angle in degrees.
    pub fn degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Normalizes to `[0, 2π)`.
    pub fn normalized(self) -> Angle {
        let mut a = self.0 % TAU;
        if a < 0.0 {
            a += TAU;
        }
        Angle(a)
    }

    /// Normalizes to `(-π, π]`.
    pub fn normalized_signed(self) -> Angle {
        let a = self.normalized().0;
        Angle(if a > PI { a - TAU } else { a })
    }

    /// Sine.
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine.
    pub fn cos(self) -> f64 {
        self.0.cos()
    }

    /// Tangent.
    pub fn tan(self) -> f64 {
        self.0.tan()
    }

    /// Simultaneous sine and cosine.
    pub fn sin_cos(self) -> (f64, f64) {
        self.0.sin_cos()
    }

    /// Absolute value.
    pub fn abs(self) -> Angle {
        Angle(self.0.abs())
    }
}

impl Add for Angle {
    type Output = Angle;
    fn add(self, o: Angle) -> Angle {
        Angle(self.0 + o.0)
    }
}

impl Sub for Angle {
    type Output = Angle;
    fn sub(self, o: Angle) -> Angle {
        Angle(self.0 - o.0)
    }
}

impl Mul<f64> for Angle {
    type Output = Angle;
    fn mul(self, k: f64) -> Angle {
        Angle(self.0 * k)
    }
}

impl Div<f64> for Angle {
    type Output = Angle;
    fn div(self, k: f64) -> Angle {
        Angle(self.0 / k)
    }
}

impl Neg for Angle {
    type Output = Angle;
    fn neg(self) -> Angle {
        Angle(-self.0)
    }
}

impl std::fmt::Display for Angle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}°", self.degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degree_radian_round_trip() {
        let a = Angle::from_degrees(53.0);
        assert!((a.degrees() - 53.0).abs() < 1e-12);
        assert!((a.radians() - 53.0_f64.to_radians()).abs() < 1e-15);
    }

    #[test]
    fn normalization_wraps_negative_angles() {
        let a = Angle::from_degrees(-90.0).normalized();
        assert!((a.degrees() - 270.0).abs() < 1e-9);
    }

    #[test]
    fn signed_normalization_prefers_small_magnitudes() {
        let a = Angle::from_degrees(350.0).normalized_signed();
        assert!((a.degrees() + 10.0).abs() < 1e-9);
        let b = Angle::from_degrees(180.0).normalized_signed();
        assert!((b.degrees() - 180.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_behaves_linearly() {
        let a = Angle::from_degrees(30.0) + Angle::from_degrees(60.0);
        assert!((a.degrees() - 90.0).abs() < 1e-9);
        let b = Angle::from_degrees(90.0) * 2.0;
        assert!((b.degrees() - 180.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn normalized_is_in_range(x in -1e6..1e6f64) {
            let a = Angle::from_radians(x).normalized().radians();
            prop_assert!((0.0..TAU).contains(&a));
        }

        #[test]
        fn normalized_signed_is_in_range(x in -1e6..1e6f64) {
            let a = Angle::from_radians(x).normalized_signed().radians();
            prop_assert!(a > -PI - 1e-12 && a <= PI + 1e-12);
        }

        #[test]
        fn normalization_preserves_sin_cos(x in -1e4..1e4f64) {
            let a = Angle::from_radians(x);
            let n = a.normalized();
            prop_assert!((a.sin() - n.sin()).abs() < 1e-9);
            prop_assert!((a.cos() - n.cos()).abs() < 1e-9);
        }
    }
}
