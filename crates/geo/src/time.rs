//! Simulation time and Earth rotation.
//!
//! The simulator measures time as seconds relative to a reference epoch.
//! [`Epoch`] pins that reference to a Julian date so that Greenwich Mean
//! Sidereal Time ([`gmst`]) — and therefore the ECI↔ECEF rotation — is
//! well defined. The paper's experiments span at most a few hours, so the
//! low-precision GMST polynomial (sub-arcsecond over decades) is far more
//! accurate than needed.

use crate::angle::Angle;
use serde::{Deserialize, Serialize};

/// Julian date of the J2000.0 epoch (2000-01-01 12:00 TT).
pub const JD_J2000: f64 = 2_451_545.0;

/// A fixed reference instant, stored as a Julian date (UT1 ≈ UTC for our
/// purposes), from which simulation time in seconds is measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    jd: f64,
}

impl Epoch {
    /// The J2000.0 epoch.
    pub const J2000: Epoch = Epoch { jd: JD_J2000 };

    /// Creates an epoch from a Julian date.
    pub const fn from_julian_date(jd: f64) -> Self {
        Epoch { jd }
    }

    /// Creates an epoch from a calendar date/time (proleptic Gregorian, UT).
    ///
    /// Uses the Fliegel–Van Flandern algorithm; valid for years ≥ −4713.
    pub fn from_calendar(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: f64,
    ) -> Self {
        let (y, m) = if month <= 2 {
            (year - 1, month + 12)
        } else {
            (year, month)
        };
        let a = (y as f64 / 100.0).floor();
        let b = 2.0 - a + (a / 4.0).floor();
        let jd0 = (365.25 * (y as f64 + 4716.0)).floor()
            + (30.6001 * (m as f64 + 1.0)).floor()
            + day as f64
            + b
            - 1524.5;
        let frac = (hour as f64 + minute as f64 / 60.0 + second / 3600.0) / 24.0;
        Epoch { jd: jd0 + frac }
    }

    /// The Julian date of this epoch.
    pub const fn julian_date(self) -> f64 {
        self.jd
    }

    /// The Julian date `seconds` after this epoch.
    pub fn julian_date_at(self, seconds: f64) -> f64 {
        self.jd + seconds / crate::consts::SOLAR_DAY_S
    }

    /// Days elapsed since J2000.0 at `seconds` after this epoch.
    pub fn days_since_j2000(self, seconds: f64) -> f64 {
        self.julian_date_at(seconds) - JD_J2000
    }

    /// Julian centuries elapsed since J2000.0 at `seconds` after this epoch.
    pub fn centuries_since_j2000(self, seconds: f64) -> f64 {
        self.days_since_j2000(seconds) / 36_525.0
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::J2000
    }
}

/// Greenwich Mean Sidereal Time at `seconds` after `epoch`, as an angle.
///
/// Implements the IAU 1982 GMST polynomial (Vallado, eq. 3-45, truncated to
/// the linear term plus the constant — the quadratic terms contribute less
/// than 0.1″ over the simulation horizons used here).
pub fn gmst(epoch: Epoch, seconds: f64) -> Angle {
    let d = epoch.days_since_j2000(seconds);
    let deg = 280.460_618_37 + 360.985_647_366_29 * d;
    Angle::from_degrees(deg).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_calendar_round_trip() {
        let e = Epoch::from_calendar(2000, 1, 1, 12, 0, 0.0);
        assert!((e.julian_date() - JD_J2000).abs() < 1e-9);
    }

    #[test]
    fn known_julian_dates() {
        // 1970-01-01 00:00 UT (Unix epoch) is JD 2440587.5.
        let e = Epoch::from_calendar(1970, 1, 1, 0, 0, 0.0);
        assert!((e.julian_date() - 2_440_587.5).abs() < 1e-9);
        // 2020-11-04 00:00 UT (HotNets '20 opening day) is JD 2459157.5.
        let e = Epoch::from_calendar(2020, 11, 4, 0, 0, 0.0);
        assert!((e.julian_date() - 2_459_157.5).abs() < 1e-9);
    }

    #[test]
    fn gmst_at_j2000_matches_reference() {
        // GMST at J2000.0 is 280.46062° (Vallado).
        let g = gmst(Epoch::J2000, 0.0);
        assert!((g.degrees() - 280.460_618_37).abs() < 1e-6);
    }

    #[test]
    fn gmst_advances_one_full_turn_per_sidereal_day() {
        let g0 = gmst(Epoch::J2000, 0.0);
        let g1 = gmst(Epoch::J2000, crate::consts::SIDEREAL_DAY_S);
        let delta = (g1 - g0).normalized_signed();
        assert!(
            delta.abs().degrees() < 1e-3,
            "GMST should return to start after one sidereal day, drifted {delta}"
        );
    }

    #[test]
    fn gmst_gains_roughly_a_degree_per_solar_day_over_a_solar_year() {
        let g0 = gmst(Epoch::J2000, 0.0);
        let g1 = gmst(Epoch::J2000, crate::consts::SOLAR_DAY_S);
        let delta = (g1 - g0).normalized().degrees();
        assert!((delta - 0.9856).abs() < 1e-3);
    }

    #[test]
    fn seconds_offset_moves_julian_date_forward() {
        let e = Epoch::J2000;
        assert!((e.julian_date_at(86_400.0) - (JD_J2000 + 1.0)).abs() < 1e-12);
    }
}
