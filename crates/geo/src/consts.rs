//! Physical and geodetic constants.
//!
//! Sources: WGS-84 defining parameters (NIMA TR8350.2), IERS conventions,
//! and CODATA for the speed of light. The paper's own calculations use a
//! spherical Earth of radius 6371 km; [`EARTH_RADIUS_MEAN_M`] reproduces
//! that choice while the ellipsoidal constants support exact geodetic
//! conversion.

/// WGS-84 semi-major axis (equatorial radius), meters.
pub const WGS84_A_M: f64 = 6_378_137.0;

/// WGS-84 flattening, dimensionless.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;

/// WGS-84 semi-minor axis (polar radius), meters.
pub const WGS84_B_M: f64 = WGS84_A_M * (1.0 - WGS84_F);

/// WGS-84 first eccentricity squared.
pub const WGS84_E2: f64 = WGS84_F * (2.0 - WGS84_F);

/// Mean Earth radius (IUGG arithmetic mean radius), meters.
///
/// The paper's latency figures assume a spherical Earth of this radius.
pub const EARTH_RADIUS_MEAN_M: f64 = 6_371_000.0;

/// Standard gravitational parameter of the Earth μ = GM, m³/s².
pub const EARTH_MU_M3_S2: f64 = 3.986_004_418e14;

/// Earth's second zonal harmonic coefficient J2 (oblateness), dimensionless.
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Earth rotation rate, rad/s (sidereal).
pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115_146_706_979e-5;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT_M_S: f64 = 299_792_458.0;

/// Seconds per sidereal day.
pub const SIDEREAL_DAY_S: f64 = 86_164.090_5;

/// Seconds per solar day.
pub const SOLAR_DAY_S: f64 = 86_400.0;

/// Geostationary orbit altitude above the equator, meters.
///
/// Used by the paper for the "~65× lower latency than GEO" comparison and
/// as the reference for "GEO-like stationarity".
pub const GEO_ALTITUDE_M: f64 = 35_786_000.0;

/// Inner Van Allen belt lower boundary altitude, meters.
///
/// §4 of the paper: orbits below ~643 km sit under the inner belt, where
/// commodity (software-hardened) compute hardware is plausible.
pub const VAN_ALLEN_INNER_ALTITUDE_M: f64 = 643_000.0;

/// Astronomical unit, meters (used by the solar ephemeris).
pub const AU_M: f64 = 1.495_978_707e11;

/// Mean solar irradiance at 1 AU ("solar constant"), W/m².
pub const SOLAR_CONSTANT_W_M2: f64 = 1361.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wgs84_derived_quantities_are_consistent() {
        assert!((WGS84_B_M - 6_356_752.314_245).abs() < 1e-3);
        assert!((WGS84_E2 - 6.694_379_990_14e-3).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mean_radius_lies_between_polar_and_equatorial() {
        assert!(WGS84_B_M < EARTH_RADIUS_MEAN_M);
        assert!(EARTH_RADIUS_MEAN_M < WGS84_A_M);
    }

    #[test]
    fn sidereal_day_matches_rotation_rate() {
        let day = 2.0 * std::f64::consts::PI / EARTH_ROTATION_RAD_S;
        assert!((day - SIDEREAL_DAY_S).abs() < 0.1);
    }

    #[test]
    fn geo_altitude_matches_kepler_third_law() {
        // a³ = μ (T / 2π)²  for a sidereal-day period.
        let a = (EARTH_MU_M3_S2 * (SIDEREAL_DAY_S / (2.0 * std::f64::consts::PI)).powi(2))
            .powf(1.0 / 3.0);
        let alt = a - WGS84_A_M;
        assert!(
            (alt - GEO_ALTITUDE_M).abs() < 10_000.0,
            "computed {alt}, expected {GEO_ALTITUDE_M}"
        );
    }
}
