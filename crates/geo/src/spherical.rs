//! Great-circle geometry on the spherical Earth model.

use crate::angle::Angle;
use crate::consts::EARTH_RADIUS_MEAN_M;
use crate::coords::Geodetic;

/// Central angle between two ground points (haversine formula), radians.
pub fn central_angle(a: Geodetic, b: Geodetic) -> Angle {
    let dlat = (b.lat - a.lat).radians();
    let dlon = (b.lon - a.lon).radians();
    let h = (dlat / 2.0).sin().powi(2) + a.lat.cos() * b.lat.cos() * (dlon / 2.0).sin().powi(2);
    Angle::from_radians(2.0 * h.sqrt().min(1.0).asin())
}

/// Great-circle surface distance between two ground points, meters.
pub fn great_circle_distance_m(a: Geodetic, b: Geodetic) -> f64 {
    central_angle(a, b).radians() * EARTH_RADIUS_MEAN_M
}

/// Initial bearing (forward azimuth) from `a` to `b`, clockwise from north.
pub fn initial_bearing(a: Geodetic, b: Geodetic) -> Angle {
    let dlon = (b.lon - a.lon).radians();
    let y = dlon.sin() * b.lat.cos();
    let x = a.lat.cos() * b.lat.sin() - a.lat.sin() * b.lat.cos() * dlon.cos();
    Angle::from_radians(y.atan2(x)).normalized()
}

/// The point a fraction `t ∈ [0,1]` of the way along the great circle from
/// `a` to `b` (spherical linear interpolation on the unit sphere).
pub fn intermediate_point(a: Geodetic, b: Geodetic, t: f64) -> Geodetic {
    let delta = central_angle(a, b).radians();
    if delta < 1e-12 {
        return a;
    }
    let va = a.to_ecef_spherical().0.normalized();
    let vb = b.to_ecef_spherical().0.normalized();
    let sa = ((1.0 - t) * delta).sin() / delta.sin();
    let sb = (t * delta).sin() / delta.sin();
    let v = (va * sa + vb * sb).normalized() * EARTH_RADIUS_MEAN_M;
    crate::coords::Ecef(v).to_geodetic_spherical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quarter_circumference_between_equator_and_pole() {
        let a = Geodetic::ground(0.0, 0.0);
        let b = Geodetic::ground(90.0, 0.0);
        let d = great_circle_distance_m(a, b);
        let expect = std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_MEAN_M;
        assert!((d - expect).abs() < 1.0);
    }

    #[test]
    fn antipodal_points_are_half_circumference_apart() {
        let a = Geodetic::ground(0.0, 0.0);
        let b = Geodetic::ground(0.0, 180.0);
        let d = great_circle_distance_m(a, b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_MEAN_M).abs() < 1.0);
    }

    #[test]
    fn zurich_to_new_york_distance_is_plausible() {
        // Great-circle Zürich–NYC ≈ 6,320 km.
        let zrh = Geodetic::ground(47.3769, 8.5417);
        let nyc = Geodetic::ground(40.7128, -74.0060);
        let d = great_circle_distance_m(zrh, nyc) / 1e3;
        assert!((d - 6320.0).abs() < 50.0, "{d}");
    }

    #[test]
    fn bearing_due_east_along_equator() {
        let a = Geodetic::ground(0.0, 0.0);
        let b = Geodetic::ground(0.0, 10.0);
        assert!((initial_bearing(a, b).degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn bearing_due_north() {
        let a = Geodetic::ground(0.0, 0.0);
        let b = Geodetic::ground(10.0, 0.0);
        assert!(initial_bearing(a, b).degrees().abs() < 1e-9);
    }

    #[test]
    fn midpoint_of_equatorial_arc() {
        let a = Geodetic::ground(0.0, 0.0);
        let b = Geodetic::ground(0.0, 90.0);
        let m = intermediate_point(a, b, 0.5);
        assert!(m.lat.degrees().abs() < 1e-9);
        assert!((m.lon.degrees() - 45.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_distance_is_symmetric(
            lat1 in -89.0..89.0f64, lon1 in -180.0..180.0f64,
            lat2 in -89.0..89.0f64, lon2 in -180.0..180.0f64,
        ) {
            let a = Geodetic::ground(lat1, lon1);
            let b = Geodetic::ground(lat2, lon2);
            let d1 = great_circle_distance_m(a, b);
            let d2 = great_circle_distance_m(b, a);
            prop_assert!((d1 - d2).abs() < 1e-6);
        }

        #[test]
        fn prop_distance_bounded_by_half_circumference(
            lat1 in -89.0..89.0f64, lon1 in -180.0..180.0f64,
            lat2 in -89.0..89.0f64, lon2 in -180.0..180.0f64,
        ) {
            let d = great_circle_distance_m(
                Geodetic::ground(lat1, lon1),
                Geodetic::ground(lat2, lon2),
            );
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_MEAN_M + 1e-6);
        }

        #[test]
        fn prop_intermediate_point_splits_distance(
            lat1 in -80.0..80.0f64, lon1 in -170.0..170.0f64,
            lat2 in -80.0..80.0f64, lon2 in -170.0..170.0f64,
            t in 0.05..0.95f64,
        ) {
            let a = Geodetic::ground(lat1, lon1);
            let b = Geodetic::ground(lat2, lon2);
            let total = great_circle_distance_m(a, b);
            prop_assume!(total > 1e3);
            let m = intermediate_point(a, b, t);
            let d1 = great_circle_distance_m(a, m);
            let d2 = great_circle_distance_m(m, b);
            prop_assert!((d1 + d2 - total).abs() < 1.0);
            prop_assert!((d1 - t * total).abs() < 1.0);
        }
    }
}
