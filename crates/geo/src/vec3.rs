//! A minimal 3-component vector of `f64`.
//!
//! Every coordinate frame in the workspace ([`crate::coords`]) wraps this
//! type, so it carries the full set of linear-algebra operations the
//! simulator needs and nothing more.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Distance to another vector.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector rather than NaN, which is
    /// the convenient convention for shadow/visibility tests.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Angle between two vectors, radians, in `[0, π]`.
    pub fn angle_to(self, other: Vec3) -> f64 {
        // atan2 of the cross/dot is numerically stable near 0 and π,
        // unlike acos of the normalized dot product.
        let cross = self.cross(other).norm();
        let dot = self.dot(other);
        cross.atan2(dot)
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Rotates the vector about the +z axis by `angle` radians
    /// (counter-clockwise looking down +z).
    pub fn rotate_z(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
            z: self.z,
        }
    }

    /// Rotates the vector about the +x axis by `angle` radians.
    pub fn rotate_x(self, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        Vec3 {
            x: self.x,
            y: c * self.y - s * self.z,
            z: s * self.y + c * self.z,
        }
    }

    /// True if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn dot_and_cross_of_basis_vectors() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn norm_of_pythagorean_triple() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn angle_between_orthogonal_vectors_is_right() {
        let a = Vec3::X.angle_to(Vec3::Y);
        assert!((a - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn angle_between_antiparallel_vectors_is_pi() {
        let a = Vec3::X.angle_to(-Vec3::X);
        assert!((a - PI).abs() < 1e-12);
    }

    #[test]
    fn rotate_z_quarter_turn_maps_x_to_y() {
        let v = Vec3::X.rotate_z(FRAC_PI_2);
        assert!(v.distance(Vec3::Y) < 1e-12);
    }

    #[test]
    fn rotate_x_quarter_turn_maps_y_to_z() {
        let v = Vec3::Y.rotate_x(FRAC_PI_2);
        assert!(v.distance(Vec3::Z) < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(3.0, 6.0, 9.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 4.0, 6.0));
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        let c = -1e7..1e7f64;
        (c.clone(), c.clone(), c).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn cross_is_orthogonal_to_operands(a in arb_vec3(), b in arb_vec3()) {
            let c = a.cross(b);
            let scale = (a.norm() * b.norm()).max(1.0);
            prop_assert!(c.dot(a).abs() / (scale * scale.max(c.norm())) < 1e-9);
        }

        #[test]
        fn normalization_yields_unit_norm(a in arb_vec3()) {
            prop_assume!(a.norm() > 1e-3);
            prop_assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn rotation_preserves_norm(a in arb_vec3(), ang in -10.0..10.0f64) {
            prop_assert!((a.rotate_z(ang).norm() - a.norm()).abs() < 1e-6 * a.norm().max(1.0));
            prop_assert!((a.rotate_x(ang).norm() - a.norm()).abs() < 1e-6 * a.norm().max(1.0));
        }

        #[test]
        fn triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
        }

        #[test]
        fn angle_is_symmetric(a in arb_vec3(), b in arb_vec3()) {
            prop_assume!(a.norm() > 1.0 && b.norm() > 1.0);
            prop_assert!((a.angle_to(b) - b.angle_to(a)).abs() < 1e-12);
        }
    }
}
