//! Coordinate frames and conversions.
//!
//! Four frames are used throughout the workspace:
//!
//! * **Geodetic** — latitude, longitude, altitude over the reference
//!   surface. Ground stations and city datasets live here.
//! * **ECEF** — Earth-centered, Earth-fixed Cartesian frame; rotates with
//!   the Earth. All visibility and distance computations happen here.
//! * **ECI** — Earth-centered inertial frame; orbits are propagated here
//!   and rotated into ECEF with Greenwich Mean Sidereal Time.
//! * **ENU** — local east-north-up frame at a ground point; used to derive
//!   look angles (elevation / azimuth).
//!
//! Two Earth surface models are supported. The WGS-84 ellipsoid gives exact
//! geodesy; the spherical model (mean radius 6371 km) reproduces the
//! paper's own latency arithmetic. Each conversion names its model
//! explicitly — there is no "default Earth".

use crate::angle::Angle;
use crate::consts::{EARTH_RADIUS_MEAN_M, WGS84_A_M, WGS84_E2};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A geodetic position: latitude, longitude, and altitude above the
/// reference surface (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Geodetic {
    /// Geodetic latitude, positive north.
    pub lat: Angle,
    /// Longitude, positive east.
    pub lon: Angle,
    /// Altitude above the reference surface, meters.
    pub alt_m: f64,
}

impl Geodetic {
    /// Creates a geodetic position from degrees and meters.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        Geodetic {
            lat: Angle::from_degrees(lat_deg),
            lon: Angle::from_degrees(lon_deg),
            alt_m,
        }
    }

    /// A sea-level ground point from degrees.
    pub fn ground(lat_deg: f64, lon_deg: f64) -> Self {
        Self::from_degrees(lat_deg, lon_deg, 0.0)
    }

    /// Converts to ECEF on the WGS-84 ellipsoid.
    pub fn to_ecef_wgs84(self) -> Ecef {
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        let n = WGS84_A_M / (1.0 - WGS84_E2 * slat * slat).sqrt();
        Ecef(Vec3::new(
            (n + self.alt_m) * clat * clon,
            (n + self.alt_m) * clat * slon,
            (n * (1.0 - WGS84_E2) + self.alt_m) * slat,
        ))
    }

    /// Converts to ECEF on a spherical Earth of mean radius (the paper's
    /// model).
    pub fn to_ecef_spherical(self) -> Ecef {
        let r = EARTH_RADIUS_MEAN_M + self.alt_m;
        let (slat, clat) = self.lat.sin_cos();
        let (slon, clon) = self.lon.sin_cos();
        Ecef(Vec3::new(r * clat * clon, r * clat * slon, r * slat))
    }
}

impl std::fmt::Display for Geodetic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({:.4}°, {:.4}°, {:.0} m)",
            self.lat.degrees(),
            self.lon.degrees(),
            self.alt_m
        )
    }
}

/// An Earth-centered Earth-fixed Cartesian position, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ecef(pub Vec3);

impl Ecef {
    /// Creates an ECEF position from meters.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef(Vec3::new(x, y, z))
    }

    /// Straight-line (chord) distance to another ECEF point, meters.
    ///
    /// This is the propagation path length for a radio or laser link.
    pub fn distance_m(self, other: Ecef) -> f64 {
        self.0.distance(other.0)
    }

    /// Converts to geodetic coordinates on the WGS-84 ellipsoid.
    ///
    /// Uses Bowring's closed-form first approximation refined by two
    /// fixed-point iterations; sub-millimeter accurate for LEO altitudes.
    pub fn to_geodetic_wgs84(self) -> Geodetic {
        let v = self.0;
        let p = (v.x * v.x + v.y * v.y).sqrt();
        let lon = v.y.atan2(v.x);
        if p < 1e-9 {
            // On the polar axis.
            let lat = if v.z >= 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                -std::f64::consts::FRAC_PI_2
            };
            let b = crate::consts::WGS84_B_M;
            return Geodetic {
                lat: Angle::from_radians(lat),
                lon: Angle::from_radians(lon),
                alt_m: v.z.abs() - b,
            };
        }
        let mut lat = (v.z / (p * (1.0 - WGS84_E2))).atan();
        let mut alt = 0.0;
        for _ in 0..10 {
            let slat = lat.sin();
            let n = WGS84_A_M / (1.0 - WGS84_E2 * slat * slat).sqrt();
            // Near the poles p/cos(lat) is ill-conditioned; use the z form.
            alt = if lat.abs() < std::f64::consts::FRAC_PI_4 {
                p / lat.cos() - n
            } else {
                v.z / slat - n * (1.0 - WGS84_E2)
            };
            let new_lat = (v.z / (p * (1.0 - WGS84_E2 * n / (n + alt)))).atan();
            let done = (new_lat - lat).abs() < 1e-14;
            lat = new_lat;
            if done {
                break;
            }
        }
        Geodetic {
            lat: Angle::from_radians(lat),
            lon: Angle::from_radians(lon),
            alt_m: alt,
        }
    }

    /// Converts to geodetic coordinates on the spherical Earth model.
    pub fn to_geodetic_spherical(self) -> Geodetic {
        let v = self.0;
        let r = v.norm();
        let p = (v.x * v.x + v.y * v.y).sqrt();
        Geodetic {
            lat: Angle::from_radians(v.z.atan2(p)),
            lon: Angle::from_radians(v.y.atan2(v.x)),
            alt_m: r - EARTH_RADIUS_MEAN_M,
        }
    }

    /// Rotates into the inertial frame given the current GMST.
    pub fn to_eci(self, gmst: Angle) -> Eci {
        Eci(self.0.rotate_z(gmst.radians()))
    }
}

/// An Earth-centered inertial Cartesian position, meters.
///
/// The x-axis points to the vernal equinox, z along the rotation axis.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Eci(pub Vec3);

impl Eci {
    /// Creates an ECI position from meters.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Eci(Vec3::new(x, y, z))
    }

    /// Rotates into the Earth-fixed frame given the current GMST.
    pub fn to_ecef(self, gmst: Angle) -> Ecef {
        Ecef(self.0.rotate_z(-gmst.radians()))
    }
}

/// A position expressed in the local east-north-up frame of some ground
/// point, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Enu {
    /// East component, meters.
    pub east: f64,
    /// North component, meters.
    pub north: f64,
    /// Up component, meters.
    pub up: f64,
}

impl Enu {
    /// The ENU coordinates of `target` as seen from the ground point
    /// `origin` (both ECEF). `origin_geodetic` supplies the local vertical;
    /// pass the geodetic coordinates matching whichever Earth model
    /// produced `origin`.
    pub fn from_ecef(origin: Ecef, origin_geodetic: Geodetic, target: Ecef) -> Enu {
        let d = target.0 - origin.0;
        let (slat, clat) = origin_geodetic.lat.sin_cos();
        let (slon, clon) = origin_geodetic.lon.sin_cos();
        Enu {
            east: -slon * d.x + clon * d.y,
            north: -slat * clon * d.x - slat * slon * d.y + clat * d.z,
            up: clat * clon * d.x + clat * slon * d.y + slat * d.z,
        }
    }

    /// Slant range to the target, meters.
    pub fn range_m(self) -> f64 {
        (self.east * self.east + self.north * self.north + self.up * self.up).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equator_prime_meridian_maps_to_x_axis() {
        let e = Geodetic::ground(0.0, 0.0).to_ecef_spherical();
        assert!((e.0.x - EARTH_RADIUS_MEAN_M).abs() < 1e-6);
        assert!(e.0.y.abs() < 1e-6 && e.0.z.abs() < 1e-6);

        let w = Geodetic::ground(0.0, 0.0).to_ecef_wgs84();
        assert!((w.0.x - WGS84_A_M).abs() < 1e-6);
    }

    #[test]
    fn north_pole_maps_to_z_axis() {
        let e = Geodetic::ground(90.0, 0.0).to_ecef_wgs84();
        assert!(e.0.x.abs() < 1e-6 && e.0.y.abs() < 1e-6);
        assert!((e.0.z - crate::consts::WGS84_B_M).abs() < 1e-3);
    }

    #[test]
    fn wgs84_round_trip_for_leo_altitudes() {
        for &(lat, lon, alt) in &[
            (47.3769, 8.5417, 0.0),      // Zürich
            (-33.8688, 151.2093, 550e3), // over Sydney at Starlink altitude
            (89.9, -120.0, 1325e3),
            (-0.0001, 179.9999, 35_786e3),
        ] {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let back = g.to_ecef_wgs84().to_geodetic_wgs84();
            assert!((back.lat.degrees() - lat).abs() < 1e-8, "lat {lat}");
            assert!(
                (back.lon.normalized_signed().degrees() - lon).abs() < 1e-8,
                "lon {lon}"
            );
            assert!((back.alt_m - alt).abs() < 1e-3, "alt {alt}");
        }
    }

    #[test]
    fn eci_ecef_round_trip() {
        let gmst = Angle::from_degrees(123.456);
        let p = Ecef::new(1.0e6, -2.0e6, 3.0e6);
        let back = p.to_eci(gmst).to_ecef(gmst);
        assert!(p.0.distance(back.0) < 1e-6);
    }

    #[test]
    fn eci_to_ecef_rotates_against_earth_spin() {
        // A point fixed in ECI appears to move westward in ECEF as GMST grows.
        let p = Eci::new(7.0e6, 0.0, 0.0);
        let lon0 = p.to_ecef(Angle::ZERO).to_geodetic_spherical().lon;
        let lon1 = p
            .to_ecef(Angle::from_degrees(10.0))
            .to_geodetic_spherical()
            .lon;
        let drift = (lon1 - lon0).normalized_signed().degrees();
        assert!((drift + 10.0).abs() < 1e-9, "drift {drift}");
    }

    #[test]
    fn enu_up_axis_points_away_from_earth() {
        let g = Geodetic::ground(45.0, 7.0);
        let origin = g.to_ecef_spherical();
        let above = Geodetic::from_degrees(45.0, 7.0, 1000.0).to_ecef_spherical();
        let enu = Enu::from_ecef(origin, g, above);
        assert!(enu.up > 999.0 && enu.up < 1001.0);
        assert!(enu.east.abs() < 1e-6);
        assert!(enu.north.abs() < 1e-6);
    }

    #[test]
    fn enu_north_axis_points_to_higher_latitude() {
        let g = Geodetic::ground(10.0, 20.0);
        let origin = g.to_ecef_spherical();
        let norther = Geodetic::ground(10.1, 20.0).to_ecef_spherical();
        let enu = Enu::from_ecef(origin, g, norther);
        assert!(enu.north > 0.0);
        assert!(enu.east.abs() < 1.0);
    }

    #[test]
    fn spherical_round_trip() {
        let g = Geodetic::from_degrees(-23.5, 133.2, 550e3);
        let back = g.to_ecef_spherical().to_geodetic_spherical();
        assert!((back.lat.degrees() - g.lat.degrees()).abs() < 1e-9);
        assert!((back.lon.degrees() - g.lon.degrees()).abs() < 1e-9);
        assert!((back.alt_m - g.alt_m).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_wgs84_round_trip(
            lat in -89.9..89.9f64,
            lon in -179.9..179.9f64,
            alt in 0.0..2_000_000.0f64,
        ) {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let back = g.to_ecef_wgs84().to_geodetic_wgs84();
            prop_assert!((back.lat.degrees() - lat).abs() < 1e-7);
            prop_assert!((back.lon.normalized_signed().degrees() - lon).abs() < 1e-7);
            prop_assert!((back.alt_m - alt).abs() < 1e-2);
        }

        #[test]
        fn prop_eci_ecef_round_trip(
            x in -1e7..1e7f64, y in -1e7..1e7f64, z in -1e7..1e7f64,
            g in 0.0..360.0f64,
        ) {
            let gmst = Angle::from_degrees(g);
            let p = Ecef::new(x, y, z);
            prop_assert!(p.0.distance(p.to_eci(gmst).to_ecef(gmst).0) < 1e-5);
        }

        #[test]
        fn prop_enu_range_equals_chord_distance(
            lat in -80.0..80.0f64, lon in -180.0..180.0f64,
            lat2 in -80.0..80.0f64, lon2 in -180.0..180.0f64,
            alt2 in 0.0..2e6f64,
        ) {
            let g = Geodetic::ground(lat, lon);
            let origin = g.to_ecef_spherical();
            let target = Geodetic::from_degrees(lat2, lon2, alt2).to_ecef_spherical();
            let enu = Enu::from_ecef(origin, g, target);
            prop_assert!((enu.range_m() - origin.distance_m(target)).abs() < 1e-4);
        }
    }
}
