//! Ground-to-satellite look geometry: elevation, azimuth, slant range, and
//! the coverage envelope implied by a minimum elevation angle.
//!
//! These functions implement the geometry behind every figure of the paper:
//! a satellite is *reachable* from a ground point when its elevation above
//! the local horizon is at least the constellation's minimum elevation
//! angle, and the propagation latency is `slant_range / c`.

use crate::angle::Angle;
use crate::consts::{EARTH_RADIUS_MEAN_M, SPEED_OF_LIGHT_M_S};
use crate::coords::{Ecef, Enu, Geodetic};
use serde::{Deserialize, Serialize};

/// Elevation and azimuth of a target as seen from a ground point, plus the
/// slant range between them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LookAngles {
    /// Elevation above the local horizon; negative when below it.
    pub elevation: Angle,
    /// Azimuth clockwise from north, normalized to `[0, 2π)`.
    pub azimuth: Angle,
    /// Straight-line distance to the target, meters.
    pub range_m: f64,
}

impl LookAngles {
    /// Computes look angles from a ground point to a target.
    ///
    /// `ground` is the geodetic ground point, `ground_ecef` its ECEF
    /// position, and `target` the target's ECEF position, all under the
    /// same Earth model.
    pub fn compute(ground: Geodetic, ground_ecef: Ecef, target: Ecef) -> LookAngles {
        let enu = Enu::from_ecef(ground_ecef, ground, target);
        let horiz = (enu.east * enu.east + enu.north * enu.north).sqrt();
        LookAngles {
            elevation: Angle::from_radians(enu.up.atan2(horiz)),
            azimuth: Angle::from_radians(enu.east.atan2(enu.north)).normalized(),
            range_m: enu.range_m(),
        }
    }

    /// One-way propagation delay over the slant range, seconds.
    pub fn propagation_delay_s(&self) -> f64 {
        self.range_m / SPEED_OF_LIGHT_M_S
    }

    /// Round-trip propagation time over the slant range, milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        2.0 * self.propagation_delay_s() * 1e3
    }
}

/// Maximum slant range (meters) from a ground point to a satellite at
/// `altitude_m`, when the satellite must be at least `min_elevation` above
/// the horizon. Spherical Earth.
///
/// Derivation (law of cosines in the Earth-center / ground / satellite
/// triangle): `d = sqrt((R+h)² − R²cos²ε) − R·sinε`.
pub fn max_slant_range_m(altitude_m: f64, min_elevation: Angle) -> f64 {
    let r = EARTH_RADIUS_MEAN_M;
    let rh = r + altitude_m;
    let (se, ce) = min_elevation.sin_cos();
    (rh * rh - r * r * ce * ce).sqrt() - r * se
}

/// Earth-central angle (radians) of the coverage cone of a satellite at
/// `altitude_m` with minimum elevation `min_elevation`: the maximum angle,
/// at the Earth's center, between the sub-satellite point and a ground
/// point that can still see the satellite. Spherical Earth.
pub fn coverage_central_angle(altitude_m: f64, min_elevation: Angle) -> Angle {
    let r = EARTH_RADIUS_MEAN_M;
    let rh = r + altitude_m;
    // sin(η) = R·cos(ε) / (R+h) where η is the nadir angle at the satellite;
    // central angle λ = π/2 − ε − η.
    let eta = (r * min_elevation.cos() / rh).asin();
    Angle::from_radians(std::f64::consts::FRAC_PI_2 - min_elevation.radians() - eta)
}

/// Ground radius of the coverage footprint (along the surface), meters.
pub fn coverage_ground_radius_m(altitude_m: f64, min_elevation: Angle) -> f64 {
    coverage_central_angle(altitude_m, min_elevation).radians() * EARTH_RADIUS_MEAN_M
}

/// Round-trip propagation time over a straight-line distance, milliseconds.
pub fn rtt_ms_for_distance(distance_m: f64) -> f64 {
    2.0 * distance_m / SPEED_OF_LIGHT_M_S * 1e3
}

/// Quick visibility predicate on the spherical Earth model: true when the
/// satellite at ECEF `sat` is at least `min_elevation` above the horizon of
/// the ground point `ground`/`ground_ecef`.
///
/// Implemented as a dot-product threshold rather than a full ENU transform:
/// elevation ε satisfies `sin ε = (d · û) / |d|` with `û` the local up
/// direction, which for the spherical model is simply the normalized ground
/// position.
pub fn is_visible_spherical(ground_ecef: Ecef, sat: Ecef, min_elevation: Angle) -> bool {
    let up = ground_ecef.0.normalized();
    let d = sat.0 - ground_ecef.0;
    let range = d.norm();
    if range == 0.0 {
        return false;
    }
    d.dot(up) >= range * min_elevation.sin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ground_at(lat: f64, lon: f64) -> (Geodetic, Ecef) {
        let g = Geodetic::ground(lat, lon);
        (g, g.to_ecef_spherical())
    }

    #[test]
    fn satellite_at_zenith_has_ninety_degree_elevation() {
        let (g, ge) = ground_at(30.0, 40.0);
        let sat = Geodetic::from_degrees(30.0, 40.0, 550e3).to_ecef_spherical();
        let look = LookAngles::compute(g, ge, sat);
        assert!((look.elevation.degrees() - 90.0).abs() < 1e-6);
        assert!((look.range_m - 550e3).abs() < 1.0);
    }

    #[test]
    fn zenith_rtt_at_starlink_altitude_is_about_3_7_ms() {
        // 2 × 550 km / c ≈ 3.67 ms — the paper's "~4 ms to the nearest
        // satellite at most latitudes".
        let (g, ge) = ground_at(0.0, 0.0);
        let sat = Geodetic::from_degrees(0.0, 0.0, 550e3).to_ecef_spherical();
        let look = LookAngles::compute(g, ge, sat);
        assert!((look.rtt_ms() - 3.669).abs() < 0.01);
    }

    #[test]
    fn azimuth_of_due_north_target() {
        let (g, ge) = ground_at(0.0, 0.0);
        let sat = Geodetic::from_degrees(5.0, 0.0, 550e3).to_ecef_spherical();
        let look = LookAngles::compute(g, ge, sat);
        assert!(look.azimuth.degrees().abs() < 1e-6);
    }

    #[test]
    fn azimuth_of_due_east_target() {
        let (g, ge) = ground_at(0.0, 0.0);
        let sat = Geodetic::from_degrees(0.0, 5.0, 550e3).to_ecef_spherical();
        let look = LookAngles::compute(g, ge, sat);
        assert!((look.azimuth.degrees() - 90.0).abs() < 1e-6);
    }

    #[test]
    fn max_slant_range_at_zenith_is_altitude() {
        let d = max_slant_range_m(550e3, Angle::from_degrees(90.0));
        assert!((d - 550e3).abs() < 1e-6);
    }

    #[test]
    fn max_slant_range_at_25_deg_for_starlink_shell() {
        // Known value: 550 km altitude, 25° min elevation → ≈ 1123 km.
        let d = max_slant_range_m(550e3, Angle::from_degrees(25.0));
        assert!((d / 1e3 - 1123.0).abs() < 2.0, "{}", d / 1e3);
    }

    #[test]
    fn farthest_reachable_high_shell_matches_paper_16ms() {
        // Paper Fig. 1: the farthest directly reachable Starlink satellite
        // is within 16 ms RTT. The worst case is the 1325 km shell at the
        // minimum elevation.
        let d = max_slant_range_m(1325e3, Angle::from_degrees(25.0));
        let rtt = rtt_ms_for_distance(d);
        assert!(rtt < 16.5, "rtt {rtt}");
        assert!(rtt > 14.0, "rtt {rtt}");
    }

    #[test]
    fn coverage_radius_shrinks_with_higher_min_elevation() {
        let lo = coverage_ground_radius_m(550e3, Angle::from_degrees(25.0));
        let hi = coverage_ground_radius_m(550e3, Angle::from_degrees(40.0));
        assert!(lo > hi);
    }

    #[test]
    fn visibility_predicate_agrees_with_look_angles() {
        let (g, ge) = ground_at(47.0, 8.0);
        let min_el = Angle::from_degrees(25.0);
        for dlat in [-20.0, -10.0, -5.0, 0.0, 5.0, 10.0, 20.0] {
            let sat = Geodetic::from_degrees(47.0 + dlat, 8.0, 550e3).to_ecef_spherical();
            let look = LookAngles::compute(g, ge, sat);
            assert_eq!(
                is_visible_spherical(ge, sat, min_el),
                look.elevation >= min_el,
                "dlat {dlat}: elevation {}",
                look.elevation
            );
        }
    }

    proptest! {
        #[test]
        fn prop_max_slant_range_monotone_in_elevation(
            alt in 300e3..2000e3f64,
            e1 in 0.0..89.0f64,
            delta in 0.01..10.0f64,
        ) {
            prop_assume!(e1 + delta <= 90.0);
            let lo = max_slant_range_m(alt, Angle::from_degrees(e1));
            let hi = max_slant_range_m(alt, Angle::from_degrees(e1 + delta));
            prop_assert!(lo > hi);
        }

        #[test]
        fn prop_slant_range_bounded_by_altitude_and_horizon(
            alt in 300e3..2000e3f64,
            e in 0.0..90.0f64,
        ) {
            let d = max_slant_range_m(alt, Angle::from_degrees(e));
            prop_assert!(d >= alt - 1.0);
            // Horizon distance at ε=0 is the absolute maximum.
            let horizon = max_slant_range_m(alt, Angle::ZERO);
            prop_assert!(d <= horizon + 1.0);
        }

        #[test]
        fn prop_visibility_predicate_matches_enu_elevation(
            glat in -80.0..80.0f64, glon in -180.0..180.0f64,
            slat in -80.0..80.0f64, slon in -180.0..180.0f64,
            alt in 300e3..2000e3f64,
            min_el in 5.0..60.0f64,
        ) {
            let g = Geodetic::ground(glat, glon);
            let ge = g.to_ecef_spherical();
            let sat = Geodetic::from_degrees(slat, slon, alt).to_ecef_spherical();
            let look = LookAngles::compute(g, ge, sat);
            let min_elevation = Angle::from_degrees(min_el);
            // Skip razor-edge cases where float noise flips the comparison.
            prop_assume!((look.elevation.degrees() - min_el).abs() > 1e-6);
            prop_assert_eq!(
                is_visible_spherical(ge, sat, min_elevation),
                look.elevation >= min_elevation
            );
        }
    }
}
