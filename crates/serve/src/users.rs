//! Synthetic user populations, population-weighted from the world-cities
//! catalog.
//!
//! A "user" is just a [`GroundEndpoint`] at a plausible place: a real
//! city drawn proportionally to population, plus a small uniform offset
//! so a million users don't collapse onto ~600 exact points. Generation
//! is a pure function of `(count, spread_deg, seed)` — the serving
//! benchmarks lean on that for their byte-identity gates.

use leo_cities::synth::SplitMix64;
use leo_cities::WorldCities;
use leo_geo::Geodetic;
use leo_net::routing::GroundEndpoint;

/// Default seed for user synthesis. Changing it reshuffles every serve
/// benchmark's population (and its committed baseline numbers), so don't.
pub const USER_SEED: u64 = 0x5EE_D05E_2026;

/// Synthesizes `count` users around population-weighted city anchors,
/// each offset uniformly by up to `±spread_deg` in latitude and
/// longitude (longitude wrapping at the antimeridian, latitude clamped
/// away from the poles). Endpoint indices run `0..count` in generation
/// order.
pub fn synthesize_users(count: usize, spread_deg: f64, seed: u64) -> Vec<GroundEndpoint> {
    let catalog = WorldCities::load();
    let cities = catalog.all();
    assert!(!cities.is_empty(), "city catalog must not be empty");

    // Cumulative population weights for proportional sampling.
    let mut cumulative = Vec::with_capacity(cities.len());
    let mut acc = 0u64;
    for c in cities {
        acc += c.population;
        cumulative.push(acc);
    }
    let total = acc.max(1);

    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let pick = (rng.next_f64() * total as f64) as u64;
        let idx = cumulative
            .partition_point(|&c| c <= pick)
            .min(cities.len() - 1);
        let anchor = &cities[idx];
        let lat = (anchor.lat_deg + rng.range(-spread_deg, spread_deg)).clamp(-89.0, 89.0);
        let mut lon = anchor.lon_deg + rng.range(-spread_deg, spread_deg);
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        out.push(GroundEndpoint::new(i as u32, Geodetic::ground(lat, lon)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = synthesize_users(500, 2.0, USER_SEED);
        let b = synthesize_users(500, 2.0, USER_SEED);
        assert_eq!(a, b);
        let c = synthesize_users(500, 2.0, USER_SEED + 1);
        assert_ne!(a, c, "a different seed must reshuffle the population");
    }

    #[test]
    fn users_stay_on_the_globe_and_indexed_in_order() {
        let users = synthesize_users(1000, 2.0, USER_SEED);
        assert_eq!(users.len(), 1000);
        for (i, u) in users.iter().enumerate() {
            assert_eq!(u.index, i as u32);
            assert!(u.geodetic.lat.degrees().abs() <= 89.0);
            assert!(u.geodetic.lon.degrees().abs() <= 180.0);
        }
    }

    #[test]
    fn population_weighting_concentrates_users_in_city_bands() {
        // Most of the catalog's population lives in the northern
        // mid-latitudes; a population-weighted draw must reflect that.
        let users = synthesize_users(2000, 2.0, USER_SEED);
        let northern = users
            .iter()
            .filter(|u| u.geodetic.lat.degrees() > 0.0)
            .count();
        assert!(northern > users.len() / 2);
    }
}
