//! Latitude-band sharding of a user population.
//!
//! Users in the same latitude band see largely the same slice of the
//! constellation (the visibility index is banded the same way), so a
//! shard is the natural batching unit: one worker answers a whole shard
//! against one snapshot view, and the batched multi-source frontier of
//! the routing engine validates a shard in one settled pass. Sharding is
//! a pure function of the user list, so every thread count walks the
//! same shards in the same order.

use leo_net::routing::GroundEndpoint;
use std::ops::Range;

/// A user population grouped into contiguous latitude-band shards.
#[derive(Debug, Clone)]
pub struct ShardedUsers {
    /// All users, reordered so each shard is a contiguous slice. Endpoint
    /// indices are rewritten to the new order (`users[i].index == i`), so
    /// a shard slice is directly attachable as a ground group.
    users: Vec<GroundEndpoint>,
    /// Half-open ranges into `users`, one per shard, in south-to-north
    /// band order (sub-split where a band exceeds the shard cap).
    shards: Vec<Range<usize>>,
    band_deg: f64,
}

impl ShardedUsers {
    /// Groups `users` into latitude bands `band_deg` degrees tall,
    /// splitting any band with more than `max_shard` users into equal
    /// contiguous sub-shards. The grouping sort is stable, so users keep
    /// their generation order within a band.
    ///
    /// # Panics
    /// Panics when `band_deg` is not positive or `max_shard` is zero.
    pub fn build(mut users: Vec<GroundEndpoint>, band_deg: f64, max_shard: usize) -> Self {
        assert!(band_deg > 0.0, "band_deg must be positive");
        assert!(max_shard > 0, "max_shard must be positive");
        let band_of = |u: &GroundEndpoint| ((u.geodetic.lat.degrees() + 90.0) / band_deg) as i32;
        users.sort_by_key(|u| (band_of(u), u.index));
        for (i, u) in users.iter_mut().enumerate() {
            u.index = i as u32;
        }
        let mut shards = Vec::new();
        let mut start = 0;
        while start < users.len() {
            let band = band_of(&users[start]);
            let mut end = start;
            while end < users.len() && band_of(&users[end]) == band {
                end += 1;
            }
            // Split oversized bands into equal contiguous pieces.
            let band_len = end - start;
            let pieces = band_len.div_ceil(max_shard);
            let piece_len = band_len.div_ceil(pieces);
            let mut s = start;
            while s < end {
                let e = (s + piece_len).min(end);
                shards.push(s..e);
                s = e;
            }
            start = end;
        }
        leo_obs::counter!("serve.shards_built").add(shards.len() as u64);
        ShardedUsers {
            users,
            shards,
            band_deg,
        }
    }

    /// Total user count across all shards.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The band height the shards were built with, degrees.
    pub fn band_deg(&self) -> f64 {
        self.band_deg
    }

    /// The users of shard `i`, a contiguous slice in shard order.
    pub fn shard(&self, i: usize) -> &[GroundEndpoint] {
        &self.users[self.shards[i].clone()]
    }

    /// The half-open user range of shard `i`.
    pub fn shard_range(&self, i: usize) -> Range<usize> {
        self.shards[i].clone()
    }

    /// All users in shard order (`users()[i].index == i`).
    pub fn users(&self) -> &[GroundEndpoint] {
        &self.users
    }

    /// Iterates `(shard_index, users)` pairs in shard order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[GroundEndpoint])> + '_ {
        (0..self.num_shards()).map(move |i| (i, self.shard(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::{synthesize_users, USER_SEED};

    fn sharded(n: usize, band: f64, cap: usize) -> ShardedUsers {
        ShardedUsers::build(synthesize_users(n, 2.0, USER_SEED), band, cap)
    }

    #[test]
    fn shards_partition_the_population() {
        let s = sharded(3000, 4.0, 256);
        assert_eq!(s.num_users(), 3000);
        let covered: usize = (0..s.num_shards()).map(|i| s.shard(i).len()).sum();
        assert_eq!(covered, 3000);
        // Contiguous, in order, no overlap.
        let mut next = 0;
        for i in 0..s.num_shards() {
            let r = s.shard_range(i);
            assert_eq!(r.start, next);
            assert!(r.end > r.start);
            next = r.end;
        }
        assert_eq!(next, 3000);
    }

    #[test]
    fn indices_are_rewritten_to_shard_order() {
        let s = sharded(1000, 4.0, 100);
        for (i, u) in s.users().iter().enumerate() {
            assert_eq!(u.index, i as u32);
        }
    }

    #[test]
    fn bands_are_monotone_south_to_north() {
        let s = sharded(2000, 6.0, 10_000);
        let band = |u: &GroundEndpoint| ((u.geodetic.lat.degrees() + 90.0) / 6.0) as i32;
        for w in s.users().windows(2) {
            assert!(band(&w[0]) <= band(&w[1]));
        }
    }

    #[test]
    fn no_shard_exceeds_the_cap() {
        let s = sharded(5000, 8.0, 128);
        for i in 0..s.num_shards() {
            assert!(s.shard(i).len() <= 128, "shard {i} over cap");
        }
    }

    #[test]
    fn sharding_is_deterministic() {
        let a = sharded(1500, 4.0, 200);
        let b = sharded(1500, 4.0, 200);
        assert_eq!(a.users(), b.users());
        assert_eq!(a.num_shards(), b.num_shards());
        for i in 0..a.num_shards() {
            assert_eq!(a.shard_range(i), b.shard_range(i));
        }
    }
}
