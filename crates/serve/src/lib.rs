//! # leo-serve
//!
//! The planet-scale serving layer: "best server for a user at
//! (lat, lon), now", answered for millions of synthetic users per
//! snapshot.
//!
//! The paper's thought experiment puts the compute *in* the
//! constellation, which turns server selection into a planetary-scale
//! query problem: every user wants the nearest orbital server at every
//! instant, over a mesh whose geometry never stops moving. This crate
//! assembles the pieces the lower layers provide into that serving
//! primitive:
//!
//! - [`users`] synthesizes population-weighted user sets from the
//!   world-cities catalog (deterministic in the seed);
//! - [`shard`] groups them into latitude-band shards — the batching
//!   unit that matches the visibility index's banding;
//! - [`sweep`] answers every shard per snapshot on **delta-refreshed**
//!   routing weights, asserting on every instant that the incremental
//!   refresh is bit-identical to the full one and (in validation mode)
//!   that the engine's batched multi-source frontier reproduces the
//!   per-user answers exactly.
//!
//! Results are thread-count-invariant by construction; `serve_bench`
//! in `leo-bench` wraps this into the CI-gated benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shard;
pub mod sweep;
pub mod users;

pub use shard::ShardedUsers;
pub use sweep::{ServeConfig, ServeEngine, SnapshotStats, SweepReport};
pub use users::{synthesize_users, USER_SEED};
