//! The serve sweep: nearest-server answers for a sharded user
//! population over a snapshot schedule, on delta-refreshed routing
//! state.
//!
//! **Frontier-primary.** Each shard's assignments come from one settled
//! satellite-major pass ([`SnapshotView::settle_nearest_servers`]) per
//! snapshot — candidate satellites challenge the shard's
//! longitude-sorted users inside their coverage wedges — instead of one
//! visibility scan per user. The settled pass is bit-identical to the
//! per-user scans by construction (conservative prunes, exact per-pair
//! tests, order-independent arg-min; see `leo_net::frontier`), and the
//! demoted per-user scan survives as an opt-in, sampled validation mode
//! ([`ServeConfig::validate_every`]) that re-derives whole shards and
//! asserts equality.
//!
//! **Warm-started across snapshots.** Each shard keeps its settled
//! labels. When a snapshot's positions differ from the previous one by
//! only a subset of satellites (bitwise compare) under an equal fault
//! plan, the pass refreshes incrementally — stale winners rescan, moved
//! satellites re-challenge — and with nothing moved it reuses the labels
//! outright (`serve.frontier_reuse`). Any doubt (first snapshot, plan
//! change, wholesale motion) falls back to a cold settle; every path
//! yields the same bytes, which is what the sampled validation and the
//! property tests prove.
//!
//! Per snapshot the engine still runs one incremental weight refresh
//! ([`RoutingEngine::refresh_delta_masked`]) on the main thread and
//! **asserts** the result bit-identical to the view's full refresh —
//! the serving layer never trades correctness for an incremental path's
//! speed, it proves the two equal on every instant it serves. In
//! validation mode the batched multi-source **arg-min** frontier
//! ([`RoutingEngine::multi_source_ground_frontier_into`]) additionally
//! re-derives the sampled shard's winners and delays through the
//! delta-refreshed weights as a third, independent proof.
//!
//! Everything reported in [`SnapshotStats`] is a pure function of the
//! population and the schedule: thread counts change wall-clock, never
//! bytes.
//!
//! [`RoutingEngine::refresh_delta_masked`]: leo_net::RoutingEngine::refresh_delta_masked
//! [`RoutingEngine::multi_source_ground_frontier_into`]: leo_net::RoutingEngine::multi_source_ground_frontier_into

use crate::shard::ShardedUsers;
use leo_constellation::SatId;
use leo_core::{InOrbitService, SnapshotView};
use leo_net::engine::with_thread_arena;
use leo_net::fault::FaultPlan;
use leo_net::{GroundSet, IslWeights, NearestState, VisibleSat};
use leo_sim::parallel_map;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// Knobs of a serve sweep. Sharding and validation cadence are part of
/// the result-determinism contract; threads are not.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Latitude band height for sharding, degrees.
    pub band_deg: f64,
    /// Maximum users per shard (bands above this split).
    pub max_shard: usize,
    /// Worker-pool size for the per-shard fan-out.
    pub threads: usize,
    /// Validation cadence: every `validate_every`-th snapshot, re-derive
    /// one shard through the demoted per-user scans *and* the batched
    /// multi-source arg-min frontier, asserting both bit-identical to
    /// the settled answers. `1` validates every snapshot, `0` disables
    /// validation entirely. Observation-only: the reported bytes are
    /// identical at any cadence.
    pub validate_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            band_deg: 4.0,
            max_shard: 65_536,
            threads: leo_sim::default_threads(),
            validate_every: 1,
        }
    }
}

/// Aggregate serving stats at one snapshot. Every field is independent
/// of the thread count — these rows are what the CI byte-identity gate
/// diffs.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SnapshotStats {
    /// Snapshot time, seconds.
    pub time_s: f64,
    /// Users with at least one visible (non-faulted) server.
    pub served: u64,
    /// Users with no server in view.
    pub unserved: u64,
    /// Users whose serving satellite changed since the previous
    /// snapshot (both instants served). Zero at the first snapshot.
    pub handoffs: u64,
    /// Mean round-trip time to the assigned server over served users,
    /// milliseconds.
    pub mean_rtt_ms: f64,
    /// FNV-1a checksum over the full `(user, server, delay)` assignment
    /// vector — a byte-identity fingerprint of every individual answer
    /// without shipping millions of rows.
    pub assignment_checksum: u64,
}

/// The outcome of a serve sweep.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SweepReport {
    /// Per-snapshot serving stats, in schedule order.
    pub snapshots: Vec<SnapshotStats>,
    /// Total nearest-server queries answered.
    pub total_queries: u64,
    /// Edges the delta refresh recomputed, summed over the sweep.
    pub delta_recomputed: u64,
    /// Edges the delta refresh skipped as provably unchanged.
    pub delta_skipped: u64,
    /// Delta refreshes that fell back to a full rebuild (the cold first
    /// snapshot, normally exactly one).
    pub delta_full_rebuilds: u64,
}

/// A user population wired to a service, ready to sweep.
pub struct ServeEngine {
    service: InOrbitService,
    users: ShardedUsers,
    /// One longitude-sorted [`GroundSet`] per shard, built once — the
    /// satellite-major pass's static half.
    sets: Vec<GroundSet>,
    config: ServeConfig,
}

/// Per-shard fold of one snapshot's answers.
struct ShardOut {
    assignments: Vec<Option<VisibleSat>>,
    served: u64,
    rtt_sum_ms: f64,
}

/// How this snapshot's settled pass relates to the previous one —
/// decided once per snapshot on the main thread, applied to every
/// shard. All variants produce identical bytes; they differ only in
/// work.
enum SettleMode {
    /// No usable prior labels (first snapshot, fault-plan change, or
    /// wholesale satellite motion): settle from scratch.
    Cold,
    /// Positions differ from the previous snapshot by exactly the
    /// flagged satellites, under an equal fault plan: refresh the
    /// prior labels incrementally (with nothing flagged, reuse them
    /// outright).
    Warm(Vec<bool>),
}

/// Warm refreshes beat cold settles only while few satellites moved;
/// past this fraction the dirty-user rescans cost more than starting
/// over. A work heuristic only — both paths produce identical bytes.
const WARM_MOVED_MAX_FRAC: f64 = 0.25;

/// Fault plans compare for warm-start purposes with empty plans
/// normalized away: an empty plan masks nothing, exactly like no plan.
fn effective_plan(plan: Option<&FaultPlan>) -> Option<&FaultPlan> {
    plan.filter(|p| !p.is_empty())
}

impl ServeEngine {
    /// Shards `users` per `config` and binds them to `service`.
    pub fn new(
        service: InOrbitService,
        users: Vec<leo_net::routing::GroundEndpoint>,
        config: ServeConfig,
    ) -> Self {
        let users = ShardedUsers::build(users, config.band_deg, config.max_shard);
        let sets = (0..users.num_shards())
            .map(|i| {
                let pts: Vec<_> = users.shard(i).iter().map(|u| u.ecef).collect();
                GroundSet::build(&pts)
            })
            .collect();
        ServeEngine {
            service,
            users,
            sets,
            config,
        }
    }

    /// The sharded population.
    pub fn users(&self) -> &ShardedUsers {
        &self.users
    }

    /// The service being swept.
    pub fn service(&self) -> &InOrbitService {
        &self.service
    }

    /// Answers every user at every instant of `times` with one settled
    /// frontier pass per shard, chaining the delta weight refresh and
    /// the shard frontiers across snapshots.
    ///
    /// # Panics
    /// Panics if the delta-refreshed weights ever diverge from the
    /// view's full refresh, or if — in validation mode — the settled
    /// frontier disagrees with the demoted per-user scans or with the
    /// multi-source arg-min frontier. All are broken-build signals, not
    /// runtime conditions to tolerate.
    pub fn sweep(&self, times: &[f64]) -> SweepReport {
        let _span = leo_obs::span!("serve.sweep_s");
        let engine = self.service.routing_engine().clone();
        let mut delta = IslWeights::default();
        let mut prev: Vec<Option<SatId>> = Vec::new();
        let mut prev_view: Option<std::sync::Arc<SnapshotView>> = None;
        let mut states: Vec<NearestState> = (0..self.users.num_shards())
            .map(|_| NearestState::default())
            .collect();
        let mut report = SweepReport {
            snapshots: Vec::with_capacity(times.len()),
            total_queries: 0,
            delta_recomputed: 0,
            delta_skipped: 0,
            delta_full_rebuilds: 0,
        };
        for (step, &t) in times.iter().enumerate() {
            let snap_t0 = leo_obs::spans_enabled().then(Instant::now);
            let view = self.service.view(t);
            // Incremental weight refresh, chained from the previous
            // instant and proven against the view's full refresh.
            let stats = match view.fault_plan() {
                Some(plan) => engine.refresh_delta_masked(view.snapshot(), plan, &mut delta),
                None => engine.refresh_delta(view.snapshot(), &mut delta),
            };
            assert!(
                delta.bits_eq(view.isl_weights()),
                "delta refresh diverged from full refresh at t={t}"
            );
            report.delta_recomputed += stats.recomputed as u64;
            report.delta_skipped += stats.skipped() as u64;
            report.delta_full_rebuilds += u64::from(stats.full_rebuild);

            let mode = settle_mode(prev_view.as_deref(), &view);

            // Fan the shards across the pool, threading each shard's
            // persistent frontier labels through the items; results come
            // back in shard order, so the fold below (and the labels
            // each shard carries into the next snapshot) are
            // thread-count-invariant.
            let items: Vec<(usize, Mutex<Option<NearestState>>)> = states
                .drain(..)
                .enumerate()
                .map(|(i, s)| (i, Mutex::new(Some(s))))
                .collect();
            let pairs = parallel_map(items, self.config.threads, |(i, cell)| {
                let mut state = cell
                    .lock()
                    .expect("shard state lock")
                    .take()
                    .expect("shard state taken once");
                let out = self.answer_shard(&view, *i, &mode, &mut state);
                (out, state)
            });
            let mut outs = Vec::with_capacity(pairs.len());
            for (out, state) in pairs {
                outs.push(out);
                states.push(state);
            }

            let mut row = SnapshotStats {
                time_s: t,
                served: 0,
                unserved: 0,
                handoffs: 0,
                mean_rtt_ms: 0.0,
                assignment_checksum: FNV_OFFSET,
            };
            let mut current: Vec<Option<SatId>> = Vec::with_capacity(self.users.num_users());
            let mut rtt_sum = 0.0;
            for out in &outs {
                row.served += out.served;
                row.unserved += out.assignments.len() as u64 - out.served;
                rtt_sum += out.rtt_sum_ms;
                for a in &out.assignments {
                    row.assignment_checksum = fnv_assignment(row.assignment_checksum, a);
                    current.push(a.map(|v| v.id));
                }
            }
            row.mean_rtt_ms = if row.served > 0 {
                rtt_sum / row.served as f64
            } else {
                0.0
            };
            if step > 0 {
                row.handoffs = prev
                    .iter()
                    .zip(&current)
                    .filter(|(p, c)| matches!((p, c), (Some(a), Some(b)) if a != b))
                    .count() as u64;
            }
            leo_obs::counter!("serve.queries").add(current.len() as u64);
            leo_obs::counter!("serve.handoffs").add(row.handoffs);
            leo_obs::counter!("serve.snapshots").incr();
            report.total_queries += current.len() as u64;

            // Per-snapshot gauges, sampled here in the sequential fold
            // (never from the shard workers) so point order — and the
            // manifest's timeseries section — is thread-count-invariant.
            leo_obs::timeseries!("serve.served").sample(t, row.served as f64);
            leo_obs::timeseries!("serve.handoffs").sample(t, row.handoffs as f64);
            leo_obs::timeseries!("serve.delta_recomputed").sample(t, stats.recomputed as f64);
            // 0 = cold settle, 1 = warm incremental refresh, 2 = label
            // reuse (warm with nothing moved) — the warm-start decay
            // curve over orbital time.
            let mode_code = match &mode {
                SettleMode::Cold => 0.0,
                SettleMode::Warm(moved) if moved.iter().any(|&m| m) => 1.0,
                SettleMode::Warm(_) => 2.0,
            };
            leo_obs::timeseries!("serve.frontier_mode").sample(t, mode_code);
            leo_obs::trace_instant("serve.snapshot");
            if let Some(t0) = snap_t0 {
                // Wall-clock series: spans-gated, excluded from the
                // determinism comparisons like every timing metric.
                leo_obs::timeseries_wall!("serve.snapshot_wall_s")
                    .sample(t, t0.elapsed().as_secs_f64());
            }

            let every = self.config.validate_every;
            if every > 0 && step % every == 0 && self.users.num_shards() > 0 {
                let k = step % self.users.num_shards();
                self.validate_shard_frontier(&view, &delta, k, &outs[k]);
            }
            prev = current;
            prev_view = Some(view);
            report.snapshots.push(row);
        }
        report
    }

    /// Answers one shard against a view via its settled frontier,
    /// timing the batch.
    fn answer_shard(
        &self,
        view: &SnapshotView,
        i: usize,
        mode: &SettleMode,
        state: &mut NearestState,
    ) -> ShardOut {
        let users = self.users.shard(i);
        let set = &self.sets[i];
        let start = Instant::now();
        let mut assignments = Vec::new();
        match mode {
            SettleMode::Cold => view.settle_nearest_servers(set, state, &mut assignments),
            SettleMode::Warm(moved) => {
                view.refresh_nearest_servers(set, moved, state, &mut assignments)
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        if !users.is_empty() {
            // Per-query latency, batch-averaged: one sample per shard
            // (the histogram's count is the shard count, not the user
            // count — documented in EXPERIMENTS.md).
            leo_obs::histogram!("serve.query_latency_s").record(elapsed / users.len() as f64);
        }
        let mut served = 0;
        let mut rtt_sum_ms = 0.0;
        for a in assignments.iter().flatten() {
            served += 1;
            rtt_sum_ms += a.rtt_ms();
        }
        ShardOut {
            assignments,
            served,
            rtt_sum_ms,
        }
    }

    /// Re-derives shard `k`'s answers two independent ways and asserts
    /// both bit-identical to the settled frontier's:
    ///
    /// 1. the demoted per-user visibility scans
    ///    ([`InOrbitService::nearest_servers_view`]) — the legacy
    ///    primary path, now validation-only;
    /// 2. the batched multi-source **arg-min** frontier over the
    ///    delta-refreshed weights: seed every satellite, settle once,
    ///    and each user's delay *and winner* must match. (ISL weights
    ///    are strictly positive, so every satellite keeps its own label
    ///    and a ground cell's winner is exactly its nearest-by-delay
    ///    satellite, ties to the lowest id — range ties and delay ties
    ///    coincide because delay is range scaled by a constant.)
    fn validate_shard_frontier(
        &self,
        view: &SnapshotView,
        delta: &IslWeights,
        k: usize,
        out: &ShardOut,
    ) {
        leo_obs::counter!("serve.frontier_validations").incr();
        let users = self.users.shard(k);
        if users.is_empty() {
            return;
        }
        let legacy = self.service.nearest_servers_view(view, users);
        assert_eq!(
            legacy.len(),
            out.assignments.len(),
            "settled frontier answered a different user count (shard {k})"
        );
        for (j, (a, b)) in legacy.iter().zip(&out.assignments).enumerate() {
            assert!(
                a == b,
                "settled frontier disagrees with per-user scan \
                 (shard {k}, user {j}: scan {a:?}, frontier {b:?})"
            );
        }
        let engine = self.service.routing_engine();
        let links = view.attach(users);
        let sources: Vec<SatId> = (0..engine.num_sats() as u32).map(SatId).collect();
        let mut delays = Vec::new();
        let mut winners = Vec::new();
        with_thread_arena(|arena| {
            engine.multi_source_ground_frontier_into(
                delta,
                &links,
                &sources,
                &mut delays,
                &mut winners,
                arena,
            );
        });
        for (j, (a, (&f, w))) in out
            .assignments
            .iter()
            .zip(delays.iter().zip(&winners))
            .enumerate()
        {
            let direct = a.map_or(f64::INFINITY, |v| v.delay_s());
            assert!(
                f.to_bits() == direct.to_bits(),
                "multi-source frontier disagrees with nearest assignment \
                 (shard {k}, user {j}: frontier {f}, direct {direct})"
            );
            assert!(
                *w == a.map(|v| v.id),
                "multi-source frontier winner disagrees with nearest assignment \
                 (shard {k}, user {j}: frontier {w:?}, direct {:?})",
                a.map(|v| v.id)
            );
        }
    }
}

/// Decides how this snapshot's settled pass may reuse the previous
/// snapshot's labels. Conservative by construction: anything but
/// "same fault plan, same satellite count, few satellites moved
/// (bitwise)" falls back to a cold settle.
fn settle_mode(prev: Option<&SnapshotView>, view: &SnapshotView) -> SettleMode {
    let Some(pv) = prev else {
        leo_obs::counter!("serve.frontier_cold_settles").incr();
        return SettleMode::Cold;
    };
    if effective_plan(pv.fault_plan()) != effective_plan(view.fault_plan()) {
        leo_obs::counter!("serve.frontier_cold_settles").incr();
        return SettleMode::Cold;
    }
    let a = pv.snapshot();
    let b = view.snapshot();
    if a.len() != b.len() {
        leo_obs::counter!("serve.frontier_cold_settles").incr();
        return SettleMode::Cold;
    }
    let mut moved = vec![false; b.len()];
    let mut count = 0usize;
    for (m, (pe, qe)) in moved
        .iter_mut()
        .zip(a.positions.iter().zip(b.positions.iter()))
    {
        let (p, q) = (pe.0, qe.0);
        if p.x.to_bits() != q.x.to_bits()
            || p.y.to_bits() != q.y.to_bits()
            || p.z.to_bits() != q.z.to_bits()
        {
            *m = true;
            count += 1;
        }
    }
    if count == 0 {
        leo_obs::counter!("serve.frontier_reuse").incr();
        SettleMode::Warm(moved)
    } else if (count as f64) <= WARM_MOVED_MAX_FRAC * b.len() as f64 {
        leo_obs::counter!("serve.frontier_warm_refreshes").incr();
        SettleMode::Warm(moved)
    } else {
        leo_obs::counter!("serve.frontier_cold_settles").incr();
        SettleMode::Cold
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds one assignment into the checksum: the serving satellite (or a
/// sentinel for unserved) and the exact delay bits.
fn fnv_assignment(h: u64, a: &Option<VisibleSat>) -> u64 {
    match a {
        Some(v) => fnv_u64(fnv_u64(h, u64::from(v.id.0)), v.delay_s().to_bits()),
        None => fnv_u64(h, u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::users::{synthesize_users, USER_SEED};
    use leo_constellation::presets;
    use leo_net::FaultConfig;

    fn quick_config(threads: usize) -> ServeConfig {
        ServeConfig {
            band_deg: 6.0,
            max_shard: 512,
            threads,
            validate_every: 1,
        }
    }

    fn population(n: usize) -> Vec<leo_net::routing::GroundEndpoint> {
        synthesize_users(n, 2.0, USER_SEED)
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let times: Vec<f64> = (0..3).map(|i| i as f64 * 60.0).collect();
        let one = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(2000),
            quick_config(1),
        )
        .sweep(&times);
        let many = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(2000),
            quick_config(8),
        )
        .sweep(&times);
        assert_eq!(one, many);
        assert_eq!(one.total_queries, 6000);
        assert_eq!(one.delta_full_rebuilds, 1, "only the cold start rebuilds");
    }

    #[test]
    fn validation_cadence_never_changes_the_bytes() {
        // Validation is observation-only: any cadence — including off —
        // reports identical bytes. (This is also what licenses sampling
        // it down in full bench runs.)
        let times: Vec<f64> = (0..4).map(|i| i as f64 * 60.0).collect();
        let reports: Vec<SweepReport> = [0usize, 1, 3]
            .iter()
            .map(|&every| {
                let mut cfg = quick_config(4);
                cfg.validate_every = every;
                ServeEngine::new(
                    InOrbitService::new(presets::starlink_550_only()),
                    population(1500),
                    cfg,
                )
                .sweep(&times)
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_plain_service() {
        let times = [0.0, 90.0];
        let plain = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(1500),
            quick_config(4),
        )
        .sweep(&times);
        let faulted = ServeEngine::new(
            InOrbitService::with_faults(presets::starlink_550_only(), FaultConfig::none()),
            population(1500),
            quick_config(4),
        )
        .sweep(&times);
        assert_eq!(plain, faulted);
    }

    #[test]
    fn dead_satellites_never_serve() {
        let mut deaths = vec![f64::INFINITY; 400];
        for d in deaths.iter_mut().take(400).skip(390) {
            *d = 0.0;
        }
        let cfg = FaultConfig {
            schedule: Some(leo_net::FailureSchedule::from_death_times(deaths)),
            ..FaultConfig::none()
        };
        let service = InOrbitService::with_faults(presets::starlink_550_only(), cfg);
        let engine = ServeEngine::new(service, population(1200), quick_config(4));
        // The sweep's internal frontier validation and delta assertions
        // all run under the fault plan.
        let report = engine.sweep(&[0.0, 60.0]);
        assert_eq!(report.snapshots.len(), 2);
        // Killing satellites can only lose coverage relative to plain.
        let plain = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(1200),
            quick_config(4),
        )
        .sweep(&[0.0, 60.0]);
        for (f, p) in report.snapshots.iter().zip(&plain.snapshots) {
            assert!(f.served <= p.served);
        }
    }

    #[test]
    fn empty_population_sweeps_cleanly() {
        let report = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(0),
            quick_config(2),
        )
        .sweep(&[0.0, 60.0]);
        assert_eq!(report.total_queries, 0);
        for row in &report.snapshots {
            assert_eq!(row.served, 0);
            assert_eq!(row.unserved, 0);
        }
    }

    #[test]
    fn handoffs_are_zero_on_a_static_schedule() {
        let engine = ServeEngine::new(
            InOrbitService::new(presets::starlink_550_only()),
            population(800),
            quick_config(2),
        );
        let n_edges = engine.service().routing_engine().num_edges() as u64;
        let report = engine.sweep(&[120.0, 120.0]);
        assert_eq!(report.snapshots[0].handoffs, 0);
        assert_eq!(
            report.snapshots[1].handoffs, 0,
            "identical snapshots cannot hand off"
        );
        assert_eq!(
            report.snapshots[0].assignment_checksum,
            report.snapshots[1].assignment_checksum
        );
        // The repeated instant is where both incremental paths pay off:
        // the cold start rebuilds every edge and settles every shard,
        // the second snapshot recomputes no edges and reuses every
        // shard's settled frontier labels outright.
        assert_eq!(report.delta_full_rebuilds, 1);
        assert_eq!(report.delta_recomputed, n_edges);
        assert_eq!(report.delta_skipped, n_edges);
    }
}
