//! End-to-end routing over the constellation: graph construction at a
//! snapshot and the ground–ground / ground–satellite path helpers used by
//! the meetup-server experiments (Fig. 3).

use crate::graph::{NetworkGraph, NodeId, Path};
use crate::isl::IslTopology;
use crate::visibility::visible_sats;
use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::{Ecef, Geodetic};

/// A ground endpoint to wire into the network graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundEndpoint {
    /// Caller-assigned index; becomes [`NodeId::Ground`].
    pub index: u32,
    /// Geodetic position.
    pub geodetic: Geodetic,
    /// Spherical-model ECEF position (cache of `geodetic.to_ecef_spherical()`).
    pub ecef: Ecef,
}

impl GroundEndpoint {
    /// Creates an endpoint from a geodetic position.
    pub fn new(index: u32, geodetic: Geodetic) -> Self {
        GroundEndpoint {
            index,
            geodetic,
            ecef: geodetic.to_ecef_spherical(),
        }
    }

    /// The endpoint's node id.
    pub fn node(&self) -> NodeId {
        NodeId::Ground(self.index)
    }
}

/// Builds the time-`t` network graph: all usable ISLs plus an up/down link
/// from every ground endpoint to every satellite it can currently see.
///
/// Edge weights are one-way propagation delays; the paper's latency
/// numbers account for propagation only (§3.1), so no processing or
/// queueing terms are added here. (The DES layer models serialization
/// when transfer *times* rather than latencies are needed.)
pub fn build_graph(
    constellation: &Constellation,
    topology: &IslTopology,
    snapshot: &Snapshot,
    grounds: &[GroundEndpoint],
) -> NetworkGraph {
    let mut net = NetworkGraph::new();
    // Satellites + ISLs.
    for sat in constellation.satellites() {
        net.add_node(NodeId::Sat(sat.id));
    }
    for (edge, len) in topology.active_edges(snapshot) {
        net.add_edge_distance(NodeId::Sat(edge.a), NodeId::Sat(edge.b), len);
    }
    // Ground endpoints and their visible satellites.
    for gp in grounds {
        net.add_node(gp.node());
        for v in visible_sats(constellation, snapshot, gp.geodetic, gp.ecef) {
            net.add_edge_distance(gp.node(), NodeId::Sat(v.id), v.range_m);
        }
    }
    net
}

/// Shortest path between two ground endpoints through the constellation.
pub fn ground_to_ground(
    graph: &NetworkGraph,
    a: &GroundEndpoint,
    b: &GroundEndpoint,
) -> Option<Path> {
    graph.shortest_path(a.node(), b.node())
}

/// Shortest path from a ground endpoint to a specific satellite (possibly
/// relayed over ISLs when the satellite is not directly visible).
pub fn ground_to_sat(graph: &NetworkGraph, a: &GroundEndpoint, sat: SatId) -> Option<Path> {
    graph.shortest_path(a.node(), NodeId::Sat(sat))
}

/// Shortest path between two satellites over the ISL mesh.
pub fn sat_to_sat(graph: &NetworkGraph, a: SatId, b: SatId) -> Option<Path> {
    graph.shortest_path(NodeId::Sat(a), NodeId::Sat(b))
}

/// One-way delays from a ground endpoint to *every* satellite, indexed by
/// `SatId.0`; `f64::INFINITY` for unreachable satellites. This is the bulk
/// query behind meetup-server selection.
pub fn delays_to_all_sats(
    graph: &NetworkGraph,
    constellation: &Constellation,
    a: &GroundEndpoint,
) -> Vec<f64> {
    let mut delays = vec![f64::INFINITY; constellation.num_satellites()];
    for (node, d) in graph.shortest_paths_from(a.node()) {
        if let NodeId::Sat(s) = node {
            delays[s.0 as usize] = d;
        }
    }
    delays
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn setup() -> (Constellation, IslTopology) {
        let c = presets::starlink_550_only();
        let topo = IslTopology::plus_grid(&c);
        (c, topo)
    }

    fn endpoint(i: u32, lat: f64, lon: f64) -> GroundEndpoint {
        GroundEndpoint::new(i, Geodetic::ground(lat, lon))
    }

    #[test]
    fn nearby_cities_route_with_few_hops() {
        let (c, topo) = setup();
        let snap = c.snapshot(0.0);
        let a = endpoint(0, 47.38, 8.54); // Zurich
        let b = endpoint(1, 48.86, 2.35); // Paris
        let graph = build_graph(&c, &topo, &snap, &[a, b]);
        let p = ground_to_ground(&graph, &a, &b).expect("path");
        // Zurich-Paris is ~490 km; via one or two satellites the RTT stays
        // below ~25 ms.
        assert!(p.rtt_ms() < 25.0, "rtt {}", p.rtt_ms());
        assert!(p.hops() >= 2, "must go up and down");
    }

    #[test]
    fn transatlantic_route_beats_geo_by_far() {
        let (c, topo) = setup();
        let snap = c.snapshot(0.0);
        let a = endpoint(0, 51.51, -0.13); // London
        let b = endpoint(1, 40.71, -74.01); // New York
        let graph = build_graph(&c, &topo, &snap, &[a, b]);
        let p = ground_to_ground(&graph, &a, &b).expect("path");
        // Fiber great-circle floor is ~37 ms RTT; LEO path should be in
        // the 40-70 ms band, far below the ~480 ms GEO bounce.
        assert!(p.rtt_ms() > 35.0 && p.rtt_ms() < 90.0, "rtt {}", p.rtt_ms());
    }

    #[test]
    fn path_endpoints_are_the_requested_nodes() {
        let (c, topo) = setup();
        let snap = c.snapshot(300.0);
        let a = endpoint(0, 9.06, 7.49); // Abuja
        let b = endpoint(1, 3.87, 11.52); // Yaounde
        let graph = build_graph(&c, &topo, &snap, &[a, b]);
        let p = ground_to_ground(&graph, &a, &b).unwrap();
        assert_eq!(p.nodes.first(), Some(&a.node()));
        assert_eq!(p.nodes.last(), Some(&b.node()));
        // All intermediate nodes are satellites.
        for n in &p.nodes[1..p.nodes.len() - 1] {
            assert!(matches!(n, NodeId::Sat(_)));
        }
    }

    #[test]
    fn ground_to_sat_reaches_non_visible_satellites_via_isls() {
        let (c, topo) = setup();
        let snap = c.snapshot(0.0);
        let a = endpoint(0, 0.0, 0.0);
        let graph = build_graph(&c, &topo, &snap, &[a]);
        let delays = delays_to_all_sats(&graph, &c, &a);
        // Every satellite in the connected shell is reachable.
        assert!(delays.iter().all(|d| d.is_finite()));
        // And the direct ones are the nearest.
        let direct = visible_sats(&c, &snap, a.geodetic, a.ecef);
        let min_direct = direct
            .iter()
            .map(|v| v.delay_s())
            .fold(f64::INFINITY, f64::min);
        let global_min = delays.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((global_min - min_direct).abs() < 1e-12);
    }

    #[test]
    fn sat_to_sat_paths_ride_the_isl_mesh() {
        let (c, topo) = setup();
        let snap = c.snapshot(0.0);
        let graph = build_graph(&c, &topo, &snap, &[]);
        let a = SatId(0);
        let b = SatId((c.num_satellites() / 2) as u32);
        let p = sat_to_sat(&graph, a, b).expect("isl path");
        assert!(p.hops() >= 1);
        for n in &p.nodes {
            assert!(matches!(n, NodeId::Sat(_)));
        }
    }

    #[test]
    fn delays_to_all_sats_matches_individual_queries() {
        let (c, topo) = setup();
        let snap = c.snapshot(120.0);
        let a = endpoint(0, -33.87, 151.21); // Sydney
        let graph = build_graph(&c, &topo, &snap, &[a]);
        let delays = delays_to_all_sats(&graph, &c, &a);
        for sat_idx in [0usize, 100, 777, 1500] {
            let p = ground_to_sat(&graph, &a, SatId(sat_idx as u32)).unwrap();
            assert!((p.delay_s - delays[sat_idx]).abs() < 1e-12);
        }
    }
}
