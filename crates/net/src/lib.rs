//! # leo-net
//!
//! The LEO network substrate: everything between orbital mechanics and the
//! in-orbit compute service layer.
//!
//! * [`visibility`] — which satellites a ground point can reach at an
//!   instant, under each shell's minimum-elevation rule, with slant ranges
//!   and RTTs ([`visibility::VisibleSat`]).
//! * [`index`] — a latitude-banded spatial index over one snapshot
//!   ([`index::VisibilityIndex`]) answering the same queries by testing
//!   only the satellites whose coverage cone can reach the ground
//!   point's latitude; exact, not approximate.
//! * [`isl`] — the +Grid inter-satellite-link topology (intra-plane ring +
//!   nearest neighbor in each adjacent plane) with an Earth-occlusion
//!   check, plus link lengths at any time.
//! * [`graph`] — a propagation-delay-weighted network graph over
//!   satellites and ground endpoints with Dijkstra shortest paths.
//! * [`engine`] — the incremental CSR routing engine: the ISL adjacency
//!   compiled once ([`engine::RoutingEngine`]), per-snapshot weight
//!   refreshes in place ([`engine::IslWeights`]), per-group ground
//!   attachment ([`engine::GroundLinks`]), and arena-backed Dijkstra
//!   ([`engine::DijkstraArena`]) with early exit and bulk variants —
//!   bit-identical delays to the [`graph`] path, several times faster.
//! * [`routing`] — end-to-end helpers: ground–ground RTT through the
//!   constellation, ground–satellite–ground meetup paths, and
//!   satellite–satellite transfer paths.
//! * [`des`] — a discrete-event simulator (event queue, links with rate +
//!   propagation delay, store-and-forward message transfer) used to time
//!   state migration in `leo-core` and the Earth-observation pipeline in
//!   `leo-apps`.
//! * [`packet`] — packet-level simulation (FIFO queues, drop-tail,
//!   competing flows) for the §3.3 downlink-contention footnote.
//! * [`congestion`] — the closed-loop counterpart: window-based senders
//!   (AIMD / DCTCP) with pacing, retransmission on drop-tail loss, and
//!   ECN-style marking at a configurable queue threshold, sharing queues
//!   with open-loop CBR cross-traffic. Used by `leo-core` to time state
//!   migration over contended ISLs.
//! * [`handover`] — single-ground-station pass prediction and hand-over
//!   schedules for the plain network service (§2).
//! * [`weather`] — rain-fade link budgets and availability (§6's
//!   unanalyzed weather question).
//! * [`fault`] — outage masks over all of the above: dead satellites,
//!   cut ISLs, and rain-faded access links ([`fault::FaultPlan`]),
//!   consumed by the engine's masked weight refresh and the index's
//!   masked visibility queries. An empty plan is a guaranteed no-op.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod des;
pub mod engine;
pub mod fault;
pub mod frontier;
pub mod graph;
pub mod handover;
pub mod index;
pub mod isl;
pub mod packet;
pub mod routing;
pub mod visibility;
pub mod weather;

pub use engine::{DeltaStats, DijkstraArena, GroundLinks, IslWeights, RoutingEngine};
pub use fault::{FailureSchedule, FaultConfig, FaultPlan, GroundFade, RainFade};
pub use frontier::{BandedGroundSets, GroundSet, NearestState};
pub use graph::{NetworkGraph, NodeId, Path};
pub use index::VisibilityIndex;
pub use isl::IslTopology;
pub use visibility::{visible_sats, VisibleSat};
