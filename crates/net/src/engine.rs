//! The incremental CSR routing engine.
//!
//! [`build_graph`](crate::routing::build_graph) reconstructs a
//! `HashMap`-backed [`NetworkGraph`](crate::graph::NetworkGraph) from
//! scratch at every snapshot — and the hand-off loops of the
//! virtual-stationarity experiments rebuild it again *per query*. The
//! +Grid ISL structure never changes, though: only edge lengths (and the
//! occasional Earth-occluded link) vary with time. [`RoutingEngine`]
//! exploits that split:
//!
//! * **compile once** — the ISL adjacency is flattened into a compressed
//!   sparse row (CSR) array over dense satellite indices at construction;
//! * **refresh per snapshot** — [`RoutingEngine::refresh_into`] rewrites
//!   only the per-edge weights in place (`INFINITY` marks an occluded
//!   link; an infinite weight can never relax a vertex, so inactive edges
//!   need no flag of their own);
//! * **attach per query group** — ground endpoints occupy indices after
//!   the satellites; [`RoutingEngine::attach`] wires their up/down links
//!   from a visibility query into a small two-sided CSR
//!   ([`GroundLinks`]);
//! * **query with a reusable arena** — Dijkstra runs against the CSR
//!   arrays with caller-owned scratch buffers ([`DijkstraArena`]) whose
//!   clears are O(touched) via generation stamps, plus an early-exit
//!   variant for single-target queries.
//!
//! Delays are **bit-identical** to the brute-force
//! `build_graph` + Dijkstra path: the same edge set, the same weights
//! (`distance_m / c`, computed the same way), and the same left-to-right
//! association of path sums from the same source vertex. A property test
//! in `tests/engine_vs_graph.rs` pins this on randomized snapshots.

use crate::fault::FaultPlan;
use crate::index::VisibilityIndex;
use crate::isl::{line_of_sight_clear, IslTopology};
use crate::routing::GroundEndpoint;
use crate::visibility::{visible_sats, visible_sats_masked};
use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::consts::SPEED_OF_LIGHT_M_S;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The compiled, time-invariant half of the routing state: the +Grid ISL
/// adjacency in CSR form over dense satellite indices `0..num_sats`.
/// Ground endpoints, when attached, occupy indices `num_sats..`.
#[derive(Debug, Clone)]
pub struct RoutingEngine {
    num_sats: usize,
    /// CSR row offsets: satellite `i`'s slots are `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// Neighbor satellite index per slot.
    targets: Vec<u32>,
    /// Undirected edge id per slot — both directions of an edge share one
    /// weight cell in [`IslWeights`].
    edge_of_slot: Vec<u32>,
    /// Endpoint indices per undirected edge id.
    edge_ends: Vec<(u32, u32)>,
    /// The two directed slots of each undirected edge — the inverse of
    /// `edge_of_slot`, so a delta refresh can scatter one changed weight
    /// without re-walking the whole slot array.
    slots_of_edge: Vec<[u32; 2]>,
    grazing_altitude_m: f64,
}

/// Per-snapshot edge weights (one-way delay, seconds) for a compiled
/// engine; `INFINITY` where the line of sight is Earth-occluded. This is
/// the only routing state that changes between instants — refresh it in
/// place and share it across every query at that instant.
#[derive(Debug, Clone, Default)]
pub struct IslWeights {
    delays: Vec<f64>,
    /// The same weights laid out per directed CSR slot, so the Dijkstra
    /// inner loop streams one contiguous array instead of bouncing
    /// through the slot→edge indirection.
    slots: Vec<f64>,
    /// Smallest finite weight, or `INFINITY` when every link is occluded
    /// — the bucket width of the monotone queue.
    min_finite: f64,
    /// Fingerprint of the inputs the weights were refreshed from, for
    /// [`RoutingEngine::refresh_delta`]. `None` until the first refresh
    /// records one.
    inputs: Option<RefreshInputs>,
}

/// The exact inputs of the last refresh: per-satellite position bits and
/// per-edge mask status. An edge whose fingerprint entries are unchanged
/// would get bit-for-bit the same weight from a full refresh — the same
/// positions through the same expressions — so the delta path can skip it
/// *provably*, not approximately.
#[derive(Debug, Clone, Default)]
struct RefreshInputs {
    /// `(x, y, z)` bit patterns per satellite at the last refresh.
    sat_bits: Vec<[u64; 3]>,
    /// Whether the fault plan masked each edge at the last refresh.
    masked: Vec<bool>,
}

impl RefreshInputs {
    fn record_positions(&mut self, snapshot: &Snapshot) {
        self.sat_bits.clear();
        self.sat_bits.extend(
            snapshot
                .positions
                .iter()
                .map(|p| [p.0.x.to_bits(), p.0.y.to_bits(), p.0.z.to_bits()]),
        );
    }
}

/// What one [`RoutingEngine::refresh_delta`] call did — the change-rate
/// telemetry the serving layer reports per snapshot step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Compiled undirected edges.
    pub edges: usize,
    /// Edges whose weight had to be recomputed: an endpoint position's
    /// bits changed, or the fault-mask status flipped.
    pub recomputed: usize,
    /// Recomputed edges whose weight actually differs from the stored
    /// value (and therefore got written back).
    pub changed: usize,
    /// True when no usable fingerprint existed (cold buffer, size
    /// mismatch) and the call degenerated to a full refresh.
    pub full_rebuild: bool,
}

impl DeltaStats {
    /// Edges skipped as provably unchanged.
    pub fn skipped(&self) -> usize {
        self.edges - self.recomputed
    }
}

impl IslWeights {
    /// Weight (seconds) of one undirected edge id; `INFINITY` when the
    /// link is occluded at the refreshed instant.
    pub fn delay_s(&self, edge: usize) -> f64 {
        self.delays[edge]
    }

    /// Number of compiled edges.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// True when the engine compiled no ISL edges.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// Number of edges currently usable (finite weight).
    pub fn active_edges(&self) -> usize {
        self.delays.iter().filter(|d| d.is_finite()).count()
    }

    /// Smallest finite edge weight (seconds), `INFINITY` when none.
    pub fn min_finite_s(&self) -> f64 {
        self.min_finite
    }

    /// True when `other` holds bit-for-bit the same weights: every edge
    /// delay, every directed slot, and `min_finite` compare equal as bit
    /// patterns (so `INFINITY == INFINITY`, unlike `f64` equality on
    /// whole-slice compares with NaN semantics in mind). The delta-refresh
    /// identity guarantee is stated — and CI-gated — in terms of this
    /// predicate.
    pub fn bits_eq(&self, other: &IslWeights) -> bool {
        self.delays.len() == other.delays.len()
            && self.slots.len() == other.slots.len()
            && self.min_finite.to_bits() == other.min_finite.to_bits()
            && self
                .delays
                .iter()
                .zip(&other.delays)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self
                .slots
                .iter()
                .zip(&other.slots)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Up/down links of one ground-endpoint group at one instant, as a
/// two-sided CSR: per ground its visible satellites, and per satellite
/// the grounds that see it. Attach once per (snapshot, group) and run any
/// number of queries against it.
#[derive(Debug, Clone)]
pub struct GroundLinks {
    num_sats: usize,
    /// Ground `g`'s up-links are `up[up_offsets[g]..up_offsets[g+1]]`.
    up_offsets: Vec<u32>,
    /// `(satellite index, one-way delay seconds)`.
    up: Vec<(u32, f64)>,
    /// Satellite `s`'s down-links are `down[down_offsets[s]..down_offsets[s+1]]`.
    down_offsets: Vec<u32>,
    /// `(ground slot, one-way delay seconds)`.
    down: Vec<(u32, f64)>,
    /// Smallest up-link weight (seconds), `INFINITY` when no ground sees
    /// any satellite.
    min_up: f64,
}

impl GroundLinks {
    /// Number of attached ground endpoints.
    pub fn num_grounds(&self) -> usize {
        self.up_offsets.len() - 1
    }

    fn up_of(&self, g: usize) -> &[(u32, f64)] {
        &self.up[self.up_offsets[g] as usize..self.up_offsets[g + 1] as usize]
    }

    fn down_of(&self, s: usize) -> &[(u32, f64)] {
        &self.down[self.down_offsets[s] as usize..self.down_offsets[s + 1] as usize]
    }
}

/// One node's scratch state, packed to 16 bytes so a relaxation touches
/// a single cache line instead of three parallel arrays.
#[derive(Debug, Clone, Copy)]
struct NodeScratch {
    dist: f64,
    stamp: u32,
}

/// Below this bucket width (seconds — about 3 km of path) the monotone
/// bucket queue could need an unbounded number of buckets, so queries
/// fall back to the binary heap. Physical constellations sit far above
/// it: the shortest possible link is one satellite altitude (> 300 km).
const MIN_BUCKET_WIDTH_S: f64 = 1e-5;

/// Where a search keeps tentative distances. Two implementations: the
/// generation-stamped scratch (early-exit queries — only touched nodes
/// pay) and a caller's plain output row (bulk full-settle queries — no
/// stamp branches, and the result needs no extraction pass).
trait DistStore {
    fn dist_of(&self, v: u32) -> f64;
    fn set(&mut self, v: u32, d: f64);
}

/// Generation-stamped distances: an entry is valid only when its stamp
/// matches the current generation, so a new query clears O(1) state.
#[derive(Debug, Default)]
struct StampedScratch {
    nodes: Vec<NodeScratch>,
    gen: u32,
}

impl StampedScratch {
    /// Starts a new query over `n` nodes: bumps the generation (O(1))
    /// and grows the buffer if this query is larger than any before.
    fn begin(&mut self, n: usize) {
        if self.nodes.len() < n {
            self.nodes.resize(
                n,
                NodeScratch {
                    dist: f64::INFINITY,
                    stamp: 0,
                },
            );
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Wrapped after 2^32 queries: stamps from the previous cycle
            // could alias generation 0, so clear them once.
            for s in &mut self.nodes {
                s.stamp = 0;
            }
            self.gen = 1;
        }
    }
}

impl DistStore for StampedScratch {
    #[inline]
    fn dist_of(&self, v: u32) -> f64 {
        let s = &self.nodes[v as usize];
        if s.stamp == self.gen {
            s.dist
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: u32, d: f64) {
        self.nodes[v as usize] = NodeScratch {
            dist: d,
            stamp: self.gen,
        };
    }
}

/// Distances kept directly in an `INFINITY`-prefilled slice.
struct SliceStore<'a>(&'a mut [f64]);

impl DistStore for SliceStore<'_> {
    #[inline]
    fn dist_of(&self, v: u32) -> f64 {
        self.0[v as usize]
    }

    #[inline]
    fn set(&mut self, v: u32, d: f64) {
        self.0[v as usize] = d;
    }
}

/// Reusable Dijkstra scratch: stamped distance entries plus the priority
/// queues. One arena per worker thread; a single arena serves any number
/// of queries of any size.
#[derive(Debug, Default)]
pub struct DijkstraArena {
    scratch: StampedScratch,
    /// Monotone bucket queue: `(node, tentative delay)` by
    /// `delay / width` bucket. With the width at most the smallest edge
    /// weight, every pop from the lowest non-empty bucket is final, so
    /// this settles in a valid label-setting order with O(1) queue ops.
    buckets: Vec<Vec<(u32, f64)>>,
    /// Fallback min-heap of `delay bits << 32 | node` — non-negative
    /// finite `f64` bit patterns order like the floats themselves, so one
    /// integer compare replaces `total_cmp` plus a tie-break.
    heap: BinaryHeap<Reverse<u128>>,
    /// Per-node winning-source labels for the arg-min settle
    /// ([`RoutingEngine::multi_source_ground_frontier_into`]); resized
    /// and reset per query, reused across queries.
    labels: Vec<u32>,
}

impl DijkstraArena {
    /// Creates an empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn clear_queues(&mut self) {
        self.heap.clear();
        for b in &mut self.buckets {
            b.clear();
        }
    }
}

/// Local Dijkstra work tallies — plain register increments on the hot
/// path, flushed to the process-wide [`leo_obs`] counters once per query
/// on drop (covering every return path of the searches).
#[derive(Default)]
struct SearchTally {
    /// Nodes settled (stale queue copies excluded).
    pops: u64,
    /// Successful edge relaxations (tentative-distance improvements).
    relaxations: u64,
}

impl Drop for SearchTally {
    fn drop(&mut self) {
        if self.pops != 0 || self.relaxations != 0 {
            leo_obs::counter!("engine.dijkstra.pops").add(self.pops);
            leo_obs::counter!("engine.dijkstra.relaxations").add(self.relaxations);
        }
    }
}

/// Pushes into the bucket for `d`, growing the bucket array as needed.
#[inline]
fn bucket_push(buckets: &mut Vec<Vec<(u32, f64)>>, v: u32, d: f64, inv_width: f64) {
    let b = (d * inv_width) as usize;
    if b >= buckets.len() {
        buckets.resize_with(b + 1, Vec::new);
    }
    buckets[b].push((v, d));
}

/// Packs a non-negative delay and a node index into one ordered heap key.
#[inline]
fn heap_key(d: f64, v: u32) -> u128 {
    ((d.to_bits() as u128) << 32) | v as u128
}

impl RoutingEngine {
    /// Compiles the CSR adjacency of `topology` over `constellation`'s
    /// satellites. Run once per constellation; the result is immutable
    /// and shareable across threads.
    pub fn compile(constellation: &Constellation, topology: &IslTopology) -> Self {
        let num_sats = constellation.num_satellites();
        let edges = topology.edges();
        // Counting sort into CSR: degree count, prefix sum, placement.
        let mut offsets = vec![0u32; num_sats + 1];
        for e in edges {
            offsets[e.a.0 as usize + 1] += 1;
            offsets[e.b.0 as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let total = *offsets.last().unwrap() as usize;
        let mut targets = vec![0u32; total];
        let mut edge_of_slot = vec![0u32; total];
        let mut cursor = offsets[..num_sats].to_vec();
        let mut edge_ends = Vec::with_capacity(edges.len());
        let mut slots_of_edge = vec![[0u32; 2]; edges.len()];
        for (id, e) in edges.iter().enumerate() {
            let (a, b) = (e.a.0, e.b.0);
            for (dir, (from, to)) in [(a, b), (b, a)].into_iter().enumerate() {
                let slot = cursor[from as usize] as usize;
                targets[slot] = to;
                edge_of_slot[slot] = id as u32;
                slots_of_edge[id][dir] = slot as u32;
                cursor[from as usize] += 1;
            }
            edge_ends.push((a, b));
        }
        RoutingEngine {
            num_sats,
            offsets,
            targets,
            edge_of_slot,
            edge_ends,
            slots_of_edge,
            grazing_altitude_m: topology.grazing_altitude_m(),
        }
    }

    /// Number of satellites (dense node indices `0..num_sats`).
    pub fn num_sats(&self) -> usize {
        self.num_sats
    }

    /// Number of compiled undirected ISL edges.
    pub fn num_edges(&self) -> usize {
        self.edge_ends.len()
    }

    /// Edge weights at `snapshot`, freshly allocated. Prefer
    /// [`RoutingEngine::refresh_into`] when a buffer can be reused.
    pub fn refresh(&self, snapshot: &Snapshot) -> IslWeights {
        let mut w = IslWeights::default();
        self.refresh_into(snapshot, &mut w);
        w
    }

    /// Rewrites `weights` in place for `snapshot`: one-way delay per
    /// edge, `INFINITY` where the straight line dips into the atmosphere.
    /// This replaces the allocating `IslTopology::active_edges` path.
    pub fn refresh_into(&self, snapshot: &Snapshot, weights: &mut IslWeights) {
        let _span = leo_obs::span!("engine.refresh_s");
        weights.delays.resize(self.edge_ends.len(), f64::INFINITY);
        let mut min_finite = f64::INFINITY;
        for (e, &(a, b)) in self.edge_ends.iter().enumerate() {
            let pa = snapshot.position(SatId(a));
            let pb = snapshot.position(SatId(b));
            let w = if line_of_sight_clear(pa, pb, self.grazing_altitude_m) {
                pa.distance_m(pb) / SPEED_OF_LIGHT_M_S
            } else {
                f64::INFINITY
            };
            weights.delays[e] = w;
            min_finite = min_finite.min(w);
        }
        weights.min_finite = min_finite;
        // Scatter into the per-directed-slot layout the Dijkstra inner
        // loop streams.
        weights.slots.resize(self.edge_of_slot.len(), f64::INFINITY);
        for (slot, &e) in self.edge_of_slot.iter().enumerate() {
            weights.slots[slot] = weights.delays[e as usize];
        }
        // Fingerprint the inputs so a later refresh_delta can skip edges
        // whose endpoints provably didn't move.
        let inputs = weights.inputs.get_or_insert_with(RefreshInputs::default);
        inputs.record_positions(snapshot);
        inputs.masked.clear();
        inputs.masked.resize(self.edge_ends.len(), false);
    }

    /// [`RoutingEngine::refresh_into`] under a fault plan: after the
    /// geometric refresh, every masked edge — a dead endpoint or a cut
    /// link — is forced to `INFINITY`, so no search can relax through
    /// it. With an empty plan this *is* `refresh_into`, bit for bit.
    pub fn refresh_into_masked(
        &self,
        snapshot: &Snapshot,
        plan: &FaultPlan,
        weights: &mut IslWeights,
    ) {
        self.refresh_into(snapshot, weights);
        if plan.is_empty() {
            return;
        }
        let mut inputs = weights.inputs.take().unwrap_or_default();
        let mut masked = 0u64;
        let mut min_finite = f64::INFINITY;
        for (e, &(a, b)) in self.edge_ends.iter().enumerate() {
            if plan.isl_edge_masked(SatId(a), SatId(b)) {
                inputs.masked[e] = true;
                if weights.delays[e].is_finite() {
                    masked += 1;
                }
                weights.delays[e] = f64::INFINITY;
            } else {
                min_finite = min_finite.min(weights.delays[e]);
            }
        }
        weights.inputs = Some(inputs);
        weights.min_finite = min_finite;
        for (slot, &e) in self.edge_of_slot.iter().enumerate() {
            weights.slots[slot] = weights.delays[e as usize];
        }
        leo_obs::counter!("fault.masked_isl_edges").add(masked);
    }

    /// Incremental [`RoutingEngine::refresh_into`]: recomputes only the
    /// edges whose endpoint positions changed since the weights were last
    /// refreshed, producing **bit-for-bit** the output a full refresh
    /// would (`IslWeights::bits_eq` — property-tested in
    /// `tests/delta_refresh.rs`). "Changed" is decided on exact position
    /// bit patterns recorded by the previous refresh, so a skipped edge
    /// is provably identical, never approximately so. A cold or
    /// mismatched buffer falls back to a full refresh and reports
    /// `full_rebuild`.
    pub fn refresh_delta(&self, snapshot: &Snapshot, weights: &mut IslWeights) -> DeltaStats {
        self.refresh_delta_masked(snapshot, &FaultPlan::empty(), weights)
    }

    /// [`RoutingEngine::refresh_delta`] under a fault plan: an edge is
    /// also recomputed when its mask status flipped since the last
    /// refresh, which makes plan-only transitions (the same instant, a
    /// new outage) touch exactly the affected edges. Bit-identical to
    /// [`RoutingEngine::refresh_into_masked`] from any starting state.
    pub fn refresh_delta_masked(
        &self,
        snapshot: &Snapshot,
        plan: &FaultPlan,
        weights: &mut IslWeights,
    ) -> DeltaStats {
        let _span = leo_obs::span!("engine.refresh_delta_s");
        let n_edges = self.edge_ends.len();
        let usable = snapshot.len() == self.num_sats
            && weights.delays.len() == n_edges
            && weights.slots.len() == self.edge_of_slot.len()
            && weights
                .inputs
                .as_ref()
                .is_some_and(|c| c.sat_bits.len() == self.num_sats && c.masked.len() == n_edges);
        if !usable {
            self.refresh_into_masked(snapshot, plan, weights);
            let stats = DeltaStats {
                edges: n_edges,
                recomputed: n_edges,
                changed: n_edges,
                full_rebuild: true,
            };
            self.tally_delta(stats);
            return stats;
        }
        let mut inputs = weights.inputs.take().expect("checked above");
        // Which satellites actually moved — exact bit compare, updating
        // the fingerprint in the same pass.
        let mut moved = vec![false; self.num_sats];
        for (i, p) in snapshot.positions.iter().enumerate() {
            let bits = [p.0.x.to_bits(), p.0.y.to_bits(), p.0.z.to_bits()];
            if inputs.sat_bits[i] != bits {
                inputs.sat_bits[i] = bits;
                moved[i] = true;
            }
        }
        let plan_empty = plan.is_empty();
        let mut recomputed = 0usize;
        let mut changed = 0usize;
        for (e, &(a, b)) in self.edge_ends.iter().enumerate() {
            let now_masked = !plan_empty && plan.isl_edge_masked(SatId(a), SatId(b));
            if !moved[a as usize] && !moved[b as usize] && now_masked == inputs.masked[e] {
                continue;
            }
            recomputed += 1;
            inputs.masked[e] = now_masked;
            // The same expressions as the full refresh, so a recomputed
            // weight lands on the same bits the full path would produce.
            let w = if now_masked {
                f64::INFINITY
            } else {
                let pa = snapshot.position(SatId(a));
                let pb = snapshot.position(SatId(b));
                if line_of_sight_clear(pa, pb, self.grazing_altitude_m) {
                    pa.distance_m(pb) / SPEED_OF_LIGHT_M_S
                } else {
                    f64::INFINITY
                }
            };
            if w.to_bits() != weights.delays[e].to_bits() {
                changed += 1;
                weights.delays[e] = w;
                let [s1, s2] = self.slots_of_edge[e];
                weights.slots[s1 as usize] = w;
                weights.slots[s2 as usize] = w;
            }
        }
        weights.inputs = Some(inputs);
        if changed > 0 {
            // Re-fold the minimum in edge order, exactly as the full
            // refresh accumulates it. Masked and occluded edges are
            // `INFINITY` — the identity of `min` — so folding over all
            // delays equals the full path's fold over the unmasked ones.
            weights.min_finite = weights.delays.iter().copied().fold(f64::INFINITY, f64::min);
        }
        let stats = DeltaStats {
            edges: n_edges,
            recomputed,
            changed,
            full_rebuild: false,
        };
        self.tally_delta(stats);
        stats
    }

    fn tally_delta(&self, stats: DeltaStats) {
        leo_obs::counter!("engine.delta.refreshes").incr();
        leo_obs::counter!("engine.delta.recomputed_edges").add(stats.recomputed as u64);
        leo_obs::counter!("engine.delta.changed_edges").add(stats.changed as u64);
        leo_obs::counter!("engine.delta.skipped_edges").add(stats.skipped() as u64);
        if stats.full_rebuild {
            leo_obs::counter!("engine.delta.full_rebuilds").incr();
            // A self-validating fallback is correct but expensive; make
            // it visible as a point event in the exported trace, where
            // an unexpected burst of rebuilds is much easier to spot
            // than in an end-of-run total.
            leo_obs::trace_instant("engine.delta.full_rebuild");
        }
    }

    /// Wires `grounds` into the node space through a prebuilt
    /// [`VisibilityIndex`] — the hot path: every [`SnapshotView`] already
    /// carries one.
    ///
    /// [`SnapshotView`]: https://docs.rs/leo-core
    pub fn attach(&self, index: &VisibilityIndex, grounds: &[GroundEndpoint]) -> GroundLinks {
        self.attach_from(grounds, |gp, out| {
            index.for_each_visible(gp.ecef, |v| out.push((v.id.0, v.range_m)));
        })
    }

    /// [`RoutingEngine::attach`] under a fault plan: dead satellites and
    /// rain-faded access links contribute no up/down links. Delegates to
    /// the unmasked path when the plan is empty.
    pub fn attach_masked(
        &self,
        index: &VisibilityIndex,
        grounds: &[GroundEndpoint],
        plan: &FaultPlan,
    ) -> GroundLinks {
        if plan.is_empty() {
            return self.attach(index, grounds);
        }
        self.attach_from(grounds, |gp, out| {
            index.for_each_visible_masked(gp.ecef, plan, |v| out.push((v.id.0, v.range_m)));
        })
    }

    /// Wires `grounds` in by brute-force scan over the snapshot — for
    /// callers without an index (identical output; the index is exact).
    pub fn attach_scan(
        &self,
        constellation: &Constellation,
        snapshot: &Snapshot,
        grounds: &[GroundEndpoint],
    ) -> GroundLinks {
        self.attach_from(grounds, |gp, out| {
            for v in visible_sats(constellation, snapshot, gp.geodetic, gp.ecef) {
                out.push((v.id.0, v.range_m));
            }
        })
    }

    /// [`RoutingEngine::attach_scan`] under a fault plan (brute-force
    /// mirror of [`RoutingEngine::attach_masked`]).
    pub fn attach_scan_masked(
        &self,
        constellation: &Constellation,
        snapshot: &Snapshot,
        grounds: &[GroundEndpoint],
        plan: &FaultPlan,
    ) -> GroundLinks {
        if plan.is_empty() {
            return self.attach_scan(constellation, snapshot, grounds);
        }
        self.attach_from(grounds, |gp, out| {
            for v in visible_sats_masked(constellation, snapshot, gp.geodetic, gp.ecef, plan) {
                out.push((v.id.0, v.range_m));
            }
        })
    }

    fn attach_from<F>(&self, grounds: &[GroundEndpoint], mut visible: F) -> GroundLinks
    where
        F: FnMut(&GroundEndpoint, &mut Vec<(u32, f64)>),
    {
        let mut up_offsets = Vec::with_capacity(grounds.len() + 1);
        up_offsets.push(0u32);
        let mut raw: Vec<(u32, f64)> = Vec::new();
        for gp in grounds {
            visible(gp, &mut raw);
            up_offsets.push(raw.len() as u32);
        }
        let up: Vec<(u32, f64)> = raw
            .iter()
            .map(|&(sat, range_m)| (sat, range_m / SPEED_OF_LIGHT_M_S))
            .collect();
        // Transpose into the satellite-side CSR by counting sort.
        let mut down_offsets = vec![0u32; self.num_sats + 1];
        for &(sat, _) in &up {
            down_offsets[sat as usize + 1] += 1;
        }
        for i in 1..down_offsets.len() {
            down_offsets[i] += down_offsets[i - 1];
        }
        let mut down = vec![(0u32, 0.0f64); up.len()];
        let mut cursor = down_offsets[..self.num_sats].to_vec();
        for g in 0..grounds.len() {
            for &(sat, w) in &up[up_offsets[g] as usize..up_offsets[g + 1] as usize] {
                let slot = cursor[sat as usize] as usize;
                down[slot] = (g as u32, w);
                cursor[sat as usize] += 1;
            }
        }
        let min_up = up.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
        GroundLinks {
            num_sats: self.num_sats,
            up_offsets,
            up,
            down_offsets,
            down,
            min_up,
        }
    }

    /// The node index of ground slot `g` (position in the attached
    /// group), after all satellites.
    fn ground_node(&self, g: usize) -> u32 {
        (self.num_sats + g) as u32
    }

    /// Dijkstra core. With `target`, settles nodes until the target pops
    /// and returns its delay (early exit); without, settles the whole
    /// reachable component and returns `None`.
    ///
    /// Dispatches to the monotone bucket queue when the smallest edge
    /// weight allows it, else to the binary heap. Both settle nodes in a
    /// valid label-setting order over the same weights, so each node's
    /// final distance is the minimum of the same relaxation set computed
    /// with the same arithmetic — the results are bit-identical.
    fn run(
        &self,
        weights: &IslWeights,
        links: Option<&GroundLinks>,
        src: u32,
        target: Option<u32>,
        arena: &mut DijkstraArena,
    ) -> Option<f64> {
        let n = self.num_sats + links.map_or(0, GroundLinks::num_grounds);
        arena.scratch.begin(n);
        arena.clear_queues();
        let DijkstraArena {
            scratch,
            buckets,
            heap,
            ..
        } = arena;
        scratch.set(src, 0.0);
        let wmin = weights
            .min_finite
            .min(links.map_or(f64::INFINITY, |l| l.min_up));
        if wmin.is_finite() && wmin > MIN_BUCKET_WIDTH_S {
            leo_obs::counter!("engine.dijkstra.bucket_queries").incr();
            // Distance zero lands in bucket 0 whatever the bucket width.
            bucket_push(buckets, src, 0.0, 0.0);
            self.search_buckets(weights, links, target, scratch, buckets, wmin)
        } else {
            leo_obs::counter!("engine.dijkstra.heap_queries").incr();
            heap.push(Reverse(heap_key(0.0, src)));
            self.search_heap(weights, links, target, scratch, heap)
        }
    }

    /// Label-setting over a monotone bucket queue of width strictly below
    /// the smallest edge weight: every pop from the lowest non-empty
    /// bucket is already final (an improvement would have to come through
    /// an unsettled node at least one full edge weight — more than one
    /// bucket — below it), so queue operations are O(1) instead of
    /// O(log n) and nothing is ever re-settled.
    fn search_buckets<S: DistStore>(
        &self,
        weights: &IslWeights,
        links: Option<&GroundLinks>,
        target: Option<u32>,
        store: &mut S,
        buckets: &mut Vec<Vec<(u32, f64)>>,
        wmin: f64,
    ) -> Option<f64> {
        // A hair under 1/wmin so rounding can never stretch a bucket's
        // span in delay space beyond the smallest edge weight. The caller
        // seeded the source into bucket 0.
        let inv_width = (1.0 - 1e-9) / wmin;
        let mut tally = SearchTally::default();
        let mut cur = 0;
        loop {
            while cur < buckets.len() && buckets[cur].is_empty() {
                cur += 1;
            }
            if cur >= buckets.len() {
                return None;
            }
            let Some((u, d)) = buckets[cur].pop() else {
                continue;
            };
            if d > store.dist_of(u) {
                continue; // stale copy, improved since pushed
            }
            tally.pops += 1;
            if target == Some(u) {
                return Some(d);
            }
            if (u as usize) < self.num_sats {
                let (lo, hi) = (
                    self.offsets[u as usize] as usize,
                    self.offsets[u as usize + 1] as usize,
                );
                for (&v, &w) in self.targets[lo..hi].iter().zip(&weights.slots[lo..hi]) {
                    let nd = d + w;
                    if nd < store.dist_of(v) {
                        store.set(v, nd);
                        tally.relaxations += 1;
                        bucket_push(buckets, v, nd, inv_width);
                    }
                }
                if let Some(gl) = links {
                    for &(g, w) in gl.down_of(u as usize) {
                        let v = self.ground_node(g as usize);
                        let nd = d + w;
                        if nd < store.dist_of(v) {
                            store.set(v, nd);
                            tally.relaxations += 1;
                            bucket_push(buckets, v, nd, inv_width);
                        }
                    }
                }
            } else if let Some(gl) = links {
                for &(s, w) in gl.up_of(u as usize - self.num_sats) {
                    let nd = d + w;
                    if nd < store.dist_of(s) {
                        store.set(s, nd);
                        tally.relaxations += 1;
                        bucket_push(buckets, s, nd, inv_width);
                    }
                }
            }
        }
    }

    /// Classic lazy-deletion binary-heap Dijkstra — the fallback for
    /// degenerate weights (sub-[`MIN_BUCKET_WIDTH_S`] or all-occluded
    /// topologies, where the bucket count would be unbounded).
    fn search_heap<S: DistStore>(
        &self,
        weights: &IslWeights,
        links: Option<&GroundLinks>,
        target: Option<u32>,
        store: &mut S,
        heap: &mut BinaryHeap<Reverse<u128>>,
    ) -> Option<f64> {
        let mut tally = SearchTally::default();
        while let Some(Reverse(key)) = heap.pop() {
            let u = key as u32;
            let d = f64::from_bits((key >> 32) as u64);
            if d > store.dist_of(u) {
                continue; // stale heap entry
            }
            tally.pops += 1;
            if target == Some(u) {
                return Some(d);
            }
            if (u as usize) < self.num_sats {
                let (lo, hi) = (
                    self.offsets[u as usize] as usize,
                    self.offsets[u as usize + 1] as usize,
                );
                for (&v, &w) in self.targets[lo..hi].iter().zip(&weights.slots[lo..hi]) {
                    let nd = d + w;
                    if nd < store.dist_of(v) {
                        store.set(v, nd);
                        tally.relaxations += 1;
                        heap.push(Reverse(heap_key(nd, v)));
                    }
                }
                if let Some(gl) = links {
                    for &(g, w) in gl.down_of(u as usize) {
                        let v = self.ground_node(g as usize);
                        let nd = d + w;
                        if nd < store.dist_of(v) {
                            store.set(v, nd);
                            tally.relaxations += 1;
                            heap.push(Reverse(heap_key(nd, v)));
                        }
                    }
                }
            } else if let Some(gl) = links {
                for &(s, w) in gl.up_of(u as usize - self.num_sats) {
                    let nd = d + w;
                    if nd < store.dist_of(s) {
                        store.set(s, nd);
                        tally.relaxations += 1;
                        heap.push(Reverse(heap_key(nd, s)));
                    }
                }
            }
        }
        None
    }

    /// One-way delay between two satellites over the refreshed ISL mesh
    /// (and, when `links` is given, via any attached ground endpoint —
    /// the state-migration relay path), or `None` when disconnected.
    /// Early-exits once the target settles.
    pub fn sat_to_sat_delay(
        &self,
        weights: &IslWeights,
        links: Option<&GroundLinks>,
        a: SatId,
        b: SatId,
        arena: &mut DijkstraArena,
    ) -> Option<f64> {
        self.run(weights, links, a.0, Some(b.0), arena)
    }

    /// One-way delay between two attached ground endpoints (by slot in
    /// the attached group), or `None` when disconnected. The source is
    /// `a` — matching the brute-force path's summation order exactly.
    pub fn ground_to_ground_delay(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        a: usize,
        b: usize,
        arena: &mut DijkstraArena,
    ) -> Option<f64> {
        self.run(
            weights,
            Some(links),
            self.ground_node(a),
            Some(self.ground_node(b)),
            arena,
        )
    }

    /// One-way delays from ground slot `src` to every satellite, written
    /// into `out` (`INFINITY` where unreachable). `out` is resized to
    /// `num_sats`.
    pub fn delays_from_ground_into(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        src: usize,
        out: &mut Vec<f64>,
        arena: &mut DijkstraArena,
    ) {
        debug_assert_eq!(links.num_sats, self.num_sats);
        // Full-settle query: the output row doubles as the distance
        // array (ground slots ride along past the end and are trimmed),
        // skipping both the stamp branches and an extraction pass.
        let n = self.num_sats + links.num_grounds();
        out.clear();
        out.resize(n, f64::INFINITY);
        arena.clear_queues();
        let mut store = SliceStore(out);
        let src = self.ground_node(src);
        store.set(src, 0.0);
        let wmin = weights.min_finite.min(links.min_up);
        if wmin.is_finite() && wmin > MIN_BUCKET_WIDTH_S {
            leo_obs::counter!("engine.dijkstra.bucket_queries").incr();
            bucket_push(&mut arena.buckets, src, 0.0, 0.0);
            self.search_buckets(
                weights,
                Some(links),
                None,
                &mut store,
                &mut arena.buckets,
                wmin,
            );
        } else {
            leo_obs::counter!("engine.dijkstra.heap_queries").incr();
            arena.heap.push(Reverse(heap_key(0.0, src)));
            self.search_heap(weights, Some(links), None, &mut store, &mut arena.heap);
        }
        out.truncate(self.num_sats);
    }

    /// Bulk query behind meetup-server selection: one delay row per
    /// attached ground endpoint (`result[ground][sat]`), all rows sharing
    /// one arena.
    pub fn delays_from_all(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        arena: &mut DijkstraArena,
    ) -> Vec<Vec<f64>> {
        (0..links.num_grounds())
            .map(|g| {
                let mut row = Vec::new();
                self.delays_from_ground_into(weights, links, g, &mut row, arena);
                row
            })
            .collect()
    }

    /// Minimum one-way delay from **any** of `sources` to every attached
    /// ground slot, sharing one settled frontier across the whole group —
    /// the serving layer's batched query. Writes one delay per ground
    /// slot into `out` (`INFINITY` where no source reaches).
    ///
    /// Seeding every source at distance zero and settling once costs one
    /// Dijkstra pass however many sources there are, and the result is
    /// exactly the elementwise minimum of per-source runs: a settled
    /// distance is the minimum left-to-right path sum over all
    /// source-rooted paths, which doesn't depend on how sources share the
    /// frontier (the property suite in `tests/delta_refresh.rs` pins this
    /// bitwise). Duplicate sources are allowed and change nothing.
    pub fn multi_source_ground_delays_into(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        sources: &[SatId],
        out: &mut Vec<f64>,
        arena: &mut DijkstraArena,
    ) {
        debug_assert_eq!(links.num_sats, self.num_sats);
        leo_obs::counter!("engine.multi_source_queries").incr();
        let n = self.num_sats + links.num_grounds();
        out.clear();
        out.resize(n, f64::INFINITY);
        arena.clear_queues();
        let mut store = SliceStore(out);
        let wmin = weights.min_finite.min(links.min_up);
        if wmin.is_finite() && wmin > MIN_BUCKET_WIDTH_S {
            leo_obs::counter!("engine.dijkstra.bucket_queries").incr();
            for &s in sources {
                store.set(s.0, 0.0);
                bucket_push(&mut arena.buckets, s.0, 0.0, 0.0);
            }
            self.search_buckets(
                weights,
                Some(links),
                None,
                &mut store,
                &mut arena.buckets,
                wmin,
            );
        } else {
            leo_obs::counter!("engine.dijkstra.heap_queries").incr();
            for &s in sources {
                store.set(s.0, 0.0);
                arena.heap.push(Reverse(heap_key(0.0, s.0)));
            }
            self.search_heap(weights, Some(links), None, &mut store, &mut arena.heap);
        }
        // Ground slots live after the satellites; move them to the front.
        out.copy_within(self.num_sats.., 0);
        out.truncate(links.num_grounds());
    }

    /// [`RoutingEngine::multi_source_ground_delays_into`] extended to an
    /// **arg-min frontier**: alongside each ground slot's minimum delay,
    /// records *which* source wins it (`None` where no source reaches).
    /// `delays` is bit-identical to the plain multi-source settle.
    ///
    /// Ties are deterministic: when several sources reach a ground slot
    /// at the exact same settled delay, the lowest `SatId` wins —
    /// matching the `selection` module's tie-break rules, so the winner
    /// is a pure function of the weights, never of settle order. The
    /// settle carries one source label per node and re-relaxes on
    /// equal-distance label improvements; labels at a node only ever
    /// decrease, so the pass terminates at the unique least-label
    /// fixpoint over all shortest paths.
    ///
    /// Always settles on the binary heap: this is the validation-side
    /// query (cadence-sampled by the serving layer), so the bucket-queue
    /// fast path is not worth carrying the equal-distance re-push proof
    /// for. Heap and bucket settles are bit-identical in the distances
    /// they produce, so `delays` still matches the plain settle exactly.
    pub fn multi_source_ground_frontier_into(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        sources: &[SatId],
        delays: &mut Vec<f64>,
        winners: &mut Vec<Option<SatId>>,
        arena: &mut DijkstraArena,
    ) {
        debug_assert_eq!(links.num_sats, self.num_sats);
        leo_obs::counter!("engine.frontier.argmin_settles").incr();
        let n = self.num_sats + links.num_grounds();
        delays.clear();
        delays.resize(n, f64::INFINITY);
        arena.clear_queues();
        arena.labels.clear();
        arena.labels.resize(n, u32::MAX);
        let mut store = SliceStore(delays);
        leo_obs::counter!("engine.dijkstra.heap_queries").incr();
        for &s in sources {
            store.set(s.0, 0.0);
            arena.labels[s.0 as usize] = arena.labels[s.0 as usize].min(s.0);
            arena.heap.push(Reverse(heap_key(0.0, s.0)));
        }
        self.search_heap_argmin(
            weights,
            links,
            &mut store,
            &mut arena.heap,
            &mut arena.labels,
        );
        winners.clear();
        winners.extend((0..links.num_grounds()).map(|g| {
            let node = self.ground_node(g) as usize;
            (delays[node].is_finite()).then(|| SatId(arena.labels[node]))
        }));
        delays.copy_within(self.num_sats.., 0);
        delays.truncate(links.num_grounds());
    }

    /// Heap settle carrying per-node source labels. Distances relax
    /// exactly as in [`RoutingEngine::search_heap`]; additionally, an
    /// equal-distance relaxation that would lower a node's label updates
    /// the label and re-pushes the node so the improvement propagates.
    /// Every edge weight is strictly positive, so all equal-distance
    /// improvements to a node are enqueued before the node first pops,
    /// and re-pops re-relax idempotently.
    fn search_heap_argmin<S: DistStore>(
        &self,
        weights: &IslWeights,
        links: &GroundLinks,
        store: &mut S,
        heap: &mut BinaryHeap<Reverse<u128>>,
        labels: &mut [u32],
    ) {
        let mut tally = SearchTally::default();
        while let Some(Reverse(key)) = heap.pop() {
            let u = key as u32;
            let d = f64::from_bits((key >> 32) as u64);
            if d > store.dist_of(u) {
                continue; // stale heap entry
            }
            tally.pops += 1;
            let label = labels[u as usize];
            let mut relax = |v: u32,
                             nd: f64,
                             store: &mut S,
                             heap: &mut BinaryHeap<Reverse<u128>>,
                             tally: &mut SearchTally| {
                let dv = store.dist_of(v);
                if nd < dv {
                    store.set(v, nd);
                    labels[v as usize] = label;
                    tally.relaxations += 1;
                    heap.push(Reverse(heap_key(nd, v)));
                } else if nd == dv && label < labels[v as usize] {
                    labels[v as usize] = label;
                    heap.push(Reverse(heap_key(nd, v)));
                }
            };
            if (u as usize) < self.num_sats {
                let (lo, hi) = (
                    self.offsets[u as usize] as usize,
                    self.offsets[u as usize + 1] as usize,
                );
                for (&v, &w) in self.targets[lo..hi].iter().zip(&weights.slots[lo..hi]) {
                    relax(v, d + w, store, heap, &mut tally);
                }
                for &(g, w) in links.down_of(u as usize) {
                    relax(self.ground_node(g as usize), d + w, store, heap, &mut tally);
                }
            } else {
                for &(s, w) in links.up_of(u as usize - self.num_sats) {
                    relax(s, d + w, store, heap, &mut tally);
                }
            }
        }
    }
}

/// Runs `f` with this thread's reusable [`DijkstraArena`]. Worker threads
/// (the sweep pool, the session runners) thereby share one arena across
/// every query they issue, without any caller-side plumbing.
///
/// The closure must not recurse into `with_thread_arena` (the arena is
/// exclusively borrowed for its duration).
pub fn with_thread_arena<R>(f: impl FnOnce(&mut DijkstraArena) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static ARENA: RefCell<DijkstraArena> = RefCell::new(DijkstraArena::new());
    }
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{self, build_graph};
    use leo_constellation::presets;
    use leo_geo::{Ecef, Geodetic};

    fn setup() -> (Constellation, IslTopology, RoutingEngine) {
        let c = presets::starlink_550_only();
        let topo = IslTopology::plus_grid(&c);
        let engine = RoutingEngine::compile(&c, &topo);
        (c, topo, engine)
    }

    fn endpoint(i: u32, lat: f64, lon: f64) -> GroundEndpoint {
        GroundEndpoint::new(i, Geodetic::ground(lat, lon))
    }

    #[test]
    fn compiled_csr_mirrors_the_topology() {
        let (c, topo, engine) = setup();
        assert_eq!(engine.num_sats(), c.num_satellites());
        assert_eq!(engine.num_edges(), topo.edges().len());
        for sat in c.satellites() {
            let i = sat.id.0 as usize;
            let mut csr: Vec<u32> =
                engine.targets[engine.offsets[i] as usize..engine.offsets[i + 1] as usize].to_vec();
            csr.sort_unstable();
            let mut expect: Vec<u32> = topo.neighbors(sat.id).iter().map(|n| n.0).collect();
            expect.sort_unstable();
            assert_eq!(csr, expect, "sat {i}");
        }
    }

    #[test]
    fn refresh_matches_active_edges() {
        let (c, topo, engine) = setup();
        let snap = c.snapshot(450.0);
        let weights = engine.refresh(&snap);
        let active = topo.active_edges(&snap);
        assert_eq!(weights.active_edges(), active.len());
        // Weights are the same delays active_edges would produce.
        let by_pair: std::collections::HashMap<(u32, u32), f64> = active
            .iter()
            .map(|(e, len)| ((e.a.0, e.b.0), len / SPEED_OF_LIGHT_M_S))
            .collect();
        for (id, &(a, b)) in engine.edge_ends.iter().enumerate() {
            match by_pair.get(&(a, b)) {
                Some(&d) => assert_eq!(weights.delay_s(id), d),
                None => assert!(weights.delay_s(id).is_infinite()),
            }
        }
    }

    #[test]
    fn refresh_into_reuses_the_buffer() {
        let (c, _, engine) = setup();
        let mut w = engine.refresh(&c.snapshot(0.0));
        let before = w.len();
        engine.refresh_into(&c.snapshot(60.0), &mut w);
        assert_eq!(w.len(), before);
        assert_eq!(w.active_edges(), before, "+Grid links stay visible");
    }

    #[test]
    fn engine_sat_to_sat_matches_graph_dijkstra() {
        let (c, topo, engine) = setup();
        let snap = c.snapshot(0.0);
        let weights = engine.refresh(&snap);
        let graph = build_graph(&c, &topo, &snap, &[]);
        let mut arena = DijkstraArena::new();
        for (a, b) in [(0u32, 792u32), (3, 3), (100, 1500), (5, 6)] {
            let fast = engine.sat_to_sat_delay(&weights, None, SatId(a), SatId(b), &mut arena);
            let slow = routing::sat_to_sat(&graph, SatId(a), SatId(b)).map(|p| p.delay_s);
            assert_eq!(fast, slow, "{a}->{b}");
        }
    }

    #[test]
    fn engine_bulk_delays_match_graph_dijkstra_bitwise() {
        let (c, topo, engine) = setup();
        let snap = c.snapshot(120.0);
        let grounds = [endpoint(0, 9.06, 7.49), endpoint(1, -33.87, 151.21)];
        let weights = engine.refresh(&snap);
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let fast = engine.delays_from_all(&weights, &links, &mut arena);
        let graph = build_graph(&c, &topo, &snap, &grounds);
        for (g, gp) in grounds.iter().enumerate() {
            let slow = routing::delays_to_all_sats(&graph, &c, gp);
            assert_eq!(fast[g], slow, "ground {g}");
        }
    }

    #[test]
    fn ground_to_ground_matches_graph_path_delay() {
        let (c, topo, engine) = setup();
        let snap = c.snapshot(0.0);
        let a = endpoint(0, 51.51, -0.13);
        let b = endpoint(1, 40.71, -74.01);
        let grounds = [a, b];
        let weights = engine.refresh(&snap);
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let fast = engine
            .ground_to_ground_delay(&weights, &links, 0, 1, &mut arena)
            .unwrap();
        let graph = build_graph(&c, &topo, &snap, &grounds);
        let slow = routing::ground_to_ground(&graph, &a, &b).unwrap().delay_s;
        assert_eq!(fast, slow);
    }

    #[test]
    fn indexed_attachment_equals_scan_attachment() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(300.0);
        let index = VisibilityIndex::build(&c, &snap);
        let grounds = [endpoint(0, 0.0, 0.0), endpoint(1, 47.38, 8.54)];
        let by_index = engine.attach(&index, &grounds);
        let by_scan = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let weights = engine.refresh(&snap);
        assert_eq!(
            engine.delays_from_all(&weights, &by_index, &mut arena),
            engine.delays_from_all(&weights, &by_scan, &mut arena),
        );
    }

    #[test]
    fn arena_is_reusable_across_queries_of_different_sizes() {
        let (c, _, engine) = setup();
        let small = presets::telesat();
        let small_topo = IslTopology::plus_grid(&small);
        let small_engine = RoutingEngine::compile(&small, &small_topo);
        let mut arena = DijkstraArena::new();
        let w_big = engine.refresh(&c.snapshot(0.0));
        let w_small = small_engine.refresh(&small.snapshot(0.0));
        let d1 = engine.sat_to_sat_delay(&w_big, None, SatId(0), SatId(700), &mut arena);
        let d2 = small_engine.sat_to_sat_delay(&w_small, None, SatId(0), SatId(50), &mut arena);
        let d3 = engine.sat_to_sat_delay(&w_big, None, SatId(0), SatId(700), &mut arena);
        assert_eq!(d1, d3, "arena state must not leak between queries");
        assert!(d2.is_some());
    }

    #[test]
    fn unreachable_targets_return_none() {
        // A bent-pipe (no-ISL) engine: satellites are mutually unreachable
        // without a ground relay.
        let c = presets::starlink_550_only();
        let topo = IslTopology::none(&c);
        let engine = RoutingEngine::compile(&c, &topo);
        let snap = c.snapshot(0.0);
        let weights = engine.refresh(&snap);
        let mut arena = DijkstraArena::new();
        assert_eq!(
            engine.sat_to_sat_delay(&weights, None, SatId(0), SatId(1), &mut arena),
            None
        );
        // With a ground endpoint attached, two satellites it sees become
        // mutually reachable through the bounce.
        let g = endpoint(0, 0.0, 0.0);
        let links = engine.attach_scan(&c, &snap, &[g]);
        let vis = visible_sats(&c, &snap, g.geodetic, g.ecef);
        assert!(vis.len() >= 2);
        let d = engine.sat_to_sat_delay(&weights, Some(&links), vis[0].id, vis[1].id, &mut arena);
        assert_eq!(
            d.unwrap(),
            vis[0].delay_s() + vis[1].delay_s(),
            "bounce path is the only route"
        );
    }

    #[test]
    fn self_delay_is_zero() {
        let (c, _, engine) = setup();
        let weights = engine.refresh(&c.snapshot(0.0));
        let mut arena = DijkstraArena::new();
        assert_eq!(
            engine.sat_to_sat_delay(&weights, None, SatId(9), SatId(9), &mut arena),
            Some(0.0)
        );
    }

    #[test]
    fn empty_plan_refresh_is_bit_identical() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(450.0);
        let plain = engine.refresh(&snap);
        let mut masked = IslWeights::default();
        engine.refresh_into_masked(&snap, &FaultPlan::empty(), &mut masked);
        assert_eq!(plain.delays, masked.delays);
        assert_eq!(plain.slots, masked.slots);
        assert_eq!(
            plain.min_finite.to_bits(),
            masked.min_finite.to_bits(),
            "min_finite must match bitwise"
        );
    }

    #[test]
    fn dead_satellite_loses_every_edge() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let mut plan = FaultPlan::empty();
        plan.kill(SatId(100));
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&snap, &plan, &mut w);
        for (e, &(a, b)) in engine.edge_ends.iter().enumerate() {
            if a == 100 || b == 100 {
                assert!(w.delay_s(e).is_infinite(), "edge {a}-{b} must be masked");
            }
        }
        let plain = engine.refresh(&snap);
        assert_eq!(plain.active_edges(), w.active_edges() + 4, "+Grid degree 4");
    }

    #[test]
    fn cut_link_masks_exactly_that_edge() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let plain = engine.refresh(&snap);
        let (a, b) = engine.edge_ends[0];
        let mut plan = FaultPlan::empty();
        plan.cut_link(SatId(a), SatId(b));
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&snap, &plan, &mut w);
        assert!(w.delay_s(0).is_infinite());
        for e in 1..engine.num_edges() {
            assert_eq!(w.delay_s(e), plain.delay_s(e), "edge {e} untouched");
        }
    }

    #[test]
    fn masked_routes_avoid_the_dead_satellite() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let dead = SatId(50);
        let (a, b) = (SatId(49), SatId(51));
        let plain = engine.refresh(&snap);
        let mut plan = FaultPlan::empty();
        plan.kill(dead);
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&snap, &plan, &mut w);
        let mut arena = DijkstraArena::new();
        // The dead satellite has no usable edge left, so it is simply
        // unreachable over the masked mesh.
        assert_eq!(engine.sat_to_sat_delay(&w, None, a, dead, &mut arena), None);
        // Its neighbors stay mutually reachable around it, at a delay no
        // better than the unmasked mesh offered.
        let before = engine
            .sat_to_sat_delay(&plain, None, a, b, &mut arena)
            .unwrap();
        let after = engine.sat_to_sat_delay(&w, None, a, b, &mut arena).unwrap();
        assert!(after.is_finite() && after >= before);
    }

    #[test]
    fn masked_attach_drops_dead_and_keeps_the_rest() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(300.0);
        let index = VisibilityIndex::build(&c, &snap);
        let g = endpoint(0, 0.0, 0.0);
        let plain = engine.attach(&index, &[g]);
        let visible = plain.up_of(0).to_vec();
        assert!(visible.len() >= 2);
        let dead = SatId(visible[0].0);
        let mut plan = FaultPlan::empty();
        plan.kill(dead);
        let masked = engine.attach_masked(&index, &[g], &plan);
        let kept: Vec<(u32, f64)> = masked.up_of(0).to_vec();
        assert_eq!(kept.len(), visible.len() - 1);
        assert!(kept.iter().all(|&(s, _)| s != dead.0));
        // Scan mirror agrees as a set (the index emits band order, the
        // scan emits id order — same links either way).
        let scanned = engine.attach_scan_masked(&c, &snap, &[g], &plan);
        let sort = |links: &GroundLinks| {
            let mut v = links.up_of(0).to_vec();
            v.sort_by_key(|a| a.0);
            v
        };
        assert_eq!(sort(&scanned), sort(&masked));
    }

    #[test]
    fn thread_arena_round_trips() {
        let (c, _, engine) = setup();
        let weights = engine.refresh(&c.snapshot(0.0));
        let a = with_thread_arena(|arena| {
            engine.sat_to_sat_delay(&weights, None, SatId(0), SatId(100), arena)
        });
        let b = with_thread_arena(|arena| {
            engine.sat_to_sat_delay(&weights, None, SatId(0), SatId(100), arena)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn delta_refresh_matches_full_refresh_across_instants() {
        let (c, _, engine) = setup();
        let mut delta = engine.refresh(&c.snapshot(0.0));
        for t in [60.0, 120.0, 180.0] {
            let stats = engine.refresh_delta(&c.snapshot(t), &mut delta);
            assert!(!stats.full_rebuild, "warm buffer must stay incremental");
            let full = engine.refresh(&c.snapshot(t));
            assert!(delta.bits_eq(&full), "t={t}");
        }
    }

    #[test]
    fn delta_refresh_skips_everything_on_a_repeated_snapshot() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(300.0);
        let mut w = engine.refresh(&snap);
        let stats = engine.refresh_delta(&snap, &mut w);
        assert_eq!(stats.recomputed, 0, "no position bit changed");
        assert_eq!(stats.changed, 0);
        assert_eq!(stats.skipped(), engine.num_edges());
        assert!(w.bits_eq(&engine.refresh(&snap)));
    }

    #[test]
    fn delta_refresh_on_a_cold_buffer_is_a_full_rebuild() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let mut cold = IslWeights::default();
        let stats = engine.refresh_delta(&snap, &mut cold);
        assert!(stats.full_rebuild);
        assert!(cold.bits_eq(&engine.refresh(&snap)));
    }

    #[test]
    fn plan_only_delta_touches_exactly_the_masked_edges() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let mut w = engine.refresh(&snap);
        let mut plan = FaultPlan::empty();
        plan.kill(SatId(100));
        // Same instant, new outage: only the dead satellite's +Grid edges
        // flip mask status, so only those are recomputed.
        let stats = engine.refresh_delta_masked(&snap, &plan, &mut w);
        assert_eq!(stats.recomputed, 4, "+Grid degree 4");
        assert_eq!(stats.changed, 4);
        let mut full = IslWeights::default();
        engine.refresh_into_masked(&snap, &plan, &mut full);
        assert!(w.bits_eq(&full));
        // Lifting the outage again recomputes the same four edges back.
        let back = engine.refresh_delta(&snap, &mut w);
        assert_eq!(back.recomputed, 4);
        assert!(w.bits_eq(&engine.refresh(&snap)));
    }

    #[test]
    fn delta_refresh_recovers_from_a_masked_starting_state() {
        let (c, _, engine) = setup();
        let mut plan = FaultPlan::empty();
        plan.kill(SatId(7));
        plan.cut_link(SatId(200), SatId(201));
        let mut w = IslWeights::default();
        engine.refresh_into_masked(&c.snapshot(0.0), &plan, &mut w);
        // Advance under the same plan, then drop it — both transitions
        // must land bit-for-bit on the full-refresh result.
        engine.refresh_delta_masked(&c.snapshot(60.0), &plan, &mut w);
        let mut full = IslWeights::default();
        engine.refresh_into_masked(&c.snapshot(60.0), &plan, &mut full);
        assert!(w.bits_eq(&full));
        engine.refresh_delta(&c.snapshot(60.0), &mut w);
        assert!(w.bits_eq(&engine.refresh(&c.snapshot(60.0))));
    }

    #[test]
    fn multi_source_equals_elementwise_min_of_single_sources() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(120.0);
        let weights = engine.refresh(&snap);
        let grounds = [endpoint(0, 9.06, 7.49), endpoint(1, -33.87, 151.21)];
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let sources = [SatId(3), SatId(700), SatId(1400)];
        let mut batched = Vec::new();
        engine.multi_source_ground_delays_into(
            &weights,
            &links,
            &sources,
            &mut batched,
            &mut arena,
        );
        assert_eq!(batched.len(), grounds.len());
        let mut single = Vec::new();
        for g in 0..grounds.len() {
            let best = sources
                .iter()
                .map(|&s| {
                    engine.multi_source_ground_delays_into(
                        &weights,
                        &links,
                        std::slice::from_ref(&s),
                        &mut single,
                        &mut arena,
                    );
                    single[g]
                })
                .fold(f64::INFINITY, f64::min);
            assert_eq!(batched[g].to_bits(), best.to_bits(), "ground {g}");
        }
    }

    #[test]
    fn multi_source_over_all_sats_is_the_best_up_link() {
        // Seeding every satellite at zero makes each ground's answer the
        // minimum over its own up-links — one hop beats any detour.
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let weights = engine.refresh(&snap);
        let grounds = [endpoint(0, 0.0, 0.0), endpoint(1, 47.38, 8.54)];
        let links = engine.attach_scan(&c, &snap, &grounds);
        let all: Vec<SatId> = (0..engine.num_sats() as u32).map(SatId).collect();
        let mut out = Vec::new();
        let mut arena = DijkstraArena::new();
        engine.multi_source_ground_delays_into(&weights, &links, &all, &mut out, &mut arena);
        for (g, &got) in out.iter().enumerate() {
            let best = links
                .up_of(g)
                .iter()
                .map(|&(_, w)| w)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(got.to_bits(), best.to_bits(), "ground {g}");
        }
    }

    #[test]
    fn multi_source_with_no_sources_reaches_nothing() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(0.0);
        let weights = engine.refresh(&snap);
        let links = engine.attach_scan(&c, &snap, &[endpoint(0, 0.0, 0.0)]);
        let mut out = Vec::new();
        let mut arena = DijkstraArena::new();
        engine.multi_source_ground_delays_into(&weights, &links, &[], &mut out, &mut arena);
        assert_eq!(out, vec![f64::INFINITY]);
    }

    #[test]
    fn argmin_frontier_delays_match_plain_multi_source() {
        let (c, _, engine) = setup();
        let snap = c.snapshot(240.0);
        let weights = engine.refresh(&snap);
        let grounds = [
            endpoint(0, 9.06, 7.49),
            endpoint(1, -33.87, 151.21),
            endpoint(2, 51.5, -0.1),
        ];
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let sources = [SatId(11), SatId(480), SatId(909), SatId(1501)];
        let mut plain = Vec::new();
        engine.multi_source_ground_delays_into(&weights, &links, &sources, &mut plain, &mut arena);
        let (mut delays, mut winners) = (Vec::new(), Vec::new());
        engine.multi_source_ground_frontier_into(
            &weights,
            &links,
            &sources,
            &mut delays,
            &mut winners,
            &mut arena,
        );
        assert_eq!(plain.len(), delays.len());
        for (g, (a, b)) in plain.iter().zip(&delays).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "ground {g}");
        }
        // Every winner is one of the sources and reproduces the delay as
        // its own single-source run.
        let mut single = Vec::new();
        for (g, w) in winners.iter().enumerate() {
            match w {
                Some(s) => {
                    assert!(sources.contains(s), "ground {g} won by a non-source");
                    engine.multi_source_ground_delays_into(
                        &weights,
                        &links,
                        std::slice::from_ref(s),
                        &mut single,
                        &mut arena,
                    );
                    assert_eq!(single[g].to_bits(), delays[g].to_bits(), "ground {g}");
                }
                None => assert!(delays[g].is_infinite(), "ground {g}"),
            }
        }
    }

    #[test]
    fn argmin_frontier_winner_is_the_lowest_id_single_source_argmin() {
        // The winner must be exactly the arg-min over per-source runs,
        // ties to the lowest SatId — never an artifact of settle order.
        let (c, _, engine) = setup();
        let snap = c.snapshot(777.0);
        let weights = engine.refresh(&snap);
        let grounds = [endpoint(0, 0.0, 0.0), endpoint(1, 47.38, 8.54)];
        let links = engine.attach_scan(&c, &snap, &grounds);
        let mut arena = DijkstraArena::new();
        let sources: Vec<SatId> = (0..engine.num_sats() as u32)
            .step_by(7)
            .map(SatId)
            .collect();
        let (mut delays, mut winners) = (Vec::new(), Vec::new());
        engine.multi_source_ground_frontier_into(
            &weights,
            &links,
            &sources,
            &mut delays,
            &mut winners,
            &mut arena,
        );
        let mut single = Vec::new();
        for g in 0..grounds.len() {
            let mut best: Option<(f64, u32)> = None;
            for &s in &sources {
                engine.multi_source_ground_delays_into(
                    &weights,
                    &links,
                    std::slice::from_ref(&s),
                    &mut single,
                    &mut arena,
                );
                let d = single[g];
                let better = match best {
                    None => true,
                    Some((bd, bi)) => d < bd || (d == bd && s.0 < bi),
                };
                if d.is_finite() && better {
                    best = Some((d, s.0));
                }
            }
            match best {
                Some((d, i)) => {
                    assert_eq!(delays[g].to_bits(), d.to_bits(), "ground {g}");
                    assert_eq!(winners[g], Some(SatId(i)), "ground {g}");
                }
                None => assert_eq!(winners[g], None, "ground {g}"),
            }
        }
    }

    #[test]
    fn argmin_frontier_breaks_equal_delay_ties_to_the_lowest_sat_id() {
        // Two sources at mirrored positions relative to a ground point on
        // the prime meridian: their up-link delays are bit-equal (the
        // range computation squares the mirrored coordinate, so the sign
        // vanishes exactly), and the tie must break to the lower SatId.
        let (c, _, engine) = setup();
        let mut snap = c.snapshot(0.0);
        let ground = endpoint(0, 0.0, 0.0);
        let ge = ground.ecef.0;
        // Plant two satellites symmetrically above the ground point,
        // mirrored in y, and park them high enough to be each other's
        // best visible servers for this ground.
        let a = Ecef::new(ge.x + 550e3, ge.y + 200e3, ge.z);
        let b = Ecef::new(ge.x + 550e3, -(ge.y + 200e3), ge.z);
        snap.positions[40] = a;
        snap.positions[41] = b;
        assert_eq!(
            ground.ecef.distance_m(a).to_bits(),
            ground.ecef.distance_m(b).to_bits(),
            "mirrored geometry must give bit-equal ranges"
        );
        let weights = engine.refresh(&snap);
        let links = engine.attach_scan(&c, &snap, std::slice::from_ref(&ground));
        let mut arena = DijkstraArena::new();
        let (mut delays, mut winners) = (Vec::new(), Vec::new());
        // Seed in descending id order: the tie-break must not care.
        engine.multi_source_ground_frontier_into(
            &weights,
            &links,
            &[SatId(41), SatId(40)],
            &mut delays,
            &mut winners,
            &mut arena,
        );
        assert!(delays[0].is_finite(), "planted sats must reach the ground");
        assert_eq!(
            winners[0],
            Some(SatId(40)),
            "equal-delay tie must break to the lowest SatId"
        );
    }
}
