//! A propagation-delay-weighted network graph over satellites and ground
//! endpoints, with Dijkstra shortest paths.
//!
//! Node identifiers distinguish satellites (backed by
//! [`leo_constellation::SatId`]) from ground endpoints (user terminals,
//! ground stations, data centers). Edge weights are one-way propagation
//! delays in seconds; shortest paths therefore minimize latency, matching
//! how the paper computes its RTT numbers (propagation only, §3.1).

use leo_constellation::SatId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node in the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// A satellite.
    Sat(SatId),
    /// A ground endpoint, identified by an index the caller assigns.
    Ground(u32),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Sat(s) => write!(f, "{s}"),
            NodeId::Ground(g) => write!(f, "gnd{g}"),
        }
    }
}

/// A shortest path: ordered nodes and the total one-way delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Nodes from source to destination, inclusive.
    pub nodes: Vec<NodeId>,
    /// Total one-way propagation delay, seconds.
    pub delay_s: f64,
}

impl Path {
    /// Round-trip time, milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        2.0 * self.delay_s * 1e3
    }

    /// Number of hops (edges) on the path.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// A weighted undirected graph over [`NodeId`]s.
///
/// Build one per snapshot: insert the ISL edges and the ground up/down
/// links in view, then run [`NetworkGraph::shortest_path`] /
/// [`NetworkGraph::shortest_paths_from`].
#[derive(Debug, Clone, Default)]
pub struct NetworkGraph {
    /// Dense node storage; edges index into it.
    nodes: Vec<NodeId>,
    /// node → its index.
    index: std::collections::HashMap<NodeId, usize>,
    /// adjacency: `(neighbor_index, delay_s)`.
    adj: Vec<Vec<(usize, f64)>>,
    /// Running undirected-edge count, maintained by `add_edge` so
    /// `edge_count` is O(1) instead of an O(E) sum over the adjacency.
    num_edges: usize,
}

impl NetworkGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a node exists, returning its dense index.
    pub fn add_node(&mut self, node: NodeId) -> usize {
        if let Some(&i) = self.index.get(&node) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(node);
        self.index.insert(node, i);
        self.adj.push(Vec::new());
        i
    }

    /// Adds an undirected edge with a one-way delay in seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite delays — those would corrupt
    /// Dijkstra's invariant.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, delay_s: f64) {
        assert!(
            delay_s.is_finite() && delay_s >= 0.0,
            "invalid edge delay {delay_s}"
        );
        let ia = self.add_node(a);
        let ib = self.add_node(b);
        self.adj[ia].push((ib, delay_s));
        self.adj[ib].push((ia, delay_s));
        self.num_edges += 1;
    }

    /// Adds an undirected edge weighted by distance at light speed.
    pub fn add_edge_distance(&mut self, a: NodeId, b: NodeId, distance_m: f64) {
        self.add_edge(a, b, distance_m / leo_geo::consts::SPEED_OF_LIGHT_M_S);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// True when the node is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.index.contains_key(&node)
    }

    /// Dijkstra from `src`: one-way delay to every reachable node, and the
    /// predecessor array for path extraction.
    fn dijkstra(&self, src: usize) -> (Vec<f64>, Vec<usize>) {
        #[derive(PartialEq)]
        struct Item(f64, usize);
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> Ordering {
                // Min-heap on delay.
                o.0.total_cmp(&self.0)
            }
        }

        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(Item(0.0, src));
        while let Some(Item(d, u)) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adj[u] {
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                    heap.push(Item(nd, v));
                }
            }
        }
        (dist, prev)
    }

    /// Shortest (minimum-delay) path between two nodes, or `None` when
    /// disconnected or absent.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Path> {
        let (&isrc, &idst) = (self.index.get(&src)?, self.index.get(&dst)?);
        let (dist, prev) = self.dijkstra(isrc);
        if dist[idst].is_infinite() {
            return None;
        }
        let mut nodes = vec![self.nodes[idst]];
        let mut cur = idst;
        while cur != isrc {
            cur = prev[cur];
            nodes.push(self.nodes[cur]);
        }
        nodes.reverse();
        Some(Path {
            nodes,
            delay_s: dist[idst],
        })
    }

    /// One-way delays from `src` to every node, as `(node, delay_s)` for
    /// reachable nodes only.
    pub fn shortest_paths_from(&self, src: NodeId) -> Vec<(NodeId, f64)> {
        let Some(&isrc) = self.index.get(&src) else {
            return Vec::new();
        };
        let (dist, _) = self.dijkstra(isrc);
        dist.iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| (self.nodes[i], d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(i: u32) -> NodeId {
        NodeId::Ground(i)
    }
    fn s(i: u32) -> NodeId {
        NodeId::Sat(SatId(i))
    }

    #[test]
    fn direct_edge_is_the_shortest_path() {
        let mut net = NetworkGraph::new();
        net.add_edge(g(0), g(1), 5.0);
        let p = net.shortest_path(g(0), g(1)).unwrap();
        assert_eq!(p.nodes, vec![g(0), g(1)]);
        assert_eq!(p.delay_s, 5.0);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn dijkstra_prefers_the_cheaper_detour() {
        let mut net = NetworkGraph::new();
        net.add_edge(g(0), g(1), 10.0);
        net.add_edge(g(0), s(0), 2.0);
        net.add_edge(s(0), s(1), 3.0);
        net.add_edge(s(1), g(1), 2.0);
        let p = net.shortest_path(g(0), g(1)).unwrap();
        assert_eq!(p.delay_s, 7.0);
        assert_eq!(p.nodes, vec![g(0), s(0), s(1), g(1)]);
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let mut net = NetworkGraph::new();
        net.add_node(g(0));
        net.add_node(g(1));
        assert!(net.shortest_path(g(0), g(1)).is_none());
    }

    #[test]
    fn absent_nodes_yield_none() {
        let net = NetworkGraph::new();
        assert!(net.shortest_path(g(0), g(1)).is_none());
    }

    #[test]
    fn path_to_self_is_empty_with_zero_delay() {
        let mut net = NetworkGraph::new();
        net.add_node(g(0));
        let p = net.shortest_path(g(0), g(0)).unwrap();
        assert_eq!(p.delay_s, 0.0);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn rtt_is_twice_the_one_way_delay_in_ms() {
        let mut net = NetworkGraph::new();
        net.add_edge(g(0), g(1), 0.008);
        let p = net.shortest_path(g(0), g(1)).unwrap();
        assert!((p.rtt_ms() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn distance_edges_use_light_speed() {
        let mut net = NetworkGraph::new();
        net.add_edge_distance(g(0), s(0), 299_792_458.0);
        let p = net.shortest_path(g(0), s(0)).unwrap();
        assert!((p.delay_s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid edge delay")]
    fn negative_delays_are_rejected() {
        let mut net = NetworkGraph::new();
        net.add_edge(g(0), g(1), -1.0);
    }

    #[test]
    fn edge_count_tracks_additions_in_constant_time() {
        let mut net = NetworkGraph::new();
        assert_eq!(net.edge_count(), 0);
        net.add_edge(g(0), g(1), 1.0);
        net.add_edge(g(1), s(0), 2.0);
        net.add_edge(g(0), g(1), 3.0); // parallel edges count separately
        assert_eq!(net.edge_count(), 3);
        assert_eq!(
            net.edge_count(),
            net.adj.iter().map(Vec::len).sum::<usize>() / 2,
            "counter must agree with the adjacency sum"
        );
    }

    #[test]
    fn shortest_paths_from_covers_the_component() {
        let mut net = NetworkGraph::new();
        net.add_edge(g(0), s(0), 1.0);
        net.add_edge(s(0), s(1), 1.0);
        net.add_node(g(9)); // isolated
        let all = net.shortest_paths_from(g(0));
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|(n, _)| *n != g(9)));
    }

    proptest! {
        /// Triangle inequality: adding an intermediate node never makes the
        /// reported shortest path longer than any 2-hop alternative.
        #[test]
        fn prop_shortest_path_is_minimal(
            w01 in 0.1..10.0f64,
            w02 in 0.1..10.0f64,
            w12 in 0.1..10.0f64,
        ) {
            let mut net = NetworkGraph::new();
            net.add_edge(g(0), g(1), w01);
            net.add_edge(g(0), g(2), w02);
            net.add_edge(g(1), g(2), w12);
            let p = net.shortest_path(g(0), g(1)).unwrap();
            prop_assert!(p.delay_s <= w01 + 1e-12);
            prop_assert!(p.delay_s <= w02 + w12 + 1e-12);
            prop_assert!((p.delay_s - w01.min(w02 + w12)).abs() < 1e-12);
        }

        /// Dijkstra distances satisfy the triangle inequality pairwise on a
        /// random graph.
        #[test]
        fn prop_distances_satisfy_triangle_inequality(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.1..5.0f64), 5..30),
        ) {
            let mut net = NetworkGraph::new();
            for node in 0..8 { net.add_node(g(node)); }
            for (a, b, w) in edges {
                if a != b { net.add_edge(g(a), g(b), w); }
            }
            let d0: std::collections::HashMap<_, _> =
                net.shortest_paths_from(g(0)).into_iter().collect();
            for mid in 1..8u32 {
                let Some(&dm) = d0.get(&g(mid)) else { continue };
                let dmid: std::collections::HashMap<_, _> =
                    net.shortest_paths_from(g(mid)).into_iter().collect();
                for tgt in 1..8u32 {
                    if let (Some(&dt), Some(&dmt)) = (d0.get(&g(tgt)), dmid.get(&g(tgt))) {
                        prop_assert!(dt <= dm + dmt + 1e-9);
                    }
                }
            }
        }
    }
}
