//! Inter-satellite-link (ISL) topology.
//!
//! The planned constellations carry laser ISLs. The de-facto standard
//! connectivity assumption in the literature (and in the paper's group's
//! own topology work, "Network topology design at 27,000 km/hour") is
//! **+Grid**: each satellite links to the satellite ahead and behind in
//! its own plane, and to the nearest-slot satellite in each adjacent
//! plane — four links per satellite, within a shell. Cross-shell ISLs are
//! not assumed.
//!
//! Links are only usable when the straight-line path clears the Earth's
//! atmosphere; [`line_of_sight_clear`] enforces a configurable grazing
//! altitude.

use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::consts::EARTH_RADIUS_MEAN_M;
use leo_geo::Ecef;
use serde::{Deserialize, Serialize};

/// Minimum altitude (meters) an ISL ray must keep above the surface; laser
/// links grazing the thick atmosphere are unusable. 80 km is the common
/// assumption (top of the mesosphere).
pub const DEFAULT_GRAZING_ALTITUDE_M: f64 = 80_000.0;

/// True when the straight line between two ECEF points stays at least
/// `grazing_altitude_m` above the (spherical) Earth surface.
pub fn line_of_sight_clear(a: Ecef, b: Ecef, grazing_altitude_m: f64) -> bool {
    let limit = EARTH_RADIUS_MEAN_M + grazing_altitude_m;
    // Distance from the origin to the segment a-b.
    let ab = b.0 - a.0;
    let len2 = ab.norm_squared();
    if len2 == 0.0 {
        return a.0.norm() >= limit;
    }
    let t = (-a.0.dot(ab) / len2).clamp(0.0, 1.0);
    let closest = a.0 + ab * t;
    closest.norm() >= limit
}

/// One undirected inter-satellite link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IslEdge {
    /// One endpoint (always the smaller id).
    pub a: SatId,
    /// The other endpoint.
    pub b: SatId,
}

impl IslEdge {
    fn new(x: SatId, y: SatId) -> Self {
        if x <= y {
            IslEdge { a: x, b: y }
        } else {
            IslEdge { a: y, b: x }
        }
    }
}

/// The static +Grid ISL topology of a constellation (edges don't change
/// over time; only their lengths do).
#[derive(Debug, Clone)]
pub struct IslTopology {
    edges: Vec<IslEdge>,
    /// Adjacency: neighbor satellite ids, indexed by `SatId.0`.
    neighbors: Vec<Vec<SatId>>,
    grazing_altitude_m: f64,
}

impl IslTopology {
    /// Builds the +Grid topology for every shell of the constellation.
    pub fn plus_grid(constellation: &Constellation) -> Self {
        Self::plus_grid_with_grazing(constellation, DEFAULT_GRAZING_ALTITUDE_M)
    }

    /// Intra-plane rings only (no cross-plane lasers) — the ablation
    /// baseline for the topology comparison in DESIGN.md §6. Cheaper
    /// terminals, but cross-plane traffic must ride the ground segment.
    pub fn ring_only(constellation: &Constellation) -> Self {
        let mut edges = Vec::new();
        for (shell_idx, shell) in constellation.shells().iter().enumerate() {
            let shell_idx = shell_idx as u32;
            if shell.sats_per_plane < 2 {
                continue;
            }
            for plane in 0..shell.num_planes {
                for slot in 0..shell.sats_per_plane {
                    let here = constellation.id_at(shell_idx, plane, slot);
                    let next =
                        constellation.id_at(shell_idx, plane, (slot + 1) % shell.sats_per_plane);
                    edges.push(IslEdge::new(here, next));
                }
            }
        }
        edges.sort_by_key(|e| (e.a, e.b));
        edges.dedup();
        let mut neighbors = vec![Vec::new(); constellation.num_satellites()];
        for e in &edges {
            neighbors[e.a.0 as usize].push(e.b);
            neighbors[e.b.0 as usize].push(e.a);
        }
        IslTopology {
            edges,
            neighbors,
            grazing_altitude_m: DEFAULT_GRAZING_ALTITUDE_M,
        }
    }

    /// No inter-satellite links at all — bent-pipe operation, every
    /// satellite hop must bounce through a ground station.
    pub fn none(constellation: &Constellation) -> Self {
        IslTopology {
            edges: Vec::new(),
            neighbors: vec![Vec::new(); constellation.num_satellites()],
            grazing_altitude_m: DEFAULT_GRAZING_ALTITUDE_M,
        }
    }

    /// +Grid with an explicit grazing altitude for the line-of-sight rule.
    pub fn plus_grid_with_grazing(constellation: &Constellation, grazing_altitude_m: f64) -> Self {
        // Within a shell every satellite shares the same semi-major axis,
        // eccentricity, and inclination, so the shell's relative geometry
        // is rigid over time: the nearest adjacent-plane neighbor at the
        // epoch stays the nearest forever. Evaluate positions once at t=0.
        let epoch_positions: Vec<_> = constellation
            .satellites()
            .iter()
            .map(|s| s.propagator.position_eci(0.0).0)
            .collect();
        let mut set = std::collections::HashSet::new();
        for (shell_idx, shell) in constellation.shells().iter().enumerate() {
            let shell_idx = shell_idx as u32;
            let planes = shell.num_planes;
            let spp = shell.sats_per_plane;
            for plane in 0..planes {
                for slot in 0..spp {
                    let here = constellation.id_at(shell_idx, plane, slot);
                    // Intra-plane ring: next slot (prev is covered by the
                    // next slot's own edge).
                    if spp > 1 {
                        let next = constellation.id_at(shell_idx, plane, (slot + 1) % spp);
                        set.insert(IslEdge::new(here, next));
                    }
                    // Inter-plane: nearest satellite in the next plane.
                    // With uniform Walker phasing the nearest-slot offset
                    // is the same for every slot, so this mapping is a
                    // bijection and every satellite keeps degree 4. Naive
                    // same-slot linking breaks at the plane-wrap seam,
                    // where the accumulated phase offset approaches 180°.
                    if planes > 1 {
                        let next_plane = (plane + 1) % planes;
                        let nearest = (0..spp)
                            .map(|s2| constellation.id_at(shell_idx, next_plane, s2))
                            .min_by(|&x, &y| {
                                let dx = epoch_positions[here.0 as usize]
                                    .distance(epoch_positions[x.0 as usize]);
                                let dy = epoch_positions[here.0 as usize]
                                    .distance(epoch_positions[y.0 as usize]);
                                dx.total_cmp(&dy)
                            })
                            .expect("non-empty plane");
                        set.insert(IslEdge::new(here, nearest));
                    }
                }
            }
        }
        let mut edges: Vec<IslEdge> = set.into_iter().collect();
        edges.sort_by_key(|e| (e.a, e.b));
        let mut neighbors = vec![Vec::new(); constellation.num_satellites()];
        for e in &edges {
            neighbors[e.a.0 as usize].push(e.b);
            neighbors[e.b.0 as usize].push(e.a);
        }
        IslTopology {
            edges,
            neighbors,
            grazing_altitude_m,
        }
    }

    /// All undirected edges.
    pub fn edges(&self) -> &[IslEdge] {
        &self.edges
    }

    /// ISL neighbors of one satellite.
    pub fn neighbors(&self, id: SatId) -> &[SatId] {
        &self.neighbors[id.0 as usize]
    }

    /// The grazing altitude used for the line-of-sight rule.
    pub fn grazing_altitude_m(&self) -> f64 {
        self.grazing_altitude_m
    }

    /// Edge lengths at a snapshot, skipping edges whose line of sight is
    /// blocked by the Earth. Returns `(edge, length_m)` pairs.
    pub fn active_edges(&self, snapshot: &Snapshot) -> Vec<(IslEdge, f64)> {
        self.edges
            .iter()
            .filter_map(|&e| {
                let pa = snapshot.position(e.a);
                let pb = snapshot.position(e.b);
                line_of_sight_clear(pa, pb, self.grazing_altitude_m).then(|| (e, pa.distance_m(pb)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    #[test]
    fn line_of_sight_between_opposite_sides_is_blocked() {
        let a = Geodetic::from_degrees(0.0, 0.0, 550e3).to_ecef_spherical();
        let b = Geodetic::from_degrees(0.0, 180.0, 550e3).to_ecef_spherical();
        assert!(!line_of_sight_clear(a, b, DEFAULT_GRAZING_ALTITUDE_M));
    }

    #[test]
    fn line_of_sight_between_neighbors_is_clear() {
        let a = Geodetic::from_degrees(0.0, 0.0, 550e3).to_ecef_spherical();
        let b = Geodetic::from_degrees(0.0, 20.0, 550e3).to_ecef_spherical();
        assert!(line_of_sight_clear(a, b, DEFAULT_GRAZING_ALTITUDE_M));
    }

    #[test]
    fn grazing_altitude_tightens_the_rule() {
        // Two satellites whose connecting ray grazes ~200 km altitude.
        let a = Geodetic::from_degrees(0.0, -21.0, 550e3).to_ecef_spherical();
        let b = Geodetic::from_degrees(0.0, 21.0, 550e3).to_ecef_spherical();
        assert!(line_of_sight_clear(a, b, 80e3));
        assert!(!line_of_sight_clear(a, b, 400e3));
    }

    #[test]
    fn plus_grid_gives_each_satellite_four_neighbors() {
        let c = presets::starlink_550_only();
        let topo = IslTopology::plus_grid(&c);
        for sat in c.satellites() {
            assert_eq!(
                topo.neighbors(sat.id).len(),
                4,
                "sat {} has wrong degree",
                sat.id
            );
        }
        // Edge count = 2 per satellite (4 endpoints / 2).
        assert_eq!(topo.edges().len(), c.num_satellites() * 2);
    }

    #[test]
    fn edges_stay_within_a_shell() {
        let c = presets::starlink_phase1();
        let topo = IslTopology::plus_grid(&c);
        for e in topo.edges() {
            assert_eq!(
                c.satellite(e.a).shell,
                c.satellite(e.b).shell,
                "cross-shell edge {e:?}"
            );
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let c = presets::kuiper();
        let topo = IslTopology::plus_grid(&c);
        for sat in c.satellites() {
            for &n in topo.neighbors(sat.id) {
                assert!(topo.neighbors(n).contains(&sat.id));
            }
        }
    }

    #[test]
    fn plus_grid_links_are_short_and_unobstructed() {
        let c = presets::starlink_550_only();
        let topo = IslTopology::plus_grid(&c);
        let snap = c.snapshot(0.0);
        let active = topo.active_edges(&snap);
        // +Grid neighbors at 550 km are always mutually visible.
        assert_eq!(active.len(), topo.edges().len());
        for (e, len) in active {
            assert!(
                len < 6_000e3,
                "edge {e:?} is {} km — not a neighbor link",
                len / 1e3
            );
        }
    }

    #[test]
    fn grid_is_connected() {
        // BFS from satellite 0 must reach the whole 550 km shell.
        let c = presets::starlink_550_only();
        let topo = IslTopology::plus_grid(&c);
        let mut seen = vec![false; c.num_satellites()];
        let mut queue = std::collections::VecDeque::from([SatId(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(s) = queue.pop_front() {
            for &n in topo.neighbors(s) {
                if !seen[n.0 as usize] {
                    seen[n.0 as usize] = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        assert_eq!(count, c.num_satellites());
    }

    #[test]
    fn ring_only_topology_has_degree_two() {
        let c = presets::starlink_550_only();
        let topo = IslTopology::ring_only(&c);
        for sat in c.satellites() {
            assert_eq!(topo.neighbors(sat.id).len(), 2);
        }
        assert_eq!(topo.edges().len(), c.num_satellites());
    }

    #[test]
    fn ring_only_is_disconnected_across_planes() {
        // BFS from sat 0 must stay inside its own plane.
        let c = presets::starlink_550_only();
        let topo = IslTopology::ring_only(&c);
        let mut seen = std::collections::HashSet::from([SatId(0)]);
        let mut queue = std::collections::VecDeque::from([SatId(0)]);
        while let Some(s) = queue.pop_front() {
            for &n in topo.neighbors(s) {
                if seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        assert_eq!(seen.len(), 22, "one plane of 22 satellites");
    }

    #[test]
    fn none_topology_is_empty() {
        let c = presets::starlink_550_only();
        let topo = IslTopology::none(&c);
        assert!(topo.edges().is_empty());
        assert!(topo.active_edges(&c.snapshot(0.0)).is_empty());
        for sat in c.satellites() {
            assert!(topo.neighbors(sat.id).is_empty());
        }
    }

    #[test]
    fn degenerate_single_plane_shell_builds_a_ring() {
        use leo_constellation::{Constellation, ShellSpec, WalkerPattern};
        use leo_geo::Angle;
        let c = Constellation::from_shells(
            "ring",
            vec![ShellSpec {
                name: "ring".into(),
                altitude_m: 550e3,
                inclination: Angle::from_degrees(53.0),
                num_planes: 1,
                sats_per_plane: 6,
                phase_factor: 0,
                pattern: WalkerPattern::Delta,
                min_elevation: Angle::from_degrees(25.0),
            }],
        );
        let topo = IslTopology::plus_grid(&c);
        assert_eq!(topo.edges().len(), 6); // pure ring
        for sat in c.satellites() {
            assert_eq!(topo.neighbors(sat.id).len(), 2);
        }
    }
}
