//! Ground-to-satellite visibility queries.
//!
//! A satellite is *reachable* from a ground point when its elevation above
//! the local horizon is at least the minimum elevation angle of its shell
//! (25° for Starlink, 35° for Kuiper, per the FCC filings). These queries
//! drive Figs 1, 2, 4 and 5 of the paper and the server-selection
//! algorithms in `leo-core`.

use crate::fault::FaultPlan;
use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::consts::SPEED_OF_LIGHT_M_S;
use leo_geo::look;
use leo_geo::{Ecef, Geodetic};
use serde::{Deserialize, Serialize};

/// One satellite visible from a ground point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisibleSat {
    /// Which satellite.
    pub id: SatId,
    /// Slant range from the ground point, meters.
    pub range_m: f64,
}

impl VisibleSat {
    /// One-way propagation delay to the satellite, seconds.
    pub fn delay_s(&self) -> f64 {
        self.range_m / SPEED_OF_LIGHT_M_S
    }

    /// Round-trip propagation time, milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        2.0 * self.range_m / SPEED_OF_LIGHT_M_S * 1e3
    }
}

/// All satellites visible from `ground` in `snapshot`, unsorted.
///
/// Visibility uses the spherical-Earth dot-product test
/// ([`look::is_visible_spherical`]) with each satellite's own shell
/// minimum elevation. `ground_ecef` must be the spherical-model ECEF of
/// `ground` (pass the result of [`Geodetic::to_ecef_spherical`]).
pub fn visible_sats(
    constellation: &Constellation,
    snapshot: &Snapshot,
    ground: Geodetic,
    ground_ecef: Ecef,
) -> Vec<VisibleSat> {
    let _ = ground; // geodetic kept in the signature for API symmetry
    let mut out = Vec::new();
    // Per-shell max slant range is a cheap distance prefilter that is also
    // *exact* for circular shells: elevation ≥ ε ⟺ range ≤ max range.
    let max_ranges: Vec<f64> = constellation
        .shells()
        .iter()
        .map(|s| look::max_slant_range_m(s.altitude_m, s.min_elevation))
        .collect();
    for (id, pos) in snapshot.iter() {
        let sat = constellation.satellite(id);
        let range = ground_ecef.distance_m(pos);
        if range > max_ranges[sat.shell as usize] {
            continue;
        }
        let min_el = constellation.shells()[sat.shell as usize].min_elevation;
        if look::is_visible_spherical(ground_ecef, pos, min_el) {
            out.push(VisibleSat { id, range_m: range });
        }
    }
    out
}

/// [`visible_sats`] under a fault plan: satellites whose server is dead
/// and links the plan's ground fade cannot close are filtered out. The
/// brute-force mirror of
/// [`VisibilityIndex::query_masked`](crate::index::VisibilityIndex::query_masked);
/// identical to [`visible_sats`] when the plan is empty.
pub fn visible_sats_masked(
    constellation: &Constellation,
    snapshot: &Snapshot,
    ground: Geodetic,
    ground_ecef: Ecef,
    plan: &FaultPlan,
) -> Vec<VisibleSat> {
    if plan.is_empty() {
        return visible_sats(constellation, snapshot, ground, ground_ecef);
    }
    visible_sats(constellation, snapshot, ground, ground_ecef)
        .into_iter()
        .filter(|v| {
            !plan.sat_dead(v.id) && !plan.access_link_masked(ground_ecef, snapshot.position(v.id))
        })
        .collect()
}

/// The nearest visible satellite, if any.
pub fn nearest_visible(
    constellation: &Constellation,
    snapshot: &Snapshot,
    ground: Geodetic,
    ground_ecef: Ecef,
) -> Option<VisibleSat> {
    visible_sats(constellation, snapshot, ground, ground_ecef)
        .into_iter()
        .min_by(|a, b| a.range_m.total_cmp(&b.range_m))
}

/// The farthest directly reachable satellite, if any.
pub fn farthest_visible(
    constellation: &Constellation,
    snapshot: &Snapshot,
    ground: Geodetic,
    ground_ecef: Ecef,
) -> Option<VisibleSat> {
    visible_sats(constellation, snapshot, ground, ground_ecef)
        .into_iter()
        .max_by(|a, b| a.range_m.total_cmp(&b.range_m))
}

/// Marks which satellites are visible from *at least one* of the given
/// ground stations — the complement is the paper's "invisible" satellite
/// set (Figs 4–5). Returns a boolean per satellite, indexed by `SatId.0`.
pub fn coverage_mask(
    constellation: &Constellation,
    snapshot: &Snapshot,
    grounds: &[(Geodetic, Ecef)],
) -> Vec<bool> {
    let max_ranges: Vec<f64> = constellation
        .shells()
        .iter()
        .map(|s| look::max_slant_range_m(s.altitude_m, s.min_elevation))
        .collect();
    let mut mask = vec![false; snapshot.len()];
    for (id, pos) in snapshot.iter() {
        let sat = constellation.satellite(id);
        let max_range = max_ranges[sat.shell as usize];
        let min_el = constellation.shells()[sat.shell as usize].min_elevation;
        for &(_, ge) in grounds {
            if ge.distance_m(pos) <= max_range && look::is_visible_spherical(ge, pos, min_el) {
                mask[id.0 as usize] = true;
                break;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use leo_constellation::presets;

    fn ground(lat: f64, lon: f64) -> (Geodetic, Ecef) {
        let g = Geodetic::ground(lat, lon);
        (g, g.to_ecef_spherical())
    }

    #[test]
    fn equator_sees_dozens_of_starlink_satellites() {
        // Fig. 2: 30+ satellites visible from almost all Starlink-served
        // locations.
        let c = presets::starlink_phase1();
        let snap = c.snapshot(0.0);
        let (g, ge) = ground(0.0, 0.0);
        let vis = visible_sats(&c, &snap, g, ge);
        assert!(vis.len() >= 20, "only {} visible", vis.len());
    }

    #[test]
    fn kuiper_provides_no_service_at_high_latitude() {
        // Fig. 1: "Kuiper's design does not provide service beyond 60°".
        let c = presets::kuiper();
        let snap = c.snapshot(0.0);
        let (g, ge) = ground(65.0, 0.0);
        assert!(visible_sats(&c, &snap, g, ge).is_empty());
    }

    #[test]
    fn starlink_serves_the_poles_via_high_shells() {
        let c = presets::starlink_phase1();
        // Sample several times — polar coverage comes from the sparse
        // 81°/70° shells, so a single instant could be a gap.
        let mut seen = 0;
        for i in 0..10 {
            let snap = c.snapshot(i as f64 * 300.0);
            let (g, ge) = ground(85.0, 0.0);
            seen += visible_sats(&c, &snap, g, ge).len();
        }
        assert!(seen > 0, "no polar coverage in any sample");
    }

    #[test]
    fn masked_visibility_filters_dead_and_faded() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let (g, ge) = ground(0.0, 0.0);
        let plain = visible_sats(&c, &snap, g, ge);
        assert!(plain.len() >= 2);
        assert_eq!(
            visible_sats_masked(&c, &snap, g, ge, &FaultPlan::empty()),
            plain,
            "empty plan is invisible"
        );
        let mut plan = FaultPlan::empty();
        plan.kill(plain[0].id);
        let masked = visible_sats_masked(&c, &snap, g, ge, &plan);
        assert_eq!(masked, plain[1..].to_vec());
        plan.set_ground_fade(crate::fault::GroundFade::Outage);
        assert!(visible_sats_masked(&c, &snap, g, ge, &plan).is_empty());
    }

    #[test]
    fn nearest_is_closer_than_farthest() {
        let c = presets::starlink_phase1();
        let snap = c.snapshot(0.0);
        let (g, ge) = ground(30.0, -100.0);
        let near = nearest_visible(&c, &snap, g, ge).unwrap();
        let far = farthest_visible(&c, &snap, g, ge).unwrap();
        assert!(near.range_m <= far.range_m);
    }

    #[test]
    fn nearest_satellite_rtt_is_single_digit_ms_at_mid_latitude() {
        // Fig. 1: nearest reachable satellite within ~4 ms at most
        // latitudes (some instants are worse; stay under the 11 ms bound).
        let c = presets::starlink_phase1();
        let (g, ge) = ground(40.0, 7.0);
        for i in 0..8 {
            let snap = c.snapshot(i as f64 * 450.0);
            let near = nearest_visible(&c, &snap, g, ge).unwrap();
            assert!(near.rtt_ms() < 11.0, "t={}: rtt {}", i * 450, near.rtt_ms());
        }
    }

    #[test]
    fn farthest_reachable_rtt_is_bounded_by_16ms() {
        // Fig. 1: even the farthest directly reachable satellite is within
        // 16 ms RTT.
        let c = presets::starlink_phase1();
        let (g, ge) = ground(25.0, 60.0);
        for i in 0..8 {
            let snap = c.snapshot(i as f64 * 450.0);
            let far = farthest_visible(&c, &snap, g, ge).unwrap();
            assert!(far.rtt_ms() <= 16.2, "rtt {}", far.rtt_ms());
        }
    }

    #[test]
    fn visible_set_respects_per_shell_elevation_rule() {
        let c = presets::kuiper();
        let snap = c.snapshot(600.0);
        let (g, ge) = ground(10.0, 20.0);
        for v in visible_sats(&c, &snap, g, ge) {
            let look = leo_geo::LookAngles::compute(g, ge, snap.position(v.id));
            let min_el = c.min_elevation_of(v.id);
            assert!(
                look.elevation.degrees() >= min_el.degrees() - 1e-6,
                "sat {} below minimum elevation",
                v.id
            );
        }
    }

    #[test]
    fn coverage_mask_agrees_with_per_station_queries() {
        let c = presets::kuiper();
        let snap = c.snapshot(0.0);
        let grounds = vec![ground(0.0, 0.0), ground(30.0, 100.0), ground(-30.0, -60.0)];
        let mask = coverage_mask(&c, &snap, &grounds);
        let mut expect = vec![false; snap.len()];
        for &(g, ge) in &grounds {
            for v in visible_sats(&c, &snap, g, ge) {
                expect[v.id.0 as usize] = true;
            }
        }
        assert_eq!(mask, expect);
    }

    #[test]
    fn many_satellites_are_invisible_from_few_stations() {
        // Fig. 4's premise: a handful of ground sites leaves most of the
        // constellation unseen.
        let c = presets::starlink_phase1();
        let snap = c.snapshot(0.0);
        let grounds = vec![ground(47.4, 8.5)];
        let mask = coverage_mask(&c, &snap, &grounds);
        let visible = mask.iter().filter(|&&b| b).count();
        assert!(visible < snap.len() / 10);
    }
}
