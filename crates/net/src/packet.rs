//! Packet-level discrete-event simulation with finite buffers.
//!
//! The flow-level simulator ([`crate::des`]) times bulk transfers; this
//! module resolves *contention* at packet granularity: FIFO queues with
//! finite buffers (drop-tail), per-packet serialization and propagation,
//! and competing flows. It exists for the paper's footnote 1 (§3.3):
//!
//! > "While the planned networks may provide on the order of 10 Gbps
//! > up/down links, given their primary objective of providing network
//! > connectivity, using a substantial fraction of this bandwidth for
//! > sensing data may require compromising one or the other function."
//!
//! The `downlink_contention` example and the `des` bench quantify that
//! compromise: what happens to user traffic when Earth-observation
//! downloads share the downlink.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a directed packet link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PLinkId(pub usize);

/// Identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A directed link with a finite drop-tail queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketLink {
    /// Rate, bits per second.
    pub rate_bps: f64,
    /// Propagation delay, seconds.
    pub prop_delay_s: f64,
    /// Queue capacity in packets (excluding the one in service).
    pub queue_packets: usize,
}

impl PacketLink {
    /// Creates a link.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite rate, or a negative or
    /// non-finite delay.
    pub fn new(rate_bps: f64, prop_delay_s: f64, queue_packets: usize) -> Self {
        assert!(
            rate_bps.is_finite() && rate_bps > 0.0,
            "link rate must be positive and finite, got {rate_bps}"
        );
        assert!(
            prop_delay_s.is_finite() && prop_delay_s >= 0.0,
            "propagation delay must be non-negative and finite, got {prop_delay_s}"
        );
        PacketLink {
            rate_bps,
            prop_delay_s,
            queue_packets,
        }
    }
}

/// A constant-bit-rate flow over a fixed route.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Route as a sequence of links.
    pub route: Vec<PLinkId>,
    /// Packet size, bits.
    pub packet_bits: f64,
    /// Packet inter-arrival time, seconds.
    pub interval_s: f64,
    /// First packet time, seconds.
    pub start_s: f64,
    /// Number of packets to emit.
    pub packets: usize,
}

impl Flow {
    /// Offered rate of the flow, bits per second.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite `interval_s` (a hand-built
    /// flow that [`PacketNetwork::add_flow`] would reject anyway), so a
    /// zero interval surfaces here instead of silently yielding `inf`
    /// or `NaN`.
    pub fn offered_bps(&self) -> f64 {
        assert!(
            self.interval_s.is_finite() && self.interval_s > 0.0,
            "offered rate needs a positive finite packet interval, got {}",
            self.interval_s
        );
        self.packet_bits / self.interval_s
    }
}

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets delivered end-to-end.
    pub delivered: usize,
    /// Packets dropped at a full queue.
    pub dropped: usize,
    /// End-to-end latencies of delivered packets, seconds.
    pub latencies_s: Vec<f64>,
}

impl FlowStats {
    /// Fraction of emitted packets delivered end-to-end.
    ///
    /// Defined over *emitted* packets only once [`PacketNetwork::run`]
    /// has completed: the denominator is `delivered + dropped`, which
    /// equals the emission count exactly when the event loop has
    /// drained (mid-flight packets are in neither bucket). A flow that
    /// emitted no packets lost none of them, so the zero-packet ratio
    /// is defined as `1.0` (vacuous delivery), not `0.0`.
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// Mean end-to-end latency of delivered packets, seconds.
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.latencies_s.is_empty() {
            None
        } else {
            Some(self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Packet {
    flow: usize,
    emitted_s: f64,
    hop: usize,
}

#[derive(Debug, PartialEq)]
enum EventKind {
    /// A packet arrives at the tail of a link's queue.
    Enqueue { link: usize, packet: Packet },
    /// A link finishes serializing its head packet.
    TxDone { link: usize },
}

impl EventKind {
    /// Processing rank at equal timestamps: a link that finishes
    /// serializing at instant `t` frees its server *before* a packet
    /// arriving at `t` is judged against the queue. Without this rank,
    /// pre-emitted `Enqueue` events carry lower insertion `seq` and pop
    /// first, so a coincident arrival sees the link as still busy and is
    /// queued — or dropped on a full queue — at the exact instant the
    /// server became free.
    fn rank(&self) -> u8 {
        match self {
            EventKind::TxDone { .. } => 0,
            EventKind::Enqueue { .. } => 1,
        }
    }
}

#[derive(Debug, PartialEq)]
struct Event {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap by time; same-instant `TxDone` before `Enqueue`;
        // FIFO insertion-order tie-break within a kind.
        o.time_s
            .total_cmp(&self.time_s)
            .then_with(|| o.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| o.seq.cmp(&self.seq))
    }
}

/// The packet-level simulator.
#[derive(Debug, Default)]
pub struct PacketNetwork {
    links: Vec<PacketLink>,
    flows: Vec<Flow>,
}

impl PacketNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link.
    pub fn add_link(&mut self, link: PacketLink) -> PLinkId {
        self.links.push(link);
        PLinkId(self.links.len() - 1)
    }

    /// Adds a flow.
    ///
    /// # Panics
    /// Panics on an empty route, unknown links, or non-positive or
    /// non-finite timing/size fields. Infinite or NaN values would
    /// silently corrupt the event heap's order (every `total_cmp`
    /// against NaN is consistent but meaningless), so they are rejected
    /// here with the offending value in the message.
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        assert!(!flow.route.is_empty(), "empty route");
        assert!(
            flow.route.iter().all(|l| l.0 < self.links.len()),
            "route references unknown link"
        );
        assert!(
            flow.packet_bits.is_finite() && flow.packet_bits > 0.0,
            "packet size must be positive and finite, got {}",
            flow.packet_bits
        );
        assert!(
            flow.interval_s.is_finite() && flow.interval_s > 0.0,
            "packet interval must be positive and finite, got {}",
            flow.interval_s
        );
        assert!(
            flow.start_s.is_finite(),
            "flow start time must be finite, got {}",
            flow.start_s
        );
        self.flows.push(flow);
        FlowId(self.flows.len() - 1)
    }

    /// Runs to completion, returning per-flow statistics indexed by
    /// [`FlowId`].
    pub fn run(&mut self) -> Vec<FlowStats> {
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time_s: f64, kind: EventKind| {
            heap.push(Event { time_s, seq, kind });
            seq += 1;
        };

        // Emit all packets as enqueue events on each flow's first link.
        for (fi, flow) in self.flows.iter().enumerate() {
            for k in 0..flow.packets {
                let t = flow.start_s + k as f64 * flow.interval_s;
                push(
                    &mut heap,
                    t,
                    EventKind::Enqueue {
                        link: flow.route[0].0,
                        packet: Packet {
                            flow: fi,
                            emitted_s: t,
                            hop: 0,
                        },
                    },
                );
            }
        }

        let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); self.links.len()];
        let mut busy: Vec<Option<Packet>> = vec![None; self.links.len()];
        let mut stats: Vec<FlowStats> = vec![FlowStats::default(); self.flows.len()];

        while let Some(Event { time_s, kind, .. }) = heap.pop() {
            match kind {
                EventKind::Enqueue { link, packet } => {
                    let l = self.links[link];
                    if busy[link].is_none() {
                        // Start serving immediately.
                        busy[link] = Some(packet);
                        let tx = self.flows[packet.flow].packet_bits / l.rate_bps;
                        push(&mut heap, time_s + tx, EventKind::TxDone { link });
                    } else if queues[link].len() < l.queue_packets {
                        queues[link].push_back(packet);
                    } else {
                        stats[packet.flow].dropped += 1;
                    }
                }
                EventKind::TxDone { link } => {
                    let packet = busy[link].take().expect("link was serving");
                    let l = self.links[link];
                    let arrival = time_s + l.prop_delay_s;
                    let flow = &self.flows[packet.flow];
                    if packet.hop + 1 < flow.route.len() {
                        push(
                            &mut heap,
                            arrival,
                            EventKind::Enqueue {
                                link: flow.route[packet.hop + 1].0,
                                packet: Packet {
                                    hop: packet.hop + 1,
                                    ..packet
                                },
                            },
                        );
                    } else {
                        stats[packet.flow].delivered += 1;
                        stats[packet.flow]
                            .latencies_s
                            .push(arrival - packet.emitted_s);
                    }
                    // Serve the next queued packet.
                    if let Some(next) = queues[link].pop_front() {
                        busy[link] = Some(next);
                        let tx = self.flows[next.flow].packet_bits / l.rate_bps;
                        push(&mut heap, time_s + tx, EventKind::TxDone { link });
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cbr(route: Vec<PLinkId>, rate_bps: f64, packet_bits: f64, packets: usize) -> Flow {
        Flow {
            route,
            packet_bits,
            interval_s: packet_bits / rate_bps,
            start_s: 0.0,
            packets,
        }
    }

    #[test]
    fn lone_flow_below_capacity_delivers_everything() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e9, 0.002, 16));
        let f = net.add_flow(cbr(vec![l], 0.5e9, 1e4, 100));
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.dropped, 0);
        // Latency = serialization + propagation for every packet.
        let expect = 1e4 / 1e9 + 0.002;
        for &lat in &stats.latencies_s {
            assert!((lat - expect).abs() < 1e-12, "{lat}");
        }
    }

    #[test]
    fn overload_drops_the_excess() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        // Offered 2 Mbps into a 1 Mbps link: ~half must drop once the
        // queue fills.
        let f = net.add_flow(cbr(vec![l], 2e6, 1e4, 500));
        let stats = &net.run()[f.0];
        assert!(stats.dropped > 150, "dropped {}", stats.dropped);
        assert_eq!(stats.delivered + stats.dropped, 500);
        let ratio = stats.delivery_ratio();
        assert!((0.4..0.7).contains(&ratio), "delivery {ratio}");
    }

    #[test]
    fn queueing_latency_grows_with_load() {
        let run_at = |offered: f64| {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(1e9, 0.001, 64));
            let f = net.add_flow(cbr(vec![l], offered, 1e4, 1000));
            net.run()[f.0].mean_latency_s().unwrap()
        };
        let light = run_at(0.3e9);
        let heavy = run_at(0.99e9);
        assert!(heavy >= light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn two_flows_share_a_link_fairly_at_equal_rates() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e9, 0.0, 1024));
        let a = net.add_flow(cbr(vec![l], 0.4e9, 1e4, 400));
        let b = net.add_flow(cbr(vec![l], 0.4e9, 1e4, 400));
        let stats = net.run();
        assert_eq!(stats[a.0].delivered, 400);
        assert_eq!(stats[b.0].delivered, 400);
    }

    #[test]
    fn bulk_flow_inflates_interactive_queueing_on_a_shared_downlink() {
        // The §3.3 footnote scenario: EO bulk download + user traffic on
        // one 10 Gbps downlink. Compare *queueing* delay (latency above
        // the serialization+propagation floor).
        let floor = 1.2e4 / 10e9 + 0.002;
        let queueing = |with_bulk: bool| {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(10e9, 0.002, 256));
            let f = net.add_flow(cbr(vec![l], 0.1e9, 1.2e4, 500));
            if with_bulk {
                // EO bulk slightly oversubscribing the link.
                net.add_flow(cbr(vec![l], 9.98e9, 1.2e5, 20_000));
            }
            net.run()[f.0].mean_latency_s().unwrap() - floor
        };
        let alone = queueing(false);
        let shared = queueing(true);
        assert!(alone < 1e-9, "uncontended queueing {alone}");
        assert!(
            shared > 1e-6,
            "bulk sharing should add microseconds-scale queueing, got {shared}"
        );
        assert!(shared > alone * 100.0 + 1e-9);
    }

    #[test]
    fn multi_hop_packets_traverse_every_link() {
        let mut net = PacketNetwork::new();
        let l1 = net.add_link(PacketLink::new(1e9, 0.001, 8));
        let l2 = net.add_link(PacketLink::new(1e9, 0.003, 8));
        let f = net.add_flow(cbr(vec![l1, l2], 0.1e9, 1e4, 10));
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 10);
        let expect = 2.0 * (1e4 / 1e9) + 0.001 + 0.003;
        assert!((stats.latencies_s[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_queue_link_is_pure_blocking() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 0));
        // Two packets arrive back-to-back; the second finds the server
        // busy and no queue → dropped.
        let f = net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e6,
            interval_s: 0.5,
            start_s: 0.0,
            packets: 2,
        });
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_flow_routes_are_rejected() {
        let mut net = PacketNetwork::new();
        net.add_flow(Flow {
            route: vec![],
            packet_bits: 1.0,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 1,
        });
    }

    /// Regression: an `Enqueue` landing at the exact instant of a
    /// `TxDone` must see the freed link. Pre-fix, the pre-emitted
    /// `Enqueue` (lower `seq`) popped first, so a back-to-back CBR flow
    /// whose interval exactly equals the serialization time dropped
    /// every packet after the first on a zero-queue link.
    #[test]
    fn coincident_txdone_and_enqueue_frees_the_link_first() {
        // tx time = 1e6 bits / 1e6 bps = 1 s = interval: every arrival
        // coincides exactly with the previous packet's TxDone.
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 0));
        let f = net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e6,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 4,
        });
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 4, "coincident arrivals must be served");
        assert_eq!(stats.dropped, 0);
        // And with a queue, the coincident arrival starts service
        // immediately instead of sitting one full serialization behind.
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 8));
        let f = net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e6,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 4,
        });
        let stats = &net.run()[f.0];
        for &lat in &stats.latencies_s {
            assert!((lat - 1.0).abs() < 1e-12, "queueing crept in: {lat}");
        }
    }

    #[test]
    #[should_panic(expected = "packet interval must be positive and finite")]
    fn nan_interval_flows_are_rejected() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e4,
            interval_s: f64::NAN,
            start_s: 0.0,
            packets: 1,
        });
    }

    #[test]
    #[should_panic(expected = "flow start time must be finite")]
    fn non_finite_start_flows_are_rejected() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e4,
            interval_s: 1.0,
            start_s: f64::INFINITY,
            packets: 1,
        });
    }

    #[test]
    #[should_panic(expected = "packet size must be positive and finite")]
    fn infinite_packet_size_flows_are_rejected() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        net.add_flow(Flow {
            route: vec![l],
            packet_bits: f64::INFINITY,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 1,
        });
    }

    #[test]
    #[should_panic(expected = "offered rate needs a positive finite packet interval")]
    fn offered_bps_rejects_a_zero_interval() {
        // A hand-built flow that never went through add_flow must not
        // silently report an infinite offered rate.
        let f = Flow {
            route: vec![PLinkId(0)],
            packet_bits: 1e4,
            interval_s: 0.0,
            start_s: 0.0,
            packets: 1,
        };
        let _ = f.offered_bps();
    }

    #[test]
    #[should_panic(expected = "link rate must be positive and finite")]
    fn non_finite_link_rates_are_rejected() {
        PacketLink::new(f64::NAN, 0.0, 4);
    }

    #[test]
    fn zero_packet_delivery_ratio_is_vacuously_one() {
        // Documented zero-packet semantics: nothing emitted, nothing
        // lost — the ratio is 1.0, not a silent 0.0.
        assert_eq!(FlowStats::default().delivery_ratio(), 1.0);
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        let f = net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e4,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 0,
        });
        assert_eq!(net.run()[f.0].delivery_ratio(), 1.0);
    }

    proptest! {
        /// Conservation: every emitted packet is either delivered or
        /// dropped, never both, never lost.
        #[test]
        fn prop_packet_conservation(
            n1 in 1usize..200,
            n2 in 1usize..200,
            rate in 1e6..1e9f64,
            queue in 0usize..64,
        ) {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(rate, 0.001, queue));
            let a = net.add_flow(cbr(vec![l], rate * 0.8, 1e4, n1));
            let b = net.add_flow(cbr(vec![l], rate * 0.8, 1e4, n2));
            let stats = net.run();
            prop_assert_eq!(stats[a.0].delivered + stats[a.0].dropped, n1);
            prop_assert_eq!(stats[b.0].delivered + stats[b.0].dropped, n2);
            prop_assert_eq!(stats[a.0].latencies_s.len(), stats[a.0].delivered);
        }

        /// Conservation over multi-hop routes with unequal per-link
        /// queues and a guaranteed interior bottleneck: the entry link
        /// is generously buffered and under-subscribed, so every drop
        /// happens at an interior hop — and each emitted packet is still
        /// delivered or dropped exactly once.
        #[test]
        fn prop_packet_conservation_multi_hop(
            n1 in 1usize..200,
            n2 in 1usize..200,
            rate in 1e6..1e9f64,
            q_mid in 0usize..8,
            q_out in 0usize..64,
            delay in 0.0..0.01f64,
        ) {
            let mut net = PacketNetwork::new();
            // Entry: ample queue, jointly under-subscribed (0.8 load).
            let entry = net.add_link(PacketLink::new(rate, delay, 1024));
            // Interior: 4x over-subscribed with a small unequal queue.
            let mid = net.add_link(PacketLink::new(rate * 0.2, 0.002, q_mid));
            let exit = net.add_link(PacketLink::new(rate, 0.001, q_out));
            let a = net.add_flow(cbr(vec![entry, mid, exit], rate * 0.4, 1e4, n1));
            let b = net.add_flow(cbr(vec![entry, mid], rate * 0.4, 1e4, n2));
            let stats = net.run();
            prop_assert_eq!(stats[a.0].delivered + stats[a.0].dropped, n1);
            prop_assert_eq!(stats[b.0].delivered + stats[b.0].dropped, n2);
            prop_assert_eq!(stats[a.0].latencies_s.len(), stats[a.0].delivered);
            prop_assert_eq!(stats[b.0].latencies_s.len(), stats[b.0].delivered);
            // The interior bottleneck must actually bite once the
            // emission run is longer than everything its queue can hide.
            if n1 + n2 > 60 {
                let dropped = stats[a.0].dropped + stats[b.0].dropped;
                prop_assert!(dropped > 0, "no interior drops at {} packets", n1 + n2);
            }
        }

        /// Latency is bounded below by serialization + propagation and
        /// above by the full-queue worst case.
        #[test]
        fn prop_latency_bounds(
            load in 0.1..1.5f64,
            queue in 1usize..32,
        ) {
            let rate = 1e8;
            let bits = 1e4;
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(rate, 0.002, queue));
            let f = net.add_flow(cbr(vec![l], rate * load, bits, 200));
            let stats = &net.run()[f.0];
            let floor = bits / rate + 0.002;
            let ceiling = floor + (queue as f64 + 1.0) * bits / rate;
            for &lat in &stats.latencies_s {
                prop_assert!(lat >= floor - 1e-12);
                prop_assert!(lat <= ceiling + 1e-9);
            }
        }
    }
}
