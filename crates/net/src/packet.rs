//! Packet-level discrete-event simulation with finite buffers.
//!
//! The flow-level simulator ([`crate::des`]) times bulk transfers; this
//! module resolves *contention* at packet granularity: FIFO queues with
//! finite buffers (drop-tail), per-packet serialization and propagation,
//! and competing flows. It exists for the paper's footnote 1 (§3.3):
//!
//! > "While the planned networks may provide on the order of 10 Gbps
//! > up/down links, given their primary objective of providing network
//! > connectivity, using a substantial fraction of this bandwidth for
//! > sensing data may require compromising one or the other function."
//!
//! The `downlink_contention` example and the `des` bench quantify that
//! compromise: what happens to user traffic when Earth-observation
//! downloads share the downlink.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a directed packet link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PLinkId(pub usize);

/// Identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A directed link with a finite drop-tail queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketLink {
    /// Rate, bits per second.
    pub rate_bps: f64,
    /// Propagation delay, seconds.
    pub prop_delay_s: f64,
    /// Queue capacity in packets (excluding the one in service).
    pub queue_packets: usize,
}

impl PacketLink {
    /// Creates a link.
    ///
    /// # Panics
    /// Panics on non-positive rate or negative delay.
    pub fn new(rate_bps: f64, prop_delay_s: f64, queue_packets: usize) -> Self {
        assert!(rate_bps > 0.0 && prop_delay_s >= 0.0);
        PacketLink {
            rate_bps,
            prop_delay_s,
            queue_packets,
        }
    }
}

/// A constant-bit-rate flow over a fixed route.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Route as a sequence of links.
    pub route: Vec<PLinkId>,
    /// Packet size, bits.
    pub packet_bits: f64,
    /// Packet inter-arrival time, seconds.
    pub interval_s: f64,
    /// First packet time, seconds.
    pub start_s: f64,
    /// Number of packets to emit.
    pub packets: usize,
}

impl Flow {
    /// Offered rate of the flow, bits per second.
    pub fn offered_bps(&self) -> f64 {
        self.packet_bits / self.interval_s
    }
}

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets delivered end-to-end.
    pub delivered: usize,
    /// Packets dropped at a full queue.
    pub dropped: usize,
    /// End-to-end latencies of delivered packets, seconds.
    pub latencies_s: Vec<f64>,
}

impl FlowStats {
    /// Fraction of emitted packets delivered.
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.delivered as f64 / total as f64
        }
    }

    /// Mean end-to-end latency of delivered packets, seconds.
    pub fn mean_latency_s(&self) -> Option<f64> {
        if self.latencies_s.is_empty() {
            None
        } else {
            Some(self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Packet {
    flow: usize,
    emitted_s: f64,
    hop: usize,
}

#[derive(Debug, PartialEq)]
enum EventKind {
    /// A packet arrives at the tail of a link's queue.
    Enqueue { link: usize, packet: Packet },
    /// A link finishes serializing its head packet.
    TxDone { link: usize },
}

#[derive(Debug, PartialEq)]
struct Event {
    time_s: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> Ordering {
        o.time_s
            .total_cmp(&self.time_s)
            .then_with(|| o.seq.cmp(&self.seq))
    }
}

/// The packet-level simulator.
#[derive(Debug, Default)]
pub struct PacketNetwork {
    links: Vec<PacketLink>,
    flows: Vec<Flow>,
}

impl PacketNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a link.
    pub fn add_link(&mut self, link: PacketLink) -> PLinkId {
        self.links.push(link);
        PLinkId(self.links.len() - 1)
    }

    /// Adds a flow.
    ///
    /// # Panics
    /// Panics on an empty route, unknown links, or non-positive timing.
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        assert!(!flow.route.is_empty(), "empty route");
        assert!(flow.route.iter().all(|l| l.0 < self.links.len()));
        assert!(flow.packet_bits > 0.0 && flow.interval_s > 0.0);
        self.flows.push(flow);
        FlowId(self.flows.len() - 1)
    }

    /// Runs to completion, returning per-flow statistics indexed by
    /// [`FlowId`].
    pub fn run(&mut self) -> Vec<FlowStats> {
        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time_s: f64, kind: EventKind| {
            heap.push(Event { time_s, seq, kind });
            seq += 1;
        };

        // Emit all packets as enqueue events on each flow's first link.
        for (fi, flow) in self.flows.iter().enumerate() {
            for k in 0..flow.packets {
                let t = flow.start_s + k as f64 * flow.interval_s;
                push(
                    &mut heap,
                    t,
                    EventKind::Enqueue {
                        link: flow.route[0].0,
                        packet: Packet {
                            flow: fi,
                            emitted_s: t,
                            hop: 0,
                        },
                    },
                );
            }
        }

        let mut queues: Vec<VecDeque<Packet>> = vec![VecDeque::new(); self.links.len()];
        let mut busy: Vec<Option<Packet>> = vec![None; self.links.len()];
        let mut stats: Vec<FlowStats> = vec![FlowStats::default(); self.flows.len()];

        while let Some(Event { time_s, kind, .. }) = heap.pop() {
            match kind {
                EventKind::Enqueue { link, packet } => {
                    let l = self.links[link];
                    if busy[link].is_none() {
                        // Start serving immediately.
                        busy[link] = Some(packet);
                        let tx = self.flows[packet.flow].packet_bits / l.rate_bps;
                        push(&mut heap, time_s + tx, EventKind::TxDone { link });
                    } else if queues[link].len() < l.queue_packets {
                        queues[link].push_back(packet);
                    } else {
                        stats[packet.flow].dropped += 1;
                    }
                }
                EventKind::TxDone { link } => {
                    let packet = busy[link].take().expect("link was serving");
                    let l = self.links[link];
                    let arrival = time_s + l.prop_delay_s;
                    let flow = &self.flows[packet.flow];
                    if packet.hop + 1 < flow.route.len() {
                        push(
                            &mut heap,
                            arrival,
                            EventKind::Enqueue {
                                link: flow.route[packet.hop + 1].0,
                                packet: Packet {
                                    hop: packet.hop + 1,
                                    ..packet
                                },
                            },
                        );
                    } else {
                        stats[packet.flow].delivered += 1;
                        stats[packet.flow]
                            .latencies_s
                            .push(arrival - packet.emitted_s);
                    }
                    // Serve the next queued packet.
                    if let Some(next) = queues[link].pop_front() {
                        busy[link] = Some(next);
                        let tx = self.flows[next.flow].packet_bits / l.rate_bps;
                        push(&mut heap, time_s + tx, EventKind::TxDone { link });
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cbr(route: Vec<PLinkId>, rate_bps: f64, packet_bits: f64, packets: usize) -> Flow {
        Flow {
            route,
            packet_bits,
            interval_s: packet_bits / rate_bps,
            start_s: 0.0,
            packets,
        }
    }

    #[test]
    fn lone_flow_below_capacity_delivers_everything() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e9, 0.002, 16));
        let f = net.add_flow(cbr(vec![l], 0.5e9, 1e4, 100));
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 100);
        assert_eq!(stats.dropped, 0);
        // Latency = serialization + propagation for every packet.
        let expect = 1e4 / 1e9 + 0.002;
        for &lat in &stats.latencies_s {
            assert!((lat - expect).abs() < 1e-12, "{lat}");
        }
    }

    #[test]
    fn overload_drops_the_excess() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 4));
        // Offered 2 Mbps into a 1 Mbps link: ~half must drop once the
        // queue fills.
        let f = net.add_flow(cbr(vec![l], 2e6, 1e4, 500));
        let stats = &net.run()[f.0];
        assert!(stats.dropped > 150, "dropped {}", stats.dropped);
        assert_eq!(stats.delivered + stats.dropped, 500);
        let ratio = stats.delivery_ratio();
        assert!((0.4..0.7).contains(&ratio), "delivery {ratio}");
    }

    #[test]
    fn queueing_latency_grows_with_load() {
        let run_at = |offered: f64| {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(1e9, 0.001, 64));
            let f = net.add_flow(cbr(vec![l], offered, 1e4, 1000));
            net.run()[f.0].mean_latency_s().unwrap()
        };
        let light = run_at(0.3e9);
        let heavy = run_at(0.99e9);
        assert!(heavy >= light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn two_flows_share_a_link_fairly_at_equal_rates() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e9, 0.0, 1024));
        let a = net.add_flow(cbr(vec![l], 0.4e9, 1e4, 400));
        let b = net.add_flow(cbr(vec![l], 0.4e9, 1e4, 400));
        let stats = net.run();
        assert_eq!(stats[a.0].delivered, 400);
        assert_eq!(stats[b.0].delivered, 400);
    }

    #[test]
    fn bulk_flow_inflates_interactive_queueing_on_a_shared_downlink() {
        // The §3.3 footnote scenario: EO bulk download + user traffic on
        // one 10 Gbps downlink. Compare *queueing* delay (latency above
        // the serialization+propagation floor).
        let floor = 1.2e4 / 10e9 + 0.002;
        let queueing = |with_bulk: bool| {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(10e9, 0.002, 256));
            let f = net.add_flow(cbr(vec![l], 0.1e9, 1.2e4, 500));
            if with_bulk {
                // EO bulk slightly oversubscribing the link.
                net.add_flow(cbr(vec![l], 9.98e9, 1.2e5, 20_000));
            }
            net.run()[f.0].mean_latency_s().unwrap() - floor
        };
        let alone = queueing(false);
        let shared = queueing(true);
        assert!(alone < 1e-9, "uncontended queueing {alone}");
        assert!(
            shared > 1e-6,
            "bulk sharing should add microseconds-scale queueing, got {shared}"
        );
        assert!(shared > alone * 100.0 + 1e-9);
    }

    #[test]
    fn multi_hop_packets_traverse_every_link() {
        let mut net = PacketNetwork::new();
        let l1 = net.add_link(PacketLink::new(1e9, 0.001, 8));
        let l2 = net.add_link(PacketLink::new(1e9, 0.003, 8));
        let f = net.add_flow(cbr(vec![l1, l2], 0.1e9, 1e4, 10));
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 10);
        let expect = 2.0 * (1e4 / 1e9) + 0.001 + 0.003;
        assert!((stats.latencies_s[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn zero_queue_link_is_pure_blocking() {
        let mut net = PacketNetwork::new();
        let l = net.add_link(PacketLink::new(1e6, 0.0, 0));
        // Two packets arrive back-to-back; the second finds the server
        // busy and no queue → dropped.
        let f = net.add_flow(Flow {
            route: vec![l],
            packet_bits: 1e6,
            interval_s: 0.5,
            start_s: 0.0,
            packets: 2,
        });
        let stats = &net.run()[f.0];
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_flow_routes_are_rejected() {
        let mut net = PacketNetwork::new();
        net.add_flow(Flow {
            route: vec![],
            packet_bits: 1.0,
            interval_s: 1.0,
            start_s: 0.0,
            packets: 1,
        });
    }

    proptest! {
        /// Conservation: every emitted packet is either delivered or
        /// dropped, never both, never lost.
        #[test]
        fn prop_packet_conservation(
            n1 in 1usize..200,
            n2 in 1usize..200,
            rate in 1e6..1e9f64,
            queue in 0usize..64,
        ) {
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(rate, 0.001, queue));
            let a = net.add_flow(cbr(vec![l], rate * 0.8, 1e4, n1));
            let b = net.add_flow(cbr(vec![l], rate * 0.8, 1e4, n2));
            let stats = net.run();
            prop_assert_eq!(stats[a.0].delivered + stats[a.0].dropped, n1);
            prop_assert_eq!(stats[b.0].delivered + stats[b.0].dropped, n2);
            prop_assert_eq!(stats[a.0].latencies_s.len(), stats[a.0].delivered);
        }

        /// Latency is bounded below by serialization + propagation and
        /// above by the full-queue worst case.
        #[test]
        fn prop_latency_bounds(
            load in 0.1..1.5f64,
            queue in 1usize..32,
        ) {
            let rate = 1e8;
            let bits = 1e4;
            let mut net = PacketNetwork::new();
            let l = net.add_link(PacketLink::new(rate, 0.002, queue));
            let f = net.add_flow(cbr(vec![l], rate * load, bits, 200));
            let stats = &net.run()[f.0];
            let floor = bits / rate + 0.002;
            let ceiling = floor + (queue as f64 + 1.0) * bits / rate;
            for &lat in &stats.latencies_s {
                prop_assert!(lat >= floor - 1e-12);
                prop_assert!(lat <= ceiling + 1e-9);
            }
        }
    }
}
