//! A discrete-event network simulator for store-and-forward transfers.
//!
//! The latency figures of the paper need only propagation delay, but two
//! parts of the reproduction need *transfer times* of finite-size data
//! under finite link rates:
//!
//! * state migration between successive meetup-servers (§5 — "the high
//!   inter-satellite bandwidth could accommodate this"), and
//! * the Earth-observation downlink bottleneck analysis (§3.3).
//!
//! The model: each directed link has a rate (bits/s) and a propagation
//! delay (s); messages are serialized hop-by-hop (store-and-forward) and
//! links serve transmissions FIFO. Events are processed in time order
//! with a deterministic tie-break, so runs are exactly reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a directed link in a [`DesNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Identifier of a scheduled transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferId(pub usize);

/// A directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Transmission rate, bits per second.
    pub rate_bps: f64,
    /// Propagation delay, seconds.
    pub prop_delay_s: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    /// Panics on non-positive rate or negative delay.
    pub fn new(rate_bps: f64, prop_delay_s: f64) -> Self {
        assert!(rate_bps > 0.0, "rate must be positive, got {rate_bps}");
        assert!(prop_delay_s >= 0.0, "negative delay {prop_delay_s}");
        Link {
            rate_bps,
            prop_delay_s,
        }
    }

    /// Serialization time of `bits` on this link, seconds.
    pub fn serialization_s(&self, bits: f64) -> f64 {
        bits / self.rate_bps
    }
}

/// A completed transfer's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Which transfer.
    pub id: TransferId,
    /// When it was injected, seconds.
    pub start_s: f64,
    /// When its last bit arrived at the destination, seconds.
    pub completion_s: f64,
    /// Payload size, bits.
    pub size_bits: f64,
    /// Number of hops traversed.
    pub hops: usize,
}

impl TransferRecord {
    /// End-to-end transfer latency, seconds.
    pub fn duration_s(&self) -> f64 {
        self.completion_s - self.start_s
    }
}

#[derive(Debug)]
struct Transfer {
    route: Vec<LinkId>,
    size_bits: f64,
    start_s: f64,
}

#[derive(Debug, PartialEq)]
struct Event {
    /// When the message becomes ready to enter `hop` of `transfer`.
    time_s: f64,
    seq: u64,
    transfer: usize,
    hop: usize,
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Event {
    fn cmp(&self, o: &Self) -> Ordering {
        // Min-heap by time; FIFO tie-break on insertion order.
        o.time_s
            .total_cmp(&self.time_s)
            .then_with(|| o.seq.cmp(&self.seq))
    }
}

/// The simulator: links, scheduled transfers, and an event loop.
///
/// ```
/// use leo_net::des::{DesNetwork, Link};
///
/// let mut net = DesNetwork::new();
/// // A 100 Gbps ISL with 3 ms propagation delay.
/// let isl = net.add_link(Link::new(100e9, 0.003));
/// // Migrate 1 GB of session state across it.
/// let id = net.schedule_transfer(vec![isl], 8e9, 0.0);
/// let record = net.run()[id.0];
/// assert!((record.duration_s() - (8e9 / 100e9 + 0.003)).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct DesNetwork {
    links: Vec<Link>,
    transfers: Vec<Transfer>,
}

impl DesNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a directed link, returning its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        self.links.push(link);
        LinkId(self.links.len() - 1)
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Schedules a transfer of `size_bits` along `route` starting at
    /// `start_s`, returning its id.
    ///
    /// # Panics
    /// Panics on an empty route, a non-positive or non-finite size, a
    /// non-finite start time, or an unknown link. A NaN start would
    /// silently corrupt the event heap's order and an infinite size
    /// would record `inf` completion times, so both are rejected here
    /// with the offending value in the message.
    pub fn schedule_transfer(
        &mut self,
        route: Vec<LinkId>,
        size_bits: f64,
        start_s: f64,
    ) -> TransferId {
        assert!(!route.is_empty(), "empty route");
        assert!(
            size_bits.is_finite() && size_bits > 0.0,
            "transfer size must be positive and finite, got {size_bits}"
        );
        assert!(
            start_s.is_finite(),
            "transfer start time must be finite, got {start_s}"
        );
        assert!(
            route.iter().all(|l| l.0 < self.links.len()),
            "route references unknown link"
        );
        self.transfers.push(Transfer {
            route,
            size_bits,
            start_s,
        });
        TransferId(self.transfers.len() - 1)
    }

    /// Runs the simulation to completion and returns one record per
    /// transfer, ordered by [`TransferId`].
    pub fn run(&mut self) -> Vec<TransferRecord> {
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        // Earlier-injected transfers win ties deterministically.
        let mut order: Vec<usize> = (0..self.transfers.len()).collect();
        order.sort_by(|&a, &b| {
            self.transfers[a]
                .start_s
                .total_cmp(&self.transfers[b].start_s)
                .then(a.cmp(&b))
        });
        for &ti in &order {
            heap.push(Event {
                time_s: self.transfers[ti].start_s,
                seq,
                transfer: ti,
                hop: 0,
            });
            seq += 1;
        }

        let mut next_free = vec![0.0f64; self.links.len()];
        let mut records: Vec<Option<TransferRecord>> = vec![None; self.transfers.len()];

        while let Some(ev) = heap.pop() {
            let tr = &self.transfers[ev.transfer];
            let link_id = tr.route[ev.hop];
            let link = self.links[link_id.0];
            let start_tx = ev.time_s.max(next_free[link_id.0]);
            let end_tx = start_tx + link.serialization_s(tr.size_bits);
            next_free[link_id.0] = end_tx;
            let arrival = end_tx + link.prop_delay_s;
            if ev.hop + 1 < tr.route.len() {
                heap.push(Event {
                    time_s: arrival,
                    seq,
                    transfer: ev.transfer,
                    hop: ev.hop + 1,
                });
                seq += 1;
            } else {
                records[ev.transfer] = Some(TransferRecord {
                    id: TransferId(ev.transfer),
                    start_s: tr.start_s,
                    completion_s: arrival,
                    size_bits: tr.size_bits,
                    hops: tr.route.len(),
                });
            }
        }
        records
            .into_iter()
            .map(|r| r.expect("transfer completed"))
            .collect()
    }
}

/// Analytic store-and-forward time for an uncontended path: per-hop
/// serialization plus propagation. Useful as a lower bound and for quick
/// estimates without running the event loop.
pub fn uncontended_transfer_s(size_bits: f64, links: &[Link]) -> f64 {
    links
        .iter()
        .map(|l| l.serialization_s(size_bits) + l.prop_delay_s)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_hop_matches_analytic_time() {
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.005));
        let id = net.schedule_transfer(vec![l], 1e9, 0.0);
        let rec = &net.run()[id.0];
        // 1 Gbit over 1 Gbps = 1 s serialization + 5 ms propagation.
        assert!((rec.duration_s() - 1.005).abs() < 1e-12);
    }

    #[test]
    fn multi_hop_store_and_forward_adds_per_hop_serialization() {
        let mut net = DesNetwork::new();
        let links = [
            net.add_link(Link::new(1e9, 0.002)),
            net.add_link(Link::new(1e9, 0.003)),
            net.add_link(Link::new(1e9, 0.004)),
        ];
        let id = net.schedule_transfer(links.to_vec(), 1e8, 0.0);
        let rec = &net.run()[id.0];
        // 3 × 0.1 s serialization + 9 ms propagation.
        assert!((rec.duration_s() - 0.309).abs() < 1e-12);
    }

    #[test]
    fn analytic_helper_agrees_with_des_when_uncontended() {
        let links = vec![Link::new(1e10, 0.0037), Link::new(2.5e9, 0.0012)];
        let mut net = DesNetwork::new();
        let ids: Vec<LinkId> = links.iter().map(|&l| net.add_link(l)).collect();
        let t = net.schedule_transfer(ids, 8e9, 1.0);
        let rec = &net.run()[t.0];
        let expect = uncontended_transfer_s(8e9, &links);
        assert!((rec.duration_s() - expect).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_link_dominates() {
        let mut net = DesNetwork::new();
        let fast = net.add_link(Link::new(1e10, 0.0));
        let slow = net.add_link(Link::new(1e7, 0.0));
        let id = net.schedule_transfer(vec![fast, slow], 1e7, 0.0);
        let rec = &net.run()[id.0];
        assert!((rec.duration_s() - (0.001 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn contention_serializes_transfers_fifo() {
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.0));
        let a = net.schedule_transfer(vec![l], 1e9, 0.0);
        let b = net.schedule_transfer(vec![l], 1e9, 0.0);
        let recs = net.run();
        assert!((recs[a.0].completion_s - 1.0).abs() < 1e-12);
        assert!((recs[b.0].completion_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn later_arrival_does_not_preempt() {
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.0));
        let a = net.schedule_transfer(vec![l], 2e9, 0.0); // busy until t=2
        let b = net.schedule_transfer(vec![l], 1e6, 1.0); // arrives mid-service
        let recs = net.run();
        assert!((recs[a.0].completion_s - 2.0).abs() < 1e-12);
        assert!(recs[b.0].completion_s > 2.0);
    }

    #[test]
    fn transfers_on_disjoint_links_do_not_interact() {
        let mut net = DesNetwork::new();
        let l1 = net.add_link(Link::new(1e9, 0.001));
        let l2 = net.add_link(Link::new(1e9, 0.001));
        let a = net.schedule_transfer(vec![l1], 1e9, 0.0);
        let b = net.schedule_transfer(vec![l2], 1e9, 0.0);
        let recs = net.run();
        assert!((recs[a.0].duration_s() - recs[b.0].duration_s()).abs() < 1e-12);
    }

    #[test]
    fn records_preserve_transfer_metadata() {
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.0));
        let id = net.schedule_transfer(vec![l, l], 5e8, 3.5);
        let rec = &net.run()[id.0];
        assert_eq!(rec.id, id);
        assert_eq!(rec.hops, 2);
        assert_eq!(rec.start_s, 3.5);
        assert_eq!(rec.size_bits, 5e8);
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_routes_are_rejected() {
        let mut net = DesNetwork::new();
        net.schedule_transfer(vec![], 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_links_are_rejected() {
        Link::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "transfer start time must be finite")]
    fn nan_start_transfers_are_rejected() {
        // A NaN start previously slipped through and corrupted the
        // deterministic tie-break order of the event heap.
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.0));
        net.schedule_transfer(vec![l], 1e6, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "transfer size must be positive and finite")]
    fn infinite_size_transfers_are_rejected() {
        let mut net = DesNetwork::new();
        let l = net.add_link(Link::new(1e9, 0.0));
        net.schedule_transfer(vec![l], f64::INFINITY, 0.0);
    }

    proptest! {
        /// Completion is never before the uncontended analytic bound.
        #[test]
        fn prop_des_never_beats_the_analytic_bound(
            sizes in proptest::collection::vec(1e3..1e9f64, 1..10),
            rate in 1e6..1e10f64,
            prop_delay in 0.0..0.1f64,
        ) {
            let mut net = DesNetwork::new();
            let l = net.add_link(Link::new(rate, prop_delay));
            let link = Link::new(rate, prop_delay);
            let ids: Vec<TransferId> = sizes
                .iter()
                .map(|&s| net.schedule_transfer(vec![l], s, 0.0))
                .collect();
            let recs = net.run();
            for (id, &size) in ids.iter().zip(&sizes) {
                let bound = uncontended_transfer_s(size, std::slice::from_ref(&link));
                prop_assert!(recs[id.0].duration_s() >= bound - 1e-9);
            }
        }

        /// Work conservation on one link: total busy time equals the sum of
        /// serialization times (back-to-back arrivals leave no idle gaps).
        #[test]
        fn prop_link_is_work_conserving(
            sizes in proptest::collection::vec(1e3..1e8f64, 1..20),
            rate in 1e6..1e9f64,
        ) {
            let mut net = DesNetwork::new();
            let l = net.add_link(Link::new(rate, 0.0));
            for &s in &sizes {
                net.schedule_transfer(vec![l], s, 0.0);
            }
            let recs = net.run();
            let last = recs.iter().map(|r| r.completion_s).fold(0.0, f64::max);
            let total_work: f64 = sizes.iter().map(|s| s / rate).sum();
            prop_assert!((last - total_work).abs() < 1e-6 * total_work.max(1.0));
        }
    }
}
