//! A per-snapshot spatial index for visibility queries.
//!
//! [`visible_sats`](crate::visibility::visible_sats) scans every satellite
//! for every query. That is fine once, but the experiment sweeps
//! (Figs 1–7) issue the same query for hundreds of ground points against
//! the same instant, and the session runner issues one per user per tick.
//! [`VisibilityIndex`] buckets the constellation by geocentric latitude,
//! per shell, so a query only tests the satellites whose coverage cone can
//! possibly reach the ground point's latitude.
//!
//! The pruning rule is exact, not approximate: a satellite at geocentric
//! latitude `φ_s` covers a ground point at latitude `φ_g` only if the
//! Earth-central angle between them is at most the shell's coverage
//! central angle `λ` ([`look::coverage_central_angle`]), and the central
//! angle is never smaller than the latitude difference, so
//! `|φ_s − φ_g| > λ` proves invisibility. Candidates that survive the
//! band filter go through the *same* slant-range and elevation tests as
//! the brute-force scan, so the result is bit-for-bit identical (a
//! property test in `tests/` pins this).

use crate::fault::FaultPlan;
use crate::visibility::VisibleSat;
use leo_constellation::{Constellation, SatId, Snapshot};
use leo_geo::look;
use leo_geo::Ecef;

/// Small angular guard (radians) absorbing floating-point error in the
/// latitude computations; ~0.6 m on the ground, far below one band.
const LAT_EPS_RAD: f64 = 1e-7;

/// One shell's latitude-banded satellite bucket.
#[derive(Debug, Clone)]
struct ShellBands {
    /// Exact distance bound: elevation ≥ ε ⟺ range ≤ this (circular shell).
    max_range_m: f64,
    /// The shell's minimum-elevation sine, for the dot-product test.
    min_elevation: leo_geo::Angle,
    /// Coverage central angle λ of the shell, radians.
    central_angle_rad: f64,
    /// Band width, radians. Bands partition `[-π/2, π/2]`.
    band_rad: f64,
    /// `band_offsets[b]..band_offsets[b+1]` indexes `entries` of band `b`.
    band_offsets: Vec<u32>,
    /// `(id, position)` grouped by band, ascending `SatId` within a band.
    entries: Vec<(SatId, Ecef)>,
}

impl ShellBands {
    fn band_of(&self, lat_rad: f64) -> usize {
        let n = self.band_offsets.len() - 1;
        let b = ((lat_rad + std::f64::consts::FRAC_PI_2) / self.band_rad) as usize;
        b.min(n - 1)
    }
}

/// Latitude-banded visibility index over one [`Snapshot`].
///
/// Build once per instant, query for many ground points:
///
/// ```
/// use leo_constellation::presets::starlink_550_only;
/// use leo_geo::Geodetic;
/// use leo_net::index::VisibilityIndex;
/// use leo_net::visibility::visible_sats;
///
/// let c = starlink_550_only();
/// let snap = c.snapshot(0.0);
/// let index = VisibilityIndex::build(&c, &snap);
/// let g = Geodetic::ground(6.52, 3.38);
/// let fast = index.query(g.to_ecef_spherical());
/// let slow = visible_sats(&c, &snap, g, g.to_ecef_spherical());
/// assert_eq!(fast, slow);
/// ```
#[derive(Debug, Clone)]
pub struct VisibilityIndex {
    shells: Vec<ShellBands>,
    num_satellites: usize,
}

impl VisibilityIndex {
    /// Builds the index for `snapshot` of `constellation`. `O(N)` via a
    /// counting sort into latitude bands.
    pub fn build(constellation: &Constellation, snapshot: &Snapshot) -> VisibilityIndex {
        let num_satellites = snapshot.len();
        if num_satellites == 0 {
            // An empty snapshot (or a constellation with no shells) gets
            // an index with no shell bands: every query returns nothing
            // instead of tripping over empty band arrays.
            return VisibilityIndex {
                shells: Vec::new(),
                num_satellites: 0,
            };
        }
        let mut shells: Vec<ShellBands> = constellation
            .shells()
            .iter()
            .map(|s| {
                let central = look::coverage_central_angle(s.altitude_m, s.min_elevation);
                // Bands of ~λ/4 keep the scanned window tight (≈2λ + 2
                // band widths) without thousands of mostly-empty bands.
                let target = (central.radians() / 4.0).max(1e-3);
                let n_bands = (std::f64::consts::PI / target).ceil().clamp(1.0, 4096.0) as usize;
                ShellBands {
                    max_range_m: look::max_slant_range_m(s.altitude_m, s.min_elevation),
                    min_elevation: s.min_elevation,
                    central_angle_rad: central.radians(),
                    band_rad: std::f64::consts::PI / n_bands as f64,
                    band_offsets: vec![0; n_bands + 1],
                    entries: Vec::new(),
                }
            })
            .collect();

        // Counting sort per shell: count band occupancy, prefix-sum, place.
        // Placement iterates satellites in `SatId` order, so each band's
        // entries stay id-sorted (the query relies on this to return the
        // exact order `visible_sats` produces).
        let sat_band: Vec<(usize, usize)> = snapshot
            .iter()
            .map(|(id, pos)| {
                let shell = constellation.satellite(id).shell as usize;
                let band = shells[shell].band_of(geocentric_latitude(pos));
                shells[shell].band_offsets[band + 1] += 1;
                (shell, band)
            })
            .collect();
        for sh in &mut shells {
            for b in 1..sh.band_offsets.len() {
                sh.band_offsets[b] += sh.band_offsets[b - 1];
            }
            sh.entries = vec![
                (SatId(0), Ecef::new(0.0, 0.0, 0.0));
                *sh.band_offsets.last().unwrap() as usize
            ];
        }
        let mut cursor: Vec<Vec<u32>> = shells
            .iter()
            .map(|sh| sh.band_offsets[..sh.band_offsets.len() - 1].to_vec())
            .collect();
        for ((id, pos), &(shell, band)) in snapshot.iter().zip(&sat_band) {
            let slot = cursor[shell][band] as usize;
            shells[shell].entries[slot] = (id, pos);
            cursor[shell][band] += 1;
        }

        VisibilityIndex {
            shells,
            num_satellites,
        }
    }

    /// Number of satellites the snapshot held.
    pub fn num_satellites(&self) -> usize {
        self.num_satellites
    }

    /// All satellites visible from `ground_ecef` (spherical-model ECEF,
    /// from [`leo_geo::Geodetic::to_ecef_spherical`]). Identical output —
    /// order included — to [`crate::visibility::visible_sats`] over the
    /// snapshot the index was built from.
    pub fn query(&self, ground_ecef: Ecef) -> Vec<VisibleSat> {
        let mut out = Vec::new();
        self.for_each_visible(ground_ecef, |v| out.push(v));
        // Bands (and shells) are scanned one after another, so ids come
        // back interleaved; restore the global SatId order of the
        // brute-force scan. The visible set is tiny, so this is cheap.
        out.sort_unstable_by_key(|v| v.id.0);
        out
    }

    /// Calls `f` for every satellite visible from `ground_ecef`, in
    /// band-bucket order — ascending `SatId` only *within a band* (use
    /// [`Self::query`] when global order matters). Avoids the `Vec` when
    /// the caller only aggregates.
    pub fn for_each_visible<F: FnMut(VisibleSat)>(&self, ground_ecef: Ecef, mut f: F) {
        let glat = geocentric_latitude(ground_ecef);
        let (mut scanned, mut returned) = (0u64, 0u64);
        for sh in &self.shells {
            let reach = sh.central_angle_rad + LAT_EPS_RAD;
            let lo = sh.band_of((glat - reach).max(-std::f64::consts::FRAC_PI_2));
            let hi = sh.band_of((glat + reach).min(std::f64::consts::FRAC_PI_2));
            let start = sh.band_offsets[lo] as usize;
            let end = sh.band_offsets[hi + 1] as usize;
            scanned += (end - start) as u64;
            for &(id, pos) in &sh.entries[start..end] {
                let range = ground_ecef.distance_m(pos);
                if range <= sh.max_range_m
                    && look::is_visible_spherical(ground_ecef, pos, sh.min_elevation)
                {
                    returned += 1;
                    f(VisibleSat { id, range_m: range });
                }
            }
        }
        leo_obs::counter!("visibility.candidates_scanned").add(scanned);
        leo_obs::counter!("visibility.returned").add(returned);
    }

    /// [`Self::query`] under a fault plan: dead satellites and rain-faded
    /// access links are filtered out. Sorted by `SatId` like `query`.
    pub fn query_masked(&self, ground_ecef: Ecef, plan: &FaultPlan) -> Vec<VisibleSat> {
        let mut out = Vec::new();
        self.for_each_visible_masked(ground_ecef, plan, |v| out.push(v));
        out.sort_unstable_by_key(|v| v.id.0);
        out
    }

    /// [`Self::for_each_visible`] under a fault plan: skips satellites
    /// whose server is dead and those whose access link the plan's
    /// ground fade cannot close. Candidates that are geometrically
    /// servable at the shell elevation but masked are tallied in the
    /// `fault.masked_access_links` counter. Delegates to the unmasked
    /// scan — identical output and counters — when the plan is empty.
    pub fn for_each_visible_masked<F: FnMut(VisibleSat)>(
        &self,
        ground_ecef: Ecef,
        plan: &FaultPlan,
        mut f: F,
    ) {
        if plan.is_empty() {
            return self.for_each_visible(ground_ecef, f);
        }
        let glat = geocentric_latitude(ground_ecef);
        let (mut scanned, mut returned, mut masked) = (0u64, 0u64, 0u64);
        for sh in &self.shells {
            let reach = sh.central_angle_rad + LAT_EPS_RAD;
            let lo = sh.band_of((glat - reach).max(-std::f64::consts::FRAC_PI_2));
            let hi = sh.band_of((glat + reach).min(std::f64::consts::FRAC_PI_2));
            let start = sh.band_offsets[lo] as usize;
            let end = sh.band_offsets[hi + 1] as usize;
            scanned += (end - start) as u64;
            for &(id, pos) in &sh.entries[start..end] {
                let range = ground_ecef.distance_m(pos);
                if range <= sh.max_range_m
                    && look::is_visible_spherical(ground_ecef, pos, sh.min_elevation)
                {
                    if plan.sat_dead(id) || plan.access_link_masked(ground_ecef, pos) {
                        masked += 1;
                    } else {
                        returned += 1;
                        f(VisibleSat { id, range_m: range });
                    }
                }
            }
        }
        leo_obs::counter!("visibility.candidates_scanned").add(scanned);
        leo_obs::counter!("visibility.returned").add(returned);
        leo_obs::counter!("fault.masked_access_links").add(masked);
    }

    /// The per-shell candidate windows covering every ground point with
    /// geocentric latitude in `[lat_lo, lat_hi]` — the satellite-major
    /// entry point of the settled frontier (`crate::frontier`). Each
    /// window is the union over the latitude interval of the band
    /// windows [`Self::for_each_visible`] would scan per point
    /// (`band_of` is monotone in latitude, so taking the interval's
    /// endpoints covers every point between them), carrying the shell's
    /// exact range/elevation test parameters.
    pub(crate) fn shell_windows(&self, lat_lo: f64, lat_hi: f64) -> Vec<ShellWindow<'_>> {
        debug_assert!(lat_lo <= lat_hi, "empty latitude interval");
        self.shells
            .iter()
            .map(|sh| {
                let reach = sh.central_angle_rad + LAT_EPS_RAD;
                let lo = sh.band_of((lat_lo - reach).max(-std::f64::consts::FRAC_PI_2));
                let hi = sh.band_of((lat_hi + reach).min(std::f64::consts::FRAC_PI_2));
                ShellWindow {
                    max_range_m: sh.max_range_m,
                    min_elevation: sh.min_elevation,
                    entries: &sh.entries
                        [sh.band_offsets[lo] as usize..sh.band_offsets[hi + 1] as usize],
                }
            })
            .collect()
    }

    /// Indexed version of [`crate::visibility::coverage_mask`]: marks the
    /// satellites visible from at least one of `grounds` (spherical-model
    /// ECEF). Returns one boolean per satellite, indexed by `SatId.0`.
    pub fn coverage_mask(&self, grounds: &[Ecef]) -> Vec<bool> {
        let mut mask = vec![false; self.num_satellites];
        self.mark_coverage(grounds, &mut mask);
        mask
    }

    /// Ors the coverage of `grounds` into an existing mask — the
    /// incremental form used when growing a ground-station set one site
    /// at a time (Fig 4's top-N city sweep).
    pub fn mark_coverage(&self, grounds: &[Ecef], mask: &mut [bool]) {
        assert_eq!(mask.len(), self.num_satellites, "mask length");
        for &ge in grounds {
            self.for_each_visible(ge, |v| mask[v.id.0 as usize] = true);
        }
    }
}

/// One shell's candidate slice for a latitude interval, with the exact
/// per-pair test parameters [`VisibilityIndex::for_each_visible`] uses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShellWindow<'a> {
    pub max_range_m: f64,
    pub min_elevation: leo_geo::Angle,
    /// `(id, position)` candidates, id-sorted within each latitude band.
    pub entries: &'a [(SatId, Ecef)],
}

/// Geocentric latitude (radians) of an ECEF position; 0 for the origin.
pub(crate) fn geocentric_latitude(p: Ecef) -> f64 {
    let r = p.0.norm();
    if r == 0.0 {
        return 0.0;
    }
    (p.0.z / r).clamp(-1.0, 1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visibility::{coverage_mask, visible_sats};
    use leo_constellation::presets;
    use leo_geo::Geodetic;

    fn grounds() -> Vec<(Geodetic, Ecef)> {
        [
            (0.0, 0.0),
            (6.52, 3.38),
            (30.0, -100.0),
            (-33.9, 18.4),
            (53.0, 0.0),
            (-52.9, 170.0),
            (85.0, 10.0),
            (-90.0, 0.0),
        ]
        .iter()
        .map(|&(lat, lon)| {
            let g = Geodetic::ground(lat, lon);
            (g, g.to_ecef_spherical())
        })
        .collect()
    }

    #[test]
    fn indexed_query_equals_brute_force_single_shell() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(137.0);
        let index = VisibilityIndex::build(&c, &snap);
        for (g, ge) in grounds() {
            assert_eq!(index.query(ge), visible_sats(&c, &snap, g, ge), "at {g:?}");
        }
    }

    #[test]
    fn indexed_query_equals_brute_force_multi_shell() {
        // starlink_phase1 has five shells at three altitudes — the
        // cross-shell SatId interleaving case.
        let c = presets::starlink_phase1();
        let snap = c.snapshot(1800.0);
        let index = VisibilityIndex::build(&c, &snap);
        for (g, ge) in grounds() {
            assert_eq!(index.query(ge), visible_sats(&c, &snap, g, ge), "at {g:?}");
        }
    }

    #[test]
    fn indexed_coverage_mask_equals_brute_force() {
        let c = presets::kuiper();
        let snap = c.snapshot(300.0);
        let index = VisibilityIndex::build(&c, &snap);
        let gs = grounds();
        let ecefs: Vec<Ecef> = gs.iter().map(|&(_, e)| e).collect();
        assert_eq!(index.coverage_mask(&ecefs), coverage_mask(&c, &snap, &gs));
    }

    #[test]
    fn incremental_coverage_equals_batch() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let index = VisibilityIndex::build(&c, &snap);
        let ecefs: Vec<Ecef> = grounds().iter().map(|&(_, e)| e).collect();
        let mut mask = vec![false; index.num_satellites()];
        for ge in &ecefs {
            index.mark_coverage(std::slice::from_ref(ge), &mut mask);
        }
        assert_eq!(mask, index.coverage_mask(&ecefs));
    }

    #[test]
    fn index_prunes_most_of_the_constellation() {
        // The point of the exercise: the candidate window is a small
        // fraction of the shell. Count candidates via band offsets.
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let index = VisibilityIndex::build(&c, &snap);
        let sh = &index.shells[0];
        let glat = 0.0f64;
        let reach = sh.central_angle_rad + LAT_EPS_RAD;
        let lo = sh.band_of(glat - reach);
        let hi = sh.band_of(glat + reach);
        let candidates = (sh.band_offsets[hi + 1] - sh.band_offsets[lo]) as usize;
        assert!(
            candidates * 3 < snap.len(),
            "candidates {candidates} of {} — index prunes nothing",
            snap.len()
        );
    }

    #[test]
    fn empty_constellation_yields_empty_index() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let index = VisibilityIndex::build(&c, &snap);
        assert_eq!(index.num_satellites(), snap.len());
    }

    #[test]
    fn empty_snapshot_builds_an_empty_index_without_panicking() {
        // Regression: building over an empty snapshot/constellation must
        // return an empty index, and every query on it must be empty.
        let c = leo_constellation::Constellation::from_shells("empty", vec![]);
        let snap = c.snapshot(0.0);
        assert_eq!(snap.len(), 0);
        let index = VisibilityIndex::build(&c, &snap);
        assert_eq!(index.num_satellites(), 0);
        for (_, ge) in grounds() {
            assert!(index.query(ge).is_empty());
            assert!(index.query_masked(ge, &FaultPlan::empty()).is_empty());
        }
        assert_eq!(index.coverage_mask(&[]), Vec::<bool>::new());
    }

    #[test]
    fn empty_plan_masked_query_equals_plain_query() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(137.0);
        let index = VisibilityIndex::build(&c, &snap);
        let plan = FaultPlan::empty();
        for (_, ge) in grounds() {
            assert_eq!(index.query_masked(ge, &plan), index.query(ge));
        }
    }

    #[test]
    fn masked_query_drops_dead_satellites_only() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(137.0);
        let index = VisibilityIndex::build(&c, &snap);
        let ge = Geodetic::ground(6.52, 3.38).to_ecef_spherical();
        let plain = index.query(ge);
        assert!(plain.len() >= 2);
        let mut plan = FaultPlan::empty();
        plan.kill(plain[0].id);
        let masked = index.query_masked(ge, &plan);
        let expect: Vec<_> = plain[1..].to_vec();
        assert_eq!(masked, expect);
    }

    #[test]
    fn ground_fade_raises_the_effective_elevation_mask() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let index = VisibilityIndex::build(&c, &snap);
        let ge = Geodetic::ground(0.0, 0.0).to_ecef_spherical();
        let mut plan = FaultPlan::empty();
        plan.set_ground_fade(crate::fault::GroundFade::MinElevation(
            leo_geo::Angle::from_degrees(60.0),
        ));
        let faded = index.query_masked(ge, &plan);
        let plain = index.query(ge);
        assert!(faded.len() < plain.len(), "a 60° mask must shrink the set");
        for v in &faded {
            assert!(look::is_visible_spherical(
                ge,
                snap.position(v.id),
                leo_geo::Angle::from_degrees(60.0)
            ));
        }
        plan.set_ground_fade(crate::fault::GroundFade::Outage);
        assert!(index.query_masked(ge, &plan).is_empty());
    }
}
