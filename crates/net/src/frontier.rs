//! Satellite-major settled frontier: one arg-min pass per ground set
//! per snapshot instead of one visibility scan per ground point.
//!
//! [`VisibilityIndex`](crate::index::VisibilityIndex) answers *"which
//! satellites can this point see?"* one point at a time, scanning the
//! point's whole latitude window (hundreds of candidates at Starlink
//! scale) per query. The serving layer asks the transposed question at
//! scale — *"which satellite serves each of these N points?"* — and for
//! that shape a **satellite-major** pass is far cheaper: fetch the
//! ground set's candidate satellites once, then let each satellite
//! challenge only the points inside its **longitude wedge** (the only
//! points it could possibly cover), updating a running arg-min label
//! per point.
//!
//! The result is *bit-identical* to the per-point scans, by
//! construction rather than by luck:
//!
//! - The candidate window ([`VisibilityIndex::shell_windows`]) and the
//!   longitude wedge are conservative prunes — provable supersets of
//!   every pair the per-point scan would accept (the wedge bound is
//!   derived below; every cut carries an explicit epsilon margin).
//! - Every surviving pair runs the *exact same* slant-range and
//!   elevation tests, on the same expressions, as
//!   [`VisibilityIndex::for_each_visible`].
//! - The arg-min update uses the serving layer's exact comparison
//!   (smallest `range_m`, ties to the lowest `SatId`), which is a total
//!   preference independent of scan order.
//!
//! **Wedge bound.** For a satellite at geocentric latitude `φs` and a
//! ground point at `φg`, the Earth-central angle `c` between them obeys
//! `cos c = sin φs sin φg + cos φs cos φg cos Δλ`, i.e.
//! `cos φs cos φg (1 − cos Δλ) = cos(φs − φg) − cos c ≤ 1 − cos c`.
//! A pair within slant range `R` satisfies (planar law of cosines over
//! the orbit and ground radii) `cos c ≥ cos_c_min(rs, rg, R)`, so
//! `1 − cos Δλ ≤ (1 − cos_c_min) / (cos φs · min cos φg)` — an explicit
//! longitude wedge around the sub-satellite point. Points are kept
//! longitude-sorted, so a wedge is one or two contiguous slices.
//!
//! A settled frontier also supports **warm-started refreshes**: when
//! only a subset of satellites moved between snapshots (and the fault
//! plan is unchanged), [`refresh_nearest`] re-derives exactly the
//! answers that could have changed — points whose winner moved rescan
//! their candidates, and the moved satellites re-challenge everyone —
//! and is bit-identical to a cold [`settle_nearest`] because both
//! compute the same arg-min over the same candidate set.

use crate::fault::FaultPlan;
use crate::index::{geocentric_latitude, VisibilityIndex};
use crate::visibility::VisibleSat;
use leo_constellation::SatId;
use leo_geo::{look, Ecef};
use std::f64::consts::{FRAC_PI_2, PI};

/// Angular margin added to every wedge half-width, radians. Orders of
/// magnitude above the floating-point error of the wedge computation
/// (≲1e-10 rad) and orders of magnitude below a useful wedge (≳1e-2
/// rad), so it can never cut a true candidate and costs nothing.
const WEDGE_EPS_RAD: f64 = 1e-6;
/// Absolute slack subtracted from the conservative central-angle cosine.
const COS_EPS: f64 = 1e-12;
/// Relative slack on the squared-range prefilter: a pair rejected here
/// exceeds the slant-range bound by ≥5e-10 relative — far beyond one
/// ulp — so the exact test it skips could only have rejected it too.
const RANGE2_SLACK: f64 = 1e-9;

/// A set of ground points prepared for satellite-major passes: sorted
/// by longitude, with the latitude/radius envelopes the wedge bound
/// needs. Built once per point set (points are static across
/// snapshots); all per-snapshot work happens in the settle functions.
#[derive(Debug, Clone)]
pub struct GroundSet {
    /// Point positions in ascending-longitude order.
    ecef: Vec<Ecef>,
    /// Longitudes (radians, `[-π, π]`) of `ecef`, ascending.
    lon: Vec<f64>,
    /// `ecef[j]` is the caller's point `orig[j]`.
    orig: Vec<u32>,
    /// Geocentric-latitude envelope of the set, radians.
    lat_lo: f64,
    lat_hi: f64,
    /// `min_j cos(lat_j)` — the wedge bound's ground-latitude factor.
    cos_lat_min: f64,
    /// Geocentric-radius envelope of the set, meters.
    r_lo: f64,
    r_hi: f64,
}

impl GroundSet {
    /// Prepares `points` (spherical-model ECEF, as everywhere in this
    /// crate) for satellite-major passes. Longitude ties sort by input
    /// index, so the set is a pure function of the input.
    pub fn build(points: &[Ecef]) -> GroundSet {
        let lons: Vec<f64> = points.iter().map(|p| p.0.y.atan2(p.0.x)).collect();
        let mut orig: Vec<u32> = (0..points.len() as u32).collect();
        orig.sort_by(|&a, &b| {
            lons[a as usize]
                .total_cmp(&lons[b as usize])
                .then(a.cmp(&b))
        });
        let mut lat_lo = FRAC_PI_2;
        let mut lat_hi = -FRAC_PI_2;
        let mut cos_lat_min = 1.0f64;
        let mut r_lo = f64::INFINITY;
        let mut r_hi = 0.0f64;
        for p in points {
            let lat = geocentric_latitude(*p);
            lat_lo = lat_lo.min(lat);
            lat_hi = lat_hi.max(lat);
            cos_lat_min = cos_lat_min.min(lat.cos());
            let r = p.0.norm();
            r_lo = r_lo.min(r);
            r_hi = r_hi.max(r);
        }
        GroundSet {
            ecef: orig.iter().map(|&i| points[i as usize]).collect(),
            lon: orig.iter().map(|&i| lons[i as usize]).collect(),
            orig,
            lat_lo,
            lat_hi,
            cos_lat_min,
            r_lo,
            r_hi,
        }
    }

    /// Number of points in the set.
    pub fn len(&self) -> usize {
        self.ecef.len()
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.ecef.is_empty()
    }

    /// Visits every point whose longitude lies within `half` radians of
    /// `center`, handling the ±π wrap as up to two contiguous slices.
    fn for_each_in_wedge(&self, center: f64, half: f64, mut f: impl FnMut(usize)) {
        let n = self.lon.len();
        if n == 0 {
            return;
        }
        if half >= PI {
            for j in 0..n {
                f(j);
            }
            return;
        }
        let lo = center - half;
        let hi = center + half;
        let lower = |x: f64| self.lon.partition_point(|&l| l < x);
        let upper = |x: f64| self.lon.partition_point(|&l| l <= x);
        if lo < -PI {
            for j in lower(lo + 2.0 * PI)..n {
                f(j);
            }
            for j in 0..upper(hi) {
                f(j);
            }
        } else if hi > PI {
            for j in lower(lo)..n {
                f(j);
            }
            for j in 0..upper(hi - 2.0 * PI) {
                f(j);
            }
        } else {
            for j in lower(lo)..upper(hi) {
                f(j);
            }
        }
    }
}

/// Persistent arg-min labels of one [`GroundSet`] — the settled
/// frontier. Kept in the set's longitude order; reused across
/// snapshots by [`refresh_nearest`].
#[derive(Debug, Clone, Default)]
pub struct NearestState {
    /// Winning slant range per point (`INFINITY` = no server).
    best_range: Vec<f64>,
    /// Winning satellite per point (`u32::MAX` = no server).
    best_id: Vec<u32>,
}

impl NearestState {
    fn reset(&mut self, n: usize) {
        self.best_range.clear();
        self.best_range.resize(n, f64::INFINITY);
        self.best_id.clear();
        self.best_id.resize(n, u32::MAX);
    }
}

/// Work tallies of one satellite-major pass, flushed to the
/// `engine.frontier.*` counters on drop. Pure work-done counts: they
/// depend only on the inputs, never on threads or scheduling.
#[derive(Default)]
struct PassTally {
    candidates: u64,
    pairs_tested: u64,
    pairs_exact: u64,
    masked_links: u64,
}

impl Drop for PassTally {
    fn drop(&mut self) {
        leo_obs::counter!("engine.frontier.candidates").add(self.candidates);
        leo_obs::counter!("engine.frontier.pairs_tested").add(self.pairs_tested);
        leo_obs::counter!("engine.frontier.pairs_exact").add(self.pairs_exact);
        if self.masked_links != 0 {
            leo_obs::counter!("fault.masked_access_links").add(self.masked_links);
        }
    }
}

/// An empty plan masks nothing; treat it exactly like no plan (the
/// per-point scans delegate the same way).
fn effective_plan(plan: Option<&FaultPlan>) -> Option<&FaultPlan> {
    plan.filter(|p| !p.is_empty())
}

/// Cold settle: the nearest visible (non-faulted) server for every
/// point of `set`, written to `out` in the caller's point order —
/// bit-identical to running the serving layer's per-point
/// nearest-server query on each point, in one satellite-major pass.
pub fn settle_nearest(
    index: &VisibilityIndex,
    set: &GroundSet,
    plan: Option<&FaultPlan>,
    state: &mut NearestState,
    out: &mut Vec<Option<VisibleSat>>,
) {
    let _span = leo_obs::span!("engine.frontier.settle_s");
    leo_obs::counter!("engine.frontier.settles").incr();
    state.reset(set.len());
    challenge(index, set, effective_plan(plan), None, state);
    scatter(set, state, out);
}

/// Warm-started refresh of a settled frontier when only the satellites
/// flagged in `moved` changed position since the settle that produced
/// `state` — under the **same** fault plan and the same point set.
///
/// Two phases, together bit-identical to a cold settle: points whose
/// recorded winner moved (their label is stale) rescan their own
/// candidates among the *unmoved* satellites; then every moved
/// satellite re-challenges the whole set satellite-major. Unmoved
/// satellites' ranges are bitwise unchanged, so every other label is
/// still the arg-min over the unmoved candidates, and the arg-min
/// comparison is scan-order independent — the two phases reconstruct
/// exactly the full arg-min. With `moved` all-false this reduces to a
/// scatter of the prior labels (the cross-snapshot reuse fast path).
pub fn refresh_nearest(
    index: &VisibilityIndex,
    set: &GroundSet,
    plan: Option<&FaultPlan>,
    moved: &[bool],
    state: &mut NearestState,
    out: &mut Vec<Option<VisibleSat>>,
) {
    assert_eq!(
        state.best_id.len(),
        set.len(),
        "refresh_nearest needs a previously settled state for this set"
    );
    let _span = leo_obs::span!("engine.frontier.refresh_s");
    leo_obs::counter!("engine.frontier.refreshes").incr();
    let plan = effective_plan(plan);
    let mut dirty = 0u64;
    for j in 0..set.len() {
        let id = state.best_id[j];
        if id != u32::MAX && moved[id as usize] {
            dirty += 1;
            state.best_range[j] = f64::INFINITY;
            state.best_id[j] = u32::MAX;
            let ge = set.ecef[j];
            let consider = |v: VisibleSat| {
                if !moved[v.id.0 as usize] {
                    challenge_point(state, j, v.range_m, v.id.0);
                }
            };
            match plan {
                Some(p) => index.for_each_visible_masked(ge, p, consider),
                None => index.for_each_visible(ge, consider),
            }
        }
    }
    leo_obs::counter!("engine.frontier.dirty_rescans").add(dirty);
    challenge(index, set, plan, Some(moved), state);
    scatter(set, state, out);
}

/// The full candidate lists variant: every visible (non-faulted)
/// satellite per point, sorted nearest-first with `SatId` tie-breaks —
/// the edge fleet's per-cell candidate shape — in one satellite-major
/// pass. `(range, id)` is a total order over a snapshot's visible set,
/// so the output is identical however the pairs were discovered.
pub fn settle_visible_lists(
    index: &VisibilityIndex,
    set: &GroundSet,
    plan: Option<&FaultPlan>,
    out: &mut Vec<Vec<VisibleSat>>,
) {
    let _span = leo_obs::span!("engine.frontier.list_settle_s");
    leo_obs::counter!("engine.frontier.list_settles").incr();
    out.clear();
    out.resize_with(set.len(), Vec::new);
    if set.is_empty() {
        return;
    }
    let plan = effective_plan(plan);
    let mut tally = PassTally::default();
    for sh in index.shell_windows(set.lat_lo, set.lat_hi) {
        let max_r2s = sh.max_range_m * sh.max_range_m * (1.0 + RANGE2_SLACK);
        for &(id, pos) in sh.entries {
            if plan.is_some_and_dead(id) {
                continue;
            }
            tally.candidates += 1;
            let half = wedge_half_width(set, pos, sh.max_range_m);
            set.for_each_in_wedge(pos.0.y.atan2(pos.0.x), half, |j| {
                let ge = set.ecef[j];
                tally.pairs_tested += 1;
                if (ge.0 - pos.0).norm_squared() > max_r2s {
                    return;
                }
                tally.pairs_exact += 1;
                let range = ge.distance_m(pos);
                if range <= sh.max_range_m && look::is_visible_spherical(ge, pos, sh.min_elevation)
                {
                    if let Some(p) = plan {
                        if p.access_link_masked(ge, pos) {
                            tally.masked_links += 1;
                            return;
                        }
                    }
                    out[set.orig[j] as usize].push(VisibleSat { id, range_m: range });
                }
            });
        }
    }
    for cands in out.iter_mut() {
        cands.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
    }
}

/// Satellite-major arg-min pass over `set`: every candidate satellite
/// (restricted to `only_moved` when given) challenges the points in its
/// longitude wedge. Exact per-pair tests; order-independent updates.
fn challenge(
    index: &VisibilityIndex,
    set: &GroundSet,
    plan: Option<&FaultPlan>,
    only: Option<&[bool]>,
    state: &mut NearestState,
) {
    if set.is_empty() {
        return;
    }
    let mut tally = PassTally::default();
    for sh in index.shell_windows(set.lat_lo, set.lat_hi) {
        let max_r2s = sh.max_range_m * sh.max_range_m * (1.0 + RANGE2_SLACK);
        for &(id, pos) in sh.entries {
            if let Some(flags) = only {
                if !flags[id.0 as usize] {
                    continue;
                }
            }
            if plan.is_some_and_dead(id) {
                continue;
            }
            tally.candidates += 1;
            let half = wedge_half_width(set, pos, sh.max_range_m);
            set.for_each_in_wedge(pos.0.y.atan2(pos.0.x), half, |j| {
                let ge = set.ecef[j];
                tally.pairs_tested += 1;
                if (ge.0 - pos.0).norm_squared() > max_r2s {
                    return;
                }
                tally.pairs_exact += 1;
                let range = ge.distance_m(pos);
                if range <= sh.max_range_m && look::is_visible_spherical(ge, pos, sh.min_elevation)
                {
                    if let Some(p) = plan {
                        if p.access_link_masked(ge, pos) {
                            tally.masked_links += 1;
                            return;
                        }
                    }
                    challenge_point(state, j, range, id.0);
                }
            });
        }
    }
}

/// The serving layer's exact preference: smallest slant range wins,
/// exact range ties break to the lower satellite id.
#[inline]
fn challenge_point(state: &mut NearestState, j: usize, range: f64, id: u32) {
    if range < state.best_range[j] || (range == state.best_range[j] && id < state.best_id[j]) {
        state.best_range[j] = range;
        state.best_id[j] = id;
    }
}

/// Writes the settled labels back in the caller's point order.
fn scatter(set: &GroundSet, state: &NearestState, out: &mut Vec<Option<VisibleSat>>) {
    out.clear();
    out.resize(set.len(), None);
    for j in 0..set.len() {
        if state.best_id[j] != u32::MAX {
            out[set.orig[j] as usize] = Some(VisibleSat {
                id: SatId(state.best_id[j]),
                range_m: state.best_range[j],
            });
        }
    }
}

/// Conservative half-width (radians) of the longitude wedge a satellite
/// at `pos` must scan to cover every point of `set` within slant range
/// `max_range_m` — the bound derived in the module docs, evaluated at
/// the ground-radius envelope (including the interior stationary point
/// of the central-angle cosine) and padded with explicit margins.
fn wedge_half_width(set: &GroundSet, pos: Ecef, max_range_m: f64) -> f64 {
    let rs = pos.0.norm();
    if rs == 0.0 {
        return PI;
    }
    let sin_s = (pos.0.z / rs).clamp(-1.0, 1.0);
    let cos_s = (1.0 - sin_s * sin_s).max(0.0).sqrt();
    let max_r2 = max_range_m * max_range_m;
    let cos_c = |rg: f64| (rs * rs + rg * rg - max_r2) / (2.0 * rs * rg);
    let mut cos_c_min = cos_c(set.r_lo).min(cos_c(set.r_hi));
    // cos_c is convex in rg when rs² > R²: check its stationary point.
    let a = rs * rs - max_r2;
    if a > 0.0 {
        let rg_star = a.sqrt();
        if rg_star > set.r_lo && rg_star < set.r_hi {
            cos_c_min = cos_c_min.min(cos_c(rg_star));
        }
    }
    cos_c_min -= COS_EPS;
    let denom = cos_s * set.cos_lat_min;
    if denom < 1e-9 {
        return PI; // polar geometry: no useful wedge, scan everything
    }
    let t = (1.0 - cos_c_min) / denom;
    if t >= 2.0 {
        return PI;
    }
    (1.0 - t).clamp(-1.0, 1.0).acos() + WEDGE_EPS_RAD
}

/// Convenience trait: `plan.is_some_and_dead(id)` without unwrapping.
trait PlanExt {
    fn is_some_and_dead(&self, id: SatId) -> bool;
}

impl PlanExt for Option<&FaultPlan> {
    fn is_some_and_dead(&self, id: SatId) -> bool {
        self.is_some_and(|p| p.sat_dead(id))
    }
}

/// Ground points grouped into latitude bands, each prepared as a
/// [`GroundSet`] — the shape for globe-spanning point sets (the edge
/// fleet's demand cells), where one set's latitude envelope would make
/// every wedge degenerate.
#[derive(Debug, Clone)]
pub struct BandedGroundSets {
    bands: Vec<BandSet>,
    num_points: usize,
}

/// One latitude band's point set plus the caller-order indices of its
/// points.
#[derive(Debug, Clone)]
pub struct BandSet {
    set: GroundSet,
    global: Vec<u32>,
}

impl BandedGroundSets {
    /// Groups `points` into latitude bands `band_deg` degrees tall and
    /// prepares each band. Banding is a pure function of the points.
    ///
    /// # Panics
    /// Panics when `band_deg` is not positive.
    pub fn build(points: &[Ecef], band_deg: f64) -> BandedGroundSets {
        assert!(band_deg > 0.0, "band_deg must be positive");
        let band_rad = band_deg.to_radians();
        let mut groups: std::collections::BTreeMap<i32, Vec<u32>> = Default::default();
        for (i, p) in points.iter().enumerate() {
            let band = ((geocentric_latitude(*p) + FRAC_PI_2) / band_rad) as i32;
            groups.entry(band).or_default().push(i as u32);
        }
        let bands: Vec<BandSet> = groups
            .into_values()
            .map(|global| {
                let pts: Vec<Ecef> = global.iter().map(|&i| points[i as usize]).collect();
                BandSet {
                    set: GroundSet::build(&pts),
                    global,
                }
            })
            .collect();
        BandedGroundSets {
            bands,
            num_points: points.len(),
        }
    }

    /// Number of latitude bands (parallelism units).
    pub fn num_bands(&self) -> usize {
        self.bands.len()
    }

    /// Total points across all bands.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// The bands, for fanning across a worker pool.
    pub fn bands(&self) -> &[BandSet] {
        &self.bands
    }
}

impl BandSet {
    /// [`settle_visible_lists`] over this band, returned as
    /// `(caller_point_index, candidates)` pairs.
    pub fn visible_lists(
        &self,
        index: &VisibilityIndex,
        plan: Option<&FaultPlan>,
    ) -> Vec<(u32, Vec<VisibleSat>)> {
        let mut lists = Vec::new();
        settle_visible_lists(index, &self.set, plan, &mut lists);
        self.global.iter().copied().zip(lists).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::GroundFade;
    use leo_constellation::presets;
    use leo_geo::{Angle, Geodetic};

    fn grounds(n: usize) -> Vec<Ecef> {
        // Deterministic spread, biased toward a latitude band but with
        // outliers (poles, antimeridian) to stress the wedge math.
        let mut pts: Vec<Ecef> = (0..n)
            .map(|i| {
                let lat = -28.0 + 0.37 * (i % 160) as f64;
                let lon = -180.0 + (i as f64 * 7.13) % 360.0;
                Geodetic::ground(lat, lon).to_ecef_spherical()
            })
            .collect();
        pts.push(Geodetic::ground(89.9, 12.0).to_ecef_spherical());
        pts.push(Geodetic::ground(-89.9, -12.0).to_ecef_spherical());
        pts.push(Geodetic::ground(3.0, 179.999).to_ecef_spherical());
        pts.push(Geodetic::ground(-3.0, -179.999).to_ecef_spherical());
        pts
    }

    /// The reference: per-point nearest via the index, exactly the
    /// serving layer's comparison.
    fn nearest_reference(
        index: &VisibilityIndex,
        pts: &[Ecef],
        plan: Option<&FaultPlan>,
    ) -> Vec<Option<VisibleSat>> {
        pts.iter()
            .map(|&ge| {
                let mut best: Option<VisibleSat> = None;
                let consider = |v: VisibleSat| {
                    let better = match best.as_ref() {
                        None => true,
                        Some(b) => {
                            v.range_m < b.range_m || (v.range_m == b.range_m && v.id.0 < b.id.0)
                        }
                    };
                    if better {
                        best = Some(v);
                    }
                };
                match plan {
                    Some(p) => index.for_each_visible_masked(ge, p, consider),
                    None => index.for_each_visible(ge, consider),
                }
                best
            })
            .collect()
    }

    fn assert_bitwise_eq(a: &[Option<VisibleSat>], b: &[Option<VisibleSat>]) {
        assert_eq!(a.len(), b.len());
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            match (x, y) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.id, q.id, "point {j}");
                    assert_eq!(p.range_m.to_bits(), q.range_m.to_bits(), "point {j}");
                }
                _ => panic!("point {j}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn settled_frontier_matches_per_point_scans_bitwise() {
        let c = presets::starlink_550_only();
        for t in [0.0, 137.0, 1800.0] {
            let snap = c.snapshot(t);
            let index = VisibilityIndex::build(&c, &snap);
            let pts = grounds(500);
            let set = GroundSet::build(&pts);
            let mut state = NearestState::default();
            let mut out = Vec::new();
            settle_nearest(&index, &set, None, &mut state, &mut out);
            assert_bitwise_eq(&out, &nearest_reference(&index, &pts, None));
        }
    }

    #[test]
    fn settled_frontier_matches_per_point_scans_multi_shell() {
        let c = presets::starlink_phase1();
        let snap = c.snapshot(600.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(300);
        let set = GroundSet::build(&pts);
        let mut state = NearestState::default();
        let mut out = Vec::new();
        settle_nearest(&index, &set, None, &mut state, &mut out);
        assert_bitwise_eq(&out, &nearest_reference(&index, &pts, None));
    }

    #[test]
    fn masked_settle_matches_masked_per_point_scans() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(450.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(400);
        let set = GroundSet::build(&pts);
        let mut plan = FaultPlan::empty();
        for i in (0..snap.len() as u32).step_by(9) {
            plan.kill(SatId(i));
        }
        plan.set_ground_fade(GroundFade::MinElevation(Angle::from_degrees(35.0)));
        let mut state = NearestState::default();
        let mut out = Vec::new();
        settle_nearest(&index, &set, Some(&plan), &mut state, &mut out);
        assert_bitwise_eq(&out, &nearest_reference(&index, &pts, Some(&plan)));
        for v in out.iter().flatten() {
            assert!(!plan.sat_dead(v.id), "dead satellite won a point");
        }
    }

    #[test]
    fn empty_plan_settle_equals_plain_settle() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(60.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(200);
        let set = GroundSet::build(&pts);
        let plan = FaultPlan::empty();
        let (mut s1, mut s2) = (NearestState::default(), NearestState::default());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        settle_nearest(&index, &set, Some(&plan), &mut s1, &mut a);
        settle_nearest(&index, &set, None, &mut s2, &mut b);
        assert_bitwise_eq(&a, &b);
    }

    #[test]
    fn empty_set_settles_to_nothing() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(0.0);
        let index = VisibilityIndex::build(&c, &snap);
        let set = GroundSet::build(&[]);
        let mut state = NearestState::default();
        let mut out = vec![None; 3];
        settle_nearest(&index, &set, None, &mut state, &mut out);
        assert!(out.is_empty());
        let mut lists = Vec::new();
        settle_visible_lists(&index, &set, None, &mut lists);
        assert!(lists.is_empty());
    }

    #[test]
    fn refresh_with_nothing_moved_reuses_the_settled_labels() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(90.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(300);
        let set = GroundSet::build(&pts);
        let mut state = NearestState::default();
        let (mut cold, mut warm) = (Vec::new(), Vec::new());
        settle_nearest(&index, &set, None, &mut state, &mut cold);
        let moved = vec![false; snap.len()];
        refresh_nearest(&index, &set, None, &moved, &mut state, &mut warm);
        assert_bitwise_eq(&cold, &warm);
    }

    #[test]
    fn incremental_refresh_is_bit_identical_to_a_cold_settle() {
        // Settle at t0, move a subset of satellites (t1 positions), then
        // refresh incrementally — must equal a cold settle at t1.
        let c = presets::starlink_550_only();
        let snap0 = c.snapshot(300.0);
        let mut snap1 = c.snapshot(300.0);
        let moved_ids: Vec<usize> = (0..snap1.len()).step_by(5).collect();
        let t1 = c.snapshot(360.0);
        let mut moved = vec![false; snap1.len()];
        for &i in &moved_ids {
            snap1.positions[i] = t1.positions[i];
            moved[i] = true;
        }
        let index0 = VisibilityIndex::build(&c, &snap0);
        let index1 = VisibilityIndex::build(&c, &snap1);
        let pts = grounds(400);
        let set = GroundSet::build(&pts);
        let mut state = NearestState::default();
        let (mut out0, mut warm, mut cold) = (Vec::new(), Vec::new(), Vec::new());
        settle_nearest(&index0, &set, None, &mut state, &mut out0);
        refresh_nearest(&index1, &set, None, &moved, &mut state, &mut warm);
        let mut cold_state = NearestState::default();
        settle_nearest(&index1, &set, None, &mut cold_state, &mut cold);
        assert_bitwise_eq(&warm, &cold);
    }

    #[test]
    fn incremental_refresh_under_a_plan_matches_cold_settle() {
        let c = presets::starlink_550_only();
        let snap0 = c.snapshot(0.0);
        let mut snap1 = c.snapshot(0.0);
        let t1 = c.snapshot(60.0);
        let mut moved = vec![false; snap1.len()];
        for i in (0..snap1.len()).step_by(3) {
            snap1.positions[i] = t1.positions[i];
            moved[i] = true;
        }
        let mut plan = FaultPlan::empty();
        for i in (0..snap1.len() as u32).step_by(11) {
            plan.kill(SatId(i));
        }
        let index0 = VisibilityIndex::build(&c, &snap0);
        let index1 = VisibilityIndex::build(&c, &snap1);
        let pts = grounds(350);
        let set = GroundSet::build(&pts);
        let mut state = NearestState::default();
        let (mut out0, mut warm, mut cold) = (Vec::new(), Vec::new(), Vec::new());
        settle_nearest(&index0, &set, Some(&plan), &mut state, &mut out0);
        refresh_nearest(&index1, &set, Some(&plan), &moved, &mut state, &mut warm);
        let mut cold_state = NearestState::default();
        settle_nearest(&index1, &set, Some(&plan), &mut cold_state, &mut cold);
        assert_bitwise_eq(&warm, &cold);
    }

    #[test]
    fn visible_lists_match_per_point_queries_sorted_nearest_first() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(137.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(250);
        let set = GroundSet::build(&pts);
        let mut lists = Vec::new();
        settle_visible_lists(&index, &set, None, &mut lists);
        for (j, (&ge, got)) in pts.iter().zip(&lists).enumerate() {
            let mut want = index.query(ge);
            want.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
            assert_eq!(got, &want, "point {j}");
        }
    }

    #[test]
    fn masked_visible_lists_match_masked_queries() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(777.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(200);
        let set = GroundSet::build(&pts);
        let mut plan = FaultPlan::empty();
        for i in (0..snap.len() as u32).step_by(7) {
            plan.kill(SatId(i));
        }
        let mut lists = Vec::new();
        settle_visible_lists(&index, &set, Some(&plan), &mut lists);
        for (j, (&ge, got)) in pts.iter().zip(&lists).enumerate() {
            let mut want = index.query_masked(ge, &plan);
            want.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
            assert_eq!(got, &want, "point {j}");
        }
    }

    #[test]
    fn equal_range_ties_break_to_the_lowest_sat_id() {
        // Plant two satellites mirrored in y over a point on the prime
        // meridian: the squared-coordinate range computation kills the
        // sign exactly, so the ranges are bit-equal and the arg-min must
        // pick the lower id — whatever order the pass discovers them in.
        let c = presets::starlink_550_only();
        let mut snap = c.snapshot(0.0);
        let ge = Geodetic::ground(0.0, 0.0).to_ecef_spherical();
        // ~412 km slant range: closer than any genuine 550 km-shell
        // satellite can ever be (range ≥ altitude), so the pair wins.
        let a = Ecef::new(ge.0.x + 400e3, ge.0.y + 100e3, ge.0.z);
        let b = Ecef::new(ge.0.x + 400e3, -(ge.0.y + 100e3), ge.0.z);
        assert_eq!(ge.distance_m(a).to_bits(), ge.distance_m(b).to_bits());
        // The planted pair must be the closest servers: park them nearer
        // than anything else can be (550 km shell ⇒ range ≥ altitude).
        snap.positions[100] = a;
        snap.positions[101] = b;
        let index = VisibilityIndex::build(&c, &snap);
        let set = GroundSet::build(&[ge]);
        let mut state = NearestState::default();
        let mut out = Vec::new();
        settle_nearest(&index, &set, None, &mut state, &mut out);
        let won = out[0].expect("planted satellites are visible");
        assert!(
            ge.distance_m(a) <= won.range_m,
            "nothing beats the planted pair"
        );
        assert_eq!(won.id, SatId(100), "tie must break to the lowest id");
        assert_eq!(won.range_m.to_bits(), ge.distance_m(a).to_bits());
        // And the reference per-point scan agrees on the same snapshot.
        assert_bitwise_eq(&out, &nearest_reference(&index, &[ge], None));
    }

    #[test]
    fn banded_sets_partition_the_points_and_match_flat_lists() {
        let c = presets::starlink_550_only();
        let snap = c.snapshot(240.0);
        let index = VisibilityIndex::build(&c, &snap);
        let pts = grounds(300);
        let banded = BandedGroundSets::build(&pts, 4.0);
        assert_eq!(banded.num_points(), pts.len());
        let mut seen = vec![false; pts.len()];
        let mut assembled: Vec<Vec<VisibleSat>> = vec![Vec::new(); pts.len()];
        for band in banded.bands() {
            for (g, list) in band.visible_lists(&index, None) {
                assert!(!seen[g as usize], "point {g} in two bands");
                seen[g as usize] = true;
                assembled[g as usize] = list;
            }
        }
        assert!(seen.iter().all(|&s| s), "bands must cover every point");
        for (j, (&ge, got)) in pts.iter().zip(&assembled).enumerate() {
            let mut want = index.query(ge);
            want.sort_by(|a, b| a.range_m.total_cmp(&b.range_m).then(a.id.cmp(&b.id)));
            assert_eq!(got, &want, "point {j}");
        }
    }
}
